// A full "day in the city" walk-through of the public API:
//  1. generate a synthetic city and inspect the road network,
//  2. generate a rush-hour workload and persist it to CSV,
//  3. reload the dataset, run the WATTER platform hour by hour,
//  4. print the extra-time distribution that Section V fits its GMM to.
//
//   ./build/examples/city_day [output_dir]
#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/sim/platform.h"
#include "src/stats/em_fitter.h"
#include "src/stats/histogram.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/dataset_io.h"
#include "src/workload/scenario.h"

int main(int argc, char** argv) {
  using namespace watter;
  std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  // 1. City.
  WorkloadOptions workload;
  workload.dataset = DatasetKind::kNyc;
  workload.num_orders = 2500;
  workload.num_workers = 140;
  workload.start_hour = 6.0;
  workload.duration = 14 * 3600.0;  // 06:00 - 20:00.
  workload.seed = 20260611;
  auto scenario = GenerateScenario(workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("city: %dx%d grid, %d nodes, %d road segments\n",
              scenario->city->width, scenario->city->height,
              scenario->city->graph.num_nodes(),
              scenario->city->graph.num_edges() / 2);

  // 2. Persist the dataset.
  std::string orders_path = out_dir + "/nyc_day_orders.csv";
  std::string workers_path = out_dir + "/nyc_day_workers.csv";
  if (!SaveOrdersCsv(orders_path, scenario->orders).ok() ||
      !SaveWorkersCsv(workers_path, scenario->workers).ok()) {
    std::fprintf(stderr, "failed to persist dataset\n");
    return 1;
  }
  std::printf("dataset: %zu orders -> %s, %zu workers -> %s\n",
              scenario->orders.size(), orders_path.c_str(),
              scenario->workers.size(), workers_path.c_str());

  // 3. Reload and simulate.
  auto orders = LoadOrdersCsv(orders_path);
  auto workers = LoadWorkersCsv(workers_path);
  if (!orders.ok() || !workers.ok()) {
    std::fprintf(stderr, "failed to reload dataset\n");
    return 1;
  }
  scenario->orders = std::move(orders).value();
  scenario->workers = std::move(workers).value();

  OnlineThresholdProvider provider;
  WatterPlatform platform(&*scenario, &provider, SimOptions{});

  // Hourly arrival profile.
  std::vector<int> arrivals(24, 0);
  for (const Order& order : scenario->orders) {
    ++arrivals[static_cast<int>(order.release / 3600.0) % 24];
  }
  MetricsReport report = platform.Run();

  Table hourly({"hour", "arrivals"});
  for (int hour = 6; hour < 20; ++hour) {
    hourly.AddRow({std::to_string(hour), std::to_string(arrivals[hour])});
  }
  std::printf("\n-- hourly arrivals (rush-hour demand model) --\n");
  hourly.Print();

  std::printf("\n-- day summary --\n%s\n", report.ToString().c_str());

  // 4. Extra-time distribution (the input of the Section V GMM fit).
  const auto& extras = platform.metrics().served_extra_times();
  Histogram hist(0, 1200, 24);
  for (double extra : extras) hist.Add(extra);
  std::printf("\n-- extra-time distribution of served orders --\n");
  std::printf("samples=%lld mean=%.1fs p50=%.1fs p90=%.1fs\n",
              static_cast<long long>(hist.count()), hist.mean(),
              hist.Quantile(0.5), hist.Quantile(0.9));
  auto fit = FitGmm(extras, {.num_components = 3, .seed = 1});
  if (fit.ok()) {
    Table comps({"component", "weight", "mean(s)", "stddev(s)"});
    for (int c = 0; c < fit->num_components(); ++c) {
      const auto& comp = fit->components()[c];
      comps.AddRow({std::to_string(c + 1), Table::Num(comp.weight, 3),
                    Table::Num(comp.mean, 1),
                    Table::Num(std::sqrt(comp.variance), 1)});
    }
    std::printf("\n-- fitted Gaussian mixture (Algorithm 3, line 1) --\n");
    comps.Print();
  }
  return 0;
}
