// Compares the WATTER pooling strategies against the GDP and GAS baselines
// on one workload per dataset preset, printing the paper's four metrics
// ("Extra Time" is the METRS objective of Equation 2: served extra time plus
// rejection penalties).
//
//   ./build/examples/compare_strategies [num_orders] [num_workers]
#include <cstdio>
#include <cstdlib>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/common/table.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

int main(int argc, char** argv) {
  using namespace watter;
  int num_orders = argc > 1 ? std::atoi(argv[1]) : 2000;
  int num_workers = argc > 2 ? std::atoi(argv[2]) : 120;

  for (DatasetKind dataset :
       {DatasetKind::kNyc, DatasetKind::kCdc, DatasetKind::kXia}) {
    WorkloadOptions workload;
    workload.dataset = dataset;
    workload.num_orders = num_orders;
    workload.num_workers = num_workers;
    workload.seed = 123;

    std::printf("=== dataset %s: n=%d orders, m=%d workers ===\n",
                DatasetName(dataset), num_orders, num_workers);
    Table table({"algorithm", "extra_time(s)", "unified_cost",
                 "service_rate(%)", "avg_response(s)", "avg_detour(s)",
                 "rt/order(us)"});

    auto run = [&](const char* name, auto&& runner) {
      auto scenario = GenerateScenario(workload);
      if (!scenario.ok()) {
        std::fprintf(stderr, "scenario failed: %s\n",
                     scenario.status().ToString().c_str());
        std::exit(1);
      }
      MetricsReport report = runner(&*scenario);
      table.AddRow({name, Table::Num(report.metrs_objective, 0),
                    Table::Num(report.unified_cost, 0),
                    Table::Num(report.service_rate * 100.0, 1),
                    Table::Num(report.avg_response, 1),
                    Table::Num(report.avg_detour, 1),
                    Table::Num(report.running_time_per_order * 1e6, 1)});
    };

    run("WATTER-online", [](Scenario* s) {
      OnlineThresholdProvider provider;
      return RunWatter(s, &provider);
    });
    run("WATTER-timeout", [](Scenario* s) {
      TimeoutThresholdProvider provider;
      return RunWatter(s, &provider);
    });
    run("GDP", [](Scenario* s) { return RunGdp(s); });
    run("GAS", [](Scenario* s) { return RunGas(s); });
    table.Print();
    std::printf("\n");
  }
  return 0;
}
