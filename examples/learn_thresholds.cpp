// End-to-end WATTER-expect demo: fit the extra-time GMM, derive optimal
// thresholds, train the value network offline on simulated historical days,
// then evaluate all five algorithms of the paper on a held-out day.
//
//   ./build/examples/learn_thresholds [num_orders] [num_workers]
#include <cstdio>
#include <cstdlib>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/common/table.h"
#include "src/rl/trainer.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

int main(int argc, char** argv) {
  using namespace watter;
  int num_orders = argc > 1 ? std::atoi(argv[1]) : 2000;
  int num_workers = argc > 2 ? std::atoi(argv[2]) : 120;

  WorkloadOptions workload;
  workload.dataset = DatasetKind::kCdc;
  workload.num_orders = num_orders;
  workload.num_workers = num_workers;
  workload.seed = 4242;                  // Held-out evaluation day.
  workload.city_seed = 99991;            // Shared road network.

  std::printf("Training WATTER-expect (GMM fit + value network)...\n");
  ExpectTrainOptions train;
  train.bootstrap_days = 1;
  train.behavior_days = 2;
  train.epochs = 2;
  auto model = TrainExpectModel(workload, train);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("  bootstrap extra-time mean: %.1f s\n",
              model->extra_time_mean);
  std::printf("  GMM components: %d, experiences: %zu\n",
              model->mixture->num_components(), model->experiences);

  Table table({"algorithm", "extra_time(s)", "unified_cost",
               "service_rate(%)", "avg_response(s)", "avg_detour(s)",
               "rt/order(us)"});
  auto run = [&](const char* name, auto&& runner) {
    auto scenario = GenerateScenario(workload);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario failed: %s\n",
                   scenario.status().ToString().c_str());
      std::exit(1);
    }
    MetricsReport report = runner(&*scenario);
    table.AddRow({name, Table::Num(report.metrs_objective, 0),
                  Table::Num(report.unified_cost, 0),
                  Table::Num(report.service_rate * 100.0, 1),
                  Table::Num(report.avg_response, 1),
                  Table::Num(report.avg_detour, 1),
                  Table::Num(report.running_time_per_order * 1e6, 1)});
  };

  run("WATTER-expect", [&](Scenario* s) {
    auto provider = model->MakeProvider();
    return RunWatter(s, provider.get());
  });
  run("WATTER-gmm", [&](Scenario* s) {
    GmmThresholdProvider provider(*model->mixture);
    return RunWatter(s, &provider);
  });
  run("WATTER-online", [](Scenario* s) {
    OnlineThresholdProvider provider;
    return RunWatter(s, &provider);
  });
  run("WATTER-timeout", [](Scenario* s) {
    TimeoutThresholdProvider provider;
    return RunWatter(s, &provider);
  });
  run("GDP", [](Scenario* s) { return RunGdp(s); });
  run("GAS", [](Scenario* s) { return RunGas(s); });
  table.Print();
  return 0;
}
