// Direct use of the planning layer (no simulator): build the paper's
// Figure 1 network by hand, plan optimal shared routes for the Table I
// orders, inspect the shareability graph and the best-group map.
//
// This is the example to read if you want to embed WATTER's planning
// machinery in your own dispatch loop.
#include <cstdio>

#include "src/common/status.h"
#include "src/common/table.h"
#include "src/core/route_planner.h"
#include "src/geo/dijkstra.h"
#include "src/geo/graph.h"
#include "src/geo/travel_time_oracle.h"
#include "src/pool/order_pool.h"

using namespace watter;

namespace {

constexpr double kMin = 60.0;
enum Node : NodeId { kA = 0, kB, kC, kD, kE, kF };
constexpr const char* kNodeNames = "abcdef";

Graph MakeFigure1Graph() {
  Graph g;
  for (int i = 0; i < 6; ++i) {
    g.AddNode(Point{static_cast<double>(i % 3), static_cast<double>(i / 3)});
  }
  g.AddBidirectionalEdge(kA, kB, kMin);
  g.AddBidirectionalEdge(kB, kC, kMin);
  g.AddBidirectionalEdge(kA, kD, kMin);
  g.AddBidirectionalEdge(kD, kE, kMin);
  g.AddBidirectionalEdge(kE, kF, kMin);
  g.AddBidirectionalEdge(kC, kF, kMin);
  g.AddBidirectionalEdge(kB, kE, kMin);
  WATTER_CHECK_OK(g.Finalize());
  return g;
}

std::string OrderLabel(int64_t id) {
  std::string label = "o";
  label += std::to_string(id);
  return label;
}

std::string PairLabel(int64_t a, int64_t b) {
  std::string label = OrderLabel(a);
  label += "+";
  label += OrderLabel(b);
  return label;
}

std::string Pretty(const Route& route) {
  std::string out;
  for (size_t s = 0; s < route.stops.size(); ++s) {
    if (s > 0) out += " -> ";
    out += kNodeNames[route.stops[s].node];
    out += route.stops[s].is_pickup ? "(pick o" : "(drop o";
    out += std::to_string(route.stops[s].order);
    out += ")";
  }
  return out;
}

}  // namespace

int main() {
  Graph graph = MakeFigure1Graph();
  DijkstraOracle oracle(&graph);
  RoutePlanner planner(&oracle);

  // The four Table I orders with 30-minute deadlines.
  std::vector<Order> orders(4);
  const NodeId picks[] = {kA, kD, kD, kE};
  const NodeId drops[] = {kC, kF, kC, kF};
  const double releases[] = {5, 8, 10, 12};
  for (int i = 0; i < 4; ++i) {
    orders[i] = {.id = i + 1, .pickup = picks[i], .dropoff = drops[i],
                 .riders = 1, .release = releases[i],
                 .deadline = releases[i] + 30 * kMin, .wait_limit = 10 * kMin,
                 .shortest_cost = oracle.Cost(picks[i], drops[i])};
  }

  // 1. Exact shared-route planning for every pair.
  std::printf("-- optimal shared pair routes (dial-a-ride DP) --\n");
  Table pairs({"pair", "route", "cost(min)", "latest departure(s)"});
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      auto plan = planner.PlanBest({&orders[i], &orders[j]}, 12.0, 4);
      if (!plan.ok()) {
        pairs.AddRow({PairLabel(i + 1, j + 1), "(infeasible)", "-", "-"});
        continue;
      }
      pairs.AddRow({PairLabel(i + 1, j + 1), Pretty(plan->route),
                    Table::Num(plan->total_cost / kMin, 1),
                    Table::Num(plan->latest_departure, 0)});
    }
  }
  pairs.Print();

  // 2. The pool view: insert all four and read the best-group map.
  std::printf("\n-- order pool: temporal shareability graph --\n");
  OrderPool pool(&oracle, PoolOptions{});
  for (const Order& order : orders) {
    if (!pool.Insert(order, order.release).ok()) return 1;
  }
  Table edges({"order", "shareable with", "pair cost(min)", "edge expiry(s)"});
  for (const Order& order : orders) {
    for (const ShareEdge& edge : pool.graph().Neighbors(order.id)) {
      if (edge.other < order.id) continue;  // Print each edge once.
      edges.AddRow({OrderLabel(order.id),
                    OrderLabel(edge.other),
                    Table::Num(edge.pair_cost / kMin, 1),
                    Table::Num(edge.expiry, 0)});
    }
  }
  edges.Print();

  std::printf("\n-- best groups at t=12s --\n");
  Table best_table({"order", "best group", "route", "avg extra time(s)"});
  for (const Order& order : orders) {
    const BestGroup* best = pool.BestFor(order.id, 12.0);
    if (best == nullptr) {
      best_table.AddRow({OrderLabel(order.id), "(none yet)", "-",
                         "-"});
      continue;
    }
    std::string members;
    for (OrderId member : best->members) {
      if (!members.empty()) members += "+";
      members += "o";
      members += std::to_string(member);
    }
    best_table.AddRow({OrderLabel(order.id), members,
                       Pretty(best->plan.route),
                       Table::Num(best->AverageExtraTime(12.0, {}), 1)});
  }
  best_table.Print();
  return 0;
}
