// Quickstart: generate a synthetic city + workload, run the WATTER order
// pooling platform with two strategies, and print the paper's four metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/common/table.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

int main() {
  using namespace watter;

  // A small Chengdu-like evening workload: 1500 orders, 150 workers.
  WorkloadOptions workload;
  workload.dataset = DatasetKind::kCdc;
  workload.num_orders = 1500;
  workload.num_workers = 150;
  workload.tau = 1.6;   // Deadline: 1.6x the direct ride time.
  workload.eta = 0.8;   // Watching window: 0.8x the direct ride time.
  workload.seed = 7;

  Table table({"strategy", "extra_time(s)", "unified_cost", "service_rate(%)",
               "avg_response(s)", "avg_detour(s)", "avg_group",
               "runtime/order(us)"});

  for (int variant = 0; variant < 2; ++variant) {
    auto scenario = GenerateScenario(workload);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario generation failed: %s\n",
                   scenario.status().ToString().c_str());
      return 1;
    }
    OnlineThresholdProvider online;
    TimeoutThresholdProvider timeout;
    ThresholdProvider* provider =
        variant == 0 ? static_cast<ThresholdProvider*>(&online)
                     : static_cast<ThresholdProvider*>(&timeout);
    MetricsReport report = RunWatter(&*scenario, provider);
    table.AddRow({provider->name(), Table::Num(report.total_extra_time, 0),
                  Table::Num(report.unified_cost, 0),
                  Table::Num(report.service_rate * 100.0, 1),
                  Table::Num(report.avg_response, 1),
                  Table::Num(report.avg_detour, 1),
                  Table::Num(report.avg_group_size, 2),
                  Table::Num(report.running_time_per_order * 1e6, 1)});
  }
  table.Print();
  return 0;
}
