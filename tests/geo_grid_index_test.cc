#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/geo/grid_index.h"

namespace watter {
namespace {

GridIndex MakeIndex(int cells = 10) {
  return GridIndex(Point{0, 0}, Point{100, 100}, cells);
}

TEST(GridIndexTest, InsertRemoveContains) {
  GridIndex index = MakeIndex();
  index.Insert(1, {10, 10});
  index.Insert(2, {90, 90});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Contains(1));
  ASSERT_TRUE(index.Remove(1).ok());
  EXPECT_FALSE(index.Contains(1));
  EXPECT_EQ(index.Remove(1).code(), StatusCode::kNotFound);
}

TEST(GridIndexTest, ReinsertRelocates) {
  GridIndex index = MakeIndex();
  index.Insert(7, {5, 5});
  index.Insert(7, {95, 95});
  EXPECT_EQ(index.size(), 1u);
  auto nearest = index.KNearest(1, {99, 99});
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0], 7);
}

TEST(GridIndexTest, RelocateMovesAcrossCells) {
  GridIndex index = MakeIndex();
  index.Insert(3, {1, 1});
  ASSERT_TRUE(index.Relocate(3, {99, 99}).ok());
  EXPECT_EQ(index.CellOf(index.PointOf(3)), index.CellOf({99, 99}));
  EXPECT_EQ(index.Relocate(42, {1, 1}).code(), StatusCode::kNotFound);
}

TEST(GridIndexTest, CellOfClampsOutOfBox) {
  GridIndex index = MakeIndex();
  EXPECT_EQ(index.CellOf({-50, -50}), index.CellOf({0, 0}));
  EXPECT_EQ(index.CellOf({500, 500}), index.CellOf({99.999, 99.999}));
}

TEST(GridIndexTest, KNearestMatchesBruteForce) {
  GridIndex index = MakeIndex(8);
  Rng rng(42);
  std::vector<std::pair<int64_t, Point>> all;
  for (int64_t id = 0; id < 200; ++id) {
    Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    index.Insert(id, p);
    all.emplace_back(id, p);
  }
  for (int trial = 0; trial < 25; ++trial) {
    Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const int k = 5;
    auto got = index.KNearest(k, q);
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    auto brute = all;
    std::sort(brute.begin(), brute.end(),
              [&q](const auto& a, const auto& b) {
                return EuclideanDistance(a.second, q) <
                       EuclideanDistance(b.second, q);
              });
    // Compare by distance: ties may reorder ids.
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(EuclideanDistance(index.PointOf(got[i]), q),
                  EuclideanDistance(brute[i].second, q), 1e-9);
    }
  }
}

TEST(GridIndexTest, KNearestHonorsFilter) {
  GridIndex index = MakeIndex();
  index.Insert(1, {50, 50});
  index.Insert(2, {51, 50});
  index.Insert(3, {52, 50});
  auto got = index.KNearest(2, {50, 50},
                            [](int64_t id) { return id % 2 == 1; });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 3);
}

TEST(GridIndexTest, KNearestWithFewerElementsReturnsAll) {
  GridIndex index = MakeIndex();
  index.Insert(1, {10, 10});
  auto got = index.KNearest(5, {0, 0});
  EXPECT_EQ(got.size(), 1u);
  EXPECT_TRUE(index.KNearest(0, {0, 0}).empty());
}

TEST(GridIndexTest, WithinRadiusMatchesBruteForce) {
  GridIndex index = MakeIndex(6);
  Rng rng(77);
  std::vector<std::pair<int64_t, Point>> all;
  for (int64_t id = 0; id < 150; ++id) {
    Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    index.Insert(id, p);
    all.emplace_back(id, p);
  }
  for (int trial = 0; trial < 20; ++trial) {
    Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    double radius = rng.Uniform(5, 30);
    auto got = index.WithinRadius(q, radius);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> expected;
    for (const auto& [id, p] : all) {
      if (EuclideanDistance(p, q) <= radius) expected.push_back(id);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(GridIndexTest, CellCountsSumToSize) {
  GridIndex index = MakeIndex(4);
  Rng rng(3);
  for (int64_t id = 0; id < 60; ++id) {
    index.Insert(id, {rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  auto counts = index.CellCounts();
  EXPECT_EQ(counts.size(), 16u);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 60);
}

TEST(GridIndexTest, ClearEmptiesEverything) {
  GridIndex index = MakeIndex();
  index.Insert(1, {1, 1});
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.KNearest(3, {1, 1}).empty());
}

TEST(GridIndexTest, PointOfMissingIsNaN) {
  GridIndex index = MakeIndex();
  Point p = index.PointOf(404);
  EXPECT_TRUE(std::isnan(p.x));
}

}  // namespace
}  // namespace watter
