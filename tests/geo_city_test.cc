#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/geo/city_generator.h"
#include "src/geo/dijkstra.h"

namespace watter {
namespace {

TEST(CityGeneratorTest, BasicShape) {
  auto city = GenerateCity({.width = 6, .height = 4, .seed = 1});
  ASSERT_TRUE(city.ok());
  EXPECT_EQ(city->graph.num_nodes(), 24);
  // Grid arcs: 2 * (horizontal + vertical) directed edges.
  int expected_edges = 2 * ((6 - 1) * 4 + (4 - 1) * 6);
  EXPECT_EQ(city->graph.num_edges(), expected_edges);
  EXPECT_TRUE(city->graph.IsWeaklyConnected());
  EXPECT_TRUE(city->graph.finalized());
}

TEST(CityGeneratorTest, NodeAtRowColMapping) {
  auto city = GenerateCity({.width = 5, .height = 3, .seed = 1});
  ASSERT_TRUE(city.ok());
  EXPECT_EQ(city->NodeAt(0, 0), 0);
  EXPECT_EQ(city->NodeAt(1, 0), 5);
  EXPECT_EQ(city->NodeAt(2, 4), 14);
  Point p = city->graph.node_point(city->NodeAt(1, 2));
  EXPECT_DOUBLE_EQ(p.x, 2.0);
  EXPECT_DOUBLE_EQ(p.y, 1.0);
}

TEST(CityGeneratorTest, DeterministicForSeed) {
  auto a = GenerateCity({.width = 8, .height = 8, .seed = 9});
  auto b = GenerateCity({.width = 8, .height = 8, .seed = 9});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Dijkstra da(&a->graph), db(&b->graph);
  da.Run(0);
  db.Run(0);
  for (NodeId v = 0; v < a->graph.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(da.DistanceTo(v), db.DistanceTo(v));
  }
}

TEST(CityGeneratorTest, CenterIsSlowerThanPeriphery) {
  auto city = GenerateCity({.width = 20, .height = 20, .jitter = 0.0,
                            .center_slowdown = 2.0, .arterial_every = 0,
                            .seed = 2});
  ASSERT_TRUE(city.ok());
  // Horizontal step at the center vs at the corner.
  NodeId center = city->NodeAt(10, 10);
  NodeId center_east = city->NodeAt(10, 11);
  NodeId corner = city->NodeAt(0, 0);
  NodeId corner_east = city->NodeAt(0, 1);
  double center_cost = ShortestPathCost(city->graph, center, center_east);
  double corner_cost = ShortestPathCost(city->graph, corner, corner_east);
  EXPECT_GT(center_cost, corner_cost * 1.2);
}

TEST(CityGeneratorTest, ArterialsAreFaster) {
  auto city = GenerateCity({.width = 17, .height = 17, .jitter = 0.0,
                            .center_slowdown = 1.0, .arterial_every = 8,
                            .arterial_factor = 0.5, .seed = 2});
  ASSERT_TRUE(city.ok());
  // Row 8 is arterial; row 4 is not. Columns 3-4 avoid arterial columns.
  double arterial = ShortestPathCost(city->graph, city->NodeAt(8, 3),
                                     city->NodeAt(8, 4));
  double local = ShortestPathCost(city->graph, city->NodeAt(4, 3),
                                  city->NodeAt(4, 4));
  EXPECT_LT(arterial, local * 0.6);
}

TEST(CityGeneratorTest, RejectsDegenerateOptions) {
  EXPECT_FALSE(GenerateCity({.width = 1, .height = 5}).ok());
  EXPECT_FALSE(GenerateCity({.width = 5, .height = 5,
                             .cell_seconds = 0.0}).ok());
  EXPECT_FALSE(GenerateCity({.width = 5, .height = 5, .jitter = 1.0}).ok());
}

TEST(CityGeneratorTest, RandomNodeInRange) {
  auto city = GenerateCity({.width = 6, .height = 6, .seed = 8});
  ASSERT_TRUE(city.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    NodeId v = city->RandomNode(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, city->graph.num_nodes());
  }
}

}  // namespace
}  // namespace watter
