// Chaos suite for deterministic fault injection (src/sim/fault_injector.h,
// docs/ROBUSTNESS.md).
//
// Three claims are pinned here. (1) The fault schedule is a pure function
// of (spec, fleet size, horizon): a fixed --faults spec yields bitwise
// identical metrics across thread counts and shard counts within each
// engine, exactly like the faultless determinism contract. (2) Recovery
// conserves orders: after any schedule of dropouts, late dropouts,
// brownouts and stalls, served + rejected + failed_services equals the
// number of generated orders, and no claim leaks out of a run. (3) An
// inert spec is invisible: runs with "" and with a seed-only spec are
// bitwise identical, which is the in-tree face of the faults-off
// reproduction guarantee the CLI baselines check across PRs.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/metrics.h"
#include "src/sim/fault_injector.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

// ---------------------------------------------------------------------------
// Spec grammar.

TEST(FaultInjectionTest, EmptySpecIsInert) {
  auto spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->any());
  EXPECT_FALSE(spec->has_dropouts());
  EXPECT_EQ(FaultSpecToString(*spec), "");
}

TEST(FaultInjectionTest, FullSpecRoundTripsThroughToString) {
  const std::string text =
      "dropouts=8;late_dropouts=2;downtime=600;grace=300;brownouts=3;"
      "brownout_len=90;brownout_factor=2;stalls=4;stall_ms=25;qcap=16;seed=42";
  auto spec = ParseFaultSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->dropouts, 8);
  EXPECT_EQ(spec->late_dropouts, 2);
  EXPECT_EQ(spec->downtime, 600.0);
  EXPECT_EQ(spec->grace, 300.0);
  EXPECT_EQ(spec->brownouts, 3);
  EXPECT_EQ(spec->brownout_len, 90.0);
  EXPECT_EQ(spec->brownout_factor, 2.0);
  EXPECT_EQ(spec->stalls, 4);
  EXPECT_EQ(spec->stall_ms, 25.0);
  EXPECT_EQ(spec->qcap, 16);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_TRUE(spec->any());
  auto reparsed = ParseFaultSpec(FaultSpecToString(*spec));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(FaultSpecToString(*reparsed), FaultSpecToString(*spec));
}

TEST(FaultInjectionTest, CommaSeparatorAndWhitespaceAccepted) {
  auto spec = ParseFaultSpec("dropouts=2, brownouts=1");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->dropouts, 2);
  EXPECT_EQ(spec->brownouts, 1);
}

TEST(FaultInjectionTest, MalformedSpecsAreInvalidArgument) {
  for (const char* bad : {"dropout=3",          // Unknown key.
                          "dropouts",           // Missing value.
                          "dropouts=abc",       // Not a number.
                          "dropouts=-1",        // Out of domain.
                          "brownout_factor=0",  // Must be positive.
                          "downtime=-5", "qcap=-2", "stall_ms=-1"}) {
    auto spec = ParseFaultSpec(bad);
    EXPECT_FALSE(spec.ok()) << "accepted: " << bad;
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule construction.

TEST(FaultInjectionTest, ScheduleIsAPureFunctionOfSpecAndShape) {
  auto spec = ParseFaultSpec("dropouts=6;late_dropouts=3;brownouts=2;stalls=2");
  ASSERT_TRUE(spec.ok());
  FaultInjector a(*spec, /*num_workers=*/50, /*horizon=*/7200.0);
  FaultInjector b(*spec, /*num_workers=*/50, /*horizon=*/7200.0);
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.late_events().size(), b.late_events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].worker, b.events()[i].worker);
  }
  // Events are time-sorted and consumed exactly once.
  for (size_t i = 1; i < a.events().size(); ++i) {
    EXPECT_LE(a.events()[i - 1].time, a.events()[i].time);
  }
  size_t taken = a.TakeDue(7200.0 * 2).size();
  EXPECT_EQ(taken, a.events().size());
  EXPECT_TRUE(a.TakeDue(7200.0 * 4).empty());
}

TEST(FaultInjectionTest, SeedChangesTheSchedule) {
  auto base = ParseFaultSpec("dropouts=6;seed=1");
  auto other = ParseFaultSpec("dropouts=6;seed=2");
  ASSERT_TRUE(base.ok() && other.ok());
  FaultInjector a(*base, 50, 7200.0);
  FaultInjector b(*other, 50, 7200.0);
  ASSERT_EQ(a.events().size(), b.events().size());
  bool differs = false;
  for (size_t i = 0; i < a.events().size() && !differs; ++i) {
    differs = a.events()[i].time != b.events()[i].time ||
              a.events()[i].worker != b.events()[i].worker;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectionTest, DegradedOracleIsTransparentAtFactorOne) {
  // Matches the faults-off identity argument: a factor-1.0 wrapper must
  // forward every answer untouched, including infinities.
  class FixedOracle : public TravelTimeOracle {
   public:
    double Cost(NodeId, NodeId to) override {
      return to == 0 ? kInfCost : 100.5;
    }
    void ManyToOne(std::span<const NodeId> sources, NodeId target,
                   std::span<double> out) override {
      for (size_t i = 0; i < sources.size(); ++i) out[i] = Cost(sources[i], target);
    }
    void OneToMany(NodeId source, std::span<const NodeId> targets,
                   std::span<double> out) override {
      for (size_t i = 0; i < targets.size(); ++i) out[i] = Cost(source, targets[i]);
    }
    void ManyToMany(std::span<const NodeId> sources,
                    std::span<const NodeId> targets,
                    std::span<double> out) override {
      for (size_t i = 0; i < sources.size(); ++i) {
        for (size_t j = 0; j < targets.size(); ++j) {
          out[i * targets.size() + j] = Cost(sources[i], targets[j]);
        }
      }
    }
    bool NativeBatch() const override { return false; }
  };
  FixedOracle inner;
  DegradedOracle wrapped(&inner);
  EXPECT_EQ(wrapped.Cost(1, 2), 100.5);
  wrapped.SetFactor(1.5);
  EXPECT_EQ(wrapped.Cost(1, 2), 100.5 * 1.5);
  EXPECT_EQ(wrapped.Cost(1, 0), kInfCost);  // Infinity stays infinity.
  std::vector<NodeId> targets = {2, 0};
  std::vector<double> out(2);
  wrapped.OneToMany(1, targets, out);
  EXPECT_EQ(out[0], 100.5 * 1.5);
  EXPECT_EQ(out[1], kInfCost);
  wrapped.SetFactor(1.0);
  EXPECT_EQ(wrapped.Cost(1, 2), 100.5);
}

// ---------------------------------------------------------------------------
// End-to-end chaos matrix.

struct RunOutcome {
  MetricsReport report;
  std::set<OrderId> served;
  std::set<OrderId> expired;
  int64_t leaked_claims = 0;
  int offline_left = 0;
  size_t generated = 0;
};

RunOutcome RunFaulted(uint64_t seed, const std::string& faults,
                      DispatchMode dispatch, int threads, int shards,
                      int64_t budget = 0, double hazard = 0.0) {
  WorkloadOptions workload;
  workload.dataset = DatasetKind::kCdc;
  workload.num_orders = 400;
  workload.num_workers = 40;
  workload.city_width = 16;
  workload.city_height = 16;
  workload.duration = 3600.0;
  workload.seed = seed;
  workload.faults = faults;
  workload.round_work_budget = budget;
  auto scenario = GenerateScenario(workload);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  if (!scenario.ok()) return {};
  OnlineThresholdProvider provider;
  SimOptions options;
  options.num_threads = threads;
  options.dispatch = dispatch;
  options.num_shards = shards;
  options.cancellation_hazard = hazard;
  WatterPlatform platform(&*scenario, &provider, options);
  RunOutcome outcome;
  outcome.generated = scenario->orders.size();
  platform.set_observer([&outcome](const DecisionObservation& obs) {
    if (obs.action == 1) {
      outcome.served.insert(obs.order);
    } else if (obs.expired) {
      outcome.expired.insert(obs.order);
    }
  });
  outcome.report = platform.Run();
  outcome.leaked_claims = platform.fleet().claimed_count();
  outcome.offline_left = platform.fleet().offline_count();
  return outcome;
}

// Every order reaches exactly one terminal state and no claim survives the
// run, no matter what the schedule did.
void ExpectConserved(const RunOutcome& outcome) {
  EXPECT_EQ(outcome.report.served + outcome.report.rejected +
                outcome.report.failed_services,
            static_cast<int64_t>(outcome.generated));
  EXPECT_LE(outcome.report.cancelled, outcome.report.rejected);
  EXPECT_EQ(outcome.leaked_claims, 0);
  EXPECT_GE(outcome.offline_left, 0);
  const FaultStats& faults = outcome.report.faults;
  EXPECT_LE(faults.returns, faults.dropouts + faults.late_dropouts);
  EXPECT_LE(faults.midroute_dropouts, faults.dropouts + faults.late_dropouts);
  EXPECT_EQ(outcome.report.failed_services, faults.failed_services);
}

// Bitwise equality on everything except wall-clock timings (the same
// exclusion as the faultless determinism suites), plus the fault counters.
void ExpectIdentical(const RunOutcome& reference, const RunOutcome& candidate,
                     const std::string& label) {
  SCOPED_TRACE(label);
  const MetricsReport& a = reference.report;
  const MetricsReport& b = candidate.report;
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.failed_services, b.failed_services);
  EXPECT_EQ(a.total_extra_time, b.total_extra_time);
  EXPECT_EQ(a.total_metrs_penalty, b.total_metrs_penalty);
  EXPECT_EQ(a.metrs_objective, b.metrs_objective);
  EXPECT_EQ(a.worker_travel, b.worker_travel);
  EXPECT_EQ(a.unified_cost, b.unified_cost);
  EXPECT_EQ(a.service_rate, b.service_rate);
  EXPECT_EQ(a.avg_extra, b.avg_extra);
  EXPECT_EQ(a.avg_response, b.avg_response);
  EXPECT_EQ(a.faults.dropouts, b.faults.dropouts);
  EXPECT_EQ(a.faults.midroute_dropouts, b.faults.midroute_dropouts);
  EXPECT_EQ(a.faults.late_dropouts, b.faults.late_dropouts);
  EXPECT_EQ(a.faults.returns, b.faults.returns);
  EXPECT_EQ(a.faults.brownout_rounds, b.faults.brownout_rounds);
  EXPECT_EQ(a.faults.recovered_orders, b.faults.recovered_orders);
  EXPECT_EQ(a.faults.failed_services, b.faults.failed_services);
  EXPECT_EQ(a.faults.aborted_commits, b.faults.aborted_commits);
  EXPECT_EQ(a.faults.shed_orders, b.faults.shed_orders);
  EXPECT_EQ(a.faults.degraded_rounds, b.faults.degraded_rounds);
  EXPECT_EQ(a.faults.work_units, b.faults.work_units);
  EXPECT_EQ(reference.served, candidate.served);
  EXPECT_EQ(reference.expired, candidate.expired);
}

// The canonical chaotic schedule: enough dropouts to hit mid-route trips,
// late dropouts to exercise the claim-failure paths, brownouts, stalls and
// a bounded queue, all at once.
constexpr char kChaosSpec[] =
    "dropouts=10;late_dropouts=4;downtime=400;brownouts=3;brownout_len=200;"
    "stalls=3;stall_ms=5;qcap=4";

class FaultChaosTest
    : public testing::TestWithParam<std::tuple<uint64_t, DispatchMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  DispatchMode dispatch() const { return std::get<1>(GetParam()); }
};

TEST_P(FaultChaosTest, ConservationHoldsUnderChaos) {
  std::string spec = std::string(kChaosSpec) + ";seed=" + std::to_string(seed());
  RunOutcome outcome = RunFaulted(seed(), spec, dispatch(), 2, 2);
  ASSERT_GT(outcome.generated, 0u);
  ExpectConserved(outcome);
  // The schedule actually fired: this workload keeps most workers busy, so
  // dropouts are applied rather than skipped.
  EXPECT_GT(outcome.report.faults.dropouts +
                outcome.report.faults.late_dropouts,
            0);
  EXPECT_GT(outcome.report.faults.brownout_rounds, 0);
}

TEST_P(FaultChaosTest, FaultedMetricsIdenticalAcrossThreadsAndShards) {
  std::string spec = std::string(kChaosSpec) + ";seed=11";
  RunOutcome reference = RunFaulted(seed(), spec, dispatch(), 1, 1);
  ASSERT_GT(reference.report.served, 0);
  ExpectConserved(reference);
  for (int shards : {1, 4}) {
    // The serial engine ignores the shard knob; one pass is enough.
    if (dispatch() == DispatchMode::kSerial && shards != 1) continue;
    for (int threads : {1, 8}) {
      if (threads == 1 && shards == 1) continue;
      RunOutcome candidate = RunFaulted(seed(), spec, dispatch(), threads, shards);
      ExpectIdentical(reference, candidate,
                      "threads=" + std::to_string(threads) +
                          " shards=" + std::to_string(shards));
      ExpectConserved(candidate);
    }
  }
}

TEST_P(FaultChaosTest, InertSpecIsBitwiseInvisible) {
  // A seed-only spec schedules nothing, so it must not construct any of the
  // fault machinery: the run is bitwise identical to a no-spec run. This is
  // the in-tree face of the "faults-off reproduces the previous PR" gate.
  RunOutcome off = RunFaulted(seed(), "", dispatch(), 2, 1);
  RunOutcome inert = RunFaulted(seed(), "seed=1234", dispatch(), 2, 1);
  ASSERT_GT(off.report.served, 0);
  ExpectIdentical(off, inert, "inert-spec");
  EXPECT_EQ(inert.report.faults.dropouts, 0);
  EXPECT_EQ(inert.report.faults.work_units, 0);
}

TEST_P(FaultChaosTest, CancellationHazardComposesWithFaults) {
  // Rider cancellations and fault recovery share the rejected/cancelled
  // accounting; conservation and determinism must survive both at once.
  std::string spec = "dropouts=6;late_dropouts=2;seed=5";
  RunOutcome reference =
      RunFaulted(seed(), spec, dispatch(), 1, 1, /*budget=*/0, /*hazard=*/0.01);
  ExpectConserved(reference);
  RunOutcome candidate =
      RunFaulted(seed(), spec, dispatch(), 8, 1, /*budget=*/0, /*hazard=*/0.01);
  ExpectIdentical(reference, candidate, "hazard+faults threads=8");
}

std::string CaseName(
    const testing::TestParamInfo<std::tuple<uint64_t, DispatchMode>>& info) {
  return (std::get<1>(info.param) == DispatchMode::kBatched ? "batched_s"
                                                            : "serial_s") +
         std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultChaosTest,
    testing::Combine(testing::Values(7, 990017),
                     testing::Values(DispatchMode::kSerial,
                                     DispatchMode::kBatched)),
    CaseName);

// ---------------------------------------------------------------------------
// Overload degradation.

class OverloadSheddingTest : public testing::TestWithParam<DispatchMode> {};

TEST_P(OverloadSheddingTest, TightBudgetShedsButConserves) {
  // A budget far below the per-round demand must shed propose work (the
  // counters prove it) while every order still reaches a terminal state —
  // shedding defers, it never drops.
  RunOutcome budgeted =
      RunFaulted(7, "", GetParam(), 2, 1, /*budget=*/40);
  ExpectConserved(budgeted);
  EXPECT_GT(budgeted.report.faults.shed_orders, 0);
  EXPECT_GT(budgeted.report.faults.degraded_rounds, 0);
  EXPECT_GT(budgeted.report.faults.work_units, 0);
  // Shedding delays dispatch, so quality may drop, but the platform must
  // still serve a meaningful share on this easy workload.
  EXPECT_GT(budgeted.report.served, 0);
}

TEST_P(OverloadSheddingTest, BudgetedRunsAreThreadAndShardInvariant) {
  // Work units are counted in scenario terms (probes + plans), never
  // wall-clock, so the shed set — and therefore every metric — is the same
  // at any parallelism.
  RunOutcome reference = RunFaulted(7, "", GetParam(), 1, 1, /*budget=*/60);
  ASSERT_GT(reference.report.faults.shed_orders, 0);
  for (int shards : {1, 4}) {
    if (GetParam() == DispatchMode::kSerial && shards != 1) continue;
    for (int threads : {1, 8}) {
      if (threads == 1 && shards == 1) continue;
      ExpectIdentical(reference,
                      RunFaulted(7, "", GetParam(), threads, shards,
                                 /*budget=*/60),
                      "budget threads=" + std::to_string(threads) +
                          " shards=" + std::to_string(shards));
    }
  }
}

TEST_P(OverloadSheddingTest, UnlimitedBudgetMatchesNoBudget) {
  // budget < 0 forces "unlimited" through the same code path the watchdog
  // uses; it must be bitwise identical to budgeting never existing.
  RunOutcome off = RunFaulted(7, "", GetParam(), 2, 1, /*budget=*/0);
  RunOutcome unlimited = RunFaulted(7, "", GetParam(), 2, 1, /*budget=*/-1);
  ExpectIdentical(off, unlimited, "unlimited-budget");
  EXPECT_EQ(unlimited.report.faults.shed_orders, 0);
}

INSTANTIATE_TEST_SUITE_P(Engines, OverloadSheddingTest,
                         testing::Values(DispatchMode::kSerial,
                                         DispatchMode::kBatched),
                         [](const testing::TestParamInfo<DispatchMode>& info) {
                           return info.param == DispatchMode::kBatched
                                      ? std::string("batched")
                                      : std::string("serial");
                         });

}  // namespace
}  // namespace watter
