#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/core/route_planner.h"
#include "src/geo/city_generator.h"
#include "src/geo/travel_time_oracle.h"
#include "tests/test_util.h"

namespace watter {
namespace {

using testutil::kA;
using testutil::kC;
using testutil::kD;
using testutil::kE;
using testutil::kF;

constexpr double kMin = 60.0;

class RoutePlannerExample1Test : public testing::Test {
 protected:
  RoutePlannerExample1Test()
      : graph_(testutil::MakeExample1Graph()),
        oracle_(&graph_),
        planner_(&oracle_),
        orders_(testutil::MakeExample1Orders()) {}

  Graph graph_;
  DijkstraOracle oracle_;
  RoutePlanner planner_;
  std::vector<Order> orders_;
};

TEST_F(RoutePlannerExample1Test, SingleOrderIsDirectRoute) {
  auto plan = planner_.PlanBest({&orders_[0]}, /*depart_time=*/10.0, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 2 * kMin);  // a -> c.
  ASSERT_EQ(plan->route.stops.size(), 2u);
  EXPECT_TRUE(plan->route.stops[0].is_pickup);
  EXPECT_FALSE(plan->route.stops[1].is_pickup);
  EXPECT_DOUBLE_EQ(plan->completion[0], 2 * kMin);
  EXPECT_DOUBLE_EQ(plan->latest_departure,
                   orders_[0].deadline - 2 * kMin);
}

TEST_F(RoutePlannerExample1Test, BestMatchForO1IsO3) {
  // Group {o1: a->c, o3: d->c} has optimal route d -> a -> c of 3 minutes.
  auto plan = planner_.PlanBest({&orders_[0], &orders_[2]}, 12.0, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 3 * kMin);
  ASSERT_EQ(plan->route.stops.size(), 4u);
  EXPECT_EQ(plan->route.stops[0].node, kD);
  EXPECT_EQ(plan->route.stops[1].node, kA);
  EXPECT_EQ(plan->route.stops[2].node, kC);
}

TEST_F(RoutePlannerExample1Test, BestMatchForO2IsO4) {
  // Group {o2: d->f, o4: e->f} has optimal route d -> e -> f of 2 minutes.
  auto plan = planner_.PlanBest({&orders_[1], &orders_[3]}, 12.0, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 2 * kMin);
  EXPECT_EQ(plan->route.stops[0].node, kD);
  EXPECT_EQ(plan->route.stops[1].node, kE);
  EXPECT_EQ(plan->route.stops[2].node, kF);
}

TEST_F(RoutePlannerExample1Test, PoolingBeatsAllOtherModesFromExample1) {
  // The headline of Example 1: optimal pooling achieves 3 + 2 = 5 minutes,
  // vs 7 (batch), 9 (online insertion) and 12 (non-sharing).
  auto g13 = planner_.PlanBest({&orders_[0], &orders_[2]}, 12.0, 4);
  auto g24 = planner_.PlanBest({&orders_[1], &orders_[3]}, 12.0, 4);
  ASSERT_TRUE(g13.ok());
  ASSERT_TRUE(g24.ok());
  EXPECT_DOUBLE_EQ(g13->total_cost + g24->total_cost, 5 * kMin);
}

TEST_F(RoutePlannerExample1Test, CompletionOffsetsMatchRouteLegs) {
  auto plan = planner_.PlanBest({&orders_[0], &orders_[2]}, 12.0, 4);
  ASSERT_TRUE(plan.ok());
  // Route d -> a -> c: o3 (index 1) completes at 3 min, o1 at 3 min too
  // (same drop node), but o1's completion is where its own drop stop sits.
  EXPECT_DOUBLE_EQ(plan->completion[1],
                   plan->route.CompletionOffset(orders_[2].id));
  EXPECT_DOUBLE_EQ(plan->completion[0],
                   plan->route.CompletionOffset(orders_[0].id));
}

TEST_F(RoutePlannerExample1Test, CapacityOneForcesInfeasibleSharing) {
  // With capacity 1 both riders can never be on board together; the only
  // routes are sequential. d->e->f requires both on board, so the best
  // feasible is d->f (drop o2) then ... o4 pickup e: d->f->e->f = 4 min.
  auto plan = planner_.PlanBest({&orders_[1], &orders_[3]}, 12.0, 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 4 * kMin);
}

TEST_F(RoutePlannerExample1Test, DeadlineMakesPlanInfeasible) {
  Order tight = orders_[0];
  tight.deadline = tight.release + 1.0;  // Cannot possibly arrive.
  auto plan = planner_.PlanBest({&tight}, tight.release, 4);
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible);
}

TEST_F(RoutePlannerExample1Test, DeadlineForcesWorseButFeasibleRoute) {
  // o2 (d->f) must arrive within 2 minutes of departure: the shared route
  // d->e->f serves it in exactly 2 min, so sharing stays feasible; but if
  // the limit is 1.9 min the pair becomes infeasible while o2 alone is too
  // (shortest d->f is 2 min).
  Order o2 = orders_[1];
  Order o4 = orders_[3];
  Time depart = 20.0;
  o2.deadline = depart + 2 * kMin;
  auto plan = planner_.PlanBest({&o2, &o4}, depart, 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->latest_departure, depart);
  o2.deadline = depart + 1.9 * kMin;
  EXPECT_FALSE(planner_.PlanBest({&o2, &o4}, depart, 4).ok());
  EXPECT_FALSE(planner_.PlanBest({&o2}, depart, 4).ok());
}

TEST_F(RoutePlannerExample1Test, PairShareableHelper) {
  EXPECT_TRUE(
      planner_.PairShareable(orders_[1], orders_[3], 12.0, 4));
  Order hopeless = orders_[1];
  hopeless.deadline = hopeless.release;  // Expired immediately.
  EXPECT_FALSE(planner_.PairShareable(hopeless, orders_[3], 12.0, 4));
}

TEST_F(RoutePlannerExample1Test, RejectsEmptyAndOversizedGroups) {
  EXPECT_EQ(planner_.PlanBest({}, 0.0, 4).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<const Order*> too_many(kMaxGroupSize + 1, &orders_[0]);
  EXPECT_EQ(planner_.PlanBest(too_many, 0.0, 4).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RoutePlannerExample1Test, SingleRiderOverCapacityInfeasible) {
  Order bus = orders_[0];
  bus.riders = 5;
  EXPECT_EQ(planner_.PlanBest({&bus}, 0.0, 4).status().code(),
            StatusCode::kInfeasible);
}

// ---------------------------------------------------------------------------
// Property test: the DP must match a brute-force enumeration of all valid
// stop interleavings on random instances.
// ---------------------------------------------------------------------------

double BruteForceBest(const std::vector<const Order*>& orders,
                      TravelTimeOracle* oracle, Time depart, int capacity) {
  const int k = static_cast<int>(orders.size());
  std::vector<int> stops(2 * k);  // i < k pickup, else dropoff of i - k.
  for (int i = 0; i < 2 * k; ++i) stops[i] = i;
  std::sort(stops.begin(), stops.end());
  double best = kInfCost;
  do {
    // Precedence check.
    std::vector<int> seen(k, 0);
    bool valid = true;
    int onboard = 0;
    for (int s : stops) {
      if (s < k) {
        seen[s] = 1;
        onboard += orders[s]->riders;
        if (onboard > capacity) valid = false;
      } else {
        if (!seen[s - k]) valid = false;
        onboard -= orders[s - k]->riders;
      }
      if (!valid) break;
    }
    if (!valid) continue;
    // Cost + deadline check.
    double cost = 0.0;
    bool feasible = true;
    for (int i = 1; i < 2 * k && feasible; ++i) {
      NodeId from = stops[i - 1] < k ? orders[stops[i - 1]]->pickup
                                     : orders[stops[i - 1] - k]->dropoff;
      NodeId to = stops[i] < k ? orders[stops[i]]->pickup
                               : orders[stops[i] - k]->dropoff;
      cost += oracle->Cost(from, to);
    }
    double along = 0.0;
    for (int i = 0; i < 2 * k && feasible; ++i) {
      if (i > 0) {
        NodeId from = stops[i - 1] < k ? orders[stops[i - 1]]->pickup
                                       : orders[stops[i - 1] - k]->dropoff;
        NodeId to = stops[i] < k ? orders[stops[i]]->pickup
                                 : orders[stops[i] - k]->dropoff;
        along += oracle->Cost(from, to);
      }
      if (stops[i] >= k &&
          depart + along > orders[stops[i] - k]->deadline) {
        feasible = false;
      }
    }
    if (feasible) best = std::min(best, cost);
  } while (std::next_permutation(stops.begin(), stops.end()));
  return best;
}

class PlannerVsBruteForceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PlannerVsBruteForceTest, DpMatchesBruteForce) {
  auto city = GenerateCity({.width = 10, .height = 10, .jitter = 0.3,
                            .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  DijkstraOracle oracle(&city->graph);
  RoutePlanner planner(&oracle);
  Rng rng(GetParam() * 1000 + 17);
  for (int trial = 0; trial < 15; ++trial) {
    int k = static_cast<int>(rng.UniformInt(1, 3));
    int capacity = static_cast<int>(rng.UniformInt(1, 4));
    Time depart = rng.Uniform(0, 100);
    std::vector<Order> orders(k);
    for (int i = 0; i < k; ++i) {
      orders[i].id = i + 1;
      orders[i].pickup = city->RandomNode(&rng);
      do {
        orders[i].dropoff = city->RandomNode(&rng);
      } while (orders[i].dropoff == orders[i].pickup);
      orders[i].riders = static_cast<int>(rng.UniformInt(1, 2));
      orders[i].shortest_cost =
          oracle.Cost(orders[i].pickup, orders[i].dropoff);
      orders[i].release = depart - rng.Uniform(0, 30);
      // Deadlines tight enough to sometimes bind.
      orders[i].deadline =
          depart + orders[i].shortest_cost * rng.Uniform(1.0, 2.2);
    }
    std::vector<const Order*> ptrs;
    for (const Order& o : orders) ptrs.push_back(&o);
    double brute = BruteForceBest(ptrs, &oracle, depart, capacity);
    auto plan = planner.PlanBest(ptrs, depart, capacity);
    if (brute == kInfCost) {
      EXPECT_FALSE(plan.ok()) << "trial " << trial;
    } else {
      ASSERT_TRUE(plan.ok()) << "trial " << trial << " expected " << brute;
      EXPECT_NEAR(plan->total_cost, brute, 1e-9) << "trial " << trial;
      // The returned route must itself be valid.
      EXPECT_TRUE(plan->route.SatisfiesPrecedenceAndCapacity(ptrs, capacity));
      // And every completion offset must respect its order's deadline.
      for (int i = 0; i < k; ++i) {
        EXPECT_LE(depart + plan->completion[i], orders[i].deadline + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerVsBruteForceTest,
                         testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace watter
