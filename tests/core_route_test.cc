#include <gtest/gtest.h>

#include "src/core/route.h"
#include "src/geo/travel_time_oracle.h"
#include "tests/test_util.h"

namespace watter {
namespace {

using testutil::kA;
using testutil::kC;
using testutil::kD;
using testutil::kF;

Order MakeOrder(OrderId id, NodeId pickup, NodeId dropoff, int riders = 1) {
  Order order;
  order.id = id;
  order.pickup = pickup;
  order.dropoff = dropoff;
  order.riders = riders;
  return order;
}

TEST(RouteTest, TotalAndCompletionOffsets) {
  Route route;
  route.stops = {{kA, 1, true}, {kD, 2, true}, {kC, 1, false},
                 {kF, 2, false}};
  route.offsets = {0.0, 60.0, 240.0, 300.0};
  EXPECT_DOUBLE_EQ(route.TotalCost(), 300.0);
  EXPECT_DOUBLE_EQ(route.CompletionOffset(1), 240.0);
  EXPECT_DOUBLE_EQ(route.CompletionOffset(2), 300.0);
  EXPECT_EQ(route.CompletionOffset(99), kInfCost);
}

TEST(RouteTest, EmptyRouteCostsZero) {
  Route route;
  EXPECT_DOUBLE_EQ(route.TotalCost(), 0.0);
}

TEST(RouteTest, PrecedenceAcceptsValidInterleaving) {
  Order o1 = MakeOrder(1, kA, kC);
  Order o2 = MakeOrder(2, kD, kF);
  Route route;
  route.stops = {{kA, 1, true}, {kD, 2, true}, {kC, 1, false},
                 {kF, 2, false}};
  EXPECT_TRUE(route.SatisfiesPrecedenceAndCapacity({&o1, &o2}, 2));
}

TEST(RouteTest, PrecedenceRejectsDropBeforePickup) {
  Order o1 = MakeOrder(1, kA, kC);
  Route route;
  route.stops = {{kC, 1, false}, {kA, 1, true}};
  EXPECT_FALSE(route.SatisfiesPrecedenceAndCapacity({&o1}, 4));
}

TEST(RouteTest, PrecedenceRejectsMissingDropoff) {
  Order o1 = MakeOrder(1, kA, kC);
  Route route;
  route.stops = {{kA, 1, true}};
  EXPECT_FALSE(route.SatisfiesPrecedenceAndCapacity({&o1}, 4));
}

TEST(RouteTest, PrecedenceRejectsUnknownOrder) {
  Order o1 = MakeOrder(1, kA, kC);
  Route route;
  route.stops = {{kA, 7, true}, {kC, 7, false}};
  EXPECT_FALSE(route.SatisfiesPrecedenceAndCapacity({&o1}, 4));
}

TEST(RouteTest, CapacityEnforcedAtPeakLoad) {
  Order o1 = MakeOrder(1, kA, kC, 2);
  Order o2 = MakeOrder(2, kD, kF, 2);
  Route both_onboard;
  both_onboard.stops = {{kA, 1, true}, {kD, 2, true}, {kC, 1, false},
                        {kF, 2, false}};
  EXPECT_FALSE(both_onboard.SatisfiesPrecedenceAndCapacity({&o1, &o2}, 3));
  EXPECT_TRUE(both_onboard.SatisfiesPrecedenceAndCapacity({&o1, &o2}, 4));
  // Sequential service never has both on board.
  Route sequential;
  sequential.stops = {{kA, 1, true}, {kC, 1, false}, {kD, 2, true},
                      {kF, 2, false}};
  EXPECT_TRUE(sequential.SatisfiesPrecedenceAndCapacity({&o1, &o2}, 2));
}

TEST(RouteTest, RecomputeOffsetsUsesOracle) {
  Graph g = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&g);
  Route route;
  route.stops = {{kD, 3, true}, {kA, 1, true}, {kC, 3, false},
                 {kC, 1, false}};
  double total = RecomputeOffsets(&route, &oracle);
  // d->a = 60, a->c = 120, c->c = 0.
  EXPECT_DOUBLE_EQ(total, 180.0);
  EXPECT_DOUBLE_EQ(route.offsets[0], 0.0);
  EXPECT_DOUBLE_EQ(route.offsets[1], 60.0);
  EXPECT_DOUBLE_EQ(route.offsets[2], 180.0);
  EXPECT_DOUBLE_EQ(route.offsets[3], 180.0);
}

TEST(RouteTest, ToStringMentionsStops) {
  Route route;
  route.stops = {{kA, 1, true}, {kC, 1, false}};
  std::string rendered = route.ToString();
  EXPECT_NE(rendered.find("p1"), std::string::npos);
  EXPECT_NE(rendered.find("d1"), std::string::npos);
}

}  // namespace
}  // namespace watter
