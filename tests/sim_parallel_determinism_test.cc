// Determinism regression harness for the parallel platform.
//
// The paper's metrics must be a pure function of the scenario, never of the
// machine: the platform's parallel check loop and pool maintenance promise
// bitwise-identical results for any thread count (thread_pool.h, determinism
// contract). This suite runs the same scenario at 1, 2 and 8 threads across
// several RNG seeds and asserts the metric reports and the exact
// served/expired order sets match the 1-thread reference bit for bit.
// Wall-clock fields (algorithm_seconds, running_time_per_order) are the one
// intentional exclusion.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/metrics.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

struct RunOutcome {
  MetricsReport report;
  std::set<OrderId> served;
  std::set<OrderId> expired;
};

WorkloadOptions DeterminismWorkload(uint64_t seed) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 500;
  options.num_workers = 50;
  options.city_width = 16;
  options.city_height = 16;
  options.duration = 3600.0;
  options.seed = seed;
  return options;
}

RunOutcome RunWithThreads(uint64_t seed, int num_threads,
                          double cancellation_hazard) {
  auto scenario = GenerateScenario(DeterminismWorkload(seed));
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  if (!scenario.ok()) return {};
  OnlineThresholdProvider provider;
  SimOptions options;
  options.num_threads = num_threads;
  options.cancellation_hazard = cancellation_hazard;
  WatterPlatform platform(&*scenario, &provider, options);
  RunOutcome outcome;
  platform.set_observer([&outcome](const DecisionObservation& obs) {
    if (obs.action == 1) {
      outcome.served.insert(obs.order);
    } else if (obs.expired) {
      outcome.expired.insert(obs.order);
    }
  });
  outcome.report = platform.Run();
  return outcome;
}

// Bitwise equality on everything except wall-clock timings.
void ExpectIdentical(const RunOutcome& reference, const RunOutcome& candidate,
                     int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  const MetricsReport& a = reference.report;
  const MetricsReport& b = candidate.report;
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.total_extra_time, b.total_extra_time);
  EXPECT_EQ(a.total_metrs_penalty, b.total_metrs_penalty);
  EXPECT_EQ(a.metrs_objective, b.metrs_objective);
  EXPECT_EQ(a.worker_travel, b.worker_travel);
  EXPECT_EQ(a.unified_cost, b.unified_cost);
  EXPECT_EQ(a.service_rate, b.service_rate);
  EXPECT_EQ(a.avg_extra, b.avg_extra);
  EXPECT_EQ(a.avg_response, b.avg_response);
  EXPECT_EQ(a.avg_detour, b.avg_detour);
  EXPECT_EQ(a.avg_group_size, b.avg_group_size);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  EXPECT_EQ(reference.served, candidate.served);
  EXPECT_EQ(reference.expired, candidate.expired);
}

class ParallelDeterminismTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminismTest, MetricsIdenticalAcrossThreadCounts) {
  RunOutcome reference = RunWithThreads(GetParam(), 1, 0.0);
  // A nontrivial run, or the comparison proves nothing.
  ASSERT_GT(reference.report.served, 0);
  ASSERT_FALSE(reference.served.empty());
  for (int threads : {2, 8}) {
    ExpectIdentical(reference, RunWithThreads(GetParam(), threads, 0.0),
                    threads);
  }
}

TEST_P(ParallelDeterminismTest, CancellationRandomnessIsThreadInvariant) {
  // Rider impatience draws from the platform RNG; the draws happen in the
  // serial decision phase, so the sequence must not depend on thread count.
  RunOutcome reference = RunWithThreads(GetParam(), 1, 0.01);
  ASSERT_GT(reference.report.served, 0);
  for (int threads : {2, 8}) {
    ExpectIdentical(reference, RunWithThreads(GetParam(), threads, 0.01),
                    threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         testing::Values(7, 1234, 990017));

}  // namespace
}  // namespace watter
