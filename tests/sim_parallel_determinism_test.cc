// Determinism regression harness for the parallel platform.
//
// The paper's metrics must be a pure function of the scenario, never of the
// machine: the platform's parallel check loop and pool maintenance promise
// bitwise-identical results for any thread count (thread_pool.h, determinism
// contract). This suite runs the same scenario at 1, 2 and 8 threads across
// several RNG seeds — in BOTH dispatch engines (serial loop and the batched
// sorted-offers engine, docs/DISPATCH.md) — and asserts the metric reports
// and the exact served/expired order sets match the 1-thread reference bit
// for bit within each engine. Wall-clock fields (algorithm_seconds,
// running_time_per_order) are the one intentional exclusion. The two
// engines intentionally differ from each other (globally-ranked vs chained
// commit order); no cross-engine equality is asserted.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/metrics.h"
#include "src/obs/histogram_registry.h"
#include "src/obs/trace.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

struct RunOutcome {
  MetricsReport report;
  std::set<OrderId> served;
  std::set<OrderId> expired;
};

WorkloadOptions DeterminismWorkload(uint64_t seed) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 500;
  options.num_workers = 50;
  options.city_width = 16;
  options.city_height = 16;
  options.duration = 3600.0;
  options.seed = seed;
  return options;
}

RunOutcome RunWithThreads(uint64_t seed, int num_threads,
                          double cancellation_hazard, DispatchMode dispatch,
                          int num_shards = 1,
                          OracleKind oracle = OracleKind::kMatrix,
                          GeoBackend geo = GeoBackend::kBucket,
                          bool traced = false) {
  WorkloadOptions workload = DeterminismWorkload(seed);
  workload.oracle = oracle;
  workload.geo = geo;
  auto scenario = GenerateScenario(workload);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  if (!scenario.ok()) return {};
  OnlineThresholdProvider provider;
  SimOptions options;
  options.num_threads = num_threads;
  options.cancellation_hazard = cancellation_hazard;
  options.dispatch = dispatch;
  options.num_shards = num_shards;
  std::string trace_path, timeline_path;
  if (traced) {
    trace_path = ::testing::TempDir() + "/determinism_trace.json";
    timeline_path = ::testing::TempDir() + "/determinism_timeline.json";
    options.trace_path = trace_path;
    options.timeline_path = timeline_path;
  }
  WatterPlatform platform(&*scenario, &provider, options);
  RunOutcome outcome;
  platform.set_observer([&outcome](const DecisionObservation& obs) {
    if (obs.action == 1) {
      outcome.served.insert(obs.order);
    } else if (obs.expired) {
      outcome.expired.insert(obs.order);
    }
  });
  outcome.report = platform.Run();
  if (traced) {
    // A traced Run() leaves the process-global sinks armed (they accumulate
    // by design); disarm and drop them so later runs in this binary really
    // are trace-off, and so buffers do not grow across the matrix.
    obs::TraceRecorder::Global().Disable();
    obs::TraceRecorder::Global().Clear();
    obs::HistogramRegistry::Global().Disable();
    obs::HistogramRegistry::Global().Clear();
    std::remove(trace_path.c_str());
    std::remove(timeline_path.c_str());
  }
  return outcome;
}

// Bitwise equality on everything except wall-clock timings.
void ExpectIdentical(const RunOutcome& reference, const RunOutcome& candidate,
                     int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  const MetricsReport& a = reference.report;
  const MetricsReport& b = candidate.report;
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.total_extra_time, b.total_extra_time);
  EXPECT_EQ(a.total_metrs_penalty, b.total_metrs_penalty);
  EXPECT_EQ(a.metrs_objective, b.metrs_objective);
  EXPECT_EQ(a.worker_travel, b.worker_travel);
  EXPECT_EQ(a.unified_cost, b.unified_cost);
  EXPECT_EQ(a.service_rate, b.service_rate);
  EXPECT_EQ(a.avg_extra, b.avg_extra);
  EXPECT_EQ(a.avg_response, b.avg_response);
  EXPECT_EQ(a.avg_detour, b.avg_detour);
  EXPECT_EQ(a.avg_group_size, b.avg_group_size);
  EXPECT_EQ(a.fleet_utilization, b.fleet_utilization);
  // Batched-engine offer/outcome totals are deterministic across both
  // threads and shards (the sharded reconciliation is bitwise-equal to the
  // global scan). Border splits are excluded here: they describe the shard
  // layout itself and legitimately differ across shard counts.
  EXPECT_EQ(a.dispatch.offers, b.dispatch.offers);
  EXPECT_EQ(a.dispatch.committed, b.dispatch.committed);
  EXPECT_EQ(a.dispatch.worker_conflicts, b.dispatch.worker_conflicts);
  EXPECT_EQ(a.dispatch.order_conflicts, b.dispatch.order_conflicts);
  EXPECT_EQ(reference.served, candidate.served);
  EXPECT_EQ(reference.expired, candidate.expired);
}

// Parameterized over (seed, dispatch engine): each engine must be a pure
// function of the scenario at every thread count.
class ParallelDeterminismTest
    : public testing::TestWithParam<std::tuple<uint64_t, DispatchMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  DispatchMode dispatch() const { return std::get<1>(GetParam()); }
};

TEST_P(ParallelDeterminismTest, MetricsIdenticalAcrossThreadCounts) {
  RunOutcome reference = RunWithThreads(seed(), 1, 0.0, dispatch());
  // A nontrivial run, or the comparison proves nothing.
  ASSERT_GT(reference.report.served, 0);
  ASSERT_FALSE(reference.served.empty());
  for (int threads : {2, 8}) {
    ExpectIdentical(reference,
                    RunWithThreads(seed(), threads, 0.0, dispatch()),
                    threads);
  }
}

TEST_P(ParallelDeterminismTest, CancellationRandomnessIsThreadInvariant) {
  // Rider impatience draws from the platform RNG; the draws happen in the
  // serial phase of either engine (the decision loop, or the batched
  // post-commit sweep), so the sequence must not depend on thread count.
  RunOutcome reference = RunWithThreads(seed(), 1, 0.01, dispatch());
  ASSERT_GT(reference.report.served, 0);
  for (int threads : {2, 8}) {
    ExpectIdentical(reference,
                    RunWithThreads(seed(), threads, 0.01, dispatch()),
                    threads);
  }
}

std::string CaseName(
    const testing::TestParamInfo<std::tuple<uint64_t, DispatchMode>>& info) {
  return (std::get<1>(info.param) == DispatchMode::kBatched ? "batched_s"
                                                            : "serial_s") +
         std::to_string(std::get<0>(info.param));
}

// Geo-backend axis: with a CH-backed city, the per-query and bucket-CH
// backends must produce bit-identical simulations — same metrics, same
// served/expired sets — in both engines at every thread count. This is the
// end-to-end face of the oracle-equivalence suite's bitwise claim: because
// every batch slot equals its Cost() twin to the last ulp, swapping the
// backend may only move runtime, never a decision. The geo counters in
// MetricsReport::geo are excluded like wall-clock (the backends intentionally
// issue different query counts, and the racy diagnostic increments are not
// thread-invariant).
class GeoBackendDeterminismTest
    : public testing::TestWithParam<std::tuple<uint64_t, DispatchMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  DispatchMode dispatch() const { return std::get<1>(GetParam()); }
};

TEST_P(GeoBackendDeterminismTest, BucketAndPerQueryBackendsAgreeBitwise) {
  RunOutcome reference = RunWithThreads(seed(), 1, 0.0, dispatch(), 1,
                                        OracleKind::kCh,
                                        GeoBackend::kPerQuery);
  ASSERT_GT(reference.report.served, 0);
  ASSERT_FALSE(reference.served.empty());
  for (int threads : {2, 8}) {
    ExpectIdentical(reference,
                    RunWithThreads(seed(), threads, 0.0, dispatch(), 1,
                                   OracleKind::kCh, GeoBackend::kPerQuery),
                    threads);
  }
  for (int threads : {1, 2, 8}) {
    ExpectIdentical(reference,
                    RunWithThreads(seed(), threads, 0.0, dispatch(), 1,
                                   OracleKind::kCh, GeoBackend::kBucket),
                    threads);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GeoBackendDeterminismTest,
    testing::Combine(testing::Values(7, 990017),
                     testing::Values(DispatchMode::kSerial,
                                     DispatchMode::kBatched)),
    CaseName);

TEST(BatchedDispatchTest, EveryOrderAccountedAndComparableToSerial) {
  // Sanity on the engine itself (beyond thread invariance): all orders are
  // served or rejected exactly once, and the batched engine stays in the
  // same quality regime as the serial loop on a nontrivial workload.
  RunOutcome serial = RunWithThreads(7, 2, 0.0, DispatchMode::kSerial);
  RunOutcome batched = RunWithThreads(7, 2, 0.0, DispatchMode::kBatched);
  EXPECT_EQ(batched.report.served + batched.report.rejected,
            serial.report.served + serial.report.rejected);
  ASSERT_GT(batched.report.served, 0);
  EXPECT_GT(batched.report.service_rate,
            0.8 * serial.report.service_rate);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ParallelDeterminismTest,
    testing::Combine(testing::Values(7, 1234, 990017),
                     testing::Values(DispatchMode::kSerial,
                                     DispatchMode::kBatched)),
    CaseName);

// Shard axis: the region-sharded, pipelined commit pass must be invisible
// in the results. The unsharded 1-thread run is the reference; every
// (shards, threads) combination must match it bit for bit — metrics,
// served/expired sets, and the deterministic dispatch counters — in both
// engines (kSerial ignores the knob; asserting that guards against the
// shard plumbing leaking into the serial path). The ResolveOffersSharded
// equality proof (decision.h) is what this exercises end to end, plus the
// pipelined bookkeeping's FIFO accumulation order.
class ShardedDeterminismTest
    : public testing::TestWithParam<std::tuple<uint64_t, DispatchMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  DispatchMode dispatch() const { return std::get<1>(GetParam()); }

  void ExpectMatrixIdentical(double cancellation_hazard) {
    RunOutcome reference =
        RunWithThreads(seed(), 1, cancellation_hazard, dispatch(), 1);
    ASSERT_GT(reference.report.served, 0);
    ASSERT_FALSE(reference.served.empty());
    for (int shards : {2, 4, 16}) {
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        ExpectIdentical(reference,
                        RunWithThreads(seed(), threads, cancellation_hazard,
                                       dispatch(), shards),
                        threads);
      }
    }
  }
};

TEST_P(ShardedDeterminismTest, MetricsIdenticalAcrossShardCounts) {
  ExpectMatrixIdentical(0.0);
}

TEST_P(ShardedDeterminismTest, CancellationRandomnessIsShardInvariant) {
  // The hazard draws happen in the serial post-sweep, whose RNG sequence
  // must not depend on the shard count (the pool holds the same survivors
  // in the same order because the committed sets are bitwise equal).
  ExpectMatrixIdentical(0.01);
}

TEST(ShardedDispatchStatsTest, BorderWorkIsObservedAndBounded) {
  // The classification counters must actually partition the offer stream:
  // interior + border + affected = offers, with some work in each class on
  // a dense workload (16 regions over a 16x16 grid guarantees straddling
  // groups). This is the one place border splits are asserted — the
  // determinism comparisons above deliberately exclude them.
  RunOutcome sharded = RunWithThreads(7, 8, 0.0, DispatchMode::kBatched, 16);
  const DispatchStats& stats = sharded.report.dispatch;
  ASSERT_GT(stats.offers, 0);
  EXPECT_GT(stats.border_offers, 0);
  EXPECT_LE(stats.border_offers + stats.border_affected, stats.offers);
  RunOutcome unsharded = RunWithThreads(7, 8, 0.0, DispatchMode::kBatched, 1);
  EXPECT_EQ(unsharded.report.dispatch.border_offers, 0);
  EXPECT_EQ(unsharded.report.dispatch.border_affected, 0);
  EXPECT_EQ(unsharded.report.dispatch.offers, stats.offers);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ShardedDeterminismTest,
    testing::Combine(testing::Values(7, 1234, 990017),
                     testing::Values(DispatchMode::kSerial,
                                     DispatchMode::kBatched)),
    CaseName);

// Trace axis: arming the observability taps (trace + timeline + histograms)
// must be invisible in the results — the "on never perturbs" half of the
// overhead contract (src/obs/trace.h, docs/OBSERVABILITY.md). The untraced
// 1-thread unsharded run is the reference; traced runs must match it bit
// for bit across thread counts and shard counts in both engines. The traced
// runs also prove the export path is safe to run concurrently with worker
// pools (the span buffers merge under TSan in CI's filtered job).
class TraceDeterminismTest
    : public testing::TestWithParam<std::tuple<uint64_t, DispatchMode>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  DispatchMode dispatch() const { return std::get<1>(GetParam()); }
};

TEST_P(TraceDeterminismTest, TracedRunsMatchUntracedBitwise) {
  RunOutcome reference = RunWithThreads(seed(), 1, 0.0, dispatch(), 1);
  ASSERT_GT(reference.report.served, 0);
  ASSERT_FALSE(reference.served.empty());
  for (int shards : {1, 4}) {
    // The serial engine ignores the shard knob; one pass is enough.
    if (dispatch() == DispatchMode::kSerial && shards != 1) continue;
    for (int threads : {1, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " traced");
      ExpectIdentical(reference,
                      RunWithThreads(seed(), threads, 0.0, dispatch(),
                                     shards, OracleKind::kMatrix,
                                     GeoBackend::kBucket, /*traced=*/true),
                      threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TraceDeterminismTest,
    testing::Combine(testing::Values(7, 990017),
                     testing::Values(DispatchMode::kSerial,
                                     DispatchMode::kBatched)),
    CaseName);

}  // namespace
}  // namespace watter
