// Paper-scale smoke test: n = 30k orders / m = 3k workers, the lower end of
// the paper's Table III ranges (the seed repo ran 4k/400).
//
// Budget gate: this case takes minutes, so it self-skips unless
// WATTER_RUN_LARGE is set, and its ctest registration carries the `large`
// label (see tests/CMakeLists.txt). Tier-1 runs stay fast; CI runs it in
// the Release job only via `WATTER_RUN_LARGE=1 ctest -L large`.
//
// Set WATTER_PERF_ASSERT additionally to also assert the >= 2x epoch-loop
// speedup at 4 threads — meaningful only on a machine with >= 4 cores, so
// it is a separate opt-in rather than part of the smoke run.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "src/obs/timeline.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions PaperScaleWorkload() {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 30000;
  options.num_workers = 3000;
  options.city_width = 32;
  options.city_height = 32;
  options.duration = 4.0 * 3600.0;
  options.seed = 20240301;
  return options;
}

MetricsReport RunAt(const WorkloadOptions& workload, int num_threads,
                    ThresholdProvider* provider) {
  // Re-generate per run: the platform consumes a scenario's mutable oracle
  // caches, and sharing one Scenario across runs would entangle timings.
  auto scenario = GenerateScenario(workload);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  if (!scenario.ok()) return {};
  SimOptions options;
  options.num_threads = num_threads;
  return RunWatter(&*scenario, provider, options);
}

TEST(PaperScaleTest, ThirtyThousandOrdersEndToEnd) {
  if (std::getenv("WATTER_RUN_LARGE") == nullptr) {
    GTEST_SKIP() << "paper-scale run skipped; set WATTER_RUN_LARGE=1 "
                    "(registered under the `large` ctest label)";
  }
  WorkloadOptions workload = PaperScaleWorkload();
  {
    auto scenario = GenerateScenario(workload);
    ASSERT_TRUE(scenario.ok());
    ASSERT_EQ(scenario->orders.size(), 30000u);
    ASSERT_EQ(scenario->workers.size(), 3000u);
  }

  OnlineThresholdProvider online;
  MetricsReport parallel;
  {
    // Run with the per-round timeline armed (docs/OBSERVABILITY.md): the
    // sampling path is run-neutral, so this is the same smoke run — plus
    // assertions that the observability story holds at paper scale.
    auto scenario = GenerateScenario(workload);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    SimOptions options;
    options.num_threads = 4;
    options.timeline_path =
        ::testing::TempDir() + "/paper_scale_timeline.json";
    WatterPlatform platform(&*scenario, &online, options);
    parallel = platform.Run();

    const obs::TimelineSampler* timeline = platform.timeline();
    ASSERT_NE(timeline, nullptr);
    const auto& samples = timeline->samples();
    // One check round per period over the 4h arrival window, plus the drain
    // tail after the last arrival.
    EXPECT_GE(static_cast<double>(samples.size()),
              workload.duration / options.check_period);
    int64_t peak_pool = 0;
    for (const auto& sample : samples) {
      if (sample.pool_size > peak_pool) peak_pool = sample.pool_size;
    }
    EXPECT_GT(peak_pool, 0);  // Orders actually waited in the pool...
    EXPECT_EQ(samples.back().pool_size, 0);  // ...and the pool drained.
    std::remove(options.timeline_path.c_str());
  }
  EXPECT_EQ(parallel.served + parallel.rejected, 30000);
  EXPECT_GT(parallel.served, 0);
  EXPECT_GT(parallel.service_rate, 0.2);
  EXPECT_GT(parallel.avg_group_size, 1.0);  // Pooling actually happens.

  if (std::getenv("WATTER_PERF_ASSERT") != nullptr) {
    // The speedup measurement uses the timeout strategy: it holds orders
    // for their full watching window, so the pool — and with it the
    // parallelized maintenance + best-group recomputation — dominates the
    // epoch loop (the online strategy's pool is too small to show scaling).
    TimeoutThresholdProvider timeout;
    MetricsReport par = RunAt(workload, 4, &timeout);
    MetricsReport ser = RunAt(workload, 1, &timeout);
    EXPECT_EQ(ser.served, par.served);  // Determinism at scale, for free.
    // Decision-loop wall time only (scenario generation excluded).
    EXPECT_GE(ser.algorithm_seconds / par.algorithm_seconds, 2.0)
        << "serial=" << ser.algorithm_seconds
        << "s parallel(4)=" << par.algorithm_seconds << "s";
  }
}

}  // namespace
}  // namespace watter
