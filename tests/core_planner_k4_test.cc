// k = 4 exactness check for the dial-a-ride DP: brute force enumerates all
// 8! stop permutations (precedence-filtered) per instance, so this lives in
// its own binary with few, carefully seeded trials.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/core/route_planner.h"
#include "src/geo/city_generator.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {
namespace {

struct BruteResult {
  double cost = kInfCost;
};

BruteResult BruteForce(const std::vector<const Order*>& orders,
                       TravelTimeOracle* oracle, Time depart, int capacity) {
  const int k = static_cast<int>(orders.size());
  std::vector<int> stops(2 * k);
  for (int i = 0; i < 2 * k; ++i) stops[i] = i;
  BruteResult best;
  do {
    bool valid = true;
    int onboard = 0;
    std::vector<bool> picked(k, false);
    double along = 0.0;
    NodeId prev = kInvalidNode;
    for (int s = 0; s < 2 * k && valid; ++s) {
      int stop = stops[s];
      NodeId node;
      if (stop < k) {
        picked[stop] = true;
        onboard += orders[stop]->riders;
        if (onboard > capacity) valid = false;
        node = orders[stop]->pickup;
      } else {
        if (!picked[stop - k]) valid = false;
        onboard -= orders[stop - k]->riders;
        node = orders[stop - k]->dropoff;
      }
      if (!valid) break;
      if (prev != kInvalidNode) along += oracle->Cost(prev, node);
      prev = node;
      if (stop >= k && depart + along > orders[stop - k]->deadline) {
        valid = false;
      }
    }
    if (valid) best.cost = std::min(best.cost, along);
  } while (std::next_permutation(stops.begin(), stops.end()));
  return best;
}

TEST(PlannerK4Test, MatchesBruteForceAtFourOrders) {
  auto city = GenerateCity({.width = 10, .height = 10, .jitter = 0.25,
                            .seed = 77});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());
  RoutePlanner planner(oracle->get());
  Rng rng(177);
  for (int trial = 0; trial < 6; ++trial) {
    Time depart = rng.Uniform(0, 50);
    int capacity = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<Order> orders(4);
    for (int i = 0; i < 4; ++i) {
      orders[i].id = i + 1;
      orders[i].pickup = city->RandomNode(&rng);
      do {
        orders[i].dropoff = city->RandomNode(&rng);
      } while (orders[i].dropoff == orders[i].pickup);
      orders[i].riders = static_cast<int>(rng.UniformInt(1, 2));
      orders[i].shortest_cost =
          (*oracle)->Cost(orders[i].pickup, orders[i].dropoff);
      orders[i].release = depart - rng.Uniform(0, 30);
      orders[i].deadline =
          depart + orders[i].shortest_cost * rng.Uniform(1.4, 3.0);
    }
    std::vector<const Order*> ptrs;
    for (const Order& o : orders) ptrs.push_back(&o);
    BruteResult brute = BruteForce(ptrs, oracle->get(), depart, capacity);
    auto plan = planner.PlanBest(ptrs, depart, capacity);
    if (brute.cost == kInfCost) {
      EXPECT_FALSE(plan.ok()) << "trial " << trial;
    } else {
      ASSERT_TRUE(plan.ok()) << "trial " << trial;
      EXPECT_NEAR(plan->total_cost, brute.cost, 1e-6) << "trial " << trial;
    }
  }
}

TEST(PlannerK4Test, FiveIdenticalOrdersPoolPerfectly) {
  auto city = GenerateCity({.width = 8, .height = 8, .seed = 3});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());
  RoutePlanner planner(oracle->get());
  std::vector<Order> orders(5);
  double shortest = (*oracle)->Cost(3, 60);
  ASSERT_GT(shortest, 0);
  for (int i = 0; i < 5; ++i) {
    orders[i] = {.id = i + 1, .pickup = 3, .dropoff = 60, .riders = 1,
                 .release = 0, .deadline = 10 * shortest, .wait_limit = 100,
                 .shortest_cost = shortest};
  }
  std::vector<const Order*> ptrs;
  for (const Order& o : orders) ptrs.push_back(&o);
  auto plan = planner.PlanBest(ptrs, 0.0, 5);
  ASSERT_TRUE(plan.ok());
  // One shared ride: cost equals the single direct trip.
  EXPECT_NEAR(plan->total_cost, shortest, 1e-6);
  for (double completion : plan->completion) {
    EXPECT_NEAR(completion, shortest, 1e-6);
  }
}

}  // namespace
}  // namespace watter
