#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/gmm.h"
#include "src/stats/threshold_optimizer.h"

namespace watter {
namespace {

// For a Uniform(0, 1) CDF and penalty p >= 1:
//   G(theta) = (p - theta) * theta  on [0, 1], maximized at theta = p/2
//   when p/2 <= 1, else at theta = 1.
double UniformCdf(double x) {
  if (x < 0) return 0;
  if (x > 1) return 1;
  return x;
}

TEST(ThresholdOptimizerTest, ClosedFormUniformCase) {
  // p = 1: argmax (1 - t) * t = 0.5.
  EXPECT_NEAR(OptimalThreshold(1.0, UniformCdf), 0.5, 1e-6);
  // p = 0.8: argmax (0.8 - t) * t = 0.4.
  EXPECT_NEAR(OptimalThreshold(0.8, UniformCdf), 0.4, 1e-6);
  // p = 4: on [0,1] G = (4 - t) t rises until t=1; beyond 1 G = (4 - t)
  // decreases. Max at t = 1.
  EXPECT_NEAR(OptimalThreshold(4.0, UniformCdf), 1.0, 1e-6);
}

TEST(ThresholdOptimizerTest, ZeroOrNegativePenaltyGivesZero) {
  EXPECT_DOUBLE_EQ(OptimalThreshold(0.0, UniformCdf), 0.0);
  EXPECT_DOUBLE_EQ(OptimalThreshold(-5.0, UniformCdf), 0.0);
}

TEST(ThresholdOptimizerTest, ReducedObjectiveValue) {
  EXPECT_DOUBLE_EQ(ReducedObjective(1.0, 0.5, UniformCdf), 0.25);
}

TEST(ThresholdOptimizerTest, GradientAgreesWithGoldenSection) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 0.6, .mean = 120, .variance = 900},
       {.weight = 0.4, .mean = 420, .variance = 3600}});
  ASSERT_TRUE(gmm.ok());
  CdfFn cdf = [&gmm](double x) { return gmm->Cdf(x); };
  for (double penalty : {200.0, 400.0, 800.0, 1500.0}) {
    double golden = OptimalThreshold(penalty, cdf);
    double gradient = OptimalThresholdGradient(penalty, cdf);
    // Both must reach (nearly) the same objective value.
    EXPECT_NEAR(ReducedObjective(penalty, golden, cdf),
                ReducedObjective(penalty, gradient, cdf),
                1e-4 * ReducedObjective(penalty, golden, cdf) + 1e-9)
        << "penalty=" << penalty;
  }
}

TEST(ThresholdOptimizerTest, OptimumDominatesGridScan) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 1.0, .mean = 300, .variance = 10000}});
  ASSERT_TRUE(gmm.ok());
  CdfFn cdf = [&gmm](double x) { return gmm->Cdf(x); };
  double penalty = 600.0;
  double theta = OptimalThreshold(penalty, cdf);
  double best_grid = 0.0;
  for (double t = 0; t <= penalty; t += penalty / 2000.0) {
    best_grid = std::max(best_grid, ReducedObjective(penalty, t, cdf));
  }
  EXPECT_GE(ReducedObjective(penalty, theta, cdf), best_grid - 1e-6);
}

TEST(ThresholdOptimizerTest, LargerPenaltyNeverLowersThreshold) {
  // Intuition check from the paper: more slack (penalty) permits waiting
  // for better groups, i.e. theta* is non-decreasing in p.
  auto gmm = GaussianMixture::Create(
      {{.weight = 0.5, .mean = 100, .variance = 2500},
       {.weight = 0.5, .mean = 500, .variance = 10000}});
  ASSERT_TRUE(gmm.ok());
  CdfFn cdf = [&gmm](double x) { return gmm->Cdf(x); };
  double previous = 0.0;
  for (double penalty = 50; penalty <= 2000; penalty += 50) {
    double theta = OptimalThreshold(penalty, cdf);
    EXPECT_GE(theta, previous - 1e-6) << "penalty=" << penalty;
    previous = theta;
  }
}

TEST(ThresholdTableTest, CachesPerPenaltyBucket) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 1.0, .mean = 200, .variance = 400}});
  ASSERT_TRUE(gmm.ok());
  ThresholdTable table(std::move(gmm).value(), /*penalty_resolution=*/10.0);
  double a = table.ThresholdFor(500.0);
  double b = table.ThresholdFor(503.0);  // Same bucket.
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(table.cache_size(), 1u);
  double c = table.ThresholdFor(600.0);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.cache_size(), 2u);
  EXPECT_DOUBLE_EQ(table.ThresholdFor(0.0), 0.0);
}

TEST(ThresholdTableTest, MatchesDirectOptimization) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 1.0, .mean = 150, .variance = 900}});
  ASSERT_TRUE(gmm.ok());
  GaussianMixture mixture = std::move(gmm).value();
  ThresholdTable table(mixture, 1.0);
  CdfFn cdf = [&mixture](double x) { return mixture.Cdf(x); };
  for (double penalty : {100.0, 250.0, 777.0}) {
    EXPECT_NEAR(table.ThresholdFor(penalty),
                OptimalThreshold(penalty, cdf), 1.0)
        << penalty;
  }
}

}  // namespace
}  // namespace watter
