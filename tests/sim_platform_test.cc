#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/sim/fleet.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions SmallOptions(uint64_t seed = 9) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 400;
  options.num_workers = 50;
  options.city_width = 16;
  options.city_height = 16;
  options.duration = 3600.0;
  options.seed = seed;
  return options;
}

TEST(FleetTest, ReleaseAndDispatchLifecycle) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddBidirectionalEdge(0, 1, 10.0);
  ASSERT_TRUE(g.Finalize().ok());
  DijkstraOracle oracle(&g);
  std::vector<Worker> workers = {{1, 0, 4, false, 0.0},
                                 {2, 1, 2, false, 0.0}};
  Fleet fleet(workers, &g, 4);
  EXPECT_EQ(fleet.idle_count(), 2);
  // Dispatch worker 1 until t=100, landing on node 1.
  fleet.Dispatch(1, 100.0, 1);
  EXPECT_EQ(fleet.idle_count(), 1);
  EXPECT_TRUE(fleet.worker(1).busy);
  fleet.ReleaseUntil(99.0);
  EXPECT_EQ(fleet.idle_count(), 1);
  fleet.ReleaseUntil(100.0);
  EXPECT_EQ(fleet.idle_count(), 2);
  EXPECT_FALSE(fleet.worker(1).busy);
  EXPECT_EQ(fleet.worker(1).location, 1);
}

TEST(FleetTest, ClosestIdleRespectsCapacity) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddNode({2, 0});
  g.AddBidirectionalEdge(0, 1, 5.0);
  g.AddBidirectionalEdge(1, 2, 5.0);
  ASSERT_TRUE(g.Finalize().ok());
  DijkstraOracle oracle(&g);
  // Worker 1 close but small; worker 2 far but big.
  std::vector<Worker> workers = {{1, 0, 2, false, 0.0},
                                 {2, 2, 4, false, 0.0}};
  Fleet fleet(workers, &g, 4);
  EXPECT_EQ(fleet.FindClosestIdle(0, 2, &oracle), 1);
  EXPECT_EQ(fleet.FindClosestIdle(0, 3, &oracle), 2);
  EXPECT_EQ(fleet.FindClosestIdle(0, 5, &oracle), kInvalidWorker);
  auto idle = fleet.IdleWorkerIds();
  EXPECT_EQ(idle, (std::vector<WorkerId>{1, 2}));
}

TEST(PlatformTest, EveryOrderIsAccountedExactlyOnce) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  OnlineThresholdProvider provider;
  MetricsReport report = RunWatter(&*scenario, &provider);
  EXPECT_EQ(report.served + report.rejected,
            static_cast<int64_t>(scenario->orders.size()));
  EXPECT_GT(report.service_rate, 0.3);
  EXPECT_GT(report.served, 0);
}

TEST(PlatformTest, DeterministicAcrossRuns) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  OnlineThresholdProvider provider;
  MetricsReport ra = RunWatter(&*a, &provider);
  MetricsReport rb = RunWatter(&*b, &provider);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_DOUBLE_EQ(ra.total_extra_time, rb.total_extra_time);
  EXPECT_DOUBLE_EQ(ra.unified_cost, rb.unified_cost);
}

TEST(PlatformTest, TimeoutWaitsLongerThanOnline) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  OnlineThresholdProvider online;
  TimeoutThresholdProvider timeout;
  MetricsReport ro = RunWatter(&*a, &online);
  MetricsReport rt = RunWatter(&*b, &timeout);
  EXPECT_GT(rt.avg_response, ro.avg_response);
}

TEST(PlatformTest, ServedOrdersMeetDefinitionalInvariants) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  std::unordered_map<OrderId, Order> by_id;
  for (const Order& order : scenario->orders) by_id[order.id] = order;
  OnlineThresholdProvider provider;
  WatterPlatform platform(&*scenario, &provider, SimOptions{});
  (void)platform.Run();
  for (const ServedRecord& record : platform.metrics().served_records()) {
    const Order& order = by_id.at(record.id);
    EXPECT_GE(record.response, 0.0) << record.id;
    EXPECT_GE(record.detour, -1e-6) << record.id;
    // Dispatch happened no later than the latest feasible time.
    EXPECT_LE(record.response, order.MaxResponse() + 1e-6) << record.id;
    EXPECT_GE(record.group_size, 1);
    EXPECT_LE(record.group_size, kMaxGroupSize);
  }
}

TEST(PlatformTest, ObserverSeesEveryOrderTerminally) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  OnlineThresholdProvider provider;
  WatterPlatform platform(&*scenario, &provider, SimOptions{});
  std::set<OrderId> dispatched, expired;
  int waits = 0;
  platform.set_observer([&](const DecisionObservation& obs) {
    ASSERT_NE(obs.order_ref, nullptr);
    if (obs.action == 1) {
      dispatched.insert(obs.order);
    } else if (obs.expired) {
      expired.insert(obs.order);
    } else {
      ++waits;
    }
    ASSERT_NE(obs.demand_pickup, nullptr);
    ASSERT_NE(obs.supply, nullptr);
  });
  MetricsReport report = platform.Run();
  EXPECT_EQ(static_cast<int64_t>(dispatched.size()), report.served);
  EXPECT_EQ(static_cast<int64_t>(expired.size()), report.rejected);
  EXPECT_GT(waits, 0);
  // No order both dispatched and expired.
  for (OrderId id : dispatched) EXPECT_EQ(expired.count(id), 0u);
}

TEST(PlatformTest, MoreWorkersNeverHurtServiceRate) {
  WorkloadOptions few = SmallOptions(21);
  few.num_workers = 12;
  WorkloadOptions many = SmallOptions(21);
  many.num_workers = 120;
  auto a = GenerateScenario(few);
  auto b = GenerateScenario(many);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  OnlineThresholdProvider provider;
  MetricsReport scarce = RunWatter(&*a, &provider);
  MetricsReport plentiful = RunWatter(&*b, &provider);
  EXPECT_GE(plentiful.service_rate, scarce.service_rate);
}

TEST(PlatformTest, SoloFallbackLiftsServiceRate) {
  auto with = GenerateScenario(SmallOptions(33));
  auto without = GenerateScenario(SmallOptions(33));
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  OnlineThresholdProvider provider;
  SimOptions opts_with;
  SimOptions opts_without;
  opts_without.solo_fallback = false;
  MetricsReport yes = RunWatter(&*with, &provider, opts_with);
  MetricsReport no = RunWatter(&*without, &provider, opts_without);
  EXPECT_GT(yes.service_rate, no.service_rate);
}

TEST(PlatformTest, CheckPeriodAffectsResponsiveness) {
  auto fast = GenerateScenario(SmallOptions(44));
  auto slow = GenerateScenario(SmallOptions(44));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  OnlineThresholdProvider provider;
  SimOptions fast_opts;
  fast_opts.check_period = 2.0;
  SimOptions slow_opts;
  slow_opts.check_period = 60.0;
  MetricsReport rf = RunWatter(&*fast, &provider, fast_opts);
  MetricsReport rs = RunWatter(&*slow, &provider, slow_opts);
  // Coarse checks cannot respond faster on average.
  EXPECT_LE(rf.avg_response, rs.avg_response + 1.0);
}

}  // namespace
}  // namespace watter
