// End-to-end test of the Section V pipeline: bootstrap -> GMM fit ->
// theta* optimization -> threshold strategy. The learned thresholds must
// produce a coherent strategy (between online and timeout in responsiveness)
// and the fitted mixture must actually describe the bootstrap data.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/platform.h"
#include "src/stats/em_fitter.h"
#include "src/stats/ks_test.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

// The pipeline claims under test (response-time ordering of the threshold
// strategies, GMM fit quality) are statements about the *strategies* with
// the paper-faithful sequential decision loop; pin the serial engine so the
// suite is independent of the platform's default (batched since the
// engine-A/B flip — its cost-ranked commits shift single-seed response
// averages by a few seconds, which the ordering margins here don't model).
SimOptions SerialEngine() {
  SimOptions options;
  options.dispatch = DispatchMode::kSerial;
  return options;
}

WorkloadOptions PipelineOptions(uint64_t seed) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 800;
  options.num_workers = 80;
  options.city_width = 18;
  options.city_height = 18;
  options.duration = 3600.0;
  options.city_seed = 4040;
  options.seed = seed;
  return options;
}

class GmmPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Bootstrap day under the timeout strategy.
    auto bootstrap = GenerateScenario(PipelineOptions(1));
    ASSERT_TRUE(bootstrap.ok());
    TimeoutThresholdProvider timeout;
    WatterPlatform platform(&*bootstrap, &timeout, SerialEngine());
    timeout_report_ = new MetricsReport(platform.Run());
    extras_ = new std::vector<double>(
        platform.metrics().served_extra_times());
    auto fit = FitGmm(*extras_, {.num_components = 3, .seed = 9});
    ASSERT_TRUE(fit.ok());
    mixture_ = new GaussianMixture(std::move(fit).value());
  }

  static void TearDownTestSuite() {
    delete timeout_report_;
    delete extras_;
    delete mixture_;
  }

  static MetricsReport* timeout_report_;
  static std::vector<double>* extras_;
  static GaussianMixture* mixture_;
};

MetricsReport* GmmPipelineTest::timeout_report_ = nullptr;
std::vector<double>* GmmPipelineTest::extras_ = nullptr;
GaussianMixture* GmmPipelineTest::mixture_ = nullptr;

TEST_F(GmmPipelineTest, BootstrapProducesUsableSample) {
  ASSERT_GT(extras_->size(), 200u);
  EXPECT_GT(timeout_report_->service_rate, 0.5);
}

TEST_F(GmmPipelineTest, MixtureDescribesBootstrapData) {
  KsResult ks = KolmogorovSmirnovTest(
      *extras_, [&](double x) { return mixture_->Cdf(x); });
  // The mixture should track the empirical distribution closely — KS
  // statistic well under a uniform-vs-anything mismatch.
  EXPECT_LT(ks.statistic, 0.08) << "p=" << ks.p_value;
  EXPECT_GT(mixture_->Mean(), 0.0);
}

TEST_F(GmmPipelineTest, ThetaStarIsInteriorForTypicalPenalties) {
  ThresholdTable table(*mixture_);
  // For penalties spanning the bootstrap extras, theta* should be neither 0
  // nor the penalty itself (the optimization trades off both extremes).
  int interior = 0, total = 0;
  for (double penalty = 200; penalty <= 1200; penalty += 100) {
    double theta = table.ThresholdFor(penalty);
    ++total;
    if (theta > 1.0 && theta < penalty - 1.0) ++interior;
  }
  EXPECT_GE(interior, total / 2);
}

TEST_F(GmmPipelineTest, GmmStrategySitsBetweenOnlineAndTimeout) {
  auto online_day = GenerateScenario(PipelineOptions(2));
  auto gmm_day = GenerateScenario(PipelineOptions(2));
  ASSERT_TRUE(online_day.ok());
  ASSERT_TRUE(gmm_day.ok());
  OnlineThresholdProvider online;
  MetricsReport online_report =
      RunWatter(&*online_day, &online, SerialEngine());
  GmmThresholdProvider gmm(*mixture_);
  MetricsReport gmm_report = RunWatter(&*gmm_day, &gmm, SerialEngine());
  // The threshold strategy waits longer than always-dispatch but far less
  // than always-hold (same-scenario timeout would, like the bootstrap day,
  // roughly double the online response).
  EXPECT_GE(gmm_report.avg_response, online_report.avg_response - 1.0);
  EXPECT_LT(gmm_report.avg_response, online_report.avg_response * 2.5);
  // And it must remain a functioning platform.
  EXPECT_GT(gmm_report.service_rate, 0.5);
}

TEST_F(GmmPipelineTest, GmmStrategyImprovesOnTimeout) {
  auto gmm_day = GenerateScenario(PipelineOptions(1));  // Same day.
  ASSERT_TRUE(gmm_day.ok());
  GmmThresholdProvider gmm(*mixture_);
  MetricsReport gmm_report = RunWatter(&*gmm_day, &gmm, SerialEngine());
  EXPECT_LT(gmm_report.metrs_objective, timeout_report_->metrs_objective);
}

}  // namespace
}  // namespace watter
