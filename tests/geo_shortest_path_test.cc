// Cross-validates all shortest-path backends against each other: plain
// Dijkstra is the reference; bidirectional search, contraction hierarchies,
// the APSP matrix and all oracle wrappers must agree exactly (up to float
// rounding for the matrix).
#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/geo/apsp.h"
#include "src/geo/bidirectional_dijkstra.h"
#include "src/geo/city_generator.h"
#include "src/geo/contraction_hierarchy.h"
#include "src/geo/dijkstra.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {
namespace {

Graph LineGraph() {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode({static_cast<double>(i), 0});
  for (int i = 0; i + 1 < 5; ++i) g.AddBidirectionalEdge(i, i + 1, 2.0);
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

TEST(DijkstraTest, LineGraphDistances) {
  Graph g = LineGraph();
  Dijkstra search(&g);
  search.Run(0);
  for (int v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(search.DistanceTo(v), 2.0 * v);
}

TEST(DijkstraTest, PathReconstruction) {
  Graph g = LineGraph();
  Dijkstra search(&g);
  search.Run(0, 4);
  std::vector<NodeId> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(search.PathTo(4), expected);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  ASSERT_TRUE(g.Finalize().ok());
  Dijkstra search(&g);
  search.Run(0);
  EXPECT_EQ(search.DistanceTo(1), kInfCost);
  EXPECT_TRUE(search.PathTo(1).empty());
}

TEST(DijkstraTest, ReverseSearchUsesIncomingArcs) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  g.AddEdge(a, b, 3.0);
  ASSERT_TRUE(g.Finalize().ok());
  Dijkstra search(&g);
  search.Run(b, kInvalidNode, /*reverse=*/true);
  EXPECT_DOUBLE_EQ(search.DistanceTo(a), 3.0);  // a reaches b at cost 3.
  search.Run(a, kInvalidNode, /*reverse=*/true);
  EXPECT_EQ(search.DistanceTo(b), kInfCost);  // Nothing reaches a from b.
}

TEST(DijkstraTest, RepeatedRunsAreIndependent) {
  Graph g = LineGraph();
  Dijkstra search(&g);
  search.Run(0);
  EXPECT_DOUBLE_EQ(search.DistanceTo(4), 8.0);
  search.Run(4);
  EXPECT_DOUBLE_EQ(search.DistanceTo(0), 8.0);
  EXPECT_DOUBLE_EQ(search.DistanceTo(4), 0.0);
}

TEST(DijkstraTest, EarlyTerminationStillCorrectForTarget) {
  auto city = GenerateCity({.width = 10, .height = 10, .seed = 3});
  ASSERT_TRUE(city.ok());
  Dijkstra full(&city->graph), early(&city->graph);
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    full.Run(s);
    early.Run(s, t);
    EXPECT_DOUBLE_EQ(early.DistanceTo(t), full.DistanceTo(t));
    EXPECT_LE(early.settled_count(), full.settled_count());
  }
}

class BackendAgreementTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BackendAgreementTest, AllBackendsAgreeOnCity) {
  auto city =
      GenerateCity({.width = 12, .height = 12, .jitter = 0.3,
                    .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  const Graph& g = city->graph;

  Dijkstra reference(&g);
  BidirectionalDijkstra bidi(&g);
  auto ch = ContractionHierarchy::Build(g);
  ASSERT_TRUE(ch.ok());
  auto matrix = CostMatrix::Build(g);
  ASSERT_TRUE(matrix.ok());

  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 120; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    reference.Run(s, t);
    double expected = reference.DistanceTo(t);
    EXPECT_NEAR(bidi.Query(s, t), expected, 1e-9) << s << "->" << t;
    EXPECT_NEAR(ch->Query(s, t), expected, 1e-9) << s << "->" << t;
    EXPECT_NEAR(matrix->Cost(s, t), expected, 1e-3) << s << "->" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendAgreementTest,
                         testing::Values(1, 2, 3, 4, 5));

TEST(ContractionHierarchyTest, AgreesOnRandomSparseDigraph) {
  // Non-planar random digraph with a connectivity ring: exercises CH beyond
  // grid topologies, including asymmetric distances.
  const int n = 150;
  Graph g;
  Rng rng(99);
  for (int i = 0; i < n; ++i) {
    g.AddNode({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  for (int i = 0; i < n; ++i) {
    g.AddEdge(i, (i + 1) % n, rng.Uniform(1.0, 5.0));
    for (int k = 0; k < 3; ++k) {
      NodeId to = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (to != i) g.AddEdge(i, to, rng.Uniform(1.0, 20.0));
    }
  }
  ASSERT_TRUE(g.Finalize().ok());
  auto ch = ContractionHierarchy::Build(g);
  ASSERT_TRUE(ch.ok());
  Dijkstra reference(&g);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    reference.Run(s, t);
    EXPECT_NEAR(ch->Query(s, t), reference.DistanceTo(t), 1e-9)
        << s << "->" << t;
  }
}

TEST(ContractionHierarchyTest, DisconnectedPairIsInfinite) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddNode({2, 0});
  g.AddBidirectionalEdge(0, 1, 1.0);
  ASSERT_TRUE(g.Finalize().ok());
  auto ch = ContractionHierarchy::Build(g);
  ASSERT_TRUE(ch.ok());
  EXPECT_EQ(ch->Query(0, 2), kInfCost);
  EXPECT_DOUBLE_EQ(ch->Query(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ch->Query(1, 1), 0.0);
}

TEST(ApspTest, RefusesOversizedMatrix) {
  Graph g;
  for (int i = 0; i < 100; ++i) g.AddNode({0, 0});
  ASSERT_TRUE(g.Finalize().ok());
  auto matrix = CostMatrix::Build(g, /*max_cells=*/100);
  EXPECT_EQ(matrix.status().code(), StatusCode::kOutOfRange);
}

TEST(OracleTest, AllOracleKindsAgree) {
  auto city = GenerateCity({.width = 10, .height = 10, .seed = 17});
  ASSERT_TRUE(city.ok());
  auto matrix_oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  auto ch_oracle = BuildOracle(city->graph, OracleKind::kCh);
  auto dijkstra_oracle = BuildOracle(city->graph, OracleKind::kDijkstra);
  ASSERT_TRUE(matrix_oracle.ok());
  ASSERT_TRUE(ch_oracle.ok());
  ASSERT_TRUE(dijkstra_oracle.ok());
  Rng rng(5);
  for (int trial = 0; trial < 80; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    double reference = (*dijkstra_oracle)->Cost(s, t);
    EXPECT_NEAR((*ch_oracle)->Cost(s, t), reference, 1e-9);
    EXPECT_NEAR((*matrix_oracle)->Cost(s, t), reference, 1e-3);
  }
  EXPECT_GT((*dijkstra_oracle)->query_count(), 0);
}

TEST(OracleTest, ChOracleCachesRepeatQueries) {
  auto city = GenerateCity({.width = 8, .height = 8, .seed = 4});
  ASSERT_TRUE(city.ok());
  auto ch = ContractionHierarchy::Build(city->graph);
  ASSERT_TRUE(ch.ok());
  ChOracle oracle(
      std::make_shared<const ContractionHierarchy>(std::move(ch).value()));
  double first = oracle.Cost(0, 10);
  size_t size_after_first = oracle.cache_size();
  double second = oracle.Cost(0, 10);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(oracle.cache_size(), size_after_first);
}

}  // namespace
}  // namespace watter
