#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "src/pool/clique_enumerator.h"
#include "src/pool/shareability_graph.h"
#include "tests/test_util.h"

namespace watter {
namespace {

constexpr double kMin = 60.0;

// A pool where many orders share the same corridor so the graph grows dense
// cliques: all orders go d -> e -> f-ish with wide deadlines.
class CliqueTest : public testing::Test {
 protected:
  CliqueTest()
      : graph_(testutil::MakeExample1Graph()),
        oracle_(&graph_),
        planner_(&oracle_),
        share_(&planner_, ShareabilityOptions{5, true}) {}

  Order CorridorOrder(OrderId id, NodeId pickup, NodeId dropoff) {
    Order order;
    order.id = id;
    order.pickup = pickup;
    order.dropoff = dropoff;
    order.riders = 1;
    order.release = 0.0;
    order.deadline = 60 * kMin;
    order.wait_limit = 10 * kMin;
    order.shortest_cost = oracle_.Cost(pickup, dropoff);
    return order;
  }

  Graph graph_;
  DijkstraOracle oracle_;
  RoutePlanner planner_;
  ShareabilityGraph share_;
};

TEST_F(CliqueTest, TriangleYieldsPairsAndTriple) {
  // Three orders along d -> e -> f: all pairwise shareable (orders 1 and 2
  // are identical trips; order 3 covers the trailing leg).
  ASSERT_TRUE(share_.Insert(CorridorOrder(1, testutil::kD, testutil::kF), 0)
                  .ok());
  ASSERT_TRUE(share_.Insert(CorridorOrder(2, testutil::kD, testutil::kF), 0)
                  .ok());
  ASSERT_TRUE(share_.Insert(CorridorOrder(3, testutil::kE, testutil::kF), 0)
                  .ok());
  ASSERT_EQ(share_.edge_count(), 3);

  std::set<std::vector<OrderId>> cliques;
  int visited = EnumerateCliquesContaining(
      share_, 1, CliqueOptions{5, 1000},
      [&](std::span<const OrderId> members) {
        cliques.emplace(members.begin(), members.end());
      });
  EXPECT_EQ(visited, 3);
  EXPECT_TRUE(cliques.count({1, 2}));
  EXPECT_TRUE(cliques.count({1, 3}));
  EXPECT_TRUE(cliques.count({1, 2, 3}));
  EXPECT_FALSE(cliques.count({2, 3}));  // Doesn't contain the anchor.
}

TEST_F(CliqueTest, MaxSizeBoundsCliqueDepth) {
  ASSERT_TRUE(share_.Insert(CorridorOrder(1, testutil::kD, testutil::kF), 0)
                  .ok());
  ASSERT_TRUE(share_.Insert(CorridorOrder(2, testutil::kD, testutil::kE), 0)
                  .ok());
  ASSERT_TRUE(share_.Insert(CorridorOrder(3, testutil::kE, testutil::kF), 0)
                  .ok());
  std::set<std::vector<OrderId>> cliques;
  EnumerateCliquesContaining(
      share_, 1, CliqueOptions{2, 1000},
      [&](std::span<const OrderId> members) {
        cliques.emplace(members.begin(), members.end());
      });
  EXPECT_EQ(cliques.size(), 2u);  // Only the two pairs.
  for (const auto& clique : cliques) EXPECT_LE(clique.size(), 2u);
}

TEST_F(CliqueTest, VisitBudgetStopsEnumeration) {
  for (OrderId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(
        share_.Insert(CorridorOrder(id, testutil::kD, testutil::kF), 0).ok());
  }
  int visited = EnumerateCliquesContaining(
      share_, 1, CliqueOptions{5, 3},
      [](std::span<const OrderId>) {});
  EXPECT_EQ(visited, 3);
}

TEST_F(CliqueTest, EveryEmittedCliqueIsActuallyAClique) {
  for (OrderId id = 1; id <= 4; ++id) {
    NodeId pickup = id % 2 == 0 ? testutil::kD : testutil::kE;
    ASSERT_TRUE(
        share_.Insert(CorridorOrder(id, pickup, testutil::kF), 0).ok());
  }
  int checked = 0;
  EnumerateCliquesContaining(
      share_, 2, CliqueOptions{4, 1000},
      [&](std::span<const OrderId> members) {
        ++checked;
        EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
        EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                       OrderId{2}));
        for (size_t i = 0; i < members.size(); ++i) {
          for (size_t j = i + 1; j < members.size(); ++j) {
            EXPECT_TRUE(share_.HasEdge(members[i], members[j]))
                << members[i] << "-" << members[j];
          }
        }
      });
  EXPECT_GT(checked, 0);
}

TEST_F(CliqueTest, NoDuplicateCliques) {
  for (OrderId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(
        share_.Insert(CorridorOrder(id, testutil::kD, testutil::kF), 0).ok());
  }
  std::vector<std::vector<OrderId>> seen;
  EnumerateCliquesContaining(
      share_, 1, CliqueOptions{5, 100000},
      [&](std::span<const OrderId> members) {
        seen.emplace_back(members.begin(), members.end());
      });
  std::set<std::vector<OrderId>> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size());
  // 4 neighbors, all mutually adjacent: cliques containing the anchor are
  // all non-empty subsets of the 4 neighbors: 2^4 - 1 = 15.
  EXPECT_EQ(seen.size(), 15u);
}

TEST_F(CliqueTest, UnknownAnchorOrTinyMaxSizeYieldsNothing) {
  EXPECT_EQ(EnumerateCliquesContaining(share_, 404, CliqueOptions{5, 100},
                                       [](std::span<const OrderId>) {}),
            0);
  ASSERT_TRUE(share_.Insert(CorridorOrder(1, testutil::kD, testutil::kF), 0)
                  .ok());
  EXPECT_EQ(EnumerateCliquesContaining(share_, 1, CliqueOptions{1, 100},
                                       [](std::span<const OrderId>) {}),
            0);
}

}  // namespace
}  // namespace watter
