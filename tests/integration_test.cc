// Cross-module integration tests: the accounting identities that tie the
// metric pipeline to the simulators, and cross-strategy orderings that the
// paper's evaluation relies on.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/baseline/nonsharing.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions MediumOptions(uint64_t seed = 101) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 600;
  options.num_workers = 60;
  options.city_width = 20;
  options.city_height = 20;
  options.duration = 2 * 3600.0;
  options.seed = seed;
  return options;
}

struct NamedRun {
  std::string name;
  MetricsReport report;
  std::vector<ServedRecord> served;
  std::unordered_map<OrderId, Order> orders;
};

NamedRun RunOne(const std::string& name, uint64_t seed) {
  auto scenario = GenerateScenario(MediumOptions(seed));
  EXPECT_TRUE(scenario.ok());
  NamedRun run;
  run.name = name;
  for (const Order& order : scenario->orders) run.orders[order.id] = order;
  if (name == "online") {
    OnlineThresholdProvider provider;
    WatterPlatform platform(&*scenario, &provider, SimOptions{});
    run.report = platform.Run();
    run.served = platform.metrics().served_records();
  } else if (name == "timeout") {
    TimeoutThresholdProvider provider;
    WatterPlatform platform(&*scenario, &provider, SimOptions{});
    run.report = platform.Run();
    run.served = platform.metrics().served_records();
  } else if (name == "gdp") {
    run.report = RunGdp(&*scenario);
  } else if (name == "gas") {
    run.report = RunGas(&*scenario);
  } else if (name == "nonsharing") {
    run.report = RunNonSharing(&*scenario);
  }
  return run;
}

TEST(IntegrationTest, AccountingIdentitiesHoldForEveryAlgorithm) {
  for (const char* name :
       {"online", "timeout", "gdp", "gas", "nonsharing"}) {
    NamedRun run = RunOne(name, 101);
    const MetricsReport& r = run.report;
    EXPECT_EQ(r.served + r.rejected, 600) << name;
    // METRS objective = served extra + rejection penalties.
    EXPECT_NEAR(r.metrs_objective,
                r.total_extra_time + r.total_metrs_penalty, 1e-6)
        << name;
    // Unified cost >= worker travel (penalties are non-negative).
    EXPECT_GE(r.unified_cost, r.worker_travel) << name;
    EXPECT_GT(r.worker_travel, 0.0) << name;
    EXPECT_GE(r.service_rate, 0.0) << name;
    EXPECT_LE(r.service_rate, 1.0) << name;
    EXPECT_GT(r.running_time_per_order, 0.0) << name;
  }
}

TEST(IntegrationTest, WatterServedOrdersRespectPaperDeadlineFormula) {
  for (const char* name : {"online", "timeout"}) {
    NamedRun run = RunOne(name, 202);
    for (const ServedRecord& record : run.served) {
      const Order& order = run.orders.at(record.id);
      // Constraint (2) of Definition 7: t + t_r + T(L^(i)) <= tau, with
      // T(L^(i)) = shortest + detour.
      EXPECT_LE(order.release + record.response + order.shortest_cost +
                    record.detour,
                order.deadline + 1e-3)
          << name << " order " << record.id;
    }
  }
}

TEST(IntegrationTest, NonSharingHasZeroDetourAndWorstTravel) {
  NamedRun nonsharing = RunOne("nonsharing", 303);
  NamedRun online = RunOne("online", 303);
  EXPECT_DOUBLE_EQ(nonsharing.report.avg_detour, 0.0);
  EXPECT_DOUBLE_EQ(nonsharing.report.avg_group_size, 1.0);
  // Pooling saves worker travel per served order.
  double nonsharing_travel_per_order =
      nonsharing.report.worker_travel / nonsharing.report.served;
  double online_travel_per_order =
      online.report.worker_travel / online.report.served;
  EXPECT_LT(online_travel_per_order, nonsharing_travel_per_order);
}

TEST(IntegrationTest, PoolingGroupsSaveTravelVersusNonSharing) {
  NamedRun timeout = RunOne("timeout", 404);
  EXPECT_GT(timeout.report.avg_group_size, 1.2);
}

TEST(IntegrationTest, OnlineRespondsFasterThanTimeout) {
  NamedRun online = RunOne("online", 505);
  NamedRun timeout = RunOne("timeout", 505);
  EXPECT_LT(online.report.avg_response, timeout.report.avg_response);
}

TEST(IntegrationTest, GdpDeadlinesRespectedEndToEnd) {
  auto scenario = GenerateScenario(MediumOptions(606));
  ASSERT_TRUE(scenario.ok());
  std::unordered_map<OrderId, Order> by_id;
  for (const Order& order : scenario->orders) by_id[order.id] = order;
  // Run GDP through a collector we can inspect: re-run and validate via
  // realized times reconstructed from the served records.
  auto scenario2 = GenerateScenario(MediumOptions(606));
  ASSERT_TRUE(scenario2.ok());
  MetricsReport report = RunGdp(&*scenario2);
  EXPECT_GT(report.served, 0);
  // GDP's insertion feasibility checks enforce: assigned_at + shortest +
  // detour <= deadline. avg detour being finite and positive plus 0
  // response means realized dropoffs = release + shortest + detour.
  EXPECT_GE(report.avg_detour, 0.0);
}

TEST(IntegrationTest, RejectionPenaltyMatchesDefinition) {
  // Starve the fleet so rejections definitely occur, then check the METRS
  // penalty equals the sum of max responses of rejected orders.
  WorkloadOptions options = MediumOptions(707);
  options.num_workers = 3;
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  double total_penalty_bound = 0.0;
  for (const Order& order : scenario->orders) {
    total_penalty_bound += order.Penalty();
  }
  OnlineThresholdProvider provider;
  MetricsReport report = RunWatter(&*scenario, &provider);
  EXPECT_GT(report.rejected, 0);
  EXPECT_LE(report.total_metrs_penalty, total_penalty_bound);
  EXPECT_GT(report.total_metrs_penalty, 0.0);
}

}  // namespace
}  // namespace watter
