#include <gtest/gtest.h>

#include "src/core/metrics.h"

namespace watter {
namespace {

Order MakeOrder(OrderId id, double shortest, Time release, Time deadline) {
  Order order;
  order.id = id;
  order.shortest_cost = shortest;
  order.release = release;
  order.deadline = deadline;
  return order;
}

TEST(MetricsTest, ServedAccumulatesExtraTime) {
  MetricsCollector collector;
  Order o = MakeOrder(1, 100.0, 0.0, 1000.0);
  collector.RecordServed(o, /*response=*/30.0, /*detour=*/50.0, 2);
  MetricsReport report = collector.Report();
  EXPECT_EQ(report.served, 1);
  EXPECT_DOUBLE_EQ(report.total_extra_time, 80.0);  // alpha=beta=1.
  EXPECT_DOUBLE_EQ(report.avg_response, 30.0);
  EXPECT_DOUBLE_EQ(report.avg_detour, 50.0);
  EXPECT_DOUBLE_EQ(report.avg_group_size, 2.0);
  EXPECT_DOUBLE_EQ(report.service_rate, 1.0);
}

TEST(MetricsTest, WeightsScaleExtraTime) {
  MetricsOptions options;
  options.weights = {.alpha = 2.0, .beta = 0.5};
  MetricsCollector collector(options);
  Order o = MakeOrder(1, 100.0, 0.0, 1000.0);
  collector.RecordServed(o, 40.0, 10.0, 1);
  EXPECT_DOUBLE_EQ(collector.Report().total_extra_time, 2.0 * 10 + 0.5 * 40);
}

TEST(MetricsTest, RejectionAddsPenalties) {
  MetricsCollector collector;
  // Penalty p(i) = deadline - release - shortest = 500 - 0 - 100 = 400.
  Order o = MakeOrder(1, 100.0, 0.0, 500.0);
  collector.RecordRejected(o);
  MetricsReport report = collector.Report();
  EXPECT_EQ(report.rejected, 1);
  EXPECT_DOUBLE_EQ(report.total_metrs_penalty, 400.0);
  EXPECT_DOUBLE_EQ(report.metrs_objective, 400.0);
  // Unified-cost penalty = 10 * shortest.
  EXPECT_DOUBLE_EQ(report.unified_cost, 1000.0);
  EXPECT_DOUBLE_EQ(report.service_rate, 0.0);
}

TEST(MetricsTest, UnifiedCostCombinesTravelAndPenalty) {
  MetricsCollector collector;
  collector.AddWorkerTravel(750.0);
  Order o = MakeOrder(1, 20.0, 0.0, 500.0);
  collector.RecordRejected(o);
  EXPECT_DOUBLE_EQ(collector.Report().unified_cost, 750.0 + 200.0);
  EXPECT_DOUBLE_EQ(collector.Report().worker_travel, 750.0);
}

TEST(MetricsTest, ServiceRateMixesServedAndRejected) {
  MetricsCollector collector;
  Order o = MakeOrder(1, 10.0, 0.0, 500.0);
  collector.RecordServed(o, 1.0, 1.0, 1);
  collector.RecordServed(o, 1.0, 1.0, 1);
  collector.RecordRejected(o);
  MetricsReport report = collector.Report();
  EXPECT_NEAR(report.service_rate, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(collector.total_orders(), 3);
}

TEST(MetricsTest, RunningTimePerOrder) {
  MetricsCollector collector;
  Order o = MakeOrder(1, 10.0, 0.0, 500.0);
  collector.RecordServed(o, 1.0, 1.0, 1);
  collector.RecordRejected(o);
  collector.AddAlgorithmTime(0.5);
  MetricsReport report = collector.Report();
  EXPECT_DOUBLE_EQ(report.algorithm_seconds, 0.5);
  EXPECT_DOUBLE_EQ(report.running_time_per_order, 0.25);
}

TEST(MetricsTest, ServedExtraTimesExposedForFitting) {
  MetricsCollector collector;
  Order o = MakeOrder(1, 10.0, 0.0, 500.0);
  collector.RecordServed(o, 5.0, 7.0, 1);
  collector.RecordServed(o, 2.0, 3.0, 2);
  ASSERT_EQ(collector.served_extra_times().size(), 2u);
  EXPECT_DOUBLE_EQ(collector.served_extra_times()[0], 12.0);
  EXPECT_DOUBLE_EQ(collector.served_extra_times()[1], 5.0);
  EXPECT_EQ(collector.served_records()[1].group_size, 2);
}

TEST(MetricsTest, EmptyReportIsZeroed) {
  MetricsCollector collector;
  MetricsReport report = collector.Report();
  EXPECT_EQ(report.served, 0);
  EXPECT_DOUBLE_EQ(report.service_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.running_time_per_order, 0.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(MetricsTest, OrderHelperAccessors) {
  Order o = MakeOrder(1, 100.0, 50.0, 600.0);
  o.wait_limit = 80.0;
  EXPECT_DOUBLE_EQ(o.MaxResponse(), 450.0);
  EXPECT_DOUBLE_EQ(o.Penalty(), 450.0);
  EXPECT_DOUBLE_EQ(o.LatestDispatch(), 500.0);
  EXPECT_DOUBLE_EQ(o.WaitDeadline(), 130.0);
}

}  // namespace
}  // namespace watter
