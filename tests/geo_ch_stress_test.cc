// Heavier stress coverage of contraction hierarchies: bigger cities, more
// topologies, witness-limit sensitivity, and exhaustive small-graph checks.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/geo/city_generator.h"
#include "src/geo/contraction_hierarchy.h"
#include "src/geo/dijkstra.h"

namespace watter {
namespace {

TEST(ChStressTest, LargerCityExactness) {
  auto city = GenerateCity({.width = 28, .height = 28, .jitter = 0.35,
                            .center_slowdown = 2.0, .seed = 31});
  ASSERT_TRUE(city.ok());
  auto ch = ContractionHierarchy::Build(city->graph);
  ASSERT_TRUE(ch.ok());
  Dijkstra reference(&city->graph);
  Rng rng(33);
  for (int trial = 0; trial < 150; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    reference.Run(s, t);
    ASSERT_NEAR(ch->Query(s, t), reference.DistanceTo(t), 1e-9)
        << s << "->" << t;
  }
}

TEST(ChStressTest, TightWitnessLimitsStayCorrect) {
  // Small witness budgets may add redundant shortcuts but must never break
  // exactness.
  auto city = GenerateCity({.width = 16, .height = 16, .jitter = 0.3,
                            .seed = 35});
  ASSERT_TRUE(city.ok());
  ChOptions tight;
  tight.witness_settle_limit = 4;
  tight.witness_hop_limit = 2;
  auto constrained = ContractionHierarchy::Build(city->graph, tight);
  auto generous = ContractionHierarchy::Build(city->graph);
  ASSERT_TRUE(constrained.ok());
  ASSERT_TRUE(generous.ok());
  // Weaker witness searches can only add shortcuts, not remove them.
  EXPECT_GE(constrained->num_shortcuts(), generous->num_shortcuts());
  Dijkstra reference(&city->graph);
  Rng rng(36);
  for (int trial = 0; trial < 80; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    reference.Run(s, t);
    EXPECT_NEAR(constrained->Query(s, t), reference.DistanceTo(t), 1e-9);
  }
}

TEST(ChStressTest, ExhaustiveOnTinyGraphs) {
  // Every pair on many tiny random digraphs: catches rank/arc-direction
  // bugs that random sampling on large graphs can miss.
  Rng rng(40);
  for (int instance = 0; instance < 25; ++instance) {
    const int n = static_cast<int>(rng.UniformInt(2, 9));
    Graph g;
    for (int i = 0; i < n; ++i) {
      g.AddNode({rng.Uniform(0, 10), rng.Uniform(0, 10)});
    }
    int edges = static_cast<int>(rng.UniformInt(1, 3 * n));
    for (int e = 0; e < edges; ++e) {
      NodeId a = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      NodeId b = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (a != b) g.AddEdge(a, b, rng.Uniform(1.0, 9.0));
    }
    ASSERT_TRUE(g.Finalize().ok());
    auto ch = ContractionHierarchy::Build(g);
    ASSERT_TRUE(ch.ok());
    Dijkstra reference(&g);
    for (NodeId s = 0; s < n; ++s) {
      reference.Run(s);
      for (NodeId t = 0; t < n; ++t) {
        double expected = reference.DistanceTo(t);
        double got = ch->Query(s, t);
        if (expected == kInfCost) {
          ASSERT_EQ(got, kInfCost) << "inst " << instance << " " << s
                                   << "->" << t;
        } else {
          ASSERT_NEAR(got, expected, 1e-9)
              << "inst " << instance << " " << s << "->" << t;
        }
      }
    }
  }
}

TEST(ChStressTest, AsymmetricWeightsHandled) {
  // Directed ring with strongly asymmetric weights: forward cheap,
  // backward expensive.
  const int n = 30;
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddNode({static_cast<double>(i), 0.0});
  }
  for (int i = 0; i < n; ++i) {
    g.AddEdge(i, (i + 1) % n, 1.0);
    g.AddEdge((i + 1) % n, i, 10.0);
  }
  ASSERT_TRUE(g.Finalize().ok());
  auto ch = ContractionHierarchy::Build(g);
  ASSERT_TRUE(ch.ok());
  // Forward around the ring: distance j - i (mod n) at cost 1 per hop,
  // unless going backward is cheaper at 10 per hop.
  Dijkstra reference(&g);
  for (NodeId s = 0; s < n; s += 5) {
    reference.Run(s);
    for (NodeId t = 0; t < n; ++t) {
      EXPECT_NEAR(ch->Query(s, t), reference.DistanceTo(t), 1e-9);
    }
  }
}

}  // namespace
}  // namespace watter
