// Table-driven tests of the batched-dispatch conflict resolution
// (docs/DISPATCH.md): offers sorted by the (cost, anchor, worker) total
// order, then accepted greedily. Covers the two conflict classes — worker
// contention and order-in-two-groups — plus empty rounds, tie-breaking,
// and invariance to the (thread-count-dependent) input order.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/strategy/decision.h"

namespace watter {
namespace {

DispatchOffer MakeOffer(OrderId anchor, std::vector<OrderId> members,
                        WorkerId worker, double cost) {
  DispatchOffer offer;
  offer.anchor = anchor;
  offer.members = std::move(members);
  std::sort(offer.members.begin(), offer.members.end());
  offer.worker = worker;
  offer.cost = cost;
  return offer;
}

struct ConflictCase {
  std::string name;
  std::vector<DispatchOffer> offers;
  // Expected outcomes per *sorted* offer position, and the anchors in
  // sorted order (documents the total order the expectation refers to).
  std::vector<OrderId> sorted_anchors;
  std::vector<OfferOutcome> expected;
};

std::vector<ConflictCase> AllCases() {
  return {
      {"EmptyRound", {}, {}, {}},

      {"SingleOfferCommits",
       {MakeOffer(1, {1, 2}, 7, 10.0)},
       {1},
       {OfferOutcome::kCommitted}},

      // Two groups want worker 7; the cheaper one wins, the loser waits
      // for the next round.
      {"WorkerContentionCheapestWins",
       {MakeOffer(1, {1, 2}, 7, 20.0), MakeOffer(3, {3, 4}, 7, 10.0)},
       {3, 1},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict}},

      // Equal costs: the anchor id breaks the tie, so the result is still
      // a pure function of the offer set.
      {"WorkerContentionTieBreaksByAnchor",
       {MakeOffer(5, {5, 6}, 7, 10.0), MakeOffer(2, {2, 9}, 7, 10.0)},
       {2, 5},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict}},

      // Order 2 sits in two proposed groups (its own anchor's and order
      // 1's). Once {1,2} commits, the {2,3} offer has a dispatched rider.
      {"OrderInTwoGroups",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(2, {2, 3}, 8, 12.0)},
       {1, 2},
       {OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}},

      // The same group proposed by two of its members dedupes naturally:
      // the second copy loses every member to the first.
      {"SameGroupTwiceDedupes",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(2, {1, 2}, 7, 10.0)},
       {1, 2},
       {OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}},

      // Order overlap is classified before worker contention: an offer
      // whose riders already left has nothing to dispatch, whoever holds
      // the worker.
      {"OrderConflictBeatsWorkerConflict",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(2, {2, 3}, 7, 12.0)},
       {1, 2},
       {OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}},

      // A conflict loser does not block later compatible offers: the
      // middle offer loses worker 7, but the third (distinct worker and
      // riders) still commits.
      {"LoserDoesNotCascade",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(3, {3, 4}, 7, 11.0),
        MakeOffer(5, {5, 6}, 8, 12.0)},
       {1, 3, 5},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict,
        OfferOutcome::kCommitted}},

      // Solo offers obey the same rules as groups.
      {"SoloContendsLikeAGroup",
       {MakeOffer(1, {1}, 7, 10.0), MakeOffer(2, {2}, 7, 15.0),
        MakeOffer(3, {3}, 9, 20.0)},
       {1, 2, 3},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict,
        OfferOutcome::kCommitted}},
  };
}

TEST(DispatchConflictTest, TableDrivenResolution) {
  for (const ConflictCase& test_case : AllCases()) {
    SCOPED_TRACE(test_case.name);
    std::vector<DispatchOffer> offers = test_case.offers;
    std::vector<OfferOutcome> outcomes = ResolveOffers(&offers);
    ASSERT_EQ(offers.size(), test_case.sorted_anchors.size());
    ASSERT_EQ(outcomes.size(), test_case.expected.size());
    for (size_t i = 0; i < offers.size(); ++i) {
      EXPECT_EQ(offers[i].anchor, test_case.sorted_anchors[i])
          << "sorted position " << i;
      EXPECT_EQ(outcomes[i], test_case.expected[i]) << "sorted position " << i;
    }
  }
}

TEST(DispatchConflictTest, ResolutionIsInputOrderInvariant) {
  // The propose phase completes offers in a thread-count-dependent order;
  // resolution must erase that. Shuffle each case and require the sorted
  // offers and outcomes to be identical to the unshuffled run.
  std::mt19937 shuffle_rng(12345);
  for (const ConflictCase& test_case : AllCases()) {
    SCOPED_TRACE(test_case.name);
    std::vector<DispatchOffer> reference = test_case.offers;
    std::vector<OfferOutcome> reference_outcomes = ResolveOffers(&reference);
    for (int round = 0; round < 10; ++round) {
      std::vector<DispatchOffer> shuffled = test_case.offers;
      std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
      std::vector<OfferOutcome> outcomes = ResolveOffers(&shuffled);
      ASSERT_EQ(shuffled.size(), reference.size());
      EXPECT_EQ(outcomes, reference_outcomes);
      for (size_t i = 0; i < shuffled.size(); ++i) {
        EXPECT_EQ(shuffled[i].anchor, reference[i].anchor);
        EXPECT_EQ(shuffled[i].worker, reference[i].worker);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded resolution: randomized boundary-conflict fuzzing.
//
// ResolveOffersSharded claims bitwise equality with ResolveOffers for ANY
// shard map (decision.h). The fuzz suites below generate dense random offer
// sets — small worker/order universes force heavy worker contention, member
// overlap, and components straddling shard borders — under random shard
// assignments, and require the sharded outcomes to equal the global scan,
// to survive input shuffles and shard-label permutations, and to agree
// between the serial and thread-pool execution paths.

/// Explicit shard tables; the OfferShardMap callbacks look ids up here.
struct ShardAssignment {
  int num_shards = 1;
  std::unordered_map<WorkerId, int> worker_shards;
  std::unordered_map<OrderId, int> order_shards;

  OfferShardMap Map() const {
    OfferShardMap map;
    map.num_shards = num_shards;
    map.worker_shard = [this](WorkerId w) { return worker_shards.at(w); };
    map.order_shard = [this](OrderId o) { return order_shards.at(o); };
    return map;
  }
};

std::vector<DispatchOffer> RandomOffers(std::mt19937* rng) {
  // Anchors are unique per round (they are distinct pooled orders), but
  // extra members come from a small shared universe so groups overlap, and
  // few workers + few distinct costs force contention and cost ties.
  std::uniform_int_distribution<int> count_dist(0, 40);
  std::uniform_int_distribution<int> extra_dist(0, 3);
  std::uniform_int_distribution<OrderId> member_dist(1, 60);
  std::uniform_int_distribution<WorkerId> worker_dist(1, 12);
  std::uniform_int_distribution<int> cost_dist(1, 6);
  int n = count_dist(*rng);
  std::vector<DispatchOffer> offers;
  offers.reserve(n);
  for (int i = 0; i < n; ++i) {
    OrderId anchor = static_cast<OrderId>(i + 1);
    std::vector<OrderId> members = {anchor};
    for (int e = extra_dist(*rng); e > 0; --e) {
      members.push_back(member_dist(*rng));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    offers.push_back(MakeOffer(anchor, std::move(members), worker_dist(*rng),
                               static_cast<double>(cost_dist(*rng))));
  }
  return offers;
}

ShardAssignment RandomAssignment(const std::vector<DispatchOffer>& offers,
                                 int num_shards, std::mt19937* rng) {
  ShardAssignment assign;
  assign.num_shards = num_shards;
  std::uniform_int_distribution<int> shard_dist(0, num_shards - 1);
  for (const DispatchOffer& offer : offers) {
    assign.worker_shards.emplace(offer.worker, shard_dist(*rng));
    for (OrderId member : offer.members) {
      assign.order_shards.emplace(member, shard_dist(*rng));
    }
  }
  return assign;
}

/// The structural invariants any resolution must satisfy, plus the scope
/// classification's definition checked against the shard tables directly.
void CheckResolutionInvariants(const std::vector<DispatchOffer>& sorted,
                               const ShardedResolution& resolution,
                               const ShardAssignment& assign) {
  ASSERT_EQ(resolution.outcomes.size(), sorted.size());
  ASSERT_EQ(resolution.scopes.size(), sorted.size());
  ASSERT_EQ(resolution.home_shards.size(), sorted.size());
  EXPECT_EQ(resolution.interior_offers + resolution.border_offers +
                resolution.border_affected,
            static_cast<int64_t>(sorted.size()));
  std::unordered_set<WorkerId> committed_workers;
  std::unordered_set<OrderId> committed_members;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (resolution.outcomes[i] == OfferOutcome::kCommitted) {
      // Winners are conflict-free: distinct workers, disjoint members.
      EXPECT_TRUE(committed_workers.insert(sorted[i].worker).second);
      for (OrderId member : sorted[i].members) {
        EXPECT_TRUE(committed_members.insert(member).second);
      }
    }
    int home = assign.worker_shards.at(sorted[i].worker);
    EXPECT_EQ(resolution.home_shards[i], home);
    bool straddles = false;
    for (OrderId member : sorted[i].members) {
      straddles |= assign.order_shards.at(member) != home;
    }
    // kBorder iff the offer itself straddles; an interior-shaped offer may
    // be kInterior or kBorderAffected depending on its conflict component.
    EXPECT_EQ(resolution.scopes[i] == OfferScope::kBorder, straddles);
    if (assign.num_shards == 1) {
      EXPECT_EQ(resolution.scopes[i], OfferScope::kInterior);
    }
  }
}

TEST(ShardedResolveFuzzTest, MatchesUnshardedForRandomShardMaps) {
  std::mt19937 rng(20240807);
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    std::vector<DispatchOffer> base = RandomOffers(&rng);
    std::vector<DispatchOffer> reference = base;
    std::vector<OfferOutcome> expected = ResolveOffers(&reference);
    for (int num_shards : {1, 2, 3, 4, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards));
      ShardAssignment assign = RandomAssignment(base, num_shards, &rng);
      std::vector<DispatchOffer> offers = base;
      ShardedResolution resolution =
          ResolveOffersSharded(&offers, assign.Map());
      ASSERT_EQ(offers.size(), reference.size());
      for (size_t i = 0; i < offers.size(); ++i) {
        EXPECT_EQ(offers[i].anchor, reference[i].anchor);
      }
      EXPECT_EQ(resolution.outcomes, expected);
      CheckResolutionInvariants(offers, resolution, assign);
    }
  }
}

TEST(ShardedResolveFuzzTest, InvariantToInputShuffleAndShardRelabeling) {
  // Neither the propose completion order nor which integer names a shard
  // may show in the results: outcomes AND scopes must survive a shuffle of
  // the offers combined with a random permutation of the shard labels.
  std::mt19937 rng(987654321);
  for (int iter = 0; iter < 30; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    std::vector<DispatchOffer> base = RandomOffers(&rng);
    const int num_shards = 4;
    ShardAssignment assign = RandomAssignment(base, num_shards, &rng);
    std::vector<DispatchOffer> reference = base;
    ShardedResolution expected =
        ResolveOffersSharded(&reference, assign.Map());
    for (int round = 0; round < 5; ++round) {
      std::vector<int> relabel(num_shards);
      for (int s = 0; s < num_shards; ++s) relabel[s] = s;
      std::shuffle(relabel.begin(), relabel.end(), rng);
      ShardAssignment permuted;
      permuted.num_shards = num_shards;
      for (const auto& [worker, shard] : assign.worker_shards) {
        permuted.worker_shards.emplace(worker, relabel[shard]);
      }
      for (const auto& [order, shard] : assign.order_shards) {
        permuted.order_shards.emplace(order, relabel[shard]);
      }
      std::vector<DispatchOffer> shuffled = base;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      ShardedResolution resolution =
          ResolveOffersSharded(&shuffled, permuted.Map());
      EXPECT_EQ(resolution.outcomes, expected.outcomes);
      EXPECT_EQ(resolution.scopes, expected.scopes);
      EXPECT_EQ(resolution.border_offers, expected.border_offers);
      EXPECT_EQ(resolution.border_affected, expected.border_affected);
      EXPECT_EQ(resolution.interior_offers, expected.interior_offers);
    }
  }
}

TEST(ShardedResolveFuzzTest, ThreadPoolAgreesWithSerialScans) {
  // The per-shard scans write disjoint outcome slots, so running them on a
  // pool must be invisible. (The platform passes its executor; the other
  // fuzz tests cover the serial path.)
  ThreadPool pool(4);
  std::mt19937 rng(55555);
  for (int iter = 0; iter < 30; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    std::vector<DispatchOffer> base = RandomOffers(&rng);
    ShardAssignment assign = RandomAssignment(base, 4, &rng);
    std::vector<DispatchOffer> serial = base;
    ShardedResolution serial_res =
        ResolveOffersSharded(&serial, assign.Map());
    std::vector<DispatchOffer> pooled = base;
    ShardedResolution pooled_res =
        ResolveOffersSharded(&pooled, assign.Map(), &pool);
    EXPECT_EQ(pooled_res.outcomes, serial_res.outcomes);
    EXPECT_EQ(pooled_res.scopes, serial_res.scopes);
  }
}

TEST(ShardedResolveTest, WorkedTwoShardExample) {
  // The docs/DISPATCH.md worked example, verbatim. Shard 0 holds worker 1
  // and orders {1,2,3}; shard 1 holds workers {2,3} and orders {4,5}.
  // Offer D (worker 3, members {3,5}) straddles the border via order 3,
  // and order 3 also sits in offer B's member set — so A and B, though
  // interior-shaped, are conflict-linked to D and become border-affected.
  ShardAssignment assign;
  assign.num_shards = 2;
  assign.worker_shards = {{1, 0}, {2, 1}, {3, 1}};
  assign.order_shards = {{1, 0}, {2, 0}, {3, 0}, {4, 1}, {5, 1}};
  std::vector<DispatchOffer> offers = {
      MakeOffer(1, {1, 2}, 1, 10.0),  // A: interior-shaped, shard 0.
      MakeOffer(3, {2, 3}, 1, 12.0),  // B: interior-shaped, shard 0.
      MakeOffer(4, {4}, 2, 5.0),      // C: interior, shard 1.
      MakeOffer(5, {3, 5}, 3, 8.0),   // D: border (order 3 is in shard 0).
  };
  ShardedResolution resolution = ResolveOffersSharded(&offers, assign.Map());
  // Sorted by cost: C(5), D(8), A(10), B(12).
  ASSERT_EQ(offers.size(), 4u);
  EXPECT_EQ(offers[0].anchor, 4);
  EXPECT_EQ(offers[1].anchor, 5);
  EXPECT_EQ(offers[2].anchor, 1);
  EXPECT_EQ(offers[3].anchor, 3);
  // C commits in shard 1's scan; D commits in reconciliation; A commits in
  // reconciliation too (border-affected); B loses order 2 to A.
  EXPECT_EQ(resolution.outcomes,
            (std::vector<OfferOutcome>{
                OfferOutcome::kCommitted, OfferOutcome::kCommitted,
                OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}));
  EXPECT_EQ(resolution.scopes,
            (std::vector<OfferScope>{
                OfferScope::kInterior, OfferScope::kBorder,
                OfferScope::kBorderAffected, OfferScope::kBorderAffected}));
  EXPECT_EQ(resolution.home_shards, (std::vector<int>{1, 1, 0, 0}));
  EXPECT_EQ(resolution.interior_offers, 1);
  EXPECT_EQ(resolution.border_offers, 1);
  EXPECT_EQ(resolution.border_affected, 2);
  // The same offers through the unsharded scan: identical outcomes.
  std::vector<DispatchOffer> unsharded = {
      MakeOffer(1, {1, 2}, 1, 10.0), MakeOffer(3, {2, 3}, 1, 12.0),
      MakeOffer(4, {4}, 2, 5.0), MakeOffer(5, {3, 5}, 3, 8.0)};
  EXPECT_EQ(ResolveOffers(&unsharded), resolution.outcomes);
}

TEST(DispatchConflictTest, OfferBeforeIsATotalOrderOnDistinctAnchors) {
  DispatchOffer cheap = MakeOffer(2, {2}, 7, 1.0);
  DispatchOffer expensive = MakeOffer(1, {1}, 7, 2.0);
  EXPECT_TRUE(OfferBefore(cheap, expensive));
  EXPECT_FALSE(OfferBefore(expensive, cheap));
  // Equal cost: anchor id decides; an offer never precedes itself.
  DispatchOffer also_cheap = MakeOffer(9, {9}, 3, 1.0);
  EXPECT_TRUE(OfferBefore(cheap, also_cheap));
  EXPECT_FALSE(OfferBefore(also_cheap, cheap));
  EXPECT_FALSE(OfferBefore(cheap, cheap));
}

}  // namespace
}  // namespace watter
