// Table-driven tests of the batched-dispatch conflict resolution
// (docs/DISPATCH.md): offers sorted by the (cost, anchor, worker) total
// order, then accepted greedily. Covers the two conflict classes — worker
// contention and order-in-two-groups — plus empty rounds, tie-breaking,
// and invariance to the (thread-count-dependent) input order.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "src/strategy/decision.h"

namespace watter {
namespace {

DispatchOffer MakeOffer(OrderId anchor, std::vector<OrderId> members,
                        WorkerId worker, double cost) {
  DispatchOffer offer;
  offer.anchor = anchor;
  offer.members = std::move(members);
  std::sort(offer.members.begin(), offer.members.end());
  offer.worker = worker;
  offer.cost = cost;
  return offer;
}

struct ConflictCase {
  std::string name;
  std::vector<DispatchOffer> offers;
  // Expected outcomes per *sorted* offer position, and the anchors in
  // sorted order (documents the total order the expectation refers to).
  std::vector<OrderId> sorted_anchors;
  std::vector<OfferOutcome> expected;
};

std::vector<ConflictCase> AllCases() {
  return {
      {"EmptyRound", {}, {}, {}},

      {"SingleOfferCommits",
       {MakeOffer(1, {1, 2}, 7, 10.0)},
       {1},
       {OfferOutcome::kCommitted}},

      // Two groups want worker 7; the cheaper one wins, the loser waits
      // for the next round.
      {"WorkerContentionCheapestWins",
       {MakeOffer(1, {1, 2}, 7, 20.0), MakeOffer(3, {3, 4}, 7, 10.0)},
       {3, 1},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict}},

      // Equal costs: the anchor id breaks the tie, so the result is still
      // a pure function of the offer set.
      {"WorkerContentionTieBreaksByAnchor",
       {MakeOffer(5, {5, 6}, 7, 10.0), MakeOffer(2, {2, 9}, 7, 10.0)},
       {2, 5},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict}},

      // Order 2 sits in two proposed groups (its own anchor's and order
      // 1's). Once {1,2} commits, the {2,3} offer has a dispatched rider.
      {"OrderInTwoGroups",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(2, {2, 3}, 8, 12.0)},
       {1, 2},
       {OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}},

      // The same group proposed by two of its members dedupes naturally:
      // the second copy loses every member to the first.
      {"SameGroupTwiceDedupes",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(2, {1, 2}, 7, 10.0)},
       {1, 2},
       {OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}},

      // Order overlap is classified before worker contention: an offer
      // whose riders already left has nothing to dispatch, whoever holds
      // the worker.
      {"OrderConflictBeatsWorkerConflict",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(2, {2, 3}, 7, 12.0)},
       {1, 2},
       {OfferOutcome::kCommitted, OfferOutcome::kOrderConflict}},

      // A conflict loser does not block later compatible offers: the
      // middle offer loses worker 7, but the third (distinct worker and
      // riders) still commits.
      {"LoserDoesNotCascade",
       {MakeOffer(1, {1, 2}, 7, 10.0), MakeOffer(3, {3, 4}, 7, 11.0),
        MakeOffer(5, {5, 6}, 8, 12.0)},
       {1, 3, 5},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict,
        OfferOutcome::kCommitted}},

      // Solo offers obey the same rules as groups.
      {"SoloContendsLikeAGroup",
       {MakeOffer(1, {1}, 7, 10.0), MakeOffer(2, {2}, 7, 15.0),
        MakeOffer(3, {3}, 9, 20.0)},
       {1, 2, 3},
       {OfferOutcome::kCommitted, OfferOutcome::kWorkerConflict,
        OfferOutcome::kCommitted}},
  };
}

TEST(DispatchConflictTest, TableDrivenResolution) {
  for (const ConflictCase& test_case : AllCases()) {
    SCOPED_TRACE(test_case.name);
    std::vector<DispatchOffer> offers = test_case.offers;
    std::vector<OfferOutcome> outcomes = ResolveOffers(&offers);
    ASSERT_EQ(offers.size(), test_case.sorted_anchors.size());
    ASSERT_EQ(outcomes.size(), test_case.expected.size());
    for (size_t i = 0; i < offers.size(); ++i) {
      EXPECT_EQ(offers[i].anchor, test_case.sorted_anchors[i])
          << "sorted position " << i;
      EXPECT_EQ(outcomes[i], test_case.expected[i]) << "sorted position " << i;
    }
  }
}

TEST(DispatchConflictTest, ResolutionIsInputOrderInvariant) {
  // The propose phase completes offers in a thread-count-dependent order;
  // resolution must erase that. Shuffle each case and require the sorted
  // offers and outcomes to be identical to the unshuffled run.
  std::mt19937 shuffle_rng(12345);
  for (const ConflictCase& test_case : AllCases()) {
    SCOPED_TRACE(test_case.name);
    std::vector<DispatchOffer> reference = test_case.offers;
    std::vector<OfferOutcome> reference_outcomes = ResolveOffers(&reference);
    for (int round = 0; round < 10; ++round) {
      std::vector<DispatchOffer> shuffled = test_case.offers;
      std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
      std::vector<OfferOutcome> outcomes = ResolveOffers(&shuffled);
      ASSERT_EQ(shuffled.size(), reference.size());
      EXPECT_EQ(outcomes, reference_outcomes);
      for (size_t i = 0; i < shuffled.size(); ++i) {
        EXPECT_EQ(shuffled[i].anchor, reference[i].anchor);
        EXPECT_EQ(shuffled[i].worker, reference[i].worker);
      }
    }
  }
}

TEST(DispatchConflictTest, OfferBeforeIsATotalOrderOnDistinctAnchors) {
  DispatchOffer cheap = MakeOffer(2, {2}, 7, 1.0);
  DispatchOffer expensive = MakeOffer(1, {1}, 7, 2.0);
  EXPECT_TRUE(OfferBefore(cheap, expensive));
  EXPECT_FALSE(OfferBefore(expensive, cheap));
  // Equal cost: anchor id decides; an offer never precedes itself.
  DispatchOffer also_cheap = MakeOffer(9, {9}, 3, 1.0);
  EXPECT_TRUE(OfferBefore(cheap, also_cheap));
  EXPECT_FALSE(OfferBefore(also_cheap, cheap));
  EXPECT_FALSE(OfferBefore(cheap, cheap));
}

}  // namespace
}  // namespace watter
