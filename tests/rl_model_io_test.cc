#include <gtest/gtest.h>

#include <cstdio>

#include "src/rl/model_io.h"
#include "src/rl/trainer.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions TinyWorkload() {
  WorkloadOptions workload;
  workload.dataset = DatasetKind::kCdc;
  workload.num_orders = 150;
  workload.num_workers = 25;
  workload.city_width = 10;
  workload.city_height = 10;
  workload.duration = 1200.0;
  workload.seed = 31337;
  workload.city_seed = 555;
  return workload;
}

ExpectTrainOptions TinyTraining() {
  ExpectTrainOptions train;
  train.bootstrap_days = 1;
  train.behavior_days = 1;
  train.epochs = 1;
  train.learner.hidden_layers = {8};
  train.sim.grid_cells = 5;
  return train;
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesBehavior) {
  auto model = TrainExpectModel(TinyWorkload(), TinyTraining());
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  std::string path = testing::TempDir() + "/expect_model.txt";
  ASSERT_TRUE(SaveExpectModel(path, *model).ok());

  auto loaded = LoadExpectModel(path, model->city);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->value->param_count(), model->value->param_count());
  EXPECT_EQ(loaded->mixture->num_components(),
            model->mixture->num_components());
  EXPECT_DOUBLE_EQ(loaded->extra_time_mean, model->extra_time_mean);
  EXPECT_EQ(loaded->experiences, model->experiences);

  // Identical thresholds on identical inputs.
  auto original_provider = model->MakeProvider();
  auto loaded_provider = loaded->MakeProvider();
  PoolContext context;
  Order order;
  order.pickup = 3;
  order.dropoff = 42;
  order.release = 100;
  order.deadline = 1500;
  order.shortest_cost = 700;
  double a = original_provider->ThresholdFor(order, 130, context);
  double b = loaded_provider->ThresholdFor(order, 130, context);
  EXPECT_NEAR(a, b, 1e-4);
}

TEST(ModelIoTest, LoadedModelRunsEvaluation) {
  WorkloadOptions workload = TinyWorkload();
  auto model = TrainExpectModel(workload, TinyTraining());
  ASSERT_TRUE(model.ok());
  std::string path = testing::TempDir() + "/expect_model_eval.txt";
  ASSERT_TRUE(SaveExpectModel(path, *model).ok());
  auto loaded = LoadExpectModel(path, model->city);
  ASSERT_TRUE(loaded.ok());

  auto scenario = GenerateScenario(workload);
  ASSERT_TRUE(scenario.ok());
  auto provider = loaded->MakeProvider();
  SimOptions sim;
  sim.grid_cells = 5;
  MetricsReport report = RunWatter(&*scenario, provider.get(), sim);
  EXPECT_EQ(report.served + report.rejected,
            static_cast<int64_t>(scenario->orders.size()));
  std::remove(path.c_str());
}

TEST(ModelIoTest, SaveRejectsIncompleteModel) {
  ExpectModel empty;
  EXPECT_EQ(SaveExpectModel("/tmp/never_written.txt", empty).code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/garbage_model.txt";
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "definitely not a model\n");
  fclose(f);
  auto model = TrainExpectModel(TinyWorkload(), TinyTraining());
  ASSERT_TRUE(model.ok());
  auto loaded = LoadExpectModel(path, model->city);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsMissingFileAndNullCity) {
  EXPECT_EQ(LoadExpectModel("/nonexistent/model.txt", nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto model = TrainExpectModel(TinyWorkload(), TinyTraining());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(LoadExpectModel("/nonexistent/model.txt", model->city)
                .status()
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace watter
