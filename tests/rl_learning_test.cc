#include <gtest/gtest.h>

#include <cmath>

#include "src/rl/expect_provider.h"
#include "src/rl/featurizer.h"
#include "src/rl/trainer.h"
#include "src/rl/value_learner.h"
#include "src/workload/scenario.h"
#include "tests/test_util.h"

namespace watter {
namespace {

class FeaturizerTest : public testing::Test {
 protected:
  FeaturizerTest()
      : graph_(testutil::MakeExample1Graph()),
        featurizer_(&graph_, /*grid_cells=*/4) {}

  Graph graph_;
  Featurizer featurizer_;
};

TEST_F(FeaturizerTest, FeatureSizeFormula) {
  // 5 * 16 cells + 2 time scalars + 3 magnitude scalars.
  EXPECT_EQ(featurizer_.feature_size(), 5 * 16 + 5);
}

TEST_F(FeaturizerTest, OneHotsAndTimeScalars) {
  Order order;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kF;
  order.release = 43200;  // Noon.
  std::vector<int> counts(16, 0);
  auto env = featurizer_.MakeSnapshot(counts, counts, counts);
  CompactState state = featurizer_.MakeState(order, 43230, env);
  EXPECT_NEAR(state.release_slot, 0.5, 1e-9);
  EXPECT_GT(state.waited_slots, 0.0);
  std::vector<float> features;
  featurizer_.Write(state, &features);
  ASSERT_EQ(features.size(), static_cast<size_t>(featurizer_.feature_size()));
  // Exactly one pickup one-hot and one dropoff one-hot.
  int pickup_hot = 0, dropoff_hot = 0;
  for (int c = 0; c < 16; ++c) {
    pickup_hot += features[c] == 1.0f ? 1 : 0;
    dropoff_hot += features[16 + c] == 1.0f ? 1 : 0;
  }
  EXPECT_EQ(pickup_hot, 1);
  EXPECT_EQ(dropoff_hot, 1);
}

TEST_F(FeaturizerTest, SnapshotNormalizesDistributions) {
  std::vector<int> demand(16, 0);
  demand[3] = 6;
  demand[10] = 2;
  std::vector<int> zeros(16, 0);
  auto env = featurizer_.MakeSnapshot(demand, zeros, zeros);
  EXPECT_FLOAT_EQ(env->demand_pickup_total, 8.0f);
  EXPECT_FLOAT_EQ(env->distributions[3], 0.75f);
  EXPECT_FLOAT_EQ(env->distributions[10], 0.25f);
  // Zero-total blocks stay zero.
  for (int c = 16; c < 48; ++c) EXPECT_FLOAT_EQ(env->distributions[c], 0.0f);
}

TEST_F(FeaturizerTest, WaitedSlotsSaturate) {
  Order order;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kC;
  order.release = 0;
  auto env = featurizer_.MakeSnapshot({}, {}, {});
  CompactState early = featurizer_.MakeState(order, 10, env);
  CompactState late = featurizer_.MakeState(order, 1e7, env);
  EXPECT_LT(early.waited_slots, 0.05);
  EXPECT_FLOAT_EQ(late.waited_slots, 1.0f);
}

TEST(ReplayMemoryTest, RingBufferEviction) {
  ReplayMemory replay(3);
  for (int i = 0; i < 5; ++i) {
    Experience e;
    e.reward = i;
    replay.Add(std::move(e));
  }
  EXPECT_EQ(replay.size(), 3u);
  // Oldest (0, 1) evicted: remaining rewards are 2, 3, 4 in some slots.
  double sum = 0;
  for (size_t i = 0; i < replay.size(); ++i) sum += replay.at(i).reward;
  EXPECT_DOUBLE_EQ(sum, 2 + 3 + 4);
}

TEST(ReplayMemoryTest, SamplingCoversBuffer) {
  ReplayMemory replay(100);
  for (int i = 0; i < 50; ++i) {
    Experience e;
    e.reward = i;
    replay.Add(std::move(e));
  }
  Rng rng(3);
  auto batch = replay.Sample(500, &rng);
  ASSERT_EQ(batch.size(), 500u);
  std::set<double> seen;
  for (const Experience* e : batch) seen.insert(e->reward);
  EXPECT_GT(seen.size(), 30u);
}

TEST(ValueLearnerTest, LearnsTerminalValues) {
  // Single-state world: dispatch reward is always 100. After training,
  // V(s) should approach (1-omega-weighted mix of) 100 and p - theta*.
  Graph graph = testutil::MakeExample1Graph();
  Featurizer featurizer(&graph, 2);
  LearnerOptions options;
  options.hidden_layers = {8};
  options.learning_rate = 2e-2;
  options.omega = 1.0;  // Pure TD: target is exactly the reward.
  options.batch_size = 16;
  options.seed = 3;
  ValueLearner learner(&featurizer, options);

  Order order;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kF;
  order.release = 1000;
  auto env = featurizer.MakeSnapshot({}, {}, {});
  CompactState state = featurizer.MakeState(order, 1010, env);
  for (int i = 0; i < 64; ++i) {
    Experience e;
    e.state = state;
    e.action = 1;
    e.reward = 100.0;
    e.terminal = true;
    e.penalty = 120.0;
    e.theta_star = 20.0;
    learner.replay().Add(std::move(e));
  }
  learner.Train(/*epochs=*/200);
  EXPECT_NEAR(learner.Value(state), 100.0, 5.0);
}

TEST(ValueLearnerTest, TargetLossAnchorsValue) {
  Graph graph = testutil::MakeExample1Graph();
  Featurizer featurizer(&graph, 2);
  LearnerOptions options;
  options.hidden_layers = {8};
  options.learning_rate = 2e-2;
  options.omega = 0.0;  // Pure target loss: V -> p - theta*.
  options.batch_size = 16;
  options.seed = 4;
  ValueLearner learner(&featurizer, options);
  Order order;
  order.pickup = testutil::kD;
  order.dropoff = testutil::kC;
  auto env = featurizer.MakeSnapshot({}, {}, {});
  CompactState state = featurizer.MakeState(order, 5, env);
  for (int i = 0; i < 64; ++i) {
    Experience e;
    e.state = state;
    e.action = 1;
    e.reward = -1000.0;  // Would drag V down if TD mattered.
    e.terminal = true;
    e.penalty = 300.0;
    e.theta_star = 100.0;
    learner.replay().Add(std::move(e));
  }
  learner.Train(200);
  EXPECT_NEAR(learner.Value(state), 200.0, 10.0);
}

TEST(ValueLearnerTest, WaitTransitionsBootstrapFromTarget) {
  // Chain: s0 -wait(-10)-> s1 -dispatch(+50). With gamma=1, V(s0) -> 40.
  Graph graph = testutil::MakeExample1Graph();
  Featurizer featurizer(&graph, 2);
  LearnerOptions options;
  options.hidden_layers = {8};
  options.learning_rate = 5e-3;
  options.gamma = 1.0;
  options.omega = 1.0;
  options.batch_size = 32;
  options.target_sync_interval = 25;
  options.seed = 5;
  ValueLearner learner(&featurizer, options);
  Order order;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kC;
  order.release = 0;
  auto env = featurizer.MakeSnapshot({}, {}, {});
  CompactState s0 = featurizer.MakeState(order, 10, env);
  CompactState s1 = featurizer.MakeState(order, 200, env);  // Waited longer.
  for (int i = 0; i < 64; ++i) {
    Experience wait;
    wait.state = s0;
    wait.action = 0;
    wait.reward = -10.0;
    wait.elapsed = 10.0;
    wait.terminal = false;
    wait.next_state = s1;
    learner.replay().Add(std::move(wait));
    Experience dispatch;
    dispatch.state = s1;
    dispatch.action = 1;
    dispatch.reward = 50.0;
    dispatch.terminal = true;
    learner.replay().Add(std::move(dispatch));
  }
  learner.Train(300);
  EXPECT_NEAR(learner.Value(s1), 50.0, 5.0);
  EXPECT_NEAR(learner.Value(s0), 40.0, 6.0);
}

TEST(ExpectProviderTest, ThresholdIsPenaltyMinusValueClamped) {
  Graph graph = testutil::MakeExample1Graph();
  Featurizer featurizer(&graph, 2);
  Mlp value({featurizer.feature_size(), 1}, 1);
  // Zero all weights: V(s) = bias = 30.
  std::fill(value.params().begin(), value.params().end(), 0.0f);
  value.params().back() = 30.0f;
  ExpectThresholdProvider provider(&featurizer, &value);
  PoolContext context;
  Order order;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kC;
  order.release = 0;
  order.deadline = 150;
  order.shortest_cost = 50;  // Penalty = 100.
  EXPECT_NEAR(provider.ThresholdFor(order, 10, context), 70.0, 1e-4);
  // Huge value clamps to zero threshold.
  value.params().back() = 1e6f;
  EXPECT_DOUBLE_EQ(provider.ThresholdFor(order, 10, context), 0.0);
  // Negative value clamps to the penalty.
  value.params().back() = -1e6f;
  EXPECT_DOUBLE_EQ(provider.ThresholdFor(order, 10, context), 100.0);
}

TEST(TrainerTest, EndToEndTrainingProducesModel) {
  WorkloadOptions workload;
  workload.dataset = DatasetKind::kCdc;
  workload.num_orders = 200;
  workload.num_workers = 30;
  workload.city_width = 12;
  workload.city_height = 12;
  workload.duration = 1800.0;
  workload.seed = 4242;

  ExpectTrainOptions train;
  train.bootstrap_days = 1;
  train.behavior_days = 1;
  train.epochs = 1;
  train.learner.hidden_layers = {16};
  train.sim.grid_cells = 6;

  auto model = TrainExpectModel(workload, train);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_NE(model->value, nullptr);
  EXPECT_NE(model->mixture, nullptr);
  EXPECT_GT(model->experiences, 0u);
  EXPECT_GT(model->extra_time_mean, 0.0);

  // The trained provider must run a full evaluation day.
  auto scenario = GenerateScenario(workload);
  ASSERT_TRUE(scenario.ok());
  auto provider = model->MakeProvider();
  SimOptions sim;
  sim.grid_cells = 6;
  MetricsReport report = RunWatter(&*scenario, provider.get(), sim);
  EXPECT_EQ(report.served + report.rejected,
            static_cast<int64_t>(scenario->orders.size()));
  EXPECT_GT(report.service_rate, 0.2);
}

TEST(TrainerTest, CollectorBuildsTransitionsFromObservations) {
  Graph graph = testutil::MakeExample1Graph();
  Featurizer featurizer(&graph, 2);
  auto mixture = GaussianMixture::Create(
      {{.weight = 1.0, .mean = 100, .variance = 400}});
  ASSERT_TRUE(mixture.ok());
  ThresholdTable table(std::move(mixture).value());
  ReplayMemory replay(100);
  ExperienceCollector collector(&featurizer, &table, &replay);

  Order order;
  order.id = 1;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kC;
  order.release = 0;
  order.deadline = 600;
  order.shortest_cost = 120;  // Penalty 480.
  std::vector<int> counts(4, 1);

  auto observe = [&](Time now, int action, bool expired, double detour) {
    DecisionObservation obs;
    obs.order = order.id;
    obs.order_ref = &order;
    obs.now = now;
    obs.action = action;
    obs.expired = expired;
    obs.detour = detour;
    obs.demand_pickup = &counts;
    obs.demand_dropoff = &counts;
    obs.supply = &counts;
    collector.OnObservation(obs);
  };

  observe(5, 0, false, 0);    // First sight: pending only.
  EXPECT_EQ(replay.size(), 0u);
  observe(10, 0, false, 0);   // Wait transition 5 -> 10.
  EXPECT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay.at(0).action, 0);
  EXPECT_DOUBLE_EQ(replay.at(0).reward, -5.0);
  EXPECT_FALSE(replay.at(0).terminal);
  observe(20, 1, false, 30);  // Wait 10 -> 20 plus terminal dispatch.
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_DOUBLE_EQ(replay.at(1).reward, -10.0);
  EXPECT_EQ(replay.at(2).action, 1);
  EXPECT_DOUBLE_EQ(replay.at(2).reward, 480.0 - 30.0);
  EXPECT_TRUE(replay.at(2).terminal);
  EXPECT_EQ(collector.transitions(), 3);

  // A fresh order that expires.
  order.id = 2;
  observe(5, 0, false, 0);
  observe(30, 0, true, 0);  // Expiry: terminal wait with no future.
  ASSERT_EQ(replay.size(), 4u);
  EXPECT_TRUE(replay.at(3).terminal);
  EXPECT_DOUBLE_EQ(replay.at(3).reward, -25.0);
}

}  // namespace
}  // namespace watter
