// Parameterized sweep: the accounting invariants must hold for every
// (dataset, strategy) combination and across workload knobs. This is the
// broad safety net behind the figure benches.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/baseline/nonsharing.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

using ParamTuple = std::tuple<DatasetKind, std::string>;

class DatasetStrategyTest : public testing::TestWithParam<ParamTuple> {};

MetricsReport RunStrategy(const std::string& strategy, Scenario* scenario) {
  if (strategy == "online") {
    OnlineThresholdProvider provider;
    return RunWatter(scenario, &provider);
  }
  if (strategy == "timeout") {
    TimeoutThresholdProvider provider;
    return RunWatter(scenario, &provider);
  }
  if (strategy == "fixed") {
    FixedThresholdProvider provider(90.0);
    return RunWatter(scenario, &provider);
  }
  if (strategy == "gdp") return RunGdp(scenario);
  if (strategy == "gas") return RunGas(scenario);
  return RunNonSharing(scenario);
}

TEST_P(DatasetStrategyTest, AccountingAndBoundsHold) {
  auto [dataset, strategy] = GetParam();
  WorkloadOptions options;
  options.dataset = dataset;
  options.num_orders = 350;
  options.num_workers = 45;
  options.city_width = 16;
  options.city_height = 16;
  options.duration = 2400.0;
  options.seed = 9090 + static_cast<uint64_t>(dataset);
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  MetricsReport report = RunStrategy(strategy, &*scenario);

  EXPECT_EQ(report.served + report.rejected, 350) << strategy;
  EXPECT_NEAR(report.metrs_objective,
              report.total_extra_time + report.total_metrs_penalty, 1e-6);
  EXPECT_GE(report.unified_cost, report.worker_travel);
  EXPECT_GE(report.avg_response, 0.0);
  EXPECT_GE(report.avg_detour, 0.0);
  EXPECT_GE(report.avg_group_size, report.served > 0 ? 1.0 : 0.0);
  EXPECT_LE(report.avg_group_size, kMaxGroupSize);
  EXPECT_GT(report.service_rate, 0.25) << strategy;  // Nothing collapses.
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DatasetStrategyTest,
    testing::Combine(testing::Values(DatasetKind::kNyc, DatasetKind::kCdc,
                                     DatasetKind::kXia),
                     testing::Values("online", "timeout", "fixed", "gdp",
                                     "gas", "nonsharing")),
    [](const testing::TestParamInfo<ParamTuple>& info) {
      return std::string(DatasetName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param);
    });

class RiderCountTest : public testing::TestWithParam<int> {};

TEST_P(RiderCountTest, MultiRiderOrdersAreServedWithinCapacity) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 300;
  options.num_workers = 50;
  options.city_width = 14;
  options.city_height = 14;
  options.duration = 1800.0;
  options.max_capacity = 5;
  options.max_riders = GetParam();
  options.seed = 777;
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  bool any_multi = false;
  for (const Order& order : scenario->orders) {
    EXPECT_GE(order.riders, 1);
    EXPECT_LE(order.riders, GetParam());
    any_multi |= order.riders > 1;
  }
  EXPECT_EQ(any_multi, GetParam() > 1);

  OnlineThresholdProvider provider;
  WatterPlatform platform(&*scenario, &provider, SimOptions{});
  MetricsReport report = platform.Run();
  EXPECT_EQ(report.served + report.rejected, 300);
  EXPECT_GT(report.service_rate, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Riders, RiderCountTest, testing::Values(1, 2, 3));

TEST(RiderValidationTest, RejectsRidersAboveCapacity) {
  WorkloadOptions options;
  options.max_capacity = 3;
  options.max_riders = 4;
  EXPECT_FALSE(GenerateScenario(options).ok());
  options.max_riders = 0;
  EXPECT_FALSE(GenerateScenario(options).ok());
}

class NonSharingTest : public testing::Test {};

TEST_F(NonSharingTest, ServesAllWithAmpleFleet) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 200;
  options.num_workers = 100;
  options.city_width = 14;
  options.city_height = 14;
  options.duration = 3600.0;
  options.seed = 31;
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  MetricsReport report = RunNonSharing(&*scenario);
  EXPECT_GT(report.service_rate, 0.95);
  EXPECT_DOUBLE_EQ(report.avg_detour, 0.0);
}

TEST_F(NonSharingTest, FifoQueueDrainsDeterministically) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kXia;
  options.num_orders = 300;
  options.num_workers = 10;  // Starved: the queue matters.
  options.city_width = 14;
  options.city_height = 14;
  options.duration = 1800.0;
  options.seed = 32;
  auto a = GenerateScenario(options);
  auto b = GenerateScenario(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MetricsReport ra = RunNonSharing(&*a);
  MetricsReport rb = RunNonSharing(&*b);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_DOUBLE_EQ(ra.unified_cost, rb.unified_cost);
  EXPECT_GT(ra.rejected, 0);
}

}  // namespace
}  // namespace watter
