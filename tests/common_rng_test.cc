#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace watter {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    int64_t v = rng.UniformInt(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++counts[v - 2];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 expected per bucket.
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, PoissonMeanApproximate) {
  Rng rng(17);
  for (double mean : {0.5, 4.0, 30.0, 120.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
}

TEST(RngTest, SampleIndexFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.SampleIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
  EXPECT_GT(counts[0], 1000);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.Next() == child.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace watter
