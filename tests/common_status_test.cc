#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/status.h"

namespace watter {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("order 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "order 42");
  EXPECT_EQ(s.ToString(), "NotFound: order 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Infeasible("x"), Status::Infeasible("x"));
  EXPECT_NE(Status::Infeasible("x"), Status::Infeasible("y"));
  EXPECT_NE(Status::Infeasible("x"), Status::Internal("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 8; ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)), "Unknown");
  }
}

Status FailingOperation() { return Status::IoError("disk on fire"); }

Status Propagates() {
  WATTER_RETURN_IF_ERROR(FailingOperation());
  return Status::Internal("should not reach here");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates(), Status::IoError("disk on fire"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int input, int* out) {
  WATTER_ASSIGN_OR_RETURN(*out, HalfOf(input));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 9);
}

}  // namespace
}  // namespace watter
