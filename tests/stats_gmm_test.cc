#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/stats/em_fitter.h"
#include "src/stats/gmm.h"
#include "src/stats/histogram.h"

namespace watter {
namespace {

TEST(GmmTest, CreateValidatesComponents) {
  EXPECT_FALSE(GaussianMixture::Create({}).ok());
  EXPECT_FALSE(
      GaussianMixture::Create({{.weight = -1, .mean = 0, .variance = 1}})
          .ok());
  EXPECT_FALSE(
      GaussianMixture::Create({{.weight = 1, .mean = 0, .variance = 0}})
          .ok());
  auto ok = GaussianMixture::Create(
      {{.weight = 2, .mean = 0, .variance = 1},
       {.weight = 2, .mean = 5, .variance = 1}});
  ASSERT_TRUE(ok.ok());
  // Weights renormalized.
  EXPECT_DOUBLE_EQ(ok->components()[0].weight, 0.5);
}

TEST(GmmTest, SingleComponentMatchesNormal) {
  auto gmm =
      GaussianMixture::Create({{.weight = 1, .mean = 2, .variance = 4}});
  ASSERT_TRUE(gmm.ok());
  EXPECT_NEAR(gmm->Cdf(2.0), 0.5, 1e-12);
  EXPECT_NEAR(gmm->Cdf(4.0), GaussianMixture::StandardNormalCdf(1.0), 1e-12);
  EXPECT_NEAR(gmm->Pdf(2.0), 1.0 / std::sqrt(2 * M_PI * 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(gmm->Mean(), 2.0);
  EXPECT_DOUBLE_EQ(gmm->Variance(), 4.0);
}

TEST(GmmTest, CdfIsMonotoneAndNormalized) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 0.3, .mean = -3, .variance = 1},
       {.weight = 0.7, .mean = 4, .variance = 2}});
  ASSERT_TRUE(gmm.ok());
  double previous = 0.0;
  for (double x = -10; x <= 12; x += 0.25) {
    double cdf = gmm->Cdf(x);
    EXPECT_GE(cdf, previous - 1e-12);
    previous = cdf;
  }
  EXPECT_NEAR(gmm->Cdf(-50), 0.0, 1e-9);
  EXPECT_NEAR(gmm->Cdf(60), 1.0, 1e-9);
}

TEST(GmmTest, MixtureMomentsFollowTotalVariance) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 0.5, .mean = 0, .variance = 1},
       {.weight = 0.5, .mean = 10, .variance = 1}});
  ASSERT_TRUE(gmm.ok());
  EXPECT_DOUBLE_EQ(gmm->Mean(), 5.0);
  EXPECT_DOUBLE_EQ(gmm->Variance(), 1.0 + 25.0);
}

TEST(EmFitterTest, RecoversTwoWellSeparatedClusters) {
  Rng rng(7);
  std::vector<double> data;
  for (int i = 0; i < 3000; ++i) data.push_back(rng.Normal(10.0, 2.0));
  for (int i = 0; i < 1000; ++i) data.push_back(rng.Normal(60.0, 5.0));
  auto fit = FitGmm(data, {.num_components = 2, .seed = 3});
  ASSERT_TRUE(fit.ok());
  auto comps = fit->components();
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.mean < b.mean; });
  EXPECT_NEAR(comps[0].mean, 10.0, 0.5);
  EXPECT_NEAR(comps[1].mean, 60.0, 1.5);
  EXPECT_NEAR(comps[0].weight, 0.75, 0.05);
  EXPECT_NEAR(std::sqrt(comps[0].variance), 2.0, 0.4);
  EXPECT_NEAR(std::sqrt(comps[1].variance), 5.0, 1.0);
}

TEST(EmFitterTest, MoreComponentsNeverHurtLikelihoodMuch) {
  Rng rng(11);
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) data.push_back(rng.Normal(8.0, 1.0));
  auto one = FitGmm(data, {.num_components = 1, .seed = 5});
  auto two = FitGmm(data, {.num_components = 2, .seed = 5});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_GT(AverageLogLikelihood(*two, data),
            AverageLogLikelihood(*one, data) + 0.3);
}

TEST(EmFitterTest, HandlesDegenerateData) {
  std::vector<double> constant(50, 3.0);
  auto fit = FitGmm(constant, {.num_components = 3, .seed = 1});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->Mean(), 3.0, 1e-6);
  // CDF still valid around the atom.
  EXPECT_LT(fit->Cdf(2.9), 0.01);
  EXPECT_GT(fit->Cdf(3.1), 0.99);
}

TEST(EmFitterTest, RejectsBadInputs) {
  EXPECT_FALSE(FitGmm({}, {.num_components = 2}).ok());
  EXPECT_FALSE(FitGmm({1.0, 2.0}, {.num_components = 0}).ok());
}

TEST(EmFitterTest, MoreComponentsThanSamplesDegradesGracefully) {
  auto fit = FitGmm({1.0, 5.0}, {.num_components = 8, .seed = 2});
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->num_components(), 2);
}

TEST(HistogramTest, CountsMeanAndRange) {
  Histogram hist(0, 10, 10);
  for (int i = 0; i < 10; ++i) hist.Add(i + 0.5);
  EXPECT_EQ(hist.count(), 10);
  EXPECT_DOUBLE_EQ(hist.mean(), 5.0);
  EXPECT_DOUBLE_EQ(hist.min_seen(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max_seen(), 9.5);
  for (int64_t c : hist.bin_counts()) EXPECT_EQ(c, 1);
}

TEST(HistogramTest, OutOfRangeClampsIntoBoundaryBins) {
  Histogram hist(0, 10, 5);
  hist.Add(-100);
  hist.Add(100);
  EXPECT_EQ(hist.bin_counts().front(), 1);
  EXPECT_EQ(hist.bin_counts().back(), 1);
  EXPECT_EQ(hist.count(), 2);
}

TEST(HistogramTest, QuantilesApproximateUniform) {
  Histogram hist(0, 1, 100);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) hist.Add(rng.Uniform());
  EXPECT_NEAR(hist.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(hist.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(hist.Quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram hist(0, 1, 4);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace watter
