#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/csv.h"
#include "src/common/stopwatch.h"
#include "src/common/table.h"

namespace watter {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripSimple) {
  CsvDocument doc;
  doc.header = {"a", "b", "c"};
  doc.rows = {{"1", "2", "3"}, {"x", "y", "z"}};
  std::string path = TempPath("simple.csv");
  ASSERT_TRUE(WriteCsv(path, doc).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, doc.header);
  EXPECT_EQ(loaded->rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, RoundTripQuotedFields) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"a,b", "says \"hi\""}, {"plain", "with,comma"}};
  std::string path = TempPath("quoted.csv");
  ASSERT_TRUE(WriteCsv(path, doc).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, SplitLineHandlesEscapes) {
  auto fields = SplitCsvLine("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvDocument doc;
  doc.header = {"x", "y"};
  EXPECT_EQ(doc.ColumnIndex("y"), 1);
  EXPECT_EQ(doc.ColumnIndex("missing"), -1);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto loaded = ReadCsv("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(TableTest, AlignsColumns) {
  Table table({"algo", "cost"});
  table.AddRow({"GDP", "12"});
  table.AddRow({"WATTER-expect", "5"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("WATTER-expect  5"), std::string::npos);
  EXPECT_NE(rendered.find("algo"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(StopwatchTest, AccumulatesAcrossIntervals) {
  Stopwatch watch;
  watch.Start();
  watch.Stop();
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  watch.Start();
  watch.Stop();
  EXPECT_GE(watch.ElapsedSeconds(), first);
  watch.Reset();
  EXPECT_EQ(watch.ElapsedSeconds(), 0.0);
}

TEST(StopwatchTest, ScopedTimerAddsTime) {
  Stopwatch watch;
  {
    ScopedTimer timer(&watch);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
    (void)sink;
  }
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace watter
