#include <gtest/gtest.h>

#include <vector>

#include "src/pool/order_pool.h"
#include "tests/test_util.h"

namespace watter {
namespace {

constexpr double kMin = 60.0;

PoolOptions PermissiveOptions() {
  PoolOptions options;
  options.include_singletons = true;
  return options;
}

class OrderPoolTest : public testing::Test {
 protected:
  OrderPoolTest()
      : graph_(testutil::MakeExample1Graph()),
        oracle_(&graph_),
        pool_(&oracle_, PermissiveOptions()),
        paper_pool_(&oracle_, PoolOptions{}),
        orders_(testutil::MakeExample1Orders()) {}

  Graph graph_;
  DijkstraOracle oracle_;
  // `pool_` includes singleton groups (permissive mode) so the tests can
  // compare shared groups against solo service directly; `paper_pool_` uses
  // the paper semantics (shared groups only).
  OrderPool pool_;
  OrderPool paper_pool_;
  std::vector<Order> orders_;
};

TEST_F(OrderPoolTest, SingletonBestGroupForLoneOrder) {
  ASSERT_TRUE(pool_.Insert(orders_[0], orders_[0].release).ok());
  const BestGroup* best = pool_.BestFor(orders_[0].id, orders_[0].release);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{orders_[0].id}));
  EXPECT_DOUBLE_EQ(best->plan.total_cost, 2 * kMin);
  EXPECT_DOUBLE_EQ(best->sum_detour, 0.0);  // Direct route: no detour.
}

TEST_F(OrderPoolTest, PaperSemanticsLoneOrderHasNoGroup) {
  // With shared-only semantics a lone order has no group arrangement to
  // rate, so Gb holds nothing for it (Algorithm 1 line 10: "if g exists").
  ASSERT_TRUE(paper_pool_.Insert(orders_[0], orders_[0].release).ok());
  EXPECT_EQ(paper_pool_.BestFor(orders_[0].id, orders_[0].release), nullptr);
}

TEST_F(OrderPoolTest, PaperSemanticsPairBecomesGroup) {
  Order a{.id = 71, .pickup = testutil::kD, .dropoff = testutil::kF,
          .riders = 1, .release = 0, .deadline = 30 * kMin,
          .wait_limit = 5 * kMin, .shortest_cost = 2 * kMin};
  Order b = a;
  b.id = 72;
  b.release = 5;
  b.deadline = 5 + 30 * kMin;
  ASSERT_TRUE(paper_pool_.Insert(a, 0).ok());
  EXPECT_EQ(paper_pool_.BestFor(a.id, 0), nullptr);
  ASSERT_TRUE(paper_pool_.Insert(b, 5).ok());
  const BestGroup* best = paper_pool_.BestFor(a.id, 5);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{71, 72}));
}

Order IdenticalTrip(OrderId id, Time release, NodeId pickup, NodeId dropoff,
                    double shortest, Time deadline_slack = 60 * kMin) {
  return Order{.id = id, .pickup = pickup, .dropoff = dropoff, .riders = 1,
               .release = release, .deadline = release + deadline_slack,
               .wait_limit = 10 * kMin, .shortest_cost = shortest};
}

TEST_F(OrderPoolTest, PairedGroupBeatsSingletonWhenDetourFree) {
  // Two identical d->f trips: the shared route d->e->f serves both with
  // zero detour under Definition 5 (their completions equal the shortest
  // cost). The pair's average response is lower than the earlier order's
  // own response, so the pair strictly beats the singleton.
  Order a = IdenticalTrip(21, 8, testutil::kD, testutil::kF, 2 * kMin);
  Order b = IdenticalTrip(22, 12, testutil::kD, testutil::kF, 2 * kMin);
  ASSERT_TRUE(pool_.Insert(a, a.release).ok());
  ASSERT_TRUE(pool_.Insert(b, b.release).ok());
  Time now = b.release;
  const BestGroup* best = pool_.BestFor(a.id, now);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{21, 22}));
  EXPECT_DOUBLE_EQ(best->sum_detour, 0.0);
  EXPECT_DOUBLE_EQ(best->plan.total_cost, 2 * kMin);
  // Average extra: responses (12-8) and (12-12) average to 2 seconds; the
  // singleton would cost 4.
  ExtraTimeWeights weights;
  EXPECT_DOUBLE_EQ(best->AverageExtraTime(now, weights), 2.0);
}

TEST_F(OrderPoolTest, Definition5CountsPrePickupRidingAsDetour) {
  // o2 (d->f) and o4 (e->f) share route d->e->f. o4 boards at offset 1 min
  // and alights at 2 min, but Definition 5 measures T(L^(i)) from the
  // route's first stop, so o4's "detour" is 2 min - 1 min = 1 min even
  // though it rides the shortest path. This makes the singleton better for
  // o2 at o4's release, which is exactly what the pool must conclude.
  ASSERT_TRUE(pool_.Insert(orders_[1], orders_[1].release).ok());
  ASSERT_TRUE(pool_.Insert(orders_[3], orders_[3].release).ok());
  Time now = orders_[3].release;
  ASSERT_TRUE(pool_.graph().HasEdge(orders_[1].id, orders_[3].id));
  const BestGroup* best = pool_.BestFor(orders_[1].id, now);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{orders_[1].id}));
}

TEST_F(OrderPoolTest, AverageExtraTimeGrowsWithWaiting) {
  ASSERT_TRUE(pool_.Insert(orders_[0], orders_[0].release).ok());
  const BestGroup* best = pool_.BestFor(orders_[0].id, orders_[0].release);
  ASSERT_NE(best, nullptr);
  ExtraTimeWeights weights;
  double at_release = best->AverageExtraTime(orders_[0].release, weights);
  double later = best->AverageExtraTime(orders_[0].release + 30, weights);
  EXPECT_DOUBLE_EQ(at_release, 0.0);
  EXPECT_DOUBLE_EQ(later, 30.0);
}

TEST_F(OrderPoolTest, BestGroupUpdatesWhenBetterPartnerArrives) {
  Order a = IdenticalTrip(31, 5, testutil::kA, testutil::kC, 2 * kMin);
  ASSERT_TRUE(pool_.Insert(a, a.release).ok());
  const BestGroup* before = pool_.BestFor(a.id, a.release);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->size(), 1);
  // An identical trip arrives: the pair is detour-free and halves the
  // average response, so it must displace the singleton as best group.
  Order b = IdenticalTrip(32, 10, testutil::kA, testutil::kC, 2 * kMin);
  ASSERT_TRUE(pool_.Insert(b, b.release).ok());
  Time now = b.release;
  const BestGroup* after = pool_.BestFor(a.id, now);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->members, (std::vector<OrderId>{31, 32}));
  ExtraTimeWeights weights;
  // Pair: avg response (5 + 0)/2 = 2.5 vs singleton response 5.
  EXPECT_DOUBLE_EQ(after->AverageExtraTime(now, weights), 2.5);
}

TEST_F(OrderPoolTest, RemovalOfPartnerInvalidatesBestGroup) {
  Order a = IdenticalTrip(41, 8, testutil::kD, testutil::kF, 2 * kMin);
  Order b = IdenticalTrip(42, 12, testutil::kD, testutil::kF, 2 * kMin);
  ASSERT_TRUE(pool_.Insert(a, a.release).ok());
  ASSERT_TRUE(pool_.Insert(b, b.release).ok());
  Time now = b.release;
  const BestGroup* best = pool_.BestFor(a.id, now);
  ASSERT_NE(best, nullptr);
  ASSERT_EQ(best->size(), 2);
  ASSERT_TRUE(pool_.Remove(b.id).ok());
  const BestGroup* after = pool_.BestFor(a.id, now + 1);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->members, (std::vector<OrderId>{41}));
}

TEST_F(OrderPoolTest, ExpiredGroupFallsBackOrDisappears) {
  Order o = orders_[0];
  o.deadline = o.release + 3 * kMin;  // 1 min of slack over the 2-min ride.
  ASSERT_TRUE(pool_.Insert(o, o.release).ok());
  // Within slack: singleton group exists.
  EXPECT_NE(pool_.BestFor(o.id, o.release + 30), nullptr);
  // Past latest dispatch: no feasible group remains.
  EXPECT_EQ(pool_.BestFor(o.id, o.release + 61), nullptr);
}

TEST_F(OrderPoolTest, CapacityLimitsGroupRiders) {
  PoolOptions options;
  options.capacity = 2;
  options.include_singletons = true;
  OrderPool small_pool(&oracle_, options);
  Order o2 = orders_[1];
  o2.riders = 2;
  Order o4 = orders_[3];
  o4.riders = 1;
  ASSERT_TRUE(small_pool.Insert(o2, o2.release).ok());
  ASSERT_TRUE(small_pool.Insert(o4, o4.release).ok());
  // Combined riders (3) exceed capacity 2: no shared group possible.
  const BestGroup* best = small_pool.BestFor(o2.id, o4.release);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->size(), 1);
}

TEST_F(OrderPoolTest, ExpireEdgesMarksAffectedOrdersDirty) {
  // Partner b has a much tighter deadline: the pair edge expires while a's
  // own singleton stays feasible, so the best group must fall back.
  Order a = IdenticalTrip(51, 0, testutil::kD, testutil::kF, 2 * kMin,
                          /*deadline_slack=*/10 * kMin);
  Order b = IdenticalTrip(52, 10, testutil::kD, testutil::kF, 2 * kMin,
                          /*deadline_slack=*/5 * kMin);
  ASSERT_TRUE(pool_.Insert(a, 0).ok());
  ASSERT_TRUE(pool_.Insert(b, 10).ok());
  ASSERT_EQ(pool_.BestFor(a.id, 10)->size(), 2);
  // Pair expiry: b.deadline - 2 min ride = 310 - 120 = 190 s.
  double expiry = pool_.graph().Neighbors(a.id)[0].expiry;
  EXPECT_DOUBLE_EQ(expiry, 190.0);
  pool_.ExpireEdges(expiry + 1);
  const BestGroup* after = pool_.BestFor(a.id, expiry + 1);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->members, (std::vector<OrderId>{51}));
}

TEST_F(OrderPoolTest, BestForUnknownOrderIsNull) {
  EXPECT_EQ(pool_.BestFor(404, 0.0), nullptr);
}

TEST_F(OrderPoolTest, RecomputeCountsAreTracked) {
  ASSERT_TRUE(pool_.Insert(orders_[0], orders_[0].release).ok());
  pool_.BestFor(orders_[0].id, orders_[0].release);
  EXPECT_GE(pool_.best_groups().recompute_count(), 1);
  EXPECT_GE(pool_.best_groups().groups_evaluated(), 1);
}

TEST_F(OrderPoolTest, OversizedCliqueOptionsStaySafe) {
  // CliqueOptions::max_size above kMaxGroupSize emits cliques the planner
  // can never serve. They must be skipped as inadmissible *before* touching
  // the fixed-width plan-cache key (ASan regression: the key holds at most
  // kMaxGroupSize member ids), while every plannable sub-clique still
  // competes normally.
  PoolOptions options;
  options.capacity = 8;
  options.cliques = CliqueOptions{/*max_size=*/7, /*max_visits=*/4096};
  OrderPool pool(&oracle_, options);
  for (OrderId id = 81; id <= 86; ++id) {
    Order order = IdenticalTrip(id, static_cast<Time>(id - 81),
                                testutil::kD, testutil::kF, 2 * kMin);
    ASSERT_TRUE(pool.Insert(order, order.release).ok());
  }
  const BestGroup* best = pool.BestFor(81, 6.0);
  ASSERT_NE(best, nullptr);
  EXPECT_GE(best->size(), 2);
  EXPECT_LE(best->size(), kMaxGroupSize);
}

TEST_F(OrderPoolTest, DepartureDirtiesOwnersThroughReverseIndex) {
  // Three identical trips: every order's best group is a shared group
  // containing partner orders. Removing one partner must dirty exactly the
  // owners whose cached group contained it — via the reverse-membership
  // index, observable through its fan-out counter — and evict its plans.
  Order a = IdenticalTrip(61, 0, testutil::kD, testutil::kF, 2 * kMin);
  Order b = IdenticalTrip(62, 4, testutil::kD, testutil::kF, 2 * kMin);
  Order c = IdenticalTrip(63, 8, testutil::kD, testutil::kF, 2 * kMin);
  ASSERT_TRUE(paper_pool_.Insert(a, a.release).ok());
  ASSERT_TRUE(paper_pool_.Insert(b, b.release).ok());
  ASSERT_TRUE(paper_pool_.Insert(c, c.release).ok());
  Time now = c.release;
  for (OrderId id : {a.id, b.id, c.id}) {
    ASSERT_NE(paper_pool_.BestFor(id, now), nullptr);
  }
  BestGroupMap& map = paper_pool_.best_groups();
  EXPECT_EQ(map.reverse_index_fanout(), 0);
  EXPECT_GT(map.plan_cache_size(), 0u);
  int64_t evictions = map.plan_cache_evictions();

  ASSERT_TRUE(paper_pool_.Remove(b.id).ok());
  // a and c owned groups containing b (identical trips always group).
  EXPECT_EQ(map.reverse_index_fanout(), 2);
  EXPECT_GT(map.plan_cache_evictions(), evictions);

  // The dirtied owners regroup without the departed member.
  const BestGroup* best = paper_pool_.BestFor(a.id, now + 1);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{a.id, c.id}));
}

}  // namespace
}  // namespace watter
