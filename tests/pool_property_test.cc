// Randomized property tests of the order pool: a stream of insertions,
// removals and expiries on a real city must preserve the structural
// invariants of the temporal shareability graph and the best-group map.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/geo/city_generator.h"
#include "src/pool/order_pool.h"

namespace watter {
namespace {

class PoolPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PoolPropertyTest, InvariantsHoldUnderRandomStreams) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());
  OrderPool pool(oracle->get(), PoolOptions{});
  Rng rng(GetParam() * 97 + 1);

  Time now = 0.0;
  OrderId next_id = 1;
  std::vector<OrderId> alive;
  for (int step = 0; step < 300; ++step) {
    now += rng.Uniform(0, 20);
    double action = rng.Uniform();
    if (action < 0.6 || alive.empty()) {
      // Insert a fresh order.
      Order order;
      order.id = next_id++;
      order.pickup = city->RandomNode(&rng);
      do {
        order.dropoff = city->RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = static_cast<int>(rng.UniformInt(1, 2));
      order.release = now;
      order.shortest_cost = (*oracle)->Cost(order.pickup, order.dropoff);
      order.deadline = now + rng.Uniform(1.2, 2.0) * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      ASSERT_TRUE(pool.Insert(order, now).ok());
      alive.push_back(order.id);
    } else if (action < 0.85) {
      // Remove a random resident (simulates dispatch/rejection).
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      ASSERT_TRUE(pool.Remove(alive[pick]).ok());
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    } else {
      pool.ExpireEdges(now);
    }

    // ---- Invariants ----
    ASSERT_EQ(pool.size(), alive.size());
    const ShareabilityGraph& graph = pool.graph();
    int64_t directed_edges = 0;
    for (OrderId id : alive) {
      ASSERT_TRUE(pool.Contains(id));
      for (const ShareEdge& edge : graph.Neighbors(id)) {
        // Symmetry: every edge is mirrored.
        EXPECT_TRUE(graph.HasEdge(edge.other, id))
            << id << "-" << edge.other;
        // Endpoints are resident.
        EXPECT_TRUE(pool.Contains(edge.other));
        // Edge data is sane.
        EXPECT_GT(edge.pair_cost, 0.0);
        ++directed_edges;
      }
    }
    EXPECT_EQ(directed_edges % 2, 0);
    EXPECT_EQ(directed_edges / 2, graph.edge_count());

    // Best groups: verified feasible shared groups containing the owner.
    if (step % 10 == 0) {
      for (OrderId id : alive) {
        const BestGroup* best = pool.BestFor(id, now);
        if (best == nullptr) continue;
        EXPECT_GE(best->size(), 2);
        EXPECT_TRUE(std::binary_search(best->members.begin(),
                                       best->members.end(), id));
        // Members pairwise adjacent (clique property).
        for (size_t i = 0; i < best->members.size(); ++i) {
          for (size_t j = i + 1; j < best->members.size(); ++j) {
            EXPECT_TRUE(graph.HasEdge(best->members[i], best->members[j]));
          }
        }
        // Group not expired and its route is structurally valid.
        EXPECT_GE(best->plan.latest_departure, now);
        std::vector<const Order*> members;
        for (OrderId member : best->members) {
          members.push_back(pool.GetOrder(member));
        }
        EXPECT_TRUE(best->plan.route.SatisfiesPrecedenceAndCapacity(
            members, pool.options().capacity));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolPropertyTest,
                         testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace watter
