// Randomized property tests of the order pool: a stream of insertions,
// removals and expiries on a real city must preserve the structural
// invariants of the temporal shareability graph and the best-group map,
// incremental edge maintenance must match a from-scratch rebuild, and the
// parallel maintenance paths must match the serial ones bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/geo/city_generator.h"
#include "src/pool/order_pool.h"

namespace watter {
namespace {

class PoolPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PoolPropertyTest, InvariantsHoldUnderRandomStreams) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());
  OrderPool pool(oracle->get(), PoolOptions{});
  Rng rng(GetParam() * 97 + 1);

  Time now = 0.0;
  OrderId next_id = 1;
  std::vector<OrderId> alive;
  for (int step = 0; step < 300; ++step) {
    now += rng.Uniform(0, 20);
    double action = rng.Uniform();
    if (action < 0.6 || alive.empty()) {
      // Insert a fresh order.
      Order order;
      order.id = next_id++;
      order.pickup = city->RandomNode(&rng);
      do {
        order.dropoff = city->RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = static_cast<int>(rng.UniformInt(1, 2));
      order.release = now;
      order.shortest_cost = (*oracle)->Cost(order.pickup, order.dropoff);
      order.deadline = now + rng.Uniform(1.2, 2.0) * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      ASSERT_TRUE(pool.Insert(order, now).ok());
      alive.push_back(order.id);
    } else if (action < 0.85) {
      // Remove a random resident (simulates dispatch/rejection).
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      ASSERT_TRUE(pool.Remove(alive[pick]).ok());
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    } else {
      pool.ExpireEdges(now);
    }

    // ---- Invariants ----
    ASSERT_EQ(pool.size(), alive.size());
    const ShareabilityGraph& graph = pool.graph();
    int64_t directed_edges = 0;
    for (OrderId id : alive) {
      ASSERT_TRUE(pool.Contains(id));
      for (const ShareEdge& edge : graph.Neighbors(id)) {
        // Symmetry: every edge is mirrored.
        EXPECT_TRUE(graph.HasEdge(edge.other, id))
            << id << "-" << edge.other;
        // Endpoints are resident.
        EXPECT_TRUE(pool.Contains(edge.other));
        // Edge data is sane.
        EXPECT_GT(edge.pair_cost, 0.0);
        ++directed_edges;
      }
    }
    EXPECT_EQ(directed_edges % 2, 0);
    EXPECT_EQ(directed_edges / 2, graph.edge_count());

    // Best groups: verified feasible shared groups containing the owner.
    if (step % 10 == 0) {
      for (OrderId id : alive) {
        const BestGroup* best = pool.BestFor(id, now);
        if (best == nullptr) continue;
        EXPECT_GE(best->size(), 2);
        EXPECT_TRUE(std::binary_search(best->members.begin(),
                                       best->members.end(), id));
        // Members pairwise adjacent (clique property).
        for (size_t i = 0; i < best->members.size(); ++i) {
          for (size_t j = i + 1; j < best->members.size(); ++j) {
            EXPECT_TRUE(graph.HasEdge(best->members[i], best->members[j]));
          }
        }
        // Group not expired and its route is structurally valid.
        EXPECT_GE(best->plan.latest_departure, now);
        std::vector<const Order*> members;
        for (OrderId member : best->members) {
          members.push_back(pool.GetOrder(member));
        }
        EXPECT_TRUE(best->plan.route.SatisfiesPrecedenceAndCapacity(
            members, pool.options().capacity));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolPropertyTest,
                         testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Incremental maintenance vs. from-scratch rebuild, and parallel vs. serial.
// ---------------------------------------------------------------------------

// One scripted mutation, pre-generated so the same stream can be replayed
// into several pools.
struct PoolOp {
  enum Kind { kInsert, kRemove, kExpire } kind;
  Order order;          // kInsert.
  Time inserted_at = 0; // kInsert.
  OrderId target = kInvalidOrder;  // kRemove.
  Time now = 0;
};

// A deterministic random op stream over a generated city. Also returns the
// final timestamp via `end_time`.
std::vector<PoolOp> MakeOpStream(const City& city, TravelTimeOracle* oracle,
                                 uint64_t seed, int steps, Time* end_time) {
  Rng rng(seed * 131 + 5);
  Time now = 0.0;
  OrderId next_id = 1;
  std::vector<OrderId> alive;
  std::vector<PoolOp> ops;
  for (int step = 0; step < steps; ++step) {
    now += rng.Uniform(0, 20);
    double action = rng.Uniform();
    PoolOp op;
    op.now = now;
    if (action < 0.6 || alive.empty()) {
      Order order;
      order.id = next_id++;
      order.pickup = city.RandomNode(&rng);
      do {
        order.dropoff = city.RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = static_cast<int>(rng.UniformInt(1, 2));
      order.release = now;
      order.shortest_cost = oracle->Cost(order.pickup, order.dropoff);
      order.deadline = now + rng.Uniform(1.2, 2.0) * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      op.kind = PoolOp::kInsert;
      op.order = order;
      op.inserted_at = now;
      alive.push_back(order.id);
    } else if (action < 0.85) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      op.kind = PoolOp::kRemove;
      op.target = alive[pick];
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    } else {
      op.kind = PoolOp::kExpire;
    }
    ops.push_back(op);
  }
  *end_time = now;
  return ops;
}

void ApplyOp(OrderPool* pool, const PoolOp& op) {
  switch (op.kind) {
    case PoolOp::kInsert:
      ASSERT_TRUE(pool->Insert(op.order, op.inserted_at).ok());
      break;
    case PoolOp::kRemove:
      ASSERT_TRUE(pool->Remove(op.target).ok());
      break;
    case PoolOp::kExpire:
      pool->ExpireEdges(op.now);
      break;
  }
}

// Adjacency snapshot with edges sorted by neighbor id, for exact comparison.
std::map<OrderId, std::vector<ShareEdge>> SnapshotEdges(
    const ShareabilityGraph& graph) {
  std::map<OrderId, std::vector<ShareEdge>> snapshot;
  for (OrderId id : graph.OrderIds()) {
    std::vector<ShareEdge> edges = graph.Neighbors(id);
    std::sort(edges.begin(), edges.end(),
              [](const ShareEdge& a, const ShareEdge& b) {
                return a.other < b.other;
              });
    snapshot.emplace(id, std::move(edges));
  }
  return snapshot;
}

void ExpectSameEdges(const std::map<OrderId, std::vector<ShareEdge>>& a,
                     const std::map<OrderId, std::vector<ShareEdge>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [id, edges_a] : a) {
    auto it = b.find(id);
    ASSERT_NE(it, b.end()) << "node " << id << " missing";
    const std::vector<ShareEdge>& edges_b = it->second;
    ASSERT_EQ(edges_a.size(), edges_b.size()) << "node " << id;
    for (size_t i = 0; i < edges_a.size(); ++i) {
      EXPECT_EQ(edges_a[i].other, edges_b[i].other) << "node " << id;
      // Bitwise: both sides run the identical planner computation.
      EXPECT_EQ(edges_a[i].expiry, edges_b[i].expiry) << "node " << id;
      EXPECT_EQ(edges_a[i].pair_cost, edges_b[i].pair_cost) << "node " << id;
    }
  }
}

class PoolRebuildPropertyTest : public testing::TestWithParam<uint64_t> {};

// After an arbitrary insert/remove/expire stream, the incrementally
// maintained graph must equal a graph rebuilt from scratch by replaying the
// surviving orders chronologically at their original insertion times (both
// trimmed to the same `now`): incremental maintenance may never leave ghost
// edges behind nor lose live ones.
TEST_P(PoolRebuildPropertyTest, IncrementalEdgesMatchFromScratchRebuild) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());

  Time end_time = 0.0;
  std::vector<PoolOp> ops =
      MakeOpStream(*city, oracle->get(), GetParam(), 250, &end_time);

  OrderPool incremental(oracle->get(), PoolOptions{});
  std::map<OrderId, PoolOp> alive;  // Insert ops of resident orders.
  int checkpoints = 0;
  for (size_t step = 0; step < ops.size(); ++step) {
    const PoolOp& op = ops[step];
    ApplyOp(&incremental, op);
    if (testing::Test::HasFatalFailure()) return;
    if (op.kind == PoolOp::kInsert) alive.emplace(op.order.id, op);
    if (op.kind == PoolOp::kRemove) alive.erase(op.target);

    if (step % 50 != 49 && step + 1 != ops.size()) continue;
    ++checkpoints;
    Time now = op.now;
    // Rebuild from scratch: replay the survivors chronologically (std::map
    // iterates ascending ids == ascending insertion order here).
    OrderPool rebuilt(oracle->get(), PoolOptions{});
    for (const auto& [id, insert_op] : alive) {
      ASSERT_TRUE(rebuilt.Insert(insert_op.order, insert_op.inserted_at).ok());
    }
    // Trim both to `now`: the incremental pool may carry expired-but-not-
    // yet-trimmed edges that the rebuild never materializes.
    incremental.ExpireEdges(now);
    rebuilt.ExpireEdges(now);
    ExpectSameEdges(SnapshotEdges(incremental.graph()),
                    SnapshotEdges(rebuilt.graph()));
  }
  EXPECT_GE(checkpoints, 5);
}

// The same op stream driven through a serial pool and through a pool whose
// maintenance fans out on a 4-thread executor must produce bitwise-identical
// graphs and best groups — the determinism contract of the parallel paths.
// (Under TSan this doubles as the data-race harness for src/pool/.)
TEST_P(PoolRebuildPropertyTest, ParallelMaintenanceMatchesSerial) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());

  Time end_time = 0.0;
  std::vector<PoolOp> ops =
      MakeOpStream(*city, oracle->get(), GetParam(), 250, &end_time);

  ThreadPool executor(4);
  OrderPool serial(oracle->get(), PoolOptions{});
  OrderPool parallel(oracle->get(), PoolOptions{});
  parallel.set_executor(&executor);

  for (size_t step = 0; step < ops.size(); ++step) {
    const PoolOp& op = ops[step];
    ApplyOp(&serial, op);
    ApplyOp(&parallel, op);
    if (testing::Test::HasFatalFailure()) return;
    if (step % 25 != 24 && step + 1 != ops.size()) continue;

    ExpectSameEdges(SnapshotEdges(serial.graph()),
                    SnapshotEdges(parallel.graph()));

    // Exercise the batched (parallel) best-group refresh against the serial
    // per-order path and require identical winners.
    std::vector<OrderId> ids = serial.OrderIds();
    std::sort(ids.begin(), ids.end());
    parallel.RefreshBestGroups(ids, op.now);
    for (OrderId id : ids) {
      const BestGroup* a = serial.BestFor(id, op.now);
      const BestGroup* b = parallel.BestFor(id, op.now);
      ASSERT_EQ(a == nullptr, b == nullptr) << "order " << id;
      if (a == nullptr) continue;
      EXPECT_EQ(a->members, b->members) << "order " << id;
      EXPECT_EQ(a->plan.total_cost, b->plan.total_cost) << "order " << id;
      EXPECT_EQ(a->plan.latest_departure, b->plan.latest_departure)
          << "order " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolRebuildPropertyTest,
                         testing::Values(11, 222, 3303));

}  // namespace
}  // namespace watter
