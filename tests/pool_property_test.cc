// Randomized property tests of the order pool: a stream of insertions,
// removals and expiries on a real city must preserve the structural
// invariants of the temporal shareability graph and the best-group map,
// incremental edge maintenance must match a from-scratch rebuild, and the
// parallel maintenance paths must match the serial ones bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/geo/city_generator.h"
#include "src/pool/order_pool.h"
#include "tests/test_util.h"

namespace watter {
namespace {

class PoolPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(PoolPropertyTest, InvariantsHoldUnderRandomStreams) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());
  OrderPool pool(oracle->get(), PoolOptions{});
  Rng rng(GetParam() * 97 + 1);

  Time now = 0.0;
  OrderId next_id = 1;
  std::vector<OrderId> alive;
  for (int step = 0; step < 300; ++step) {
    now += rng.Uniform(0, 20);
    double action = rng.Uniform();
    if (action < 0.6 || alive.empty()) {
      // Insert a fresh order.
      Order order;
      order.id = next_id++;
      order.pickup = city->RandomNode(&rng);
      do {
        order.dropoff = city->RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = static_cast<int>(rng.UniformInt(1, 2));
      order.release = now;
      order.shortest_cost = (*oracle)->Cost(order.pickup, order.dropoff);
      order.deadline = now + rng.Uniform(1.2, 2.0) * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      ASSERT_TRUE(pool.Insert(order, now).ok());
      alive.push_back(order.id);
    } else if (action < 0.85) {
      // Remove a random resident (simulates dispatch/rejection).
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      ASSERT_TRUE(pool.Remove(alive[pick]).ok());
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    } else {
      pool.ExpireEdges(now);
    }

    // ---- Invariants ----
    ASSERT_EQ(pool.size(), alive.size());
    const ShareabilityGraph& graph = pool.graph();
    int64_t directed_edges = 0;
    for (OrderId id : alive) {
      ASSERT_TRUE(pool.Contains(id));
      for (const ShareEdge& edge : graph.Neighbors(id)) {
        // Symmetry: every edge is mirrored.
        EXPECT_TRUE(graph.HasEdge(edge.other, id))
            << id << "-" << edge.other;
        // Endpoints are resident.
        EXPECT_TRUE(pool.Contains(edge.other));
        // Edge data is sane.
        EXPECT_GT(edge.pair_cost, 0.0);
        ++directed_edges;
      }
    }
    EXPECT_EQ(directed_edges % 2, 0);
    EXPECT_EQ(directed_edges / 2, graph.edge_count());

    // Best groups: verified feasible shared groups containing the owner.
    if (step % 10 == 0) {
      for (OrderId id : alive) {
        const BestGroup* best = pool.BestFor(id, now);
        if (best == nullptr) continue;
        EXPECT_GE(best->size(), 2);
        EXPECT_TRUE(std::binary_search(best->members.begin(),
                                       best->members.end(), id));
        // Members pairwise adjacent (clique property).
        for (size_t i = 0; i < best->members.size(); ++i) {
          for (size_t j = i + 1; j < best->members.size(); ++j) {
            EXPECT_TRUE(graph.HasEdge(best->members[i], best->members[j]));
          }
        }
        // Group not expired and its route is structurally valid.
        EXPECT_GE(best->plan.latest_departure, now);
        std::vector<const Order*> members;
        for (OrderId member : best->members) {
          members.push_back(pool.GetOrder(member));
        }
        EXPECT_TRUE(best->plan.route.SatisfiesPrecedenceAndCapacity(
            members, pool.options().capacity));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolPropertyTest,
                         testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Incremental maintenance vs. from-scratch rebuild, and parallel vs. serial.
// ---------------------------------------------------------------------------

// One scripted mutation, pre-generated so the same stream can be replayed
// into several pools.
struct PoolOp {
  enum Kind { kInsert, kRemove, kExpire } kind;
  Order order;          // kInsert.
  Time inserted_at = 0; // kInsert.
  OrderId target = kInvalidOrder;  // kRemove.
  Time now = 0;
};

// A deterministic random op stream over a generated city. Also returns the
// final timestamp via `end_time`.
std::vector<PoolOp> MakeOpStream(const City& city, TravelTimeOracle* oracle,
                                 uint64_t seed, int steps, Time* end_time) {
  Rng rng(seed * 131 + 5);
  Time now = 0.0;
  OrderId next_id = 1;
  std::vector<OrderId> alive;
  std::vector<PoolOp> ops;
  for (int step = 0; step < steps; ++step) {
    now += rng.Uniform(0, 20);
    double action = rng.Uniform();
    PoolOp op;
    op.now = now;
    if (action < 0.6 || alive.empty()) {
      Order order;
      order.id = next_id++;
      order.pickup = city.RandomNode(&rng);
      do {
        order.dropoff = city.RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = static_cast<int>(rng.UniformInt(1, 2));
      order.release = now;
      order.shortest_cost = oracle->Cost(order.pickup, order.dropoff);
      order.deadline = now + rng.Uniform(1.2, 2.0) * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      op.kind = PoolOp::kInsert;
      op.order = order;
      op.inserted_at = now;
      alive.push_back(order.id);
    } else if (action < 0.85) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      op.kind = PoolOp::kRemove;
      op.target = alive[pick];
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    } else {
      op.kind = PoolOp::kExpire;
    }
    ops.push_back(op);
  }
  *end_time = now;
  return ops;
}

void ApplyOp(OrderPool* pool, const PoolOp& op) {
  switch (op.kind) {
    case PoolOp::kInsert:
      ASSERT_TRUE(pool->Insert(op.order, op.inserted_at).ok());
      break;
    case PoolOp::kRemove:
      ASSERT_TRUE(pool->Remove(op.target).ok());
      break;
    case PoolOp::kExpire:
      pool->ExpireEdges(op.now);
      break;
  }
}

// Adjacency snapshot with edges sorted by neighbor id, for exact comparison.
std::map<OrderId, std::vector<ShareEdge>> SnapshotEdges(
    const ShareabilityGraph& graph) {
  std::map<OrderId, std::vector<ShareEdge>> snapshot;
  for (OrderId id : graph.OrderIds()) {
    std::vector<ShareEdge> edges = graph.Neighbors(id);
    std::sort(edges.begin(), edges.end(),
              [](const ShareEdge& a, const ShareEdge& b) {
                return a.other < b.other;
              });
    snapshot.emplace(id, std::move(edges));
  }
  return snapshot;
}

void ExpectSameEdges(const std::map<OrderId, std::vector<ShareEdge>>& a,
                     const std::map<OrderId, std::vector<ShareEdge>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [id, edges_a] : a) {
    auto it = b.find(id);
    ASSERT_NE(it, b.end()) << "node " << id << " missing";
    const std::vector<ShareEdge>& edges_b = it->second;
    ASSERT_EQ(edges_a.size(), edges_b.size()) << "node " << id;
    for (size_t i = 0; i < edges_a.size(); ++i) {
      EXPECT_EQ(edges_a[i].other, edges_b[i].other) << "node " << id;
      // Bitwise: both sides run the identical planner computation.
      EXPECT_EQ(edges_a[i].expiry, edges_b[i].expiry) << "node " << id;
      EXPECT_EQ(edges_a[i].pair_cost, edges_b[i].pair_cost) << "node " << id;
    }
  }
}

class PoolRebuildPropertyTest : public testing::TestWithParam<uint64_t> {};

// After an arbitrary insert/remove/expire stream, the incrementally
// maintained graph must equal a graph rebuilt from scratch by replaying the
// surviving orders chronologically at their original insertion times (both
// trimmed to the same `now`): incremental maintenance may never leave ghost
// edges behind nor lose live ones.
TEST_P(PoolRebuildPropertyTest, IncrementalEdgesMatchFromScratchRebuild) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());

  Time end_time = 0.0;
  std::vector<PoolOp> ops =
      MakeOpStream(*city, oracle->get(), GetParam(), 250, &end_time);

  OrderPool incremental(oracle->get(), PoolOptions{});
  std::map<OrderId, PoolOp> alive;  // Insert ops of resident orders.
  int checkpoints = 0;
  for (size_t step = 0; step < ops.size(); ++step) {
    const PoolOp& op = ops[step];
    ApplyOp(&incremental, op);
    if (testing::Test::HasFatalFailure()) return;
    if (op.kind == PoolOp::kInsert) alive.emplace(op.order.id, op);
    if (op.kind == PoolOp::kRemove) alive.erase(op.target);

    if (step % 50 != 49 && step + 1 != ops.size()) continue;
    ++checkpoints;
    Time now = op.now;
    // Rebuild from scratch: replay the survivors chronologically (std::map
    // iterates ascending ids == ascending insertion order here).
    OrderPool rebuilt(oracle->get(), PoolOptions{});
    for (const auto& [id, insert_op] : alive) {
      ASSERT_TRUE(rebuilt.Insert(insert_op.order, insert_op.inserted_at).ok());
    }
    // Trim both to `now`: the incremental pool may carry expired-but-not-
    // yet-trimmed edges that the rebuild never materializes.
    incremental.ExpireEdges(now);
    rebuilt.ExpireEdges(now);
    ExpectSameEdges(SnapshotEdges(incremental.graph()),
                    SnapshotEdges(rebuilt.graph()));
  }
  EXPECT_GE(checkpoints, 5);
}

// Bitwise best-group comparison between two pools at one timestamp.
void ExpectSameBestGroups(OrderPool* a, OrderPool* b,
                          const std::vector<OrderId>& ids, Time now) {
  for (OrderId id : ids) {
    const BestGroup* ga = a->BestFor(id, now);
    const BestGroup* gb = b->BestFor(id, now);
    ASSERT_EQ(ga == nullptr, gb == nullptr) << "order " << id;
    if (ga == nullptr) continue;
    EXPECT_EQ(ga->members, gb->members) << "order " << id;
    // Bitwise: a cached plan reused at a later time must equal the plan a
    // cold pool computes fresh (min-cost feasible routes are depart-time-
    // invariant while unexpired; see group_plan_cache.h).
    EXPECT_EQ(ga->plan.total_cost, gb->plan.total_cost) << "order " << id;
    EXPECT_EQ(ga->plan.latest_departure, gb->plan.latest_departure)
        << "order " << id;
    EXPECT_EQ(ga->sum_detour, gb->sum_detour) << "order " << id;
    EXPECT_EQ(ga->sum_release, gb->sum_release) << "order " << id;
  }
}

// The same op stream driven through a serial pool and through a pool whose
// maintenance fans out on a 4-thread executor must produce bitwise-identical
// graphs and best groups — the determinism contract of the parallel paths.
// (Under TSan this doubles as the data-race harness for src/pool/.)
TEST_P(PoolRebuildPropertyTest, ParallelMaintenanceMatchesSerial) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());

  Time end_time = 0.0;
  std::vector<PoolOp> ops =
      MakeOpStream(*city, oracle->get(), GetParam(), 250, &end_time);

  ThreadPool executor(4);
  OrderPool serial(oracle->get(), PoolOptions{});
  OrderPool parallel(oracle->get(), PoolOptions{});
  parallel.set_executor(&executor);

  for (size_t step = 0; step < ops.size(); ++step) {
    const PoolOp& op = ops[step];
    ApplyOp(&serial, op);
    ApplyOp(&parallel, op);
    if (testing::Test::HasFatalFailure()) return;
    if (step % 25 != 24 && step + 1 != ops.size()) continue;

    ExpectSameEdges(SnapshotEdges(serial.graph()),
                    SnapshotEdges(parallel.graph()));

    // Exercise the batched (parallel) best-group refresh against the serial
    // per-order path and require identical winners.
    std::vector<OrderId> ids = serial.OrderIds();
    std::sort(ids.begin(), ids.end());
    parallel.RefreshBestGroups(ids, op.now);
    for (OrderId id : ids) {
      const BestGroup* a = serial.BestFor(id, op.now);
      const BestGroup* b = parallel.BestFor(id, op.now);
      ASSERT_EQ(a == nullptr, b == nullptr) << "order " << id;
      if (a == nullptr) continue;
      EXPECT_EQ(a->members, b->members) << "order " << id;
      EXPECT_EQ(a->plan.total_cost, b->plan.total_cost) << "order " << id;
      EXPECT_EQ(a->plan.latest_departure, b->plan.latest_departure)
          << "order " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolRebuildPropertyTest,
                         testing::Values(11, 222, 3303));

// ---------------------------------------------------------------------------
// Churn-heavy incremental maintenance: reverse index + shared plan cache.
// ---------------------------------------------------------------------------

// A departure-heavy op stream with large time jumps: removals dominate the
// mutation mix (exercising the reverse-membership index), and the jumps push
// sim time past many cached latest_departures (exercising edge expiry, group
// expiry, and plan-cache replans).
std::vector<PoolOp> MakeChurnStream(const City& city, TravelTimeOracle* oracle,
                                    uint64_t seed, int steps, Time* end_time) {
  Rng rng(seed * 977 + 13);
  Time now = 0.0;
  OrderId next_id = 1;
  std::vector<OrderId> alive;
  std::vector<PoolOp> ops;
  for (int step = 0; step < steps; ++step) {
    now += rng.Uniform(0, 12);
    double action = rng.Uniform();
    PoolOp op;
    op.now = now;
    if (action < 0.45 || alive.empty()) {
      Order order;
      order.id = next_id++;
      order.pickup = city.RandomNode(&rng);
      do {
        order.dropoff = city.RandomNode(&rng);
      } while (order.dropoff == order.pickup);
      order.riders = static_cast<int>(rng.UniformInt(1, 2));
      order.release = now;
      order.shortest_cost = oracle->Cost(order.pickup, order.dropoff);
      order.deadline = now + rng.Uniform(1.2, 2.0) * order.shortest_cost;
      order.wait_limit = 0.8 * order.shortest_cost;
      op.kind = PoolOp::kInsert;
      op.order = order;
      op.inserted_at = now;
      alive.push_back(order.id);
    } else if (action < 0.85) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1));
      op.kind = PoolOp::kRemove;
      op.target = alive[pick];
      alive.erase(alive.begin() + static_cast<int64_t>(pick));
    } else {
      op.kind = PoolOp::kExpire;
    }
    ops.push_back(op);
  }
  *end_time = now;
  return ops;
}

class PoolChurnPropertyTest : public testing::TestWithParam<uint64_t> {};

// Churn-heavy arrivals/departures/edge- and group-expiries: the
// incrementally maintained map (reverse-membership dirtying + shared plan
// cache, refreshed in parallel batches) must stay bitwise equal to a pool
// rebuilt from scratch at every checkpoint — and its counters must be a
// pure function of the op stream, identical with and without the executor.
TEST_P(PoolChurnPropertyTest, IncrementalMatchesFromScratchUnderChurn) {
  auto city = GenerateCity({.width = 14, .height = 14, .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  auto oracle = BuildOracle(city->graph, OracleKind::kMatrix);
  ASSERT_TRUE(oracle.ok());

  Time end_time = 0.0;
  std::vector<PoolOp> ops =
      MakeChurnStream(*city, oracle->get(), GetParam(), 350, &end_time);

  ThreadPool executor(4);
  OrderPool serial(oracle->get(), PoolOptions{});
  OrderPool parallel(oracle->get(), PoolOptions{});
  parallel.set_executor(&executor);

  std::map<OrderId, PoolOp> alive;  // Insert ops of resident orders.
  int checkpoints = 0;
  int groups_seen = 0;
  for (size_t step = 0; step < ops.size(); ++step) {
    const PoolOp& op = ops[step];
    ApplyOp(&serial, op);
    ApplyOp(&parallel, op);
    if (testing::Test::HasFatalFailure()) return;
    if (op.kind == PoolOp::kInsert) alive.emplace(op.order.id, op);
    if (op.kind == PoolOp::kRemove) alive.erase(op.target);

    if (step % 25 != 24 && step + 1 != ops.size()) continue;
    ++checkpoints;
    Time now = op.now;
    serial.ExpireEdges(now);
    parallel.ExpireEdges(now);
    std::vector<OrderId> ids = serial.SortedOrderIds();
    // Identical refresh batches on both pools: this is what must make every
    // counter below independent of the executor.
    serial.RefreshBestGroups(ids, now);
    parallel.RefreshBestGroups(ids, now);
    ExpectSameBestGroups(&serial, &parallel, ids, now);

    // From-scratch rebuild: no stale plan may survive a member departure,
    // and a cached unexpired plan must equal the freshly planned one.
    OrderPool rebuilt(oracle->get(), PoolOptions{});
    for (const auto& [id, insert_op] : alive) {
      ASSERT_TRUE(rebuilt.Insert(insert_op.order, insert_op.inserted_at).ok());
    }
    rebuilt.ExpireEdges(now);
    ExpectSameBestGroups(&parallel, &rebuilt, ids, now);
    for (OrderId id : ids) {
      if (parallel.BestFor(id, now) != nullptr) ++groups_seen;
    }
    if (testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(checkpoints, 5);
  EXPECT_GT(groups_seen, 0);  // The stream actually formed shared groups.

  // Counters included: the three-phase refresh makes the diagnostic
  // counters a pure function of the op stream, not of the thread count.
  BestGroupMap& a = serial.best_groups();
  BestGroupMap& b = parallel.best_groups();
  EXPECT_EQ(a.recompute_count(), b.recompute_count());
  EXPECT_EQ(a.groups_evaluated(), b.groups_evaluated());
  EXPECT_EQ(a.plan_cache_hits(), b.plan_cache_hits());
  EXPECT_EQ(a.plan_cache_misses(), b.plan_cache_misses());
  EXPECT_EQ(a.plan_cache_replans(), b.plan_cache_replans());
  EXPECT_EQ(a.plan_cache_evictions(), b.plan_cache_evictions());
  EXPECT_EQ(a.plan_cache_size(), b.plan_cache_size());
  EXPECT_EQ(a.reverse_index_fanout(), b.reverse_index_fanout());
  EXPECT_EQ(serial.planner().plan_count(), parallel.planner().plan_count());
  // The churn stream must actually have exercised the new machinery.
  EXPECT_GT(b.plan_cache_hits(), 0);
  EXPECT_GT(b.reverse_index_fanout(), 0);
  EXPECT_GT(b.plan_cache_evictions(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolChurnPropertyTest,
                         testing::Values(17, 901, 6006));

// ---------------------------------------------------------------------------
// Plan-cache seeding from edge certification.
// ---------------------------------------------------------------------------

// Inserting an order plans a pair route for every edge it certifies; those
// plans are seeded into the group-plan cache, so the first refresh touching
// the pair must be a pure hit — zero additional planner calls — instead of
// the miss it was before seeding.
TEST(PlanCacheSeedingTest, InsertSeedsPairPlansThatRefreshHitsWithoutReplan) {
  constexpr double kMin = 60.0;
  Graph graph = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&graph);
  OrderPool pool(&oracle, PoolOptions{});
  BestGroupMap& map = pool.best_groups();

  auto corridor = [&](OrderId id) {
    return Order{.id = id, .pickup = testutil::kD, .dropoff = testutil::kF,
                 .riders = 1, .release = 0.0, .deadline = 60 * kMin,
                 .wait_limit = 10 * kMin, .shortest_cost = 2 * kMin};
  };
  ASSERT_TRUE(pool.Insert(corridor(1), 0.0).ok());
  ASSERT_TRUE(pool.Insert(corridor(2), 0.0).ok());
  ASSERT_TRUE(pool.graph().HasEdge(1, 2));
  EXPECT_EQ(map.plan_cache_seeds(), 1);
  EXPECT_EQ(map.plan_cache_size(), 1);

  // The refresh finds {1,2} already planned: a hit, no misses, no replans,
  // and — the point of seeding — not one extra planner call.
  int64_t plans_before = pool.planner().plan_count();
  const BestGroup* best = pool.BestFor(1, 0.0);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{1, 2}));
  EXPECT_EQ(map.plan_cache_hits(), 1);
  EXPECT_EQ(map.plan_cache_misses(), 0);
  EXPECT_EQ(map.plan_cache_replans(), 0);
  EXPECT_EQ(pool.planner().plan_count(), plans_before);

  // The seeded plan must equal what the planner would produce for the
  // sorted member set (completion re-aligned from edge input order).
  auto direct = pool.planner().PlanBest(
      {pool.GetOrder(1), pool.GetOrder(2)}, 0.0, pool.options().capacity);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(best->plan.total_cost, direct->total_cost);
  EXPECT_EQ(best->plan.latest_departure, direct->latest_departure);
  ASSERT_EQ(best->plan.completion.size(), direct->completion.size());
  for (size_t i = 0; i < direct->completion.size(); ++i) {
    EXPECT_EQ(best->plan.completion[i], direct->completion[i]) << i;
  }

  // Anchor 2 reuses the same cached entry: still no planner traffic (the
  // snapshot excludes the direct verification call above).
  plans_before = pool.planner().plan_count();
  EXPECT_NE(pool.BestFor(2, 0.0), nullptr);
  EXPECT_EQ(map.plan_cache_hits(), 2);
  EXPECT_EQ(pool.planner().plan_count(), plans_before);
}

// ---------------------------------------------------------------------------
// Plan-cache soundness under truncated enumeration.
// ---------------------------------------------------------------------------

// When the visit budget clips enumeration, "no group found" must stay
// re-runnable (never enter the negative cache), even though the plan cache
// remembers per-member-set infeasibility verdicts from the clipped search:
// cached verdicts are exact facts about specific member sets, so removing a
// neighbor can still pull a previously unseen feasible clique inside the
// budget and the re-search must find it.
TEST(PlanCacheTruncationTest, TruncatedSearchIsNeverACachedNegative) {
  constexpr double kMin = 60.0;
  Graph graph = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&graph);
  PoolOptions options;
  options.cliques = CliqueOptions{/*max_size=*/5, /*max_visits=*/2};
  OrderPool pool(&oracle, options);

  // Four identical d->f corridor trips (cost 2 min): all pairs shareable at
  // release. Orders 2 and 3 have tight deadlines; 1 and 9 have loose ones.
  auto corridor = [&](OrderId id, Time deadline) {
    return Order{.id = id, .pickup = testutil::kD, .dropoff = testutil::kF,
                 .riders = 1, .release = 0.0, .deadline = deadline,
                 .wait_limit = 10 * kMin, .shortest_cost = 2 * kMin};
  };
  ASSERT_TRUE(pool.Insert(corridor(1, 60 * kMin), 0.0).ok());
  ASSERT_TRUE(pool.Insert(corridor(2, 4.2 * kMin), 0.0).ok());
  ASSERT_TRUE(pool.Insert(corridor(3, 4.2 * kMin), 0.0).ok());
  ASSERT_TRUE(pool.Insert(corridor(9, 60 * kMin), 0.0).ok());
  ASSERT_TRUE(pool.graph().HasEdge(1, 9));
  BestGroupMap& map = pool.best_groups();
  // Every certified edge seeded its pair plan into the cache at insert.
  EXPECT_EQ(map.plan_cache_seeds(), pool.graph().edge_count());

  // At t = 5 min every group containing 2 or 3 is infeasible (their
  // deadlines pass before any route could finish), but edges have not been
  // trimmed. Enumeration from anchor 1 visits {1,2} then {1,2,3} and hits
  // the 2-visit budget — the feasible {1,9} is beyond the clipped prefix.
  // {1,2} was seeded at insert but its route expired with 2's deadline, so
  // the scan re-plans it; {1,2,3} was never planned and is the one miss.
  Time now = 5 * kMin;
  int64_t plans_before = pool.planner().plan_count();
  EXPECT_EQ(pool.BestFor(1, now), nullptr);
  EXPECT_EQ(map.plan_cache_misses(), 1);  // {1,2,3} planned fresh...
  EXPECT_EQ(map.plan_cache_replans(), 1);  // ...and seeded {1,2} re-planned.
  EXPECT_EQ(pool.planner().plan_count(), plans_before + 2);

  // ...but the truncated "no group" outcome was not cached as negative: the
  // next lookup re-runs the search, now answered from the plan cache alone.
  int64_t recomputes = map.recompute_count();
  EXPECT_EQ(pool.BestFor(1, now), nullptr);
  EXPECT_EQ(map.recompute_count(), recomputes + 1);
  EXPECT_EQ(pool.planner().plan_count(), plans_before + 2);  // All hits.
  EXPECT_EQ(map.plan_cache_hits(), 2);

  // Removing neighbors pulls new cliques inside the budget. After 2 leaves,
  // the prefix is {1,3}, {1,3,9} — still truncated, still no negative.
  ASSERT_TRUE(pool.Remove(2).ok());
  EXPECT_EQ(pool.BestFor(1, now), nullptr);
  // After 3 leaves too, {1,9} is finally visited and must be found despite
  // every earlier search having returned nothing.
  ASSERT_TRUE(pool.Remove(3).ok());
  const BestGroup* best = pool.BestFor(1, now);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->members, (std::vector<OrderId>{1, 9}));
  EXPECT_GE(best->plan.latest_departure, now);
}

}  // namespace
}  // namespace watter
