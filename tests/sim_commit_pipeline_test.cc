// Backpressure and stall-injection coverage for CommitPipeline
// (src/sim/commit_pipeline.h, docs/ROBUSTNESS.md). The dispatch suites
// prove the pipeline is invisible in the metrics; this file pins the
// robustness half: a bounded queue really blocks producers instead of
// growing, injected stalls execute without touching any job's effects,
// and DrainFor reports DeadlineExceeded instead of hanging when the
// consumer cannot catch up in time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/sim/commit_pipeline.h"

namespace watter {
namespace {

TEST(CommitPipelineTest, ExecutesJobsInEnqueueOrder) {
  CommitPipeline pipeline;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pipeline.Enqueue([&order, i] { order.push_back(i); });
  }
  pipeline.Drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(CommitPipelineTest, BoundedQueueBlocksProducerUntilSlotFrees) {
  // The bound counts *waiting* jobs: the consumer dequeues before running,
  // so a full queue is one running job plus max_depth waiting.
  CommitPipeline pipeline(/*max_depth=*/1);
  EXPECT_EQ(pipeline.max_depth(), 1);
  // Park the consumer on a gate; `started` proves the gate job left the
  // queue, so the filler below deterministically fills the single slot.
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  std::atomic<int> executed{0};
  pipeline.Enqueue([&] {
    started.store(true);
    while (!gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++executed;
  });
  while (!started.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pipeline.Enqueue([&] { ++executed; });  // Queue is now full.
  // A producer must block until the gate opens; prove it by watching the
  // blocked Enqueue from another thread.
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    pipeline.Enqueue([&] { ++executed; });
    enqueued.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(enqueued.load()) << "bounded Enqueue did not block";
  gate.store(true);
  producer.join();
  EXPECT_TRUE(enqueued.load());
  pipeline.Drain();
  EXPECT_EQ(executed.load(), 3);
  EXPECT_EQ(pipeline.depth(), 0);
}

TEST(CommitPipelineTest, InjectStallExecutesWithoutTouchingJobs) {
  CommitPipeline pipeline;
  std::atomic<int> executed{0};
  pipeline.Enqueue([&] { ++executed; });
  pipeline.InjectStall(0.01);
  pipeline.Enqueue([&] { ++executed; });
  pipeline.InjectStall(0.01);
  pipeline.Drain();
  EXPECT_EQ(executed.load(), 2);
  EXPECT_EQ(pipeline.stalls_executed(), 2);
}

TEST(CommitPipelineTest, DrainForTimesOutWhileConsumerIsStuck) {
  CommitPipeline pipeline;
  std::atomic<bool> gate{false};
  pipeline.Enqueue([&] {
    while (!gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  Status timed_out = pipeline.DrainFor(0.02);
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded);
  // The timeout abandoned the wait, not the work: once the gate opens the
  // job completes and a second bounded drain succeeds.
  gate.store(true);
  EXPECT_TRUE(pipeline.DrainFor(5.0).ok());
  EXPECT_EQ(pipeline.depth(), 0);
}

TEST(CommitPipelineTest, DestructorReleasesBlockedProducer) {
  // Tearing a bounded pipeline down while a producer is blocked on a full
  // queue must wake the producer (its job is dropped — the pipeline is
  // shutting down) instead of deadlocking the destructor.
  std::atomic<bool> released{false};
  std::thread producer;
  {
    CommitPipeline pipeline(/*max_depth=*/1);
    std::atomic<bool> started{false};
    pipeline.Enqueue([&] {
      started.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    while (!started.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    pipeline.Enqueue([] {});  // Fills the single slot.
    producer = std::thread([&] {
      pipeline.Enqueue([] {});  // Blocks: queue is full.
      released.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(released.load());
    // Destructor runs here: it must release the producer via stop_ even
    // though the queue is still full, then drain and join the consumer.
  }
  producer.join();
  EXPECT_TRUE(released.load());
}

}  // namespace
}  // namespace watter
