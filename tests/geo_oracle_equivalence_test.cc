// Oracle-equivalence harness for the batched bucket-CH backend.
//
// The batch API's contract (travel_time_oracle.h) is that ManyToOne /
// OneToMany / ManyToMany return exactly the values the equivalent Cost()
// loop would produce. For the bucket backend that is a *bitwise* claim
// against the per-query CH oracle: both compute min over meeting nodes v of
// dist_up(s, v) + dist_down(v, t) from the same search graphs with the same
// Dijkstra relaxation order, so not even the last ulp may differ — which is
// what lets the simulation flip backends without perturbing a single metric
// (see the GeoBackend axis of sim_parallel_determinism_test).
//
// Against plain Dijkstra on the original graph the comparison is NEAR(1e-9),
// the repo's precedent for CH-vs-Dijkstra (geo_ch_stress_test.cc): shortcut
// weights are sums of arc weights accumulated in a different association
// order, so exact FP equality is not guaranteed there — only for
// unreachable (kInfCost) and source == target (0.0) verdicts.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/geo/bucket_ch.h"
#include "src/geo/city_generator.h"
#include "src/geo/contraction_hierarchy.h"
#include "src/geo/dijkstra.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {
namespace {

std::shared_ptr<const ContractionHierarchy> BuildCh(const Graph& graph) {
  auto ch = ContractionHierarchy::Build(graph);
  EXPECT_TRUE(ch.ok());
  return std::make_shared<const ContractionHierarchy>(std::move(ch).value());
}

/// Draws a batch of nodes that deliberately includes the adversarial shapes:
/// duplicates (exercises the distinct-endpoint dedupe) and, with `apex`
/// given, the apex itself (source == target must short-circuit to 0.0).
std::vector<NodeId> DrawBatch(const City& city, Rng* rng, int max_size,
                              NodeId apex = kInvalidNode) {
  int size = static_cast<int>(rng->UniformInt(1, max_size));
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    double roll = rng->Uniform(0.0, 1.0);
    if (roll < 0.15 && !nodes.empty()) {
      nodes.push_back(nodes[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(nodes.size()) - 1))]);
    } else if (roll < 0.3 && apex != kInvalidNode) {
      nodes.push_back(apex);
    } else {
      nodes.push_back(city.RandomNode(rng));
    }
  }
  return nodes;
}

class OracleEquivalenceTest : public testing::TestWithParam<uint64_t> {};

// Bitwise batch-vs-per-query equivalence on generated cities, all three
// batch shapes, across repeated rounds so later batches also exercise the
// memo-cache hit paths of both oracles.
TEST_P(OracleEquivalenceTest, BucketBatchesMatchPerQueryChBitwise) {
  const uint64_t seed = GetParam();
  auto city = GenerateCity({.width = 18, .height = 18, .jitter = 0.3,
                            .center_slowdown = 1.8,
                            .seed = seed});
  ASSERT_TRUE(city.ok());
  auto ch = BuildCh(city->graph);
  ChOracle per_query(ch);
  BucketChOracle bucket(ch);
  ASSERT_TRUE(bucket.NativeBatch());
  ASSERT_FALSE(per_query.NativeBatch());

  Rng rng(seed * 31 + 7);
  for (int round = 0; round < 25; ++round) {
    NodeId apex = city->RandomNode(&rng);

    std::vector<NodeId> sources = DrawBatch(*city, &rng, 12, apex);
    std::vector<double> got(sources.size());
    bucket.ManyToOne(sources, apex, got);
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(got[i], per_query.Cost(sources[i], apex))
          << "seed " << seed << " round " << round << " m2o slot " << i;
      EXPECT_EQ(got[i], bucket.Cost(sources[i], apex)) << "self-consistency";
    }

    std::vector<NodeId> targets = DrawBatch(*city, &rng, 12, apex);
    got.assign(targets.size(), -1.0);
    bucket.OneToMany(apex, targets, got);
    for (size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(got[j], per_query.Cost(apex, targets[j]))
          << "seed " << seed << " round " << round << " o2m slot " << j;
    }

    std::vector<NodeId> rows = DrawBatch(*city, &rng, 6);
    std::vector<NodeId> cols = DrawBatch(*city, &rng, 6);
    std::vector<double> matrix(rows.size() * cols.size(), -1.0);
    bucket.ManyToMany(rows, cols, matrix);
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = 0; j < cols.size(); ++j) {
        EXPECT_EQ(matrix[i * cols.size() + j],
                  per_query.Cost(rows[i], cols[j]))
            << "seed " << seed << " round " << round << " m2m " << i << ","
            << j;
      }
    }
  }
}

// The same batches against plain Dijkstra ground truth on the original
// graph: NEAR(1e-9) for finite costs, exact for 0.0/unreachable verdicts.
TEST_P(OracleEquivalenceTest, BucketBatchesMatchDijkstraGroundTruth) {
  const uint64_t seed = GetParam();
  auto city = GenerateCity({.width = 14, .height = 14, .jitter = 0.35,
                            .seed = seed + 100});
  ASSERT_TRUE(city.ok());
  BucketChOracle bucket(BuildCh(city->graph));
  Dijkstra reference(&city->graph);

  Rng rng(seed * 17 + 3);
  for (int round = 0; round < 8; ++round) {
    NodeId target = city->RandomNode(&rng);
    std::vector<NodeId> sources = DrawBatch(*city, &rng, 10, target);
    std::vector<double> got(sources.size());
    bucket.ManyToOne(sources, target, got);
    for (size_t i = 0; i < sources.size(); ++i) {
      reference.Run(sources[i], target);
      double expected = reference.DistanceTo(target);
      if (sources[i] == target) {
        EXPECT_EQ(got[i], 0.0);
      } else {
        EXPECT_NEAR(got[i], expected, 1e-9)
            << "seed " << seed << " " << sources[i] << "->" << target;
      }
    }

    NodeId source = city->RandomNode(&rng);
    std::vector<NodeId> targets = DrawBatch(*city, &rng, 10, source);
    got.assign(targets.size(), -1.0);
    bucket.OneToMany(source, targets, got);
    reference.Run(source);
    for (size_t j = 0; j < targets.size(); ++j) {
      if (targets[j] == source) {
        EXPECT_EQ(got[j], 0.0);
      } else {
        EXPECT_NEAR(got[j], reference.DistanceTo(targets[j]), 1e-9)
            << "seed " << seed << " " << source << "->" << targets[j];
      }
    }
  }
}

// Unreachable pairs: generated cities are connected, so disconnection needs
// a hand-built graph. Two disjoint directed chains — every cross-component
// pair (and every wrong-direction intra-chain pair) must come back kInfCost
// from batch and per-query paths alike, with no contamination of the
// reachable slots sharing the batch.
TEST_P(OracleEquivalenceTest, UnreachablePairsAreExactlyInfinite) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 13 + 1);
  Graph g;
  const int kChain = 5;  // Nodes 0..4 and 5..9, no arcs between them.
  for (int i = 0; i < 2 * kChain; ++i) {
    g.AddNode({static_cast<double>(i), 0.0});
  }
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < kChain - 1; ++i) {
      NodeId a = c * kChain + i;
      g.AddEdge(a, a + 1, rng.Uniform(1.0, 9.0));  // One-way chains.
    }
  }
  ASSERT_TRUE(g.Finalize().ok());
  auto ch = BuildCh(g);
  ChOracle per_query(ch);
  BucketChOracle bucket(ch);

  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
  std::vector<double> matrix(all.size() * all.size(), -1.0);
  bucket.ManyToMany(all, all, matrix);
  int unreachable = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    std::vector<double> row(all.size(), -1.0);
    bucket.OneToMany(all[i], all, row);
    std::vector<double> col(all.size(), -1.0);
    bucket.ManyToOne(all, all[i], col);
    for (size_t j = 0; j < all.size(); ++j) {
      double expected = per_query.Cost(all[i], all[j]);
      EXPECT_EQ(matrix[i * all.size() + j], expected) << i << "," << j;
      EXPECT_EQ(row[j], expected) << i << "," << j;
      EXPECT_EQ(col[j], per_query.Cost(all[j], all[i])) << j << "," << i;
      if (expected == kInfCost) ++unreachable;
    }
  }
  // 5x5 cross-pairs each way plus the backward intra-chain pairs: the
  // unreachable case is exercised in bulk, not incidentally.
  EXPECT_GE(unreachable, 2 * kChain * kChain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleEquivalenceTest,
                         testing::Values(11u, 4242u, 987001u));

// Degenerate shapes that must not crash or touch out-of-batch memory:
// empty batches, single-element batches, and out-of-range node ids (which
// Cost() answers with kInfCost — or 0.0 when both endpoints are the same
// id, equality being checked before range).
TEST(OracleEquivalenceEdgeTest, EmptySingletonAndOutOfRangeBatches) {
  auto city = GenerateCity({.width = 6, .height = 6, .seed = 5});
  ASSERT_TRUE(city.ok());
  auto ch = BuildCh(city->graph);
  ChOracle per_query(ch);
  BucketChOracle bucket(ch);
  const NodeId n = city->graph.num_nodes();

  bucket.ManyToOne({}, 0, {});
  bucket.OneToMany(0, {}, {});
  bucket.ManyToMany({}, {}, {});

  std::vector<NodeId> batch = {0, n, -1, n + 7, 3, n};
  std::vector<double> got(batch.size());
  bucket.ManyToOne(batch, 2, got);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], per_query.Cost(batch[i], 2)) << i;
  }
  bucket.OneToMany(2, batch, got);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], per_query.Cost(2, batch[i])) << i;
  }
  // Out-of-range apex: every slot kInfCost except the equal-id ones.
  bucket.ManyToOne(batch, n, got);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], batch[i] == n ? 0.0 : kInfCost) << i;
  }
  std::vector<double> matrix(batch.size() * batch.size());
  bucket.ManyToMany(batch, batch, matrix);
  for (size_t i = 0; i < batch.size(); ++i) {
    for (size_t j = 0; j < batch.size(); ++j) {
      EXPECT_EQ(matrix[i * batch.size() + j],
                per_query.Cost(batch[i], batch[j]))
          << i << "," << j;
    }
  }

  std::vector<NodeId> one = {1};
  std::vector<double> one_out(1);
  bucket.ManyToOne(one, 4, one_out);
  EXPECT_EQ(one_out[0], per_query.Cost(1, 4));
}

// Batch diagnostics: the counters the platform surfaces must account one
// point result per batch slot plus one batch record per call, and the
// bucket build clock only advances when buckets are actually built (cache
// hits and trivial slots build nothing).
TEST(OracleEquivalenceEdgeTest, BatchCountersAccountEverySlot) {
  auto city = GenerateCity({.width = 8, .height = 8, .seed = 6});
  ASSERT_TRUE(city.ok());
  BucketChOracle bucket(BuildCh(city->graph));
  std::vector<NodeId> sources = {1, 2, 3, 1};
  std::vector<double> out(sources.size());

  bucket.ManyToOne(sources, 9, out);
  EXPECT_EQ(bucket.batch_count(), 1);
  EXPECT_EQ(bucket.batch_points(), 4);
  EXPECT_EQ(bucket.query_count(), 4);
  double built_once = bucket.bucket_build_seconds();
  EXPECT_GE(built_once, 0.0);

  // Fully cached repeat: another batch record, no new bucket builds.
  bucket.ManyToOne(sources, 9, out);
  EXPECT_EQ(bucket.batch_count(), 2);
  EXPECT_EQ(bucket.batch_points(), 8);
  EXPECT_EQ(bucket.bucket_build_seconds(), built_once);

  std::vector<double> matrix(sources.size() * sources.size());
  bucket.ManyToMany(sources, sources, matrix);
  EXPECT_EQ(bucket.batch_count(), 3);
  EXPECT_EQ(bucket.batch_points(), 8 + 8);
  EXPECT_EQ(bucket.query_count(), 8 + 16);
}

}  // namespace
}  // namespace watter
