#include <gtest/gtest.h>

#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 400;
  options.num_workers = 40;
  options.city_width = 16;
  options.city_height = 16;
  options.duration = 3600.0;
  options.seed = 77;
  // Short watching window inside a generous deadline: orders spend real
  // time in the "window elapsed but still feasible" regime where the
  // cancellation hazard applies.
  options.eta = 0.3;
  options.tau = 1.8;
  return options;
}

TEST(CancellationTest, ZeroHazardChangesNothing) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  TimeoutThresholdProvider provider;
  SimOptions off;
  off.cancellation_hazard = 0.0;
  SimOptions also_off;  // Defaults.
  MetricsReport ra = RunWatter(&*a, &provider, off);
  MetricsReport rb = RunWatter(&*b, &provider, also_off);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_DOUBLE_EQ(ra.total_extra_time, rb.total_extra_time);
}

TEST(CancellationTest, HazardReducesServiceRate) {
  auto patient = GenerateScenario(SmallOptions());
  auto impatient = GenerateScenario(SmallOptions());
  ASSERT_TRUE(patient.ok());
  ASSERT_TRUE(impatient.ok());
  TimeoutThresholdProvider provider;  // Long waits: cancellations bite.
  SimOptions calm;
  SimOptions hasty;
  hasty.cancellation_hazard = 0.05;  // ~22% cancel chance per 5 s check.
  MetricsReport rp = RunWatter(&*patient, &provider, calm);
  MetricsReport ri = RunWatter(&*impatient, &provider, hasty);
  EXPECT_LT(ri.service_rate, rp.service_rate);
  // All orders still accounted for.
  EXPECT_EQ(ri.served + ri.rejected,
            static_cast<int64_t>(impatient->orders.size()));
}

TEST(CancellationTest, DeterministicGivenSimSeed) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  TimeoutThresholdProvider provider;
  SimOptions options;
  options.cancellation_hazard = 0.02;
  options.sim_seed = 5150;
  MetricsReport ra = RunWatter(&*a, &provider, options);
  MetricsReport rb = RunWatter(&*b, &provider, options);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_DOUBLE_EQ(ra.unified_cost, rb.unified_cost);
}

TEST(CancellationTest, CancellationsCountAsExpirationsForObservers) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  TimeoutThresholdProvider provider;
  SimOptions options;
  options.cancellation_hazard = 0.05;
  WatterPlatform platform(&*scenario, &provider, options);
  int64_t expired_seen = 0;
  platform.set_observer([&](const DecisionObservation& obs) {
    if (obs.expired) ++expired_seen;
  });
  MetricsReport report = platform.Run();
  EXPECT_EQ(expired_seen, report.rejected);
}

}  // namespace
}  // namespace watter
