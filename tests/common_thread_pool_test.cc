// Unit tests of the chunked fork-join ThreadPool: full coverage of the
// index range, reuse across many jobs, inline nesting, exception
// propagation, and the ordered-reduction (ParallelMap) determinism pattern.
#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace watter {
namespace {

TEST(ThreadPoolTest, ResolvesThreadCounts) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1);
  EXPECT_EQ(ThreadPool(3).num_threads(), 3);
  EXPECT_GE(ThreadPool(0).num_threads(), 1);   // Hardware default.
  EXPECT_GE(ThreadPool(-4).num_threads(), 1);  // Negative = hardware too.
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, 3, [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, n);
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(64, 4, [&](size_t begin, size_t end) {
      total.fetch_add(static_cast<int64_t>(end - begin),
                      std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(ThreadPoolTest, ParallelMapIsDeterministicAcrossThreadCounts) {
  auto square_sum = [](int threads) {
    ThreadPool pool(threads);
    std::vector<int64_t> out;
    pool.ParallelMap(512, 8, &out, [](size_t i) {
      return static_cast<int64_t>(i) * static_cast<int64_t>(i);
    });
    // Ordered reduction on the calling thread.
    return std::accumulate(out.begin(), out.end(), int64_t{0});
  };
  int64_t reference = square_sum(1);
  for (int threads : {2, 3, 8}) {
    EXPECT_EQ(square_sum(threads), reference);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.ParallelFor(16, 1, [&](size_t begin, size_t end) {
    for (size_t outer = begin; outer < end; ++outer) {
      // Re-entrant call from a worker (or the driving thread's own chunk):
      // must run inline without deadlocking.
      pool.ParallelFor(16, 1, [&](size_t ib, size_t ie) {
        for (size_t inner = ib; inner < ie; ++inner) {
          hits[outer * 16 + inner].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ChunkClaimCompletionHasNoCrossJobInterference) {
  // Chunk-claim completion lets a job finish before every worker has woken;
  // a worker waking late must never run a previous job's body. Hammer the
  // pool with many back-to-back jobs, each writing a distinct stamp into
  // its own buffer: any late waker touching a dead or wrong body would
  // corrupt an earlier buffer (and trip TSan on the dangling reference).
  ThreadPool pool(8);
  constexpr int kJobs = 500;
  constexpr size_t kItems = 37;  // Odd small size: most workers wake late.
  std::vector<std::vector<int>> buffers(kJobs, std::vector<int>(kItems, -1));
  for (int job = 0; job < kJobs; ++job) {
    auto& buffer = buffers[job];
    pool.ParallelFor(kItems, 2, [&buffer, job](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) buffer[i] = job;
    });
  }
  for (int job = 0; job < kJobs; ++job) {
    for (size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(buffers[job][i], job) << "job=" << job << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, SmallJobsCompleteWithoutFullPoolSync) {
  // A 1-chunk job must complete even if no worker ever claims a chunk (the
  // caller drains the range alone). Before chunk-claim completion this
  // still worked but paid a full-pool acknowledgement; now it must also be
  // correct when jobs alternate with ranges too small for most workers.
  ThreadPool pool(8);
  std::atomic<int64_t> total{0};
  for (int job = 0; job < 1000; ++job) {
    pool.ParallelFor(3, 1, [&](size_t begin, size_t end) {
      total.fetch_add(static_cast<int64_t>(end - begin),
                      std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 3000);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100, 1,
                       [](size_t begin, size_t) {
                         if (begin == 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives and runs the next job normally.
  std::atomic<int> count{0};
  pool.ParallelFor(10, 1, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace watter
