// Property tests of the insertion operator: the O(m^2) search must return
// exactly the optimum over all feasible splice positions, validated against
// an independent brute-force reference built from full stop sequences.
#include <gtest/gtest.h>

#include <vector>

#include "src/baseline/insertion.h"
#include "src/common/rng.h"
#include "src/geo/city_generator.h"
#include "tests/test_util.h"

namespace watter {
namespace {

constexpr double kMin = 60.0;

/// Brute-force reference: rebuilds the full node sequence for every (i, j)
/// and measures feasibility and cost from scratch.
InsertionCandidate BruteForceInsertion(const InsertionQuery& query,
                                       const Order& order,
                                       TravelTimeOracle* oracle) {
  const int m = static_cast<int>(query.suffix.size());
  double base = 0.0;
  {
    NodeId prev = query.anchor;
    for (const auto& stop : query.suffix) {
      base += oracle->Cost(prev, stop.node);
      prev = stop.node;
    }
  }
  InsertionCandidate best;
  for (int i = 0; i <= m; ++i) {
    for (int j = i; j <= m; ++j) {
      // Build the explicit event sequence: (node, deadline, delta).
      struct Event {
        NodeId node;
        Time deadline;
        int delta;
      };
      std::vector<Event> events;
      for (int s = 0; s <= m; ++s) {
        if (s == i) events.push_back({order.pickup, kInfCost, order.riders});
        if (s == j) {
          events.push_back({order.dropoff, order.deadline, -order.riders});
        }
        if (s < m) {
          events.push_back({query.suffix[s].node, query.suffix[s].deadline,
                            query.suffix[s].rider_delta});
        }
      }
      NodeId prev = query.anchor;
      Time t = query.anchor_time;
      int onboard = query.onboard_at_anchor;
      double cost = 0.0;
      bool feasible = true;
      for (const Event& event : events) {
        double leg = oracle->Cost(prev, event.node);
        cost += leg;
        t += leg;
        prev = event.node;
        onboard += event.delta;
        if (onboard > query.capacity || t > event.deadline) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      double added = cost - base;
      if (added < best.added_cost) {
        best = {i, j, added};
      }
    }
  }
  return best;
}

TEST(InsertionTest, EmptySuffixIsDirectTrip) {
  Graph graph = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&graph);
  InsertionQuery query;
  query.anchor = testutil::kA;
  query.anchor_time = 0.0;
  query.capacity = 4;
  Order order;
  order.pickup = testutil::kD;
  order.dropoff = testutil::kF;
  order.riders = 1;
  order.deadline = 60 * kMin;
  InsertionCandidate best = FindBestInsertion(query, order, &oracle);
  ASSERT_TRUE(best.feasible());
  EXPECT_EQ(best.pickup_pos, 0);
  EXPECT_EQ(best.dropoff_pos, 0);
  // a -> d -> (via e) f: 1 + 2 minutes.
  EXPECT_DOUBLE_EQ(best.added_cost, 3 * kMin);
}

TEST(InsertionTest, CapacityBlocksOverlappingRiders) {
  Graph graph = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&graph);
  InsertionQuery query;
  query.anchor = testutil::kD;
  query.anchor_time = 0.0;
  query.onboard_at_anchor = 1;  // One rider already on board...
  query.capacity = 1;           // ...and no more seats.
  query.suffix = {{testutil::kF, 60 * kMin, -1}};  // Their drop-off at f.
  Order order;
  order.pickup = testutil::kE;
  order.dropoff = testutil::kF;
  order.riders = 1;
  order.deadline = 120 * kMin;
  InsertionCandidate best = FindBestInsertion(query, order, &oracle);
  ASSERT_TRUE(best.feasible());
  // Must wait until after the drop-off: pickup/dropoff appended at the end.
  EXPECT_EQ(best.pickup_pos, 1);
  EXPECT_EQ(best.dropoff_pos, 1);
}

TEST(InsertionTest, DeadlineOfExistingRiderBlocksDetour) {
  Graph graph = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&graph);
  InsertionQuery query;
  query.anchor = testutil::kD;
  query.anchor_time = 0.0;
  query.onboard_at_anchor = 1;
  query.capacity = 4;
  // Existing rider must reach f within 2 minutes: any pre-drop detour dies.
  query.suffix = {{testutil::kF, 2 * kMin, -1}};
  Order order;
  order.pickup = testutil::kA;
  order.dropoff = testutil::kC;
  order.riders = 1;
  order.deadline = 120 * kMin;
  InsertionCandidate best = FindBestInsertion(query, order, &oracle);
  ASSERT_TRUE(best.feasible());
  EXPECT_EQ(best.pickup_pos, 1);  // Only after f is reached.
  EXPECT_DOUBLE_EQ(
      EvaluateInsertion(query, order, 0, 0, &oracle), kInfCost);
}

TEST(InsertionTest, EvaluateRejectsInvalidPositions) {
  Graph graph = testutil::MakeExample1Graph();
  DijkstraOracle oracle(&graph);
  InsertionQuery query;
  query.anchor = testutil::kA;
  Order order;
  order.pickup = testutil::kB;
  order.dropoff = testutil::kC;
  order.deadline = 60 * kMin;
  EXPECT_EQ(EvaluateInsertion(query, order, -1, 0, &oracle), kInfCost);
  EXPECT_EQ(EvaluateInsertion(query, order, 1, 0, &oracle), kInfCost);
  EXPECT_EQ(EvaluateInsertion(query, order, 0, 5, &oracle), kInfCost);
}

class InsertionPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(InsertionPropertyTest, MatchesBruteForceOnRandomSuffixes) {
  auto city = GenerateCity({.width = 12, .height = 12, .jitter = 0.25,
                            .seed = GetParam()});
  ASSERT_TRUE(city.ok());
  DijkstraOracle oracle(&city->graph);
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 40; ++trial) {
    InsertionQuery query;
    query.anchor = city->RandomNode(&rng);
    query.anchor_time = rng.Uniform(0, 100);
    query.capacity = static_cast<int>(rng.UniformInt(1, 4));
    query.onboard_at_anchor = static_cast<int>(
        rng.UniformInt(0, query.capacity));
    int suffix_len = static_cast<int>(rng.UniformInt(0, 5));
    int onboard = query.onboard_at_anchor;
    for (int s = 0; s < suffix_len; ++s) {
      InsertionStop stop;
      stop.node = city->RandomNode(&rng);
      bool pickup = onboard == 0 ||
                    (onboard < query.capacity && rng.Bernoulli(0.5));
      stop.rider_delta = pickup ? 1 : -1;
      onboard += stop.rider_delta;
      stop.deadline =
          pickup ? kInfCost : query.anchor_time + rng.Uniform(500, 4000);
      query.suffix.push_back(stop);
    }
    Order order;
    order.id = 1;
    order.pickup = city->RandomNode(&rng);
    do {
      order.dropoff = city->RandomNode(&rng);
    } while (order.dropoff == order.pickup);
    order.riders = static_cast<int>(rng.UniformInt(1, 2));
    order.shortest_cost = oracle.Cost(order.pickup, order.dropoff);
    order.deadline =
        query.anchor_time + order.shortest_cost * rng.Uniform(1.0, 2.5);

    InsertionCandidate fast = FindBestInsertion(query, order, &oracle);
    InsertionCandidate brute = BruteForceInsertion(query, order, &oracle);
    ASSERT_EQ(fast.feasible(), brute.feasible()) << "trial " << trial;
    if (fast.feasible()) {
      EXPECT_NEAR(fast.added_cost, brute.added_cost, 1e-9)
          << "trial " << trial;
      // The reported positions must evaluate to the reported cost.
      EXPECT_NEAR(EvaluateInsertion(query, order, fast.pickup_pos,
                                    fast.dropoff_pos, &oracle),
                  fast.added_cost, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertionPropertyTest,
                         testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace watter
