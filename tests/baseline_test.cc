#include <gtest/gtest.h>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/strategy/threshold_provider.h"
#include "src/sim/platform.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions SmallOptions(uint64_t seed = 17) {
  WorkloadOptions options;
  options.dataset = DatasetKind::kCdc;
  options.num_orders = 400;
  options.num_workers = 50;
  options.city_width = 16;
  options.city_height = 16;
  options.duration = 3600.0;
  options.seed = seed;
  return options;
}

TEST(GdpTest, AccountsEveryOrder) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  MetricsReport report = RunGdp(&*scenario);
  EXPECT_EQ(report.served + report.rejected,
            static_cast<int64_t>(scenario->orders.size()));
  EXPECT_GT(report.served, 0);
  EXPECT_GT(report.worker_travel, 0.0);
}

TEST(GdpTest, RespondsImmediately) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  MetricsReport report = RunGdp(&*scenario);
  // Online insertion notifies on arrival: response is identically zero.
  EXPECT_DOUBLE_EQ(report.avg_response, 0.0);
}

TEST(GdpTest, Deterministic) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MetricsReport ra = RunGdp(&*a);
  MetricsReport rb = RunGdp(&*b);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_DOUBLE_EQ(ra.unified_cost, rb.unified_cost);
}

TEST(GdpTest, MoreCandidatesNeverLowerServiceRate) {
  auto narrow = GenerateScenario(SmallOptions(19));
  auto wide = GenerateScenario(SmallOptions(19));
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  GdpOptions few;
  few.worker_candidates = 1;
  GdpOptions many;
  many.worker_candidates = 32;
  MetricsReport rn = RunGdp(&*narrow, few);
  MetricsReport rw = RunGdp(&*wide, many);
  EXPECT_GE(rw.service_rate, rn.service_rate - 1e-9);
  // Wider search can only find cheaper-or-equal insertions per order, which
  // shows up as no-worse unified cost per served order in aggregate.
  EXPECT_GT(rn.served, 0);
}

TEST(GdpTest, ServedDetoursNonNegativeAndDeadlinesRespected) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  std::unordered_map<OrderId, Order> by_id;
  for (const Order& order : scenario->orders) by_id[order.id] = order;
  GdpOptions options;
  // Run through the class interface to inspect records.
  MetricsReport report = RunGdp(&*scenario, options);
  EXPECT_GT(report.avg_detour, 0.0);
  EXPECT_EQ(report.avg_group_size, 1.0);  // GDP records per-order service.
}

TEST(GasTest, AccountsEveryOrder) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  MetricsReport report = RunGas(&*scenario);
  EXPECT_EQ(report.served + report.rejected,
            static_cast<int64_t>(scenario->orders.size()));
  EXPECT_GT(report.served, 0);
}

TEST(GasTest, ResponseBoundedByRollover) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  GasOptions options;
  options.batch_period = 10.0;
  MetricsReport report = RunGas(&*scenario, options);
  // Batched dispatch responds within a batch when capacity allows; with
  // rollover the mean stays well under the mean max-response.
  EXPECT_GT(report.avg_response, 0.0);
  EXPECT_LT(report.avg_response, 600.0);
}

TEST(GasTest, Deterministic) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MetricsReport ra = RunGas(&*a);
  MetricsReport rb = RunGas(&*b);
  EXPECT_EQ(ra.served, rb.served);
  EXPECT_DOUBLE_EQ(ra.total_extra_time, rb.total_extra_time);
}

TEST(GasTest, GroupsActuallyForm) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  MetricsReport report = RunGas(&*scenario);
  EXPECT_GT(report.avg_group_size, 1.05);
}

TEST(GasTest, LargerBatchesWaitLonger) {
  auto small = GenerateScenario(SmallOptions(23));
  auto large = GenerateScenario(SmallOptions(23));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  GasOptions short_batch;
  short_batch.batch_period = 5.0;
  GasOptions long_batch;
  long_batch.batch_period = 60.0;
  MetricsReport rs = RunGas(&*small, short_batch);
  MetricsReport rl = RunGas(&*large, long_batch);
  EXPECT_LT(rs.avg_response, rl.avg_response);
}

TEST(CrossAlgorithmTest, WatterGroupsMoreThanGas) {
  // The pooling framework with cross-batch matching should group at least
  // as aggressively as batch-limited GAS.
  auto a = GenerateScenario(SmallOptions(29));
  auto b = GenerateScenario(SmallOptions(29));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  TimeoutThresholdProvider timeout;
  MetricsReport watter = RunWatter(&*a, &timeout);
  MetricsReport gas = RunGas(&*b);
  EXPECT_GE(watter.avg_group_size, gas.avg_group_size * 0.9);
}

TEST(CrossAlgorithmTest, GdpIsFastestPerOrder) {
  auto a = GenerateScenario(SmallOptions(31));
  auto b = GenerateScenario(SmallOptions(31));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MetricsReport gdp = RunGdp(&*a);
  MetricsReport gas = RunGas(&*b);
  EXPECT_LT(gdp.running_time_per_order, gas.running_time_per_order);
}

}  // namespace
}  // namespace watter
