#include <gtest/gtest.h>

#include <vector>

#include "src/pool/order_pool.h"
#include "src/strategy/decision.h"
#include "src/strategy/threshold_provider.h"
#include "tests/test_util.h"

namespace watter {
namespace {

constexpr double kMin = 60.0;

TEST(DecisionTest, WaitLimitForcesDispatch) {
  DecisionInputs inputs;
  inputs.now = 100.0;
  inputs.earliest_wait_deadline = 99.0;  // Window already elapsed.
  inputs.average_extra_time = 1e9;       // Terrible group.
  inputs.average_threshold = -1e9;
  EXPECT_TRUE(MakeDispatchDecision(inputs));
}

TEST(DecisionTest, ThresholdComparisonOtherwise) {
  DecisionInputs inputs;
  inputs.now = 50.0;
  inputs.earliest_wait_deadline = 100.0;
  inputs.average_extra_time = 30.0;
  inputs.average_threshold = 30.0;
  EXPECT_TRUE(MakeDispatchDecision(inputs));  // te <= theta.
  inputs.average_threshold = 29.9;
  EXPECT_FALSE(MakeDispatchDecision(inputs));
}

TEST(ProviderTest, OnlineAlwaysDispatches) {
  OnlineThresholdProvider provider;
  Order order;
  PoolContext context;
  EXPECT_TRUE(std::isinf(provider.ThresholdFor(order, 0, context)));
  EXPECT_GT(provider.ThresholdFor(order, 0, context), 0);
  EXPECT_STREQ(provider.name(), "WATTER-online");
}

TEST(ProviderTest, TimeoutNeverDispatchesByThreshold) {
  TimeoutThresholdProvider provider;
  Order order;
  PoolContext context;
  EXPECT_TRUE(std::isinf(provider.ThresholdFor(order, 0, context)));
  EXPECT_LT(provider.ThresholdFor(order, 0, context), 0);
}

TEST(ProviderTest, FixedReturnsConstant) {
  FixedThresholdProvider provider(42.0);
  Order order;
  PoolContext context;
  EXPECT_DOUBLE_EQ(provider.ThresholdFor(order, 123.0, context), 42.0);
}

TEST(ProviderTest, GmmProviderScalesWithPenalty) {
  auto gmm = GaussianMixture::Create(
      {{.weight = 1.0, .mean = 120, .variance = 3600}});
  ASSERT_TRUE(gmm.ok());
  GmmThresholdProvider provider(std::move(gmm).value());
  PoolContext context;
  Order small;
  small.release = 0;
  small.deadline = 300;
  small.shortest_cost = 100;  // Penalty 200.
  Order large;
  large.release = 0;
  large.deadline = 2000;
  large.shortest_cost = 100;  // Penalty 1900.
  double theta_small = provider.ThresholdFor(small, 0, context);
  double theta_large = provider.ThresholdFor(large, 0, context);
  EXPECT_GT(theta_small, 0.0);
  EXPECT_GT(theta_large, theta_small);
  EXPECT_LE(theta_large, large.Penalty());
}

PoolOptions PermissivePoolOptions() {
  PoolOptions options;
  options.include_singletons = true;  // Decision logic is mode-agnostic.
  return options;
}

class GroupDecisionTest : public testing::Test {
 protected:
  GroupDecisionTest()
      : graph_(testutil::MakeExample1Graph()),
        oracle_(&graph_),
        pool_(&oracle_, PermissivePoolOptions()) {}

  Graph graph_;
  DijkstraOracle oracle_;
  OrderPool pool_;
};

TEST_F(GroupDecisionTest, OnlineDispatchesBestGroupImmediately) {
  auto orders = testutil::MakeExample1Orders();
  ASSERT_TRUE(pool_.Insert(orders[0], orders[0].release).ok());
  const BestGroup* best = pool_.BestFor(orders[0].id, orders[0].release);
  ASSERT_NE(best, nullptr);
  OnlineThresholdProvider online;
  PoolContext context;
  EXPECT_TRUE(DecideGroupDispatch(*best, {&orders[0]}, orders[0].release,
                                  ExtraTimeWeights{}, &online, context));
}

TEST_F(GroupDecisionTest, TimeoutHoldsUntilWaitDeadline) {
  auto orders = testutil::MakeExample1Orders();
  Order o = orders[0];  // wait_limit = 60 s.
  ASSERT_TRUE(pool_.Insert(o, o.release).ok());
  const BestGroup* best = pool_.BestFor(o.id, o.release);
  ASSERT_NE(best, nullptr);
  TimeoutThresholdProvider timeout;
  PoolContext context;
  // Before the window elapses: hold.
  EXPECT_FALSE(DecideGroupDispatch(*best, {&o}, o.release + 59,
                                   ExtraTimeWeights{}, &timeout, context));
  // After: forced dispatch.
  EXPECT_TRUE(DecideGroupDispatch(*best, {&o}, o.WaitDeadline() + 1,
                                  ExtraTimeWeights{}, &timeout, context));
}

TEST_F(GroupDecisionTest, FixedThresholdDispatchesOnceGroupGoodEnough) {
  // Two identical d->f trips: the pair has avg extra = beta * avg response.
  Order a{.id = 61, .pickup = testutil::kD, .dropoff = testutil::kF,
          .riders = 1, .release = 0, .deadline = 30 * kMin,
          .wait_limit = 5 * kMin, .shortest_cost = 2 * kMin};
  Order b = a;
  b.id = 62;
  b.release = 10;
  b.deadline = 10 + 30 * kMin;
  ASSERT_TRUE(pool_.Insert(a, 0).ok());
  ASSERT_TRUE(pool_.Insert(b, 10).ok());
  const BestGroup* best = pool_.BestFor(a.id, 10);
  ASSERT_NE(best, nullptr);
  ASSERT_EQ(best->size(), 2);
  FixedThresholdProvider strict(1.0);  // Avg response at t=10 is 5 s > 1.
  FixedThresholdProvider loose(10.0);
  PoolContext context;
  EXPECT_FALSE(DecideGroupDispatch(*best, {&a, &b}, 10, ExtraTimeWeights{},
                                   &strict, context));
  EXPECT_TRUE(DecideGroupDispatch(*best, {&a, &b}, 10, ExtraTimeWeights{},
                                  &loose, context));
}

}  // namespace
}  // namespace watter
