// Shared helpers for WATTER tests: the paper's Example 1 road network and
// small scenario builders.
#ifndef WATTER_TESTS_TEST_UTIL_H_
#define WATTER_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/geo/graph.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {
namespace testutil {

/// Node labels of the Example 1 network (Figure 1 of the paper).
enum Example1Node : NodeId { kA = 0, kB, kC, kD, kE, kF };

/// Builds a 6-node, 7-edge road network consistent with every travel time
/// quoted in Example 1 of the paper (each edge costs 1 minute = 60 s):
///   cost(a,c)=2min, cost(d,c)=3min, cost(d,f)=2min, cost(f,d)=2min,
///   non-sharing total 12min, online-insertion total 9min,
///   batch total 7min, optimal pooling total 5min.
/// Edges: a-b, b-c, a-d, d-e, e-f, c-f, b-e.
inline Graph MakeExample1Graph(double minute = 60.0) {
  Graph g;
  for (int i = 0; i < 6; ++i) {
    g.AddNode(Point{static_cast<double>(i % 3), static_cast<double>(i / 3)});
  }
  g.AddBidirectionalEdge(kA, kB, minute);
  g.AddBidirectionalEdge(kB, kC, minute);
  g.AddBidirectionalEdge(kA, kD, minute);
  g.AddBidirectionalEdge(kD, kE, minute);
  g.AddBidirectionalEdge(kE, kF, minute);
  g.AddBidirectionalEdge(kC, kF, minute);
  g.AddBidirectionalEdge(kB, kE, minute);
  WATTER_CHECK_OK(g.Finalize());
  return g;
}

/// The four orders of Table I (release times in seconds; generous deadlines
/// unless a test overrides them).
inline std::vector<Order> MakeExample1Orders(double minute = 60.0) {
  std::vector<Order> orders(4);
  orders[0] = {.id = 1, .pickup = kA, .dropoff = kC, .riders = 1,
               .release = 5, .deadline = 5 + 20 * minute, .wait_limit = 60,
               .shortest_cost = 2 * minute};
  orders[1] = {.id = 2, .pickup = kD, .dropoff = kF, .riders = 1,
               .release = 8, .deadline = 8 + 20 * minute, .wait_limit = 60,
               .shortest_cost = 2 * minute};
  orders[2] = {.id = 3, .pickup = kD, .dropoff = kC, .riders = 1,
               .release = 10, .deadline = 10 + 20 * minute, .wait_limit = 60,
               .shortest_cost = 3 * minute};
  orders[3] = {.id = 4, .pickup = kE, .dropoff = kF, .riders = 1,
               .release = 12, .deadline = 12 + 20 * minute, .wait_limit = 60,
               .shortest_cost = 1 * minute};
  return orders;
}

}  // namespace testutil
}  // namespace watter

#endif  // WATTER_TESTS_TEST_UTIL_H_
