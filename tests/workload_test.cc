#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/workload/dataset_io.h"
#include "src/workload/demand_model.h"
#include "src/workload/scenario.h"

namespace watter {
namespace {

WorkloadOptions SmallOptions(DatasetKind kind = DatasetKind::kCdc) {
  WorkloadOptions options;
  options.dataset = kind;
  options.num_orders = 300;
  options.num_workers = 40;
  options.city_width = 16;
  options.city_height = 16;
  options.seed = 5;
  return options;
}

TEST(DemandModelTest, PresetsAreWellFormed) {
  for (DatasetKind kind :
       {DatasetKind::kNyc, DatasetKind::kCdc, DatasetKind::kXia}) {
    DemandModel model = MakeDemandModel(kind);
    EXPECT_FALSE(model.pickup_spots.empty());
    EXPECT_FALSE(model.dropoff_spots.empty());
    ASSERT_EQ(model.hourly_rate.size(), 24u);
    for (double rate : model.hourly_rate) EXPECT_GT(rate, 0.0);
    EXPECT_STREQ(model.name.c_str(), DatasetName(kind));
  }
}

TEST(DemandModelTest, HotspotSamplesStayInCity) {
  DemandModel model = MakeDemandModel(DatasetKind::kNyc);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    Point p = SampleFromHotspots(model.pickup_spots, 20, 30, &rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 19.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 29.0);
  }
}

TEST(DemandModelTest, NycIsMoreConcentratedThanXia) {
  // The substitution hinges on this property (paper Section VII-B explains
  // NYC results by Manhattan concentration): NYC pickups must have smaller
  // spatial spread than XIA pickups.
  Rng rng(11);
  auto spread = [&rng](DatasetKind kind) {
    DemandModel model = MakeDemandModel(kind);
    double sum_x = 0, sum_y = 0, sum_sq = 0;
    const int n = 4000;
    std::vector<Point> samples;
    for (int i = 0; i < n; ++i) {
      samples.push_back(SampleFromHotspots(model.pickup_spots, 50, 50, &rng));
      sum_x += samples.back().x;
      sum_y += samples.back().y;
    }
    Point mean{sum_x / n, sum_y / n};
    for (const Point& p : samples) {
      sum_sq += (p.x - mean.x) * (p.x - mean.x) +
                (p.y - mean.y) * (p.y - mean.y);
    }
    return std::sqrt(sum_sq / n);
  };
  EXPECT_LT(spread(DatasetKind::kNyc) * 1.3, spread(DatasetKind::kXia));
}

TEST(DemandModelTest, RushHoursDominateNight) {
  DemandModel model = MakeDemandModel(DatasetKind::kCdc);
  Rng rng(7);
  int rush = 0, night = 0;
  for (int i = 0; i < 10000; ++i) {
    double tod = SampleTimeOfDay(model.hourly_rate, &rng);
    ASSERT_GE(tod, 0.0);
    ASSERT_LT(tod, 86400.0);
    int hour = static_cast<int>(tod / 3600.0);
    if (hour >= 17 && hour < 20) ++rush;
    if (hour >= 1 && hour < 4) ++night;
  }
  EXPECT_GT(rush, night * 3);
}

TEST(ScenarioTest, GeneratesRequestedCounts) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->orders.size(), 300u);
  EXPECT_EQ(scenario->workers.size(), 40u);
  EXPECT_EQ(scenario->city->graph.num_nodes(), 16 * 16);
  EXPECT_NE(scenario->oracle, nullptr);
}

TEST(ScenarioTest, OrdersFollowPaperParameterization) {
  WorkloadOptions options = SmallOptions();
  options.tau = 1.4;
  options.eta = 0.6;
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  for (const Order& order : scenario->orders) {
    EXPECT_GT(order.shortest_cost, 0.0);
    EXPECT_NEAR(order.deadline, order.release + 1.4 * order.shortest_cost,
                1e-9);
    EXPECT_NEAR(order.wait_limit, 0.6 * order.shortest_cost, 1e-9);
    EXPECT_EQ(order.riders, 1);
    EXPECT_NE(order.pickup, order.dropoff);
    // Shortest cost matches the oracle.
    EXPECT_NEAR(order.shortest_cost,
                scenario->oracle->Cost(order.pickup, order.dropoff), 1e-6);
  }
}

TEST(ScenarioTest, OrdersSortedByRelease) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  for (size_t i = 1; i < scenario->orders.size(); ++i) {
    EXPECT_LE(scenario->orders[i - 1].release, scenario->orders[i].release);
  }
}

TEST(ScenarioTest, ReleasesInsideWindow) {
  WorkloadOptions options = SmallOptions();
  options.start_hour = 8.0;
  options.duration = 2 * 3600.0;
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  for (const Order& order : scenario->orders) {
    EXPECT_GE(order.release, 8 * 3600.0);
    EXPECT_LT(order.release, 10 * 3600.0);
  }
}

TEST(ScenarioTest, WorkerCapacitiesUniformIn2ToKw) {
  WorkloadOptions options = SmallOptions();
  options.max_capacity = 5;
  options.num_workers = 400;
  auto scenario = GenerateScenario(options);
  ASSERT_TRUE(scenario.ok());
  std::vector<int> counts(6, 0);
  for (const Worker& worker : scenario->workers) {
    ASSERT_GE(worker.capacity, 2);
    ASSERT_LE(worker.capacity, 5);
    ++counts[worker.capacity];
    EXPECT_FALSE(worker.busy);
    EXPECT_GE(worker.location, 0);
    EXPECT_LT(worker.location, scenario->city->graph.num_nodes());
  }
  for (int capacity = 2; capacity <= 5; ++capacity) {
    EXPECT_GT(counts[capacity], 50) << "capacity " << capacity;
  }
}

TEST(ScenarioTest, DeterministicForSeed) {
  auto a = GenerateScenario(SmallOptions());
  auto b = GenerateScenario(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->orders.size(), b->orders.size());
  for (size_t i = 0; i < a->orders.size(); ++i) {
    EXPECT_EQ(a->orders[i].pickup, b->orders[i].pickup);
    EXPECT_EQ(a->orders[i].release, b->orders[i].release);
  }
}

TEST(ScenarioTest, SharedCitySeedKeepsRoadNetworkFixed) {
  WorkloadOptions a = SmallOptions();
  a.seed = 1;
  a.city_seed = 777;
  WorkloadOptions b = SmallOptions();
  b.seed = 2;
  b.city_seed = 777;
  auto sa = GenerateScenario(a);
  auto sb = GenerateScenario(b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  // Same road network: identical costs between equal node pairs.
  EXPECT_NEAR(sa->oracle->Cost(0, 100), sb->oracle->Cost(0, 100), 1e-9);
  // Different demand draws.
  bool any_different = false;
  for (size_t i = 0; i < sa->orders.size(); ++i) {
    if (sa->orders[i].pickup != sb->orders[i].pickup) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(ScenarioTest, RejectsInvalidOptions) {
  WorkloadOptions options = SmallOptions();
  options.num_orders = 0;
  EXPECT_FALSE(GenerateScenario(options).ok());
  options = SmallOptions();
  options.tau = 1.0;
  EXPECT_FALSE(GenerateScenario(options).ok());
  options = SmallOptions();
  options.eta = 0.0;
  EXPECT_FALSE(GenerateScenario(options).ok());
}

TEST(DatasetIoTest, OrdersRoundTrip) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  std::string path = testing::TempDir() + "/orders.csv";
  ASSERT_TRUE(SaveOrdersCsv(path, scenario->orders).ok());
  auto loaded = LoadOrdersCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), scenario->orders.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, scenario->orders[i].id);
    EXPECT_EQ((*loaded)[i].pickup, scenario->orders[i].pickup);
    EXPECT_NEAR((*loaded)[i].deadline, scenario->orders[i].deadline, 1e-3);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, WorkersRoundTrip) {
  auto scenario = GenerateScenario(SmallOptions());
  ASSERT_TRUE(scenario.ok());
  std::string path = testing::TempDir() + "/workers.csv";
  ASSERT_TRUE(SaveWorkersCsv(path, scenario->workers).ok());
  auto loaded = LoadWorkersCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), scenario->workers.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, scenario->workers[i].id);
    EXPECT_EQ((*loaded)[i].capacity, scenario->workers[i].capacity);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsMissingColumns) {
  std::string path = testing::TempDir() + "/bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fprintf(f, "id,pickup\n1,2\n");
  fclose(f);
  EXPECT_FALSE(LoadOrdersCsv(path).ok());
  EXPECT_FALSE(LoadWorkersCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace watter
