#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace watter {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, EmitsToStderrAtOrAboveLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  WATTER_LOG_INFO << "served " << 42 << " orders";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("served 42 orders"), std::string::npos);
  EXPECT_NE(out.find("common_logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, FiltersBelowLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  WATTER_LOG_DEBUG << "invisible";
  WATTER_LOG_INFO << "also invisible";
  WATTER_LOG_WARNING << "visible";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST(LoggingTest, ErrorAlwaysVisibleAtDefaultLevels) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  WATTER_LOG_ERROR << "boom";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_NE(out.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace watter
