#include <gtest/gtest.h>

#include <algorithm>

#include "src/pool/shareability_graph.h"
#include "tests/test_util.h"

namespace watter {
namespace {

constexpr double kMin = 60.0;

class ShareabilityGraphTest : public testing::Test {
 protected:
  ShareabilityGraphTest()
      : graph_(testutil::MakeExample1Graph()),
        oracle_(&graph_),
        planner_(&oracle_),
        share_(&planner_, ShareabilityOptions{4, true}),
        orders_(testutil::MakeExample1Orders()) {}

  Graph graph_;
  DijkstraOracle oracle_;
  RoutePlanner planner_;
  ShareabilityGraph share_;
  std::vector<Order> orders_;
};

TEST_F(ShareabilityGraphTest, InsertCreatesEdgesForShareablePairs) {
  ASSERT_TRUE(share_.Insert(orders_[0], orders_[0].release).ok());
  auto gained = share_.Insert(orders_[2], orders_[2].release);
  ASSERT_TRUE(gained.ok());
  // o1 (a->c) and o3 (d->c) share route d->a->c: edge expected.
  ASSERT_EQ(gained->size(), 1u);
  EXPECT_EQ((*gained)[0], orders_[0].id);
  EXPECT_TRUE(share_.HasEdge(orders_[0].id, orders_[2].id));
  EXPECT_TRUE(share_.HasEdge(orders_[2].id, orders_[0].id));
  EXPECT_EQ(share_.edge_count(), 1);
}

TEST_F(ShareabilityGraphTest, EdgeCarriesPairCostAndExpiry) {
  ASSERT_TRUE(share_.Insert(orders_[1], orders_[1].release).ok());
  ASSERT_TRUE(share_.Insert(orders_[3], orders_[3].release).ok());
  const auto& edges = share_.Neighbors(orders_[1].id);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].pair_cost, 2 * kMin);  // d -> e -> f.
  // Expiry = min over members of (deadline - completion): o2 completes at
  // 2 min, o4 at 2 min on that route.
  double expected_expiry = std::min(orders_[1].deadline - 2 * kMin,
                                    orders_[3].deadline - 2 * kMin);
  EXPECT_DOUBLE_EQ(edges[0].expiry, expected_expiry);
}

TEST_F(ShareabilityGraphTest, DuplicateInsertFails) {
  ASSERT_TRUE(share_.Insert(orders_[0], 5).ok());
  EXPECT_EQ(share_.Insert(orders_[0], 6).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ShareabilityGraphTest, RemoveDropsBothDirections) {
  ASSERT_TRUE(share_.Insert(orders_[0], 5).ok());
  ASSERT_TRUE(share_.Insert(orders_[2], 10).ok());
  auto neighbors = share_.Remove(orders_[0].id);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_EQ(neighbors->size(), 1u);
  EXPECT_EQ((*neighbors)[0], orders_[2].id);
  EXPECT_FALSE(share_.Contains(orders_[0].id));
  EXPECT_TRUE(share_.Neighbors(orders_[2].id).empty());
  EXPECT_EQ(share_.edge_count(), 0);
  EXPECT_EQ(share_.Remove(orders_[0].id).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ShareabilityGraphTest, NonShareablePairGetsNoEdge) {
  // o1 (a->c) and o4 (e->f): overlapping route would be a huge detour, and
  // with tight deadlines it is infeasible.
  Order o1 = orders_[0];
  Order o4 = orders_[3];
  o1.deadline = o1.release + 2.2 * kMin;  // Barely above its 2-min ride.
  o4.deadline = o4.release + 1.2 * kMin;
  ASSERT_TRUE(share_.Insert(o1, o1.release).ok());
  auto gained = share_.Insert(o4, o4.release);
  ASSERT_TRUE(gained.ok());
  EXPECT_TRUE(gained->empty());
  EXPECT_FALSE(share_.HasEdge(o1.id, o4.id));
}

TEST_F(ShareabilityGraphTest, OverlapRequirementFiltersSequentialChains) {
  // On a path a-b-c-d-e, order X (a->b) and order Y (d->e) point the same
  // way but are disjoint: the cheapest joint route is the sequential chain
  // a,b,d,e (cost 4), and any interleaved route costs more. The strict graph
  // must reject the pair; a permissive graph accepts the chain.
  Graph line;
  for (int i = 0; i < 5; ++i) {
    line.AddNode({static_cast<double>(i), 0.0});
  }
  for (int i = 0; i + 1 < 5; ++i) {
    line.AddBidirectionalEdge(i, i + 1, kMin);
  }
  ASSERT_TRUE(line.Finalize().ok());
  DijkstraOracle oracle(&line);
  RoutePlanner planner(&oracle);

  Order x{.id = 10, .pickup = 0, .dropoff = 1, .riders = 1, .release = 0,
          .deadline = 60 * kMin, .wait_limit = 10 * kMin,
          .shortest_cost = kMin};
  Order y{.id = 11, .pickup = 3, .dropoff = 4, .riders = 1, .release = 0,
          .deadline = 60 * kMin, .wait_limit = 10 * kMin,
          .shortest_cost = kMin};

  ShareabilityGraph strict(&planner, ShareabilityOptions{4, true});
  ASSERT_TRUE(strict.Insert(x, 0).ok());
  ASSERT_TRUE(strict.Insert(y, 0).ok());
  EXPECT_FALSE(strict.HasEdge(x.id, y.id));

  ShareabilityGraph loose(&planner, ShareabilityOptions{4, false});
  ASSERT_TRUE(loose.Insert(x, 0).ok());
  ASSERT_TRUE(loose.Insert(y, 0).ok());
  EXPECT_TRUE(loose.HasEdge(x.id, y.id));
  // The chained route costs 4 minutes (a->b->d->e with the b->d connection).
  EXPECT_DOUBLE_EQ(loose.Neighbors(x.id)[0].pair_cost, 4 * kMin);
}

TEST_F(ShareabilityGraphTest, ExpireEdgesDropsStaleOnes) {
  ASSERT_TRUE(share_.Insert(orders_[1], orders_[1].release).ok());
  ASSERT_TRUE(share_.Insert(orders_[3], orders_[3].release).ok());
  ASSERT_EQ(share_.edge_count(), 1);
  double expiry = share_.Neighbors(orders_[1].id)[0].expiry;
  // Just before expiry: edge stays.
  EXPECT_TRUE(share_.ExpireEdges(expiry - 1.0).empty());
  EXPECT_EQ(share_.edge_count(), 1);
  // After expiry: both endpoints affected.
  auto affected = share_.ExpireEdges(expiry + 1.0);
  std::sort(affected.begin(), affected.end());
  EXPECT_EQ(affected,
            (std::vector<OrderId>{orders_[1].id, orders_[3].id}));
  EXPECT_EQ(share_.edge_count(), 0);
}

TEST_F(ShareabilityGraphTest, LateInsertSkipsExpiredCandidates) {
  Order stale = orders_[0];
  ASSERT_TRUE(share_.Insert(stale, stale.release).ok());
  // Insert a partner after o1's latest dispatch: no pair test can succeed.
  Time too_late = stale.LatestDispatch() + 1.0;
  int64_t tests_before = share_.pair_tests();
  auto gained = share_.Insert(orders_[2], too_late);
  ASSERT_TRUE(gained.ok());
  EXPECT_TRUE(gained->empty());
  EXPECT_EQ(share_.pair_tests(), tests_before);  // Quick-reject, no plan.
}

TEST_F(ShareabilityGraphTest, AccessorsOnUnknownIds) {
  EXPECT_EQ(share_.GetOrder(404), nullptr);
  EXPECT_TRUE(share_.Neighbors(404).empty());
  EXPECT_EQ(share_.InsertedAt(404), -1.0);
  EXPECT_FALSE(share_.HasEdge(404, 405));
}

TEST_F(ShareabilityGraphTest, OrderIdsListsResidents) {
  ASSERT_TRUE(share_.Insert(orders_[0], 5).ok());
  ASSERT_TRUE(share_.Insert(orders_[1], 8).ok());
  auto ids = share_.OrderIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<OrderId>{1, 2}));
  EXPECT_DOUBLE_EQ(share_.InsertedAt(orders_[0].id), 5.0);
}

}  // namespace
}  // namespace watter
