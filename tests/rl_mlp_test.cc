#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/rl/adam.h"
#include "src/rl/mlp.h"

namespace watter {
namespace {

TEST(MlpTest, ShapesAndParamCount) {
  Mlp net({4, 8, 1}, 1);
  EXPECT_EQ(net.input_size(), 4);
  // 4*8 + 8 + 8*1 + 1 = 49.
  EXPECT_EQ(net.param_count(), 49);
}

TEST(MlpTest, DeterministicInitialization) {
  Mlp a({4, 8, 1}, 7);
  Mlp b({4, 8, 1}, 7);
  EXPECT_EQ(a.params(), b.params());
  Mlp c({4, 8, 1}, 8);
  EXPECT_NE(a.params(), c.params());
}

TEST(MlpTest, ForwardIsLinearWhenWeightsForceIt) {
  // One hidden unit with identity-ish weights: V(x) = relu(2x) * 3 + 1.
  Mlp net({1, 1, 1}, 1);
  net.params() = {2.0f, 0.0f, 3.0f, 1.0f};  // W1, b1, W2, b2.
  std::vector<float> x = {5.0f};
  EXPECT_NEAR(net.Forward(x), 2 * 5 * 3 + 1, 1e-5);
  x[0] = -4.0f;  // ReLU clips.
  EXPECT_NEAR(net.Forward(x), 1.0, 1e-6);
}

TEST(MlpTest, GradientsMatchFiniteDifferences) {
  Mlp net({3, 5, 1}, 3);
  Rng rng(5);
  std::vector<float> input(3);
  for (auto& v : input) v = static_cast<float>(rng.Normal());
  // Loss = 0.5 * V^2 so dLoss/dV = V.
  double out = net.Forward(input);
  std::vector<float> grads(net.param_count(), 0.0f);
  net.ForwardBackward(input, out, &grads);
  const double eps = 1e-3;
  for (int p = 0; p < net.param_count(); p += 3) {  // Spot-check.
    float original = net.params()[p];
    net.params()[p] = original + static_cast<float>(eps);
    double up = net.Forward(input);
    net.params()[p] = original - static_cast<float>(eps);
    double down = net.Forward(input);
    net.params()[p] = original;
    double numeric = (0.5 * up * up - 0.5 * down * down) / (2 * eps);
    EXPECT_NEAR(grads[p], numeric, 5e-2 * std::max(1.0, std::abs(numeric)))
        << "param " << p;
  }
}

TEST(MlpTest, CopyParamsMakesNetworksIdentical) {
  Mlp a({2, 4, 1}, 1);
  Mlp b({2, 4, 1}, 2);
  std::vector<float> x = {0.3f, -0.7f};
  EXPECT_NE(a.Forward(x), b.Forward(x));
  b.CopyParamsFrom(a);
  EXPECT_EQ(a.Forward(x), b.Forward(x));
}

TEST(MlpTest, LearnsSimpleRegression) {
  // Fit V(x) = 3*x0 - 2*x1 + 0.5 with Adam on random samples.
  Mlp net({2, 16, 1}, 11);
  AdamOptimizer adam(static_cast<size_t>(net.param_count()), 5e-3);
  Rng rng(13);
  std::vector<float> grads(net.param_count());
  for (int step = 0; step < 3000; ++step) {
    std::fill(grads.begin(), grads.end(), 0.0f);
    double loss = 0.0;
    for (int b = 0; b < 16; ++b) {
      std::vector<float> x = {static_cast<float>(rng.Uniform(-1, 1)),
                              static_cast<float>(rng.Uniform(-1, 1))};
      double target = 3.0 * x[0] - 2.0 * x[1] + 0.5;
      double out = net.Forward(x);
      double err = out - target;
      net.ForwardBackward(x, 2.0 * err / 16.0, &grads);
      loss += err * err;
    }
    adam.Step(&net.params(), grads);
  }
  // Evaluate.
  double total_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x = {static_cast<float>(rng.Uniform(-1, 1)),
                            static_cast<float>(rng.Uniform(-1, 1))};
    double target = 3.0 * x[0] - 2.0 * x[1] + 0.5;
    total_err += std::abs(net.Forward(x) - target);
  }
  EXPECT_LT(total_err / 200.0, 0.1);
}

TEST(AdamTest, StepCountAndDirection) {
  AdamOptimizer adam(2, 0.1);
  std::vector<float> params = {1.0f, -1.0f};
  std::vector<float> grads = {0.5f, -0.5f};
  adam.Step(&params, grads);
  EXPECT_EQ(adam.step_count(), 1);
  // Moves against the gradient.
  EXPECT_LT(params[0], 1.0f);
  EXPECT_GT(params[1], -1.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2.
  AdamOptimizer adam(1, 0.05);
  std::vector<float> x = {-5.0f};
  for (int i = 0; i < 2000; ++i) {
    std::vector<float> grad = {2.0f * (x[0] - 3.0f)};
    adam.Step(&x, grad);
  }
  EXPECT_NEAR(x[0], 3.0f, 1e-2);
}

}  // namespace
}  // namespace watter
