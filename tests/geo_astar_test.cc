#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/geo/astar.h"
#include "src/geo/city_generator.h"
#include "src/geo/dijkstra.h"

namespace watter {
namespace {

TEST(AStarTest, MatchesDijkstraOnCities) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto city = GenerateCity({.width = 14, .height = 14, .jitter = 0.3,
                              .seed = seed});
    ASSERT_TRUE(city.ok());
    AStar astar(&city->graph);
    Dijkstra reference(&city->graph);
    Rng rng(seed * 17);
    for (int trial = 0; trial < 60; ++trial) {
      NodeId s = city->RandomNode(&rng);
      NodeId t = city->RandomNode(&rng);
      reference.Run(s, t);
      EXPECT_NEAR(astar.Query(s, t), reference.DistanceTo(t), 1e-9)
          << s << "->" << t << " seed " << seed;
    }
  }
}

TEST(AStarTest, HeuristicFactorIsAdmissible) {
  auto city = GenerateCity({.width = 12, .height = 12, .jitter = 0.2,
                            .seed = 4});
  ASSERT_TRUE(city.ok());
  AStar astar(&city->graph);
  EXPECT_GT(astar.heuristic_factor(), 0.0);
  // Admissibility: factor * euclid never exceeds the true cost.
  Dijkstra reference(&city->graph);
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    reference.Run(s, t);
    double bound = astar.heuristic_factor() *
                   EuclideanDistance(city->graph.node_point(s),
                                     city->graph.node_point(t));
    EXPECT_LE(bound, reference.DistanceTo(t) + 1e-9);
  }
}

TEST(AStarTest, SettlesFewerNodesThanDijkstra) {
  auto city = GenerateCity({.width = 24, .height = 24, .jitter = 0.15,
                            .seed = 6});
  ASSERT_TRUE(city.ok());
  AStar astar(&city->graph);
  Dijkstra dijkstra(&city->graph);
  Rng rng(7);
  int64_t astar_total = 0, dijkstra_total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    NodeId s = city->RandomNode(&rng);
    NodeId t = city->RandomNode(&rng);
    astar.Query(s, t);
    dijkstra.Run(s, t);
    astar_total += astar.settled_count();
    dijkstra_total += dijkstra.settled_count();
  }
  EXPECT_LT(astar_total, dijkstra_total);
}

TEST(AStarTest, CoLocatedNodesDegradeGracefully) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({0, 0});  // Same coordinates.
  g.AddNode({1, 0});
  g.AddBidirectionalEdge(0, 1, 5.0);
  g.AddBidirectionalEdge(1, 2, 3.0);
  ASSERT_TRUE(g.Finalize().ok());
  AStar astar(&g);
  EXPECT_DOUBLE_EQ(astar.heuristic_factor(), 0.0);
  EXPECT_DOUBLE_EQ(astar.Query(0, 2), 8.0);
}

TEST(AStarTest, UnreachableAndTrivialQueries) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({5, 5});
  ASSERT_TRUE(g.Finalize().ok());
  AStar astar(&g);
  EXPECT_DOUBLE_EQ(astar.Query(0, 0), 0.0);
  EXPECT_EQ(astar.Query(0, 1), kInfCost);
}

}  // namespace
}  // namespace watter
