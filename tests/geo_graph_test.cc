#include <gtest/gtest.h>

#include "src/geo/graph.h"

namespace watter {
namespace {

TEST(GraphTest, BuildAndTraverseCsr) {
  Graph g;
  NodeId a = g.AddNode({0, 0});
  NodeId b = g.AddNode({1, 0});
  NodeId c = g.AddNode({0, 1});
  g.AddEdge(a, b, 1.5);
  g.AddEdge(b, c, 2.5);
  g.AddBidirectionalEdge(a, c, 4.0);
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 4);

  auto out_a = g.OutArcs(a);
  ASSERT_EQ(out_a.size(), 2u);
  auto in_c = g.InArcs(c);
  ASSERT_EQ(in_c.size(), 2u);
  // b's only outgoing arc goes to c with weight 2.5.
  auto out_b = g.OutArcs(b);
  ASSERT_EQ(out_b.size(), 1u);
  EXPECT_EQ(out_b[0].to, c);
  EXPECT_DOUBLE_EQ(out_b[0].weight, 2.5);
}

TEST(GraphTest, FinalizeRejectsBadEndpoints) {
  Graph g;
  g.AddNode({0, 0});
  g.AddEdge(0, 5, 1.0);
  EXPECT_EQ(g.Finalize().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, FinalizeRejectsNegativeWeight) {
  Graph g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddEdge(0, 1, -2.0);
  EXPECT_EQ(g.Finalize().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, DoubleFinalizeFails) {
  Graph g;
  g.AddNode({0, 0});
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphTest, WeakConnectivity) {
  Graph connected;
  NodeId a = connected.AddNode({0, 0});
  NodeId b = connected.AddNode({1, 0});
  connected.AddEdge(a, b, 1.0);  // Directed suffices for weak connectivity.
  ASSERT_TRUE(connected.Finalize().ok());
  EXPECT_TRUE(connected.IsWeaklyConnected());

  Graph disconnected;
  disconnected.AddNode({0, 0});
  disconnected.AddNode({5, 5});
  ASSERT_TRUE(disconnected.Finalize().ok());
  EXPECT_FALSE(disconnected.IsWeaklyConnected());
}

TEST(GraphTest, BoundingBox) {
  Graph g;
  g.AddNode({-1, 4});
  g.AddNode({3, -2});
  g.AddNode({0, 0});
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.MinCorner(), (Point{-1, -2}));
  EXPECT_EQ(g.MaxCorner(), (Point{3, 4}));
}

TEST(PointTest, Distances) {
  Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 7.0);
}

}  // namespace
}  // namespace watter
