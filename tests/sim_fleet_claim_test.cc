// Direct tests of the Fleet two-phase claim protocol (fleet.h): TryClaim /
// CommitClaim / ReleaseClaim plus the arena-tagged bulk rollback the
// region-sharded commit pass stages its winners through. The platform
// suites exercise the happy path end to end; this file pins down the
// rollback semantics — claim-then-lose, arena staging, double-release —
// and the WATTER_CHECK aborts that guard protocol misuse.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/fleet.h"

namespace watter {
namespace {

// A 4-node path graph with one worker per node.
class ClaimFixture {
 public:
  ClaimFixture() {
    g_.AddNode({0, 0});
    g_.AddNode({1, 0});
    g_.AddNode({2, 0});
    g_.AddNode({3, 0});
    g_.AddBidirectionalEdge(0, 1, 5.0);
    g_.AddBidirectionalEdge(1, 2, 5.0);
    g_.AddBidirectionalEdge(2, 3, 5.0);
    EXPECT_TRUE(g_.Finalize().ok());
    std::vector<Worker> workers = {{1, 0, 4, false, 0.0},
                                   {2, 1, 4, false, 0.0},
                                   {3, 2, 4, false, 0.0},
                                   {4, 3, 4, false, 0.0}};
    fleet_ = std::make_unique<Fleet>(workers, &g_, 4);
  }

  Fleet& fleet() { return *fleet_; }

 private:
  Graph g_;
  std::unique_ptr<Fleet> fleet_;
};

TEST(FleetClaimTest, ClaimExcludesFromIdleSetUntilReleased) {
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(2));
  EXPECT_EQ(fx.fleet().claimed_count(), 1);
  EXPECT_EQ(fx.fleet().idle_count(), 3);
  EXPECT_TRUE(fx.fleet().worker(2).busy);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 3, 4}));
  // A claimed worker is not claimable again (worker contention).
  EXPECT_FALSE(fx.fleet().TryClaim(2));
  fx.fleet().ReleaseClaim(2);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
  EXPECT_FALSE(fx.fleet().worker(2).busy);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 2, 3, 4}));
}

TEST(FleetClaimTest, ClaimThenLoseReconciliationRollsBackCleanly) {
  // The sharded commit staging pattern: a shard stages its winner, the
  // cross-shard reconciliation awards the worker elsewhere, the stage is
  // rolled back, and the reconciliation winner claims the same worker.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(1, /*arena=*/0));
  fx.fleet().ReleaseClaim(1);
  ASSERT_TRUE(fx.fleet().TryClaim(1, /*arena=*/2));
  fx.fleet().CommitClaim(1, 50.0, 3);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
  EXPECT_TRUE(fx.fleet().worker(1).busy);
  // A committed worker is not claimable until its route completes.
  EXPECT_FALSE(fx.fleet().TryClaim(1));
  fx.fleet().ReleaseUntil(50.0);
  EXPECT_FALSE(fx.fleet().worker(1).busy);
  EXPECT_EQ(fx.fleet().worker(1).location, 3);
  EXPECT_TRUE(fx.fleet().TryClaim(1));
}

TEST(FleetClaimTest, ReleaseArenaRollsBackOnlyItsOwnClaims) {
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(4, /*arena=*/1));
  ASSERT_TRUE(fx.fleet().TryClaim(2, /*arena=*/1));
  ASSERT_TRUE(fx.fleet().TryClaim(3, /*arena=*/2));
  EXPECT_EQ(fx.fleet().claimed_count(), 3);
  EXPECT_EQ(fx.fleet().idle_count(), 1);
  // Arena 1 rolls back workers 2 and 4; arena 2's claim survives.
  EXPECT_EQ(fx.fleet().ReleaseArena(1), 2);
  EXPECT_EQ(fx.fleet().claimed_count(), 1);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 2, 4}));
  EXPECT_TRUE(fx.fleet().worker(3).busy);
  // An empty arena is a no-op, including an already-drained one.
  EXPECT_EQ(fx.fleet().ReleaseArena(1), 0);
  EXPECT_EQ(fx.fleet().ReleaseArena(7), 0);
  fx.fleet().CommitClaim(3, 10.0, 2);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
}

TEST(FleetClaimTest, ReleasedClaimIsImmediatelyReclaimable) {
  // The serial engine's infeasible-pickup rollback (TryDispatch): release
  // must restore the worker at its current location, not the route target.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(3));
  fx.fleet().ReleaseClaim(3);
  EXPECT_EQ(fx.fleet().worker(3).location, 2);
  ASSERT_TRUE(fx.fleet().TryClaim(3));
  fx.fleet().CommitClaim(3, 25.0, 0);
  EXPECT_EQ(fx.fleet().worker(3).location, 0);
}

// Death tests run in their own suite whose name deliberately does not
// contain "FleetClaimTest": the CI sanitizer jobs select suites by regex,
// and fork-based death tests are incompatible with TSan.
TEST(FleetClaimDeathTest, DoubleReleaseAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(1));
  fx.fleet().ReleaseClaim(1);
  EXPECT_DEATH(fx.fleet().ReleaseClaim(1), "release of unclaimed");
}

TEST(FleetClaimDeathTest, CommitWithoutClaimAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ClaimFixture fx;
  EXPECT_DEATH(fx.fleet().CommitClaim(2, 10.0, 0), "commit of unclaimed");
}

TEST(FleetClaimDeathTest, CommitAfterArenaRollbackAborts) {
  // ReleaseArena must fully forget its claims: finalizing one afterwards is
  // the commit-of-unclaimed protocol violation.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(2, /*arena=*/3));
  EXPECT_EQ(fx.fleet().ReleaseArena(3), 1);
  EXPECT_DEATH(fx.fleet().CommitClaim(2, 10.0, 0), "commit of unclaimed");
}

}  // namespace
}  // namespace watter
