// Direct tests of the Fleet two-phase claim protocol (fleet.h): TryClaim /
// CommitClaim / ReleaseClaim plus the arena-tagged bulk rollback the
// region-sharded commit pass stages its winners through. The platform
// suites exercise the happy path end to end; this file pins down the
// rollback semantics — claim-then-lose, arena staging, double-release —
// the FailedPrecondition statuses that replaced the old protocol-misuse
// aborts (a fault can legitimately make a claim vanish), and the
// offline/online lifecycle fault injection drives (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/fleet.h"

namespace watter {
namespace {

// A 4-node path graph with one worker per node.
class ClaimFixture {
 public:
  ClaimFixture() {
    g_.AddNode({0, 0});
    g_.AddNode({1, 0});
    g_.AddNode({2, 0});
    g_.AddNode({3, 0});
    g_.AddBidirectionalEdge(0, 1, 5.0);
    g_.AddBidirectionalEdge(1, 2, 5.0);
    g_.AddBidirectionalEdge(2, 3, 5.0);
    EXPECT_TRUE(g_.Finalize().ok());
    std::vector<Worker> workers = {{1, 0, 4, false, 0.0},
                                   {2, 1, 4, false, 0.0},
                                   {3, 2, 4, false, 0.0},
                                   {4, 3, 4, false, 0.0}};
    fleet_ = std::make_unique<Fleet>(workers, &g_, 4);
  }

  Fleet& fleet() { return *fleet_; }

 private:
  Graph g_;
  std::unique_ptr<Fleet> fleet_;
};

TEST(FleetClaimTest, ClaimExcludesFromIdleSetUntilReleased) {
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(2));
  EXPECT_EQ(fx.fleet().claimed_count(), 1);
  EXPECT_EQ(fx.fleet().idle_count(), 3);
  EXPECT_TRUE(fx.fleet().worker(2).busy);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 3, 4}));
  // A claimed worker is not claimable again (worker contention).
  EXPECT_FALSE(fx.fleet().TryClaim(2));
  fx.fleet().ReleaseClaim(2);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
  EXPECT_FALSE(fx.fleet().worker(2).busy);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 2, 3, 4}));
}

TEST(FleetClaimTest, ClaimThenLoseReconciliationRollsBackCleanly) {
  // The sharded commit staging pattern: a shard stages its winner, the
  // cross-shard reconciliation awards the worker elsewhere, the stage is
  // rolled back, and the reconciliation winner claims the same worker.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(1, /*arena=*/0));
  fx.fleet().ReleaseClaim(1);
  ASSERT_TRUE(fx.fleet().TryClaim(1, /*arena=*/2));
  fx.fleet().CommitClaim(1, 50.0, 3);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
  EXPECT_TRUE(fx.fleet().worker(1).busy);
  // A committed worker is not claimable until its route completes.
  EXPECT_FALSE(fx.fleet().TryClaim(1));
  fx.fleet().ReleaseUntil(50.0);
  EXPECT_FALSE(fx.fleet().worker(1).busy);
  EXPECT_EQ(fx.fleet().worker(1).location, 3);
  EXPECT_TRUE(fx.fleet().TryClaim(1));
}

TEST(FleetClaimTest, ReleaseArenaRollsBackOnlyItsOwnClaims) {
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(4, /*arena=*/1));
  ASSERT_TRUE(fx.fleet().TryClaim(2, /*arena=*/1));
  ASSERT_TRUE(fx.fleet().TryClaim(3, /*arena=*/2));
  EXPECT_EQ(fx.fleet().claimed_count(), 3);
  EXPECT_EQ(fx.fleet().idle_count(), 1);
  // Arena 1 rolls back workers 2 and 4; arena 2's claim survives.
  EXPECT_EQ(fx.fleet().ReleaseArena(1), 2);
  EXPECT_EQ(fx.fleet().claimed_count(), 1);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 2, 4}));
  EXPECT_TRUE(fx.fleet().worker(3).busy);
  // An empty arena is a no-op, including an already-drained one.
  EXPECT_EQ(fx.fleet().ReleaseArena(1), 0);
  EXPECT_EQ(fx.fleet().ReleaseArena(7), 0);
  fx.fleet().CommitClaim(3, 10.0, 2);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
}

TEST(FleetClaimTest, ReleasedClaimIsImmediatelyReclaimable) {
  // The serial engine's infeasible-pickup rollback (TryDispatch): release
  // must restore the worker at its current location, not the route target.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(3));
  fx.fleet().ReleaseClaim(3);
  EXPECT_EQ(fx.fleet().worker(3).location, 2);
  ASSERT_TRUE(fx.fleet().TryClaim(3));
  fx.fleet().CommitClaim(3, 25.0, 0);
  EXPECT_EQ(fx.fleet().worker(3).location, 0);
}

// Claim-protocol misuse used to abort the process; with fault injection a
// claim can legitimately vanish (TakeOffline discards it between resolution
// and commit), so these paths now report FailedPrecondition and the caller
// treats the offer as lost (docs/ROBUSTNESS.md).
TEST(FleetClaimTest, DoubleReleaseReportsFailedPrecondition) {
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(1));
  EXPECT_TRUE(fx.fleet().ReleaseClaim(1).ok());
  Status status = fx.fleet().ReleaseClaim(1);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The failed release changed nothing: the worker is still claimable.
  EXPECT_TRUE(fx.fleet().TryClaim(1));
}

TEST(FleetClaimTest, CommitWithoutClaimReportsFailedPrecondition) {
  ClaimFixture fx;
  Status status = fx.fleet().CommitClaim(2, 10.0, 0);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(fx.fleet().worker(2).busy);
}

TEST(FleetClaimTest, CommitAfterArenaRollbackReportsFailedPrecondition) {
  // ReleaseArena must fully forget its claims: finalizing one afterwards is
  // the commit-of-unclaimed protocol violation.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(2, /*arena=*/3));
  EXPECT_EQ(fx.fleet().ReleaseArena(3), 1);
  EXPECT_EQ(fx.fleet().CommitClaim(2, 10.0, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetClaimTest, TakeOfflineIdleWorkerLeavesIdleSet) {
  ClaimFixture fx;
  EXPECT_EQ(fx.fleet().TakeOffline(2), WorkerTake::kIdle);
  EXPECT_EQ(fx.fleet().offline_count(), 1);
  EXPECT_EQ(fx.fleet().idle_count(), 3);
  EXPECT_TRUE(fx.fleet().worker(2).offline);
  // Offline workers are not claimable and a second takedown is a no-op.
  EXPECT_FALSE(fx.fleet().TryClaim(2));
  EXPECT_EQ(fx.fleet().TakeOffline(2), WorkerTake::kOffline);
  EXPECT_EQ(fx.fleet().offline_count(), 1);
  // BringOnline restores the worker, idle at its recorded location.
  EXPECT_TRUE(fx.fleet().BringOnline(2, 30.0).ok());
  EXPECT_EQ(fx.fleet().offline_count(), 0);
  EXPECT_EQ(fx.fleet().worker(2).location, 1);
  EXPECT_EQ(fx.fleet().IdleWorkerIds(), (std::vector<WorkerId>{1, 2, 3, 4}));
  EXPECT_TRUE(fx.fleet().TryClaim(2));
}

TEST(FleetClaimTest, TakeOfflineClaimedWorkerDiscardsTheClaim) {
  // The late-dropout path: resolution staged a claim, the fault discards
  // it, and the holder's CommitClaim surfaces FailedPrecondition.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(3, /*arena=*/1));
  EXPECT_EQ(fx.fleet().TakeOffline(3), WorkerTake::kClaimed);
  EXPECT_EQ(fx.fleet().claimed_count(), 0);
  EXPECT_EQ(fx.fleet().CommitClaim(3, 10.0, 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetClaimTest, TakeOfflineBusyWorkerCancelsTheTrip) {
  // Mid-route takedown: the busy-heap entry goes stale via the trip epoch,
  // so the worker must NOT pop back to idle when its route would have
  // completed — it stays offline until explicitly brought back.
  ClaimFixture fx;
  ASSERT_TRUE(fx.fleet().TryClaim(4));
  ASSERT_TRUE(fx.fleet().CommitClaim(4, 40.0, 0).ok());
  EXPECT_EQ(fx.fleet().TakeOffline(4), WorkerTake::kBusy);
  fx.fleet().ReleaseUntil(100.0);  // Past the cancelled trip's end.
  EXPECT_TRUE(fx.fleet().worker(4).offline);
  EXPECT_EQ(fx.fleet().idle_count(), 3);
  EXPECT_FALSE(fx.fleet().TryClaim(4));
  EXPECT_TRUE(fx.fleet().BringOnline(4, 120.0).ok());
  EXPECT_FALSE(fx.fleet().worker(4).busy);
  EXPECT_EQ(fx.fleet().idle_count(), 4);
  // A fresh dispatch after the comeback completes normally.
  ASSERT_TRUE(fx.fleet().TryClaim(4));
  ASSERT_TRUE(fx.fleet().CommitClaim(4, 150.0, 1).ok());
  fx.fleet().ReleaseUntil(150.0);
  EXPECT_FALSE(fx.fleet().worker(4).busy);
  EXPECT_EQ(fx.fleet().worker(4).location, 1);
}

TEST(FleetClaimTest, BringOnlineRequiresOffline) {
  ClaimFixture fx;
  EXPECT_EQ(fx.fleet().BringOnline(1, 5.0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FleetClaimTest, DispatchIsClaimPlusCommit) {
  ClaimFixture fx;
  EXPECT_TRUE(fx.fleet().Dispatch(1, 20.0, 2).ok());
  EXPECT_TRUE(fx.fleet().worker(1).busy);
  // Busy and offline workers are not dispatchable.
  EXPECT_EQ(fx.fleet().Dispatch(1, 30.0, 3).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fx.fleet().TakeOffline(2), WorkerTake::kIdle);
  EXPECT_EQ(fx.fleet().Dispatch(2, 30.0, 3).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace watter
