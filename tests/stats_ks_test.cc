#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/stats/em_fitter.h"
#include "src/stats/gmm.h"
#include "src/stats/ks_test.h"

namespace watter {
namespace {

double StdNormalCdf(double x) {
  return GaussianMixture::StandardNormalCdf(x);
}

TEST(KsTest, EmptySamplesArePerfectFit) {
  KsResult result = KolmogorovSmirnovTest({}, StdNormalCdf);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(KsTest, MatchingDistributionHasSmallStatistic) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Normal());
  KsResult result = KolmogorovSmirnovTest(samples, StdNormalCdf);
  EXPECT_LT(result.statistic, 0.03);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsTest, MismatchedDistributionIsRejected) {
  Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.Normal(2.0, 1.0));
  KsResult result = KolmogorovSmirnovTest(samples, StdNormalCdf);
  EXPECT_GT(result.statistic, 0.3);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, StatisticIsScaleOfWorstGap) {
  // Point mass at 0 against U(0,1)-like CDF clipped: empirical jumps to 1
  // at x=0 where the model is 0.5 -> D = 0.5.
  auto cdf = [](double x) { return x < 0 ? 0.0 : (x > 1 ? 1.0 : 0.5 + x / 2); };
  KsResult result = KolmogorovSmirnovTest({0.0, 0.0, 0.0, 0.0}, cdf);
  EXPECT_NEAR(result.statistic, 0.5, 1e-12);
}

TEST(KsTest, PValueMonotoneInStatistic) {
  double previous = 1.0;
  for (double d : {0.01, 0.05, 0.1, 0.2, 0.4}) {
    double p = KolmogorovPValue(d, 1000);
    EXPECT_LE(p, previous + 1e-12) << d;
    previous = p;
  }
  EXPECT_DOUBLE_EQ(KolmogorovPValue(0.0, 1000), 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovPValue(0.5, 0), 1.0);
}

TEST(KsTest, FittedGmmBeatsSingleGaussianOnBimodalData) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 3000; ++i) {
    samples.push_back(rng.Bernoulli(0.5) ? rng.Normal(0, 1)
                                         : rng.Normal(8, 1));
  }
  auto one = FitGmm(samples, {.num_components = 1, .seed = 1});
  auto two = FitGmm(samples, {.num_components = 2, .seed = 1});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  KsResult ks_one = KolmogorovSmirnovTest(
      samples, [&](double x) { return one->Cdf(x); });
  KsResult ks_two = KolmogorovSmirnovTest(
      samples, [&](double x) { return two->Cdf(x); });
  EXPECT_LT(ks_two.statistic, ks_one.statistic * 0.5);
  EXPECT_LT(ks_two.statistic, 0.05);
}

}  // namespace
}  // namespace watter
