// Observability unit tests: TraceRecorder span recording (nesting,
// thread-buffer merge, hot-span floor, the off-is-a-no-op contract, Chrome
// trace export), the TimelineSampler fold rules, and the latency
// HistogramRegistry. The cross-cutting guarantee — tracing never changes a
// metric bit — is covered by sim_parallel_determinism_test's
// TraceDeterminism axis; this file covers the recorder itself.
//
// The recorder is process-global and accumulates, so every test starts with
// Clear() and ends disarmed; events from one test cannot leak into the
// next's snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/histogram_registry.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace watter {
namespace obs {
namespace {

class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().set_hot_min_us(20.0);
    TraceRecorder::Global().Enable();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder::Global().Disable();
  {
    WATTER_TRACE_SPAN("outer");
    WATTER_TRACE_SPAN_HOT("hot");
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
  EXPECT_EQ(TraceRecorder::Global().dropped(), 0);
}

TEST_F(TraceRecorderTest, NestedSpansAreContained) {
  {
    WATTER_TRACE_SPAN("outer");
    {
      WATTER_TRACE_SPAN("inner");
    }
  }
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first, so "inner" lands in the buffer before "outer".
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.dur_us, inner.start_us + inner.dur_us);
  EXPECT_GE(inner.dur_us, 0.0);
}

TEST_F(TraceRecorderTest, HotSpanFloorDropsAndCounts) {
  TraceRecorder::Global().set_hot_min_us(1e9);  // Nothing can pass.
  {
    WATTER_TRACE_SPAN_HOT("too-fast");
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
  EXPECT_EQ(TraceRecorder::Global().dropped(), 1);

  TraceRecorder::Global().set_hot_min_us(0.0);  // Everything passes.
  {
    WATTER_TRACE_SPAN_HOT("kept");
  }
  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kept");
}

TEST_F(TraceRecorderTest, MergesPerThreadBuffersWithNames) {
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      TraceRecorder& recorder = TraceRecorder::Global();
      recorder.SetCurrentThreadName("merge-" + std::to_string(t));
      for (int s = 0; s < kSpansEach; ++s) {
        double now = recorder.NowMicros();
        recorder.EmitSpan("merged", now, 1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();  // Quiescence for Snapshot.

  auto events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kSpansEach));
  for (int t = 0; t < kThreads; ++t) {
    std::string expected = "merge-" + std::to_string(t);
    int count = 0;
    int tid = -1;
    for (const auto& event : events) {
      if (event.thread_name != expected) continue;
      ++count;
      if (tid == -1) tid = event.tid;
      EXPECT_EQ(event.tid, tid) << "one tid per thread track";
    }
    EXPECT_EQ(count, kSpansEach) << expected;
  }
}

TEST_F(TraceRecorderTest, ExportsLoadableChromeTraceJson) {
  {
    WATTER_TRACE_SPAN("round");
  }
  TraceRecorder::Global().SetCurrentThreadName("main");
  std::string path = ::testing::TempDir() + "/obs_trace_export.json";
  ASSERT_TRUE(TraceRecorder::Global().ExportChromeTrace(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  // Structural sanity a C++ test can assert without a JSON parser; the CI
  // smoke run puts the same file through tools/trace_summary.py --check,
  // which fully parses it.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"round\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '"') % 2, 0);
}

TEST(TimelineSamplerTest, TotalsFoldSumMaxAndLast) {
  TimelineSampler sampler;
  RoundSample a;
  a.round = 1;
  a.now = 10.0;
  a.pool_size = 5;
  a.offers = 3;
  a.refresh_s = 0.25;
  RoundSample b;
  b.round = 2;
  b.now = 20.0;
  b.pool_size = 2;
  b.offers = 4;
  b.refresh_s = 0.5;
  sampler.Record(a);
  sampler.Record(b);

  RoundSample totals = sampler.Totals();
  EXPECT_EQ(totals.round, 2);           // kLast: sample count.
  EXPECT_EQ(totals.now, 20.0);          // kLast.
  EXPECT_EQ(totals.pool_size, 5);       // kMax.
  EXPECT_EQ(totals.offers, 7);          // kSum.
  EXPECT_DOUBLE_EQ(totals.refresh_s, 0.75);  // kSum.
}

TEST(TimelineSamplerTest, WritesJsonAndCsv) {
  TimelineSampler sampler;
  RoundSample sample;
  sample.round = 1;
  sample.pool_size = 3;
  sampler.Record(sample);

  auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    std::string text;
    char chunk[4096];
    size_t n;
    while (f != nullptr && (n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      text.append(chunk, n);
    }
    if (f != nullptr) std::fclose(f);
    std::remove(path.c_str());
    return text;
  };

  std::string json_path = ::testing::TempDir() + "/obs_timeline.json";
  ASSERT_TRUE(sampler.WriteJson(json_path));
  std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"pool_size\": 3"), std::string::npos);

  std::string csv_path = ::testing::TempDir() + "/obs_timeline.csv";
  ASSERT_TRUE(sampler.WriteCsv(csv_path));
  std::string csv = slurp(csv_path);
  EXPECT_EQ(csv.compare(0, 6, "round,"), 0);
  EXPECT_NE(csv.find("pool_size"), std::string::npos);
}

TEST(HistogramRegistryTest, DisabledRecordsNothingEnabledAggregates) {
  HistogramRegistry& registry = HistogramRegistry::Global();
  registry.Clear();
  registry.Disable();
  RecordLatency("test.latency_s", 0.5);
  EXPECT_TRUE(registry.Snapshots().empty());

  registry.Enable();
  RecordLatency("test.latency_s", 0.25);
  RecordLatency("test.latency_s", 0.75);
  auto snapshots = registry.Snapshots();
  registry.Disable();
  registry.Clear();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].name, "test.latency_s");
  EXPECT_EQ(snapshots[0].count, 2);
  EXPECT_DOUBLE_EQ(snapshots[0].mean, 0.5);
  EXPECT_DOUBLE_EQ(snapshots[0].min, 0.25);
  EXPECT_DOUBLE_EQ(snapshots[0].max, 0.75);
}

}  // namespace
}  // namespace obs
}  // namespace watter
