#include "src/obs/histogram_registry.h"

#include <utility>

namespace watter {
namespace obs {

void HistogramRegistry::Record(const std::string& name, double lo, double hi,
                               int bins, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
  }
  it->second.Add(value);
}

std::vector<HistogramSnapshot> HistogramRegistry::Snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = hist.count();
    snap.mean = hist.mean();
    snap.min = hist.min_seen();
    snap.max = hist.max_seen();
    snap.p50 = hist.Quantile(0.5);
    snap.p90 = hist.Quantile(0.9);
    snap.p99 = hist.Quantile(0.99);
    out.push_back(std::move(snap));
  }
  return out;
}

void HistogramRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.clear();
}

}  // namespace obs
}  // namespace watter
