// TimelineSampler: one RoundSample per platform check round, capturing what
// the simulation looked like (pool size, shareability edges, queue depth),
// what the round did (offers, commits, conflicts, counter deltas), and where
// its wall-clock went (per-phase durations). Exported as JSON or CSV via
// `--timeline FILE`; schema documented in docs/OBSERVABILITY.md.
//
// Unlike the trace (every span, per thread), the timeline is a fixed ~200
// bytes per round regardless of scale, so it is the right tool for the
// paper-scale 125k/6k profile where a full trace would be gigabytes.
//
// Fields are plain integers/doubles (no core/metrics.h types) so obs stays
// below core in the module DAG — core links obs for the plan-latency
// histogram, so obs including core headers would be a cycle.
#ifndef WATTER_OBS_TIMELINE_H_
#define WATTER_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace watter {
namespace obs {

/// Everything recorded about one check round. Wall-clock fields (`*_s`) are
/// diagnostic only; every other field is covered by the determinism
/// contract (bitwise identical across threads/shards/backends/tracing).
struct RoundSample {
  int64_t round = 0;
  double now = 0.0;  ///< Simulation time of the check (seconds).

  // State at the end of the round.
  int64_t pool_size = 0;
  int64_t shareability_edges = 0;
  int64_t pipeline_depth = 0;  ///< Commit-pipeline backlog after the round.

  // What the round's decision loop did.
  int64_t offers = 0;
  int64_t committed = 0;
  int64_t worker_conflicts = 0;
  int64_t order_conflicts = 0;

  // Deltas of the cumulative Pool/Geo counters over this round.
  int64_t planner_plans = 0;
  int64_t pair_tests = 0;
  int64_t recomputes = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t geo_queries = 0;
  int64_t geo_batches = 0;

  // Robustness columns (docs/ROBUSTNESS.md) — all zero when fault injection
  // and the work budget are off. fault_events counts the dropout/return/
  // stall events applied this round; degraded is 1 while a brownout window
  // is open; the rest are per-round deltas of the FaultStats counters.
  int64_t fault_events = 0;
  int64_t recovered = 0;   ///< Aboard orders re-pooled after dropouts.
  int64_t failed = 0;      ///< Aboard orders failed terminally.
  int64_t shed = 0;        ///< Orders shed by the work budget.
  int64_t degraded = 0;    ///< 1 = round ran under a brownout.
  int64_t work_units = 0;  ///< Work units charged by the budget pass.

  // Per-phase wall-clock (seconds). The serial engine folds its whole
  // decision loop into commit_s (it has no propose/resolve split).
  double maintenance_s = 0.0;
  double refresh_s = 0.0;
  double propose_s = 0.0;
  double resolve_s = 0.0;
  double commit_s = 0.0;
  double sweep_s = 0.0;
  double total_s = 0.0;
};

/// Collects RoundSamples (single-threaded: the platform's event loop is the
/// only writer) and exports them. Also aggregates totals for benches.
class TimelineSampler {
 public:
  void Record(const RoundSample& sample) { samples_.push_back(sample); }

  const std::vector<RoundSample>& samples() const { return samples_; }

  /// Column-wise sums (round holds the count, now the last sim time,
  /// pool_size / shareability_edges / pipeline_depth the max seen).
  RoundSample Totals() const;

  /// Writes {"rounds": [...], "totals": {...}} as JSON. Returns false if
  /// the file cannot be written.
  bool WriteJson(const std::string& path) const;

  /// One header row plus one row per sample, same field order as the JSON.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<RoundSample> samples_;
};

}  // namespace obs
}  // namespace watter

#endif  // WATTER_OBS_TIMELINE_H_
