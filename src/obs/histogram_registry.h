// HistogramRegistry: process-global named latency histograms (plan latency,
// phase durations, commit-pipeline lag), built on stats::Histogram.
//
// Like the TraceRecorder, the registry is compiled in everywhere and
// disabled by default: `enabled()` is one relaxed atomic load, and a
// disabled Record() touches nothing else. Recording takes a mutex (the
// underlying Histogram is not thread-safe), so call sites must be cool
// enough that the lock does not serialize hot loops — per-plan and
// per-round sites qualify; per-oracle-query sites would not.
//
// Values only ever feed wall-clock diagnostics, never simulation decisions,
// so the registry is excluded from the determinism contract the same way
// MetricsReport's `*_seconds` fields are.
#ifndef WATTER_OBS_HISTOGRAM_REGISTRY_H_
#define WATTER_OBS_HISTOGRAM_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/stats/histogram.h"

namespace watter {
namespace obs {

/// A point-in-time copy of one named histogram, for export and tests.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

class HistogramRegistry {
 public:
  static HistogramRegistry& Global() {
    static HistogramRegistry* registry = new HistogramRegistry();
    return *registry;
  }

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// The call sites' fast-path check: one relaxed load.
  static bool enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  /// Adds `value` to the histogram named `name`, creating it with the given
  /// range/bins on first use (later calls keep the original shape). No-op
  /// when disabled.
  void Record(const std::string& name, double lo, double hi, int bins,
              double value);

  std::vector<HistogramSnapshot> Snapshots() const;

  /// Drops all histograms (tests; production runs accumulate).
  void Clear();

 private:
  HistogramRegistry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Histogram> histograms_;
};

/// Shorthand for timing call sites: records `seconds` into `name` with the
/// standard latency shape (0..hi_seconds, 64 bins) when the registry is on.
inline void RecordLatency(const char* name, double seconds,
                          double hi_seconds = 1.0) {
  if (!HistogramRegistry::enabled()) return;
  HistogramRegistry::Global().Record(name, 0.0, hi_seconds, 64, seconds);
}

}  // namespace obs
}  // namespace watter

#endif  // WATTER_OBS_HISTOGRAM_REGISTRY_H_
