// TraceRecorder: phase-level tracing with per-thread span buffers, exported
// as Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//
// Design constraints (docs/OBSERVABILITY.md, "Overhead contract"):
//
//  - *Off is free.* Tracing is compiled in everywhere but disabled by
//    default; a disarmed WATTER_TRACE_SPAN costs one relaxed atomic load and
//    a predictable branch. No clock is read, no memory is touched.
//  - *On never perturbs results.* Spans only read the steady clock and
//    append to a thread-local buffer; they never branch the traced code.
//    Every metric field is bitwise identical with and without tracing
//    (sim_parallel_determinism_test, TraceDeterminism axis).
//  - *Recording is lock-free.* Each thread owns a buffer it alone appends
//    to; the recorder's mutex is taken once per thread (registration) and
//    at export. Hot sites use WATTER_TRACE_SPAN_HOT, which drops spans
//    shorter than `hot_min_us` so per-batch oracle calls cannot flood the
//    trace with microsecond confetti (drops are counted and reported).
//
// Synchronization: appends are unsynchronized by design. Export/Snapshot
// must therefore be quiescent — called only when every traced thread has
// either exited or synchronized with the exporting thread (thread join,
// ThreadPool's job handshake, CommitPipeline::Drain all establish the
// needed happens-before). The platform exports at the end of Run(), after
// its pools have drained; tests export after joining their threads.
//
// This header is deliberately self-contained (std only, fully inline) so
// low-level modules — the common ThreadPool, the geo oracles — can emit
// spans without a link-time dependency on the obs module.
#ifndef WATTER_OBS_TRACE_H_
#define WATTER_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace watter {
namespace obs {

/// One closed span on one thread. `name` must point at storage that
/// outlives the recorder — in practice a string literal from the macros.
struct SpanEvent {
  const char* name;
  double start_us;  ///< Microseconds since the recorder's epoch.
  double dur_us;
};

/// Process-global trace collector. All methods are thread-safe; see the
/// header comment for the quiescence requirement on Snapshot/Export/Clear.
class TraceRecorder {
 public:
  /// A span merged across buffers, for tests and in-process summaries.
  struct MergedEvent {
    std::string name;
    std::string thread_name;
    int tid = 0;
    double start_us = 0.0;
    double dur_us = 0.0;
  };

  static TraceRecorder& Global() {
    static TraceRecorder* recorder = new TraceRecorder();
    return *recorder;
  }

  /// Arms span collection. Idempotent; the first call pins the timestamp
  /// epoch. Reads WATTER_TRACE_HOT_MIN_US (microseconds) if set.
  void Enable() {
    std::lock_guard<std::mutex> lock(mu_);
    if (const char* env = std::getenv("WATTER_TRACE_HOT_MIN_US")) {
      hot_min_us_.store(std::atof(env), std::memory_order_relaxed);
    }
    enabled_.store(true, std::memory_order_relaxed);
  }

  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// The macros' fast-path check: one relaxed load, branch-predicted cold
  /// when tracing is off.
  static bool enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  /// Minimum duration a WATTER_TRACE_SPAN_HOT span must reach to be kept.
  double hot_min_us() const {
    return hot_min_us_.load(std::memory_order_relaxed);
  }
  void set_hot_min_us(double us) {
    hot_min_us_.store(us, std::memory_order_relaxed);
  }

  /// Names the calling thread's track in the exported trace ("main",
  /// "pool-worker-3", "commit-pipeline"). Cheap; callable any time.
  void SetCurrentThreadName(const std::string& name) {
    CurrentBuffer()->name = name;
  }

  /// Microseconds since the recorder epoch (the clock the spans use).
  double NowMicros() const {
    return MicrosSinceEpoch(std::chrono::steady_clock::now());
  }

  /// `tp` as microseconds since the recorder epoch. Span starts must be
  /// converted from the originally captured time_point — reconstructing
  /// them as now-minus-duration reads the clock twice, and a preemption
  /// between the reads skews the start (even before the epoch).
  double MicrosSinceEpoch(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

  /// Appends a closed span to the calling thread's buffer. Lock-free after
  /// the thread's first span. Public so RAII helpers outside this class can
  /// emit; prefer the macros.
  void EmitSpan(const char* name, double start_us, double dur_us) {
    ThreadBuffer* buffer = CurrentBuffer();
    if (buffer->events.size() >= kMaxEventsPerThread) {
      ++buffer->dropped;
      return;
    }
    buffer->events.push_back({name, start_us, dur_us});
  }

  /// Counts a hot span dropped by the duration floor (kept per thread so
  /// the report can say how much detail the floor hid).
  void CountHotDrop() { ++CurrentBuffer()->hot_dropped; }

  /// All recorded spans, merged. Quiescence required.
  std::vector<MergedEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MergedEvent> merged;
    for (const auto& buffer : buffers_) {
      for (const SpanEvent& event : buffer->events) {
        merged.push_back({event.name, buffer->name, buffer->tid,
                          event.start_us, event.dur_us});
      }
    }
    return merged;
  }

  /// Spans dropped by the per-thread cap plus hot spans under the duration
  /// floor. Quiescence required.
  int64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t total = 0;
    for (const auto& buffer : buffers_) {
      total += buffer->dropped + buffer->hot_dropped;
    }
    return total;
  }

  /// Writes the Chrome trace-event JSON file: one complete ("X") event per
  /// span plus thread_name metadata per track, wrapped in the standard
  /// {"traceEvents": [...]} object. Returns false if the file cannot be
  /// written. Quiescence required.
  bool ExportChromeTrace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(f, "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    bool first = true;
    auto comma = [&] {
      if (!first) std::fprintf(f, ",\n");
      first = false;
    };
    comma();
    std::fprintf(f,
                 "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
                 "\"process_name\", \"args\": {\"name\": \"watter\"}}");
    int64_t dropped_total = 0;
    for (const auto& buffer : buffers_) {
      dropped_total += buffer->dropped + buffer->hot_dropped;
      comma();
      std::fprintf(f,
                   "{\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": "
                   "\"thread_name\", \"args\": {\"name\": \"%s\"}}",
                   buffer->tid,
                   buffer->name.empty() ? "thread" : buffer->name.c_str());
      for (const SpanEvent& event : buffer->events) {
        comma();
        std::fprintf(f,
                     "{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"name\": "
                     "\"%s\", \"ts\": %.3f, \"dur\": %.3f}",
                     buffer->tid, event.name, event.start_us, event.dur_us);
      }
    }
    std::fprintf(f, "\n],\n\"otherData\": {\"dropped_events\": %lld}}\n",
                 static_cast<long long>(dropped_total));
    std::fclose(f);
    return true;
  }

  /// Drops recorded spans and drop counts, keeping thread registrations
  /// (other threads' cached buffer pointers stay valid). Quiescence
  /// required. Intended for tests; production runs accumulate.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& buffer : buffers_) {
      buffer->events.clear();
      buffer->dropped = 0;
      buffer->hot_dropped = 0;
    }
  }

 private:
  struct ThreadBuffer {
    std::vector<SpanEvent> events;
    std::string name;
    int tid = 0;
    int64_t dropped = 0;
    int64_t hot_dropped = 0;
  };

  // Bounds one thread's buffer (~24 bytes/event, so <= ~100 MB worst case
  // per thread); overflow increments `dropped` instead of growing.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 22;

  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  /// The calling thread's buffer, registered under the mutex on first use
  /// and cached thread-locally afterwards. Buffers are never deallocated
  /// (threads may exit before export), so the cache cannot dangle.
  ThreadBuffer* CurrentBuffer() {
    static thread_local ThreadBuffer* t_buffer = nullptr;
    if (t_buffer == nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      buffers_.push_back(std::make_unique<ThreadBuffer>());
      t_buffer = buffers_.back().get();
      t_buffer->tid = static_cast<int>(buffers_.size());
    }
    return t_buffer;
  }

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<double> hot_min_us_{20.0};
  mutable std::mutex mu_;  // Guards buffers_ (the vector, not the appends).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) on the calling thread's
/// track when tracing is armed. `name` must be a string literal.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!TraceRecorder::enabled()) return;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (name_ == nullptr) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    double dur_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    recorder.EmitSpan(name_, recorder.MicrosSinceEpoch(start_), dur_us);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Like ScopedSpan but for hot call sites: spans shorter than the
/// recorder's `hot_min_us` floor are dropped (and counted) so per-batch
/// oracle calls cannot flood the trace. The floor trades trace size for
/// detail — every *slow* instance still appears.
class ScopedHotSpan {
 public:
  explicit ScopedHotSpan(const char* name) {
    if (!TraceRecorder::enabled()) return;
    name_ = name;
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedHotSpan() {
    if (name_ == nullptr) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    double dur_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    if (dur_us < recorder.hot_min_us()) {
      recorder.CountHotDrop();
      return;
    }
    recorder.EmitSpan(name_, recorder.MicrosSinceEpoch(start_), dur_us);
  }

  ScopedHotSpan(const ScopedHotSpan&) = delete;
  ScopedHotSpan& operator=(const ScopedHotSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

#define WATTER_TRACE_CONCAT_INNER(a, b) a##b
#define WATTER_TRACE_CONCAT(a, b) WATTER_TRACE_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a span named `name` (a string literal).
#define WATTER_TRACE_SPAN(name)                                     \
  ::watter::obs::ScopedSpan WATTER_TRACE_CONCAT(watter_trace_span_, \
                                                __LINE__)(name)

/// WATTER_TRACE_SPAN for hot call sites (per-batch, per-job): spans under
/// the recorder's duration floor are dropped and counted.
#define WATTER_TRACE_SPAN_HOT(name)                                    \
  ::watter::obs::ScopedHotSpan WATTER_TRACE_CONCAT(watter_trace_span_, \
                                                   __LINE__)(name)

}  // namespace obs
}  // namespace watter

#endif  // WATTER_OBS_TRACE_H_
