#include "src/obs/timeline.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/histogram_registry.h"

namespace watter {
namespace obs {

namespace {

// Field table shared by the JSON and CSV writers so the two stay in sync
// (and so Totals() aggregates every field without a hand-maintained list).
struct FieldDef {
  const char* name;
  // Accessors; exactly one of the two is used per field.
  int64_t RoundSample::*i64 = nullptr;
  double RoundSample::*f64 = nullptr;
  // How Totals() folds the column: sum, max, or keep-last.
  enum class Fold { kSum, kMax, kLast } fold = Fold::kSum;
};

constexpr FieldDef::Fold kSum = FieldDef::Fold::kSum;
constexpr FieldDef::Fold kMax = FieldDef::Fold::kMax;
constexpr FieldDef::Fold kLast = FieldDef::Fold::kLast;

const FieldDef kFields[] = {
    {"round", &RoundSample::round, nullptr, kLast},
    {"now", nullptr, &RoundSample::now, kLast},
    {"pool_size", &RoundSample::pool_size, nullptr, kMax},
    {"shareability_edges", &RoundSample::shareability_edges, nullptr, kMax},
    {"pipeline_depth", &RoundSample::pipeline_depth, nullptr, kMax},
    {"offers", &RoundSample::offers, nullptr, kSum},
    {"committed", &RoundSample::committed, nullptr, kSum},
    {"worker_conflicts", &RoundSample::worker_conflicts, nullptr, kSum},
    {"order_conflicts", &RoundSample::order_conflicts, nullptr, kSum},
    {"planner_plans", &RoundSample::planner_plans, nullptr, kSum},
    {"pair_tests", &RoundSample::pair_tests, nullptr, kSum},
    {"recomputes", &RoundSample::recomputes, nullptr, kSum},
    {"plan_cache_hits", &RoundSample::plan_cache_hits, nullptr, kSum},
    {"plan_cache_misses", &RoundSample::plan_cache_misses, nullptr, kSum},
    {"geo_queries", &RoundSample::geo_queries, nullptr, kSum},
    {"geo_batches", &RoundSample::geo_batches, nullptr, kSum},
    {"fault_events", &RoundSample::fault_events, nullptr, kSum},
    {"recovered", &RoundSample::recovered, nullptr, kSum},
    {"failed", &RoundSample::failed, nullptr, kSum},
    {"shed", &RoundSample::shed, nullptr, kSum},
    {"degraded", &RoundSample::degraded, nullptr, kSum},
    {"work_units", &RoundSample::work_units, nullptr, kSum},
    {"maintenance_s", nullptr, &RoundSample::maintenance_s, kSum},
    {"refresh_s", nullptr, &RoundSample::refresh_s, kSum},
    {"propose_s", nullptr, &RoundSample::propose_s, kSum},
    {"resolve_s", nullptr, &RoundSample::resolve_s, kSum},
    {"commit_s", nullptr, &RoundSample::commit_s, kSum},
    {"sweep_s", nullptr, &RoundSample::sweep_s, kSum},
    {"total_s", nullptr, &RoundSample::total_s, kSum},
};

void PrintSampleJson(std::FILE* f, const RoundSample& sample) {
  std::fprintf(f, "{");
  bool first = true;
  for (const FieldDef& field : kFields) {
    if (!first) std::fprintf(f, ", ");
    first = false;
    if (field.i64 != nullptr) {
      std::fprintf(f, "\"%s\": %lld", field.name,
                   static_cast<long long>(sample.*(field.i64)));
    } else {
      std::fprintf(f, "\"%s\": %.9g", field.name, sample.*(field.f64));
    }
  }
  std::fprintf(f, "}");
}

}  // namespace

RoundSample TimelineSampler::Totals() const {
  RoundSample totals;
  totals.round = static_cast<int64_t>(samples_.size());
  for (const RoundSample& sample : samples_) {
    for (const FieldDef& field : kFields) {
      if (field.i64 == &RoundSample::round) continue;  // Holds the count.
      switch (field.fold) {
        case FieldDef::Fold::kSum:
          if (field.i64 != nullptr) {
            totals.*(field.i64) += sample.*(field.i64);
          } else {
            totals.*(field.f64) += sample.*(field.f64);
          }
          break;
        case FieldDef::Fold::kMax:
          if (field.i64 != nullptr) {
            totals.*(field.i64) =
                std::max(totals.*(field.i64), sample.*(field.i64));
          } else {
            totals.*(field.f64) =
                std::max(totals.*(field.f64), sample.*(field.f64));
          }
          break;
        case FieldDef::Fold::kLast:
          if (field.i64 != nullptr) {
            totals.*(field.i64) = sample.*(field.i64);
          } else {
            totals.*(field.f64) = sample.*(field.f64);
          }
          break;
      }
    }
  }
  return totals;
}

bool TimelineSampler::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"rounds\": [\n");
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (i > 0) std::fprintf(f, ",\n");
    PrintSampleJson(f, samples_[i]);
  }
  std::fprintf(f, "\n],\n\"totals\": ");
  PrintSampleJson(f, Totals());
  // When the latency registry ran alongside the timeline, fold its
  // summaries into the same file so one artifact tells the whole story.
  std::fprintf(f, ",\n\"histograms\": [");
  bool first = true;
  for (const HistogramSnapshot& snap : HistogramRegistry::Global().Snapshots()) {
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(f,
                 "{\"name\": \"%s\", \"count\": %lld, \"mean\": %.9g, "
                 "\"min\": %.9g, \"max\": %.9g, \"p50\": %.9g, "
                 "\"p90\": %.9g, \"p99\": %.9g}",
                 snap.name.c_str(), static_cast<long long>(snap.count),
                 snap.mean, snap.min, snap.max, snap.p50, snap.p90, snap.p99);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

bool TimelineSampler::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool first = true;
  for (const FieldDef& field : kFields) {
    std::fprintf(f, "%s%s", first ? "" : ",", field.name);
    first = false;
  }
  std::fprintf(f, "\n");
  for (const RoundSample& sample : samples_) {
    first = true;
    for (const FieldDef& field : kFields) {
      if (!first) std::fprintf(f, ",");
      first = false;
      if (field.i64 != nullptr) {
        std::fprintf(f, "%lld", static_cast<long long>(sample.*(field.i64)));
      } else {
        std::fprintf(f, "%.9g", sample.*(field.f64));
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace watter
