// TravelTimeOracle: the single cost abstraction the whole framework uses.
//
// Every algorithm in the paper (pool management, route planning, GDP, GAS,
// RL features) only ever needs cost(l_i, l_j), the shortest travel time
// between two locations. Oracles answer that query from an APSP matrix, a
// contraction hierarchy, or on-demand Dijkstra with caching — all behind one
// interface so scenarios can pick the right trade-off for their city size.
#ifndef WATTER_GEO_TRAVEL_TIME_ORACLE_H_
#define WATTER_GEO_TRAVEL_TIME_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/geo/apsp.h"
#include "src/geo/contraction_hierarchy.h"
#include "src/geo/graph.h"

namespace watter {

/// Abstract shortest-travel-time provider.
///
/// Thread safety: Cost() may be called concurrently from the platform's
/// parallel check/maintenance loops. MatrixOracle is wait-free (const table
/// reads); the caching oracles serialize behind an internal mutex.
class TravelTimeOracle {
 public:
  virtual ~TravelTimeOracle() = default;

  /// Shortest travel time (seconds) from `from` to `to`; kInfCost if
  /// unreachable. Implementations may cache internally. Safe to call from
  /// multiple threads.
  virtual double Cost(NodeId from, NodeId to) = 0;

  /// Number of queries answered (diagnostics).
  int64_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }

 protected:
  // Deliberately a non-atomic read-modify-write (racy increments may be
  // lost): Cost() is the hottest call in the tree and a lock-prefixed
  // fetch_add here costs several percent end-to-end. The counter is purely
  // diagnostic; the relaxed atomic accesses keep it TSan-clean and exact
  // whenever queries are serial.
  void CountQuery() {
    query_count_.store(query_count_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> query_count_{0};
};

/// Oracle backed by a dense all-pairs matrix: O(1) per query.
class MatrixOracle : public TravelTimeOracle {
 public:
  explicit MatrixOracle(std::shared_ptr<const CostMatrix> matrix)
      : matrix_(std::move(matrix)) {}

  double Cost(NodeId from, NodeId to) override {
    CountQuery();
    return matrix_->Cost(from, to);
  }

 private:
  std::shared_ptr<const CostMatrix> matrix_;
};

/// Oracle backed by a contraction hierarchy with a small memo cache.
class ChOracle : public TravelTimeOracle {
 public:
  ChOracle(std::shared_ptr<const ContractionHierarchy> ch,
           size_t cache_capacity = 1 << 20)
      : ch_(std::move(ch)), cache_capacity_(cache_capacity) {}

  double Cost(NodeId from, NodeId to) override;

  size_t cache_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

 private:
  std::shared_ptr<const ContractionHierarchy> ch_;
  size_t cache_capacity_;
  mutable std::mutex mu_;  // Guards cache_.
  std::unordered_map<uint64_t, double> cache_;
};

/// Oracle running full Dijkstra per distinct source, LRU-bounded.
///
/// Amortizes well when many queries share sources (e.g. one order's pickup
/// probed against many candidate partners).
class DijkstraOracle : public TravelTimeOracle {
 public:
  explicit DijkstraOracle(const Graph* graph, size_t max_cached_sources = 256);

  double Cost(NodeId from, NodeId to) override;

 private:
  const std::vector<double>& RowFor(NodeId source);

  const Graph* graph_;
  size_t max_cached_sources_;
  std::mutex mu_;  // Guards rows_ and the LRU bookkeeping.
  std::unordered_map<NodeId, std::vector<double>> rows_;
  std::list<NodeId> lru_;  // Front = most recent.
  std::unordered_map<NodeId, std::list<NodeId>::iterator> lru_pos_;
};

}  // namespace watter

#endif  // WATTER_GEO_TRAVEL_TIME_ORACLE_H_
