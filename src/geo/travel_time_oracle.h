// TravelTimeOracle: the single cost abstraction the whole framework uses.
//
// Every algorithm in the paper (pool management, route planning, GDP, GAS,
// RL features) only ever needs cost(l_i, l_j), the shortest travel time
// between two locations. Oracles answer that query from an APSP matrix, a
// contraction hierarchy, or on-demand Dijkstra with caching — all behind one
// interface so scenarios can pick the right trade-off for their city size.
#ifndef WATTER_GEO_TRAVEL_TIME_ORACLE_H_
#define WATTER_GEO_TRAVEL_TIME_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/geo/apsp.h"
#include "src/geo/contraction_hierarchy.h"
#include "src/geo/graph.h"

namespace watter {

/// Abstract shortest-travel-time provider.
///
/// Besides the point-to-point Cost(), every oracle answers *batch* queries —
/// ManyToOne / OneToMany / ManyToMany — because the framework's two hottest
/// access patterns are inherently batched: a fleet probe rates all candidate
/// workers against one pickup, and a pool insertion rates one order against
/// all resident candidates. The base class implements the batch calls as
/// Cost() loops (exactly the code the callers used to inline), so every
/// backend is batch-callable; BucketChOracle overrides them with genuinely
/// batched bucket-CH searches that share work across the batch.
///
/// Thread safety: all queries may be called concurrently from the platform's
/// parallel check/maintenance loops. MatrixOracle is wait-free (const table
/// reads); the caching oracles serialize behind an internal mutex.
class TravelTimeOracle {
 public:
  virtual ~TravelTimeOracle() = default;

  /// Shortest travel time (seconds) from `from` to `to`; kInfCost if
  /// unreachable. Implementations may cache internally. Safe to call from
  /// multiple threads.
  virtual double Cost(NodeId from, NodeId to) = 0;

  /// Batch query: out[i] = Cost(sources[i], target). `out` must have
  /// sources.size() slots. Results are exactly the values the equivalent
  /// Cost() loop would produce (the equivalence suite pins this for the
  /// bucket backend).
  virtual void ManyToOne(std::span<const NodeId> sources, NodeId target,
                         std::span<double> out);

  /// Batch query: out[j] = Cost(source, targets[j]). `out` must have
  /// targets.size() slots.
  virtual void OneToMany(NodeId source, std::span<const NodeId> targets,
                         std::span<double> out);

  /// Batch query: out[i * targets.size() + j] = Cost(sources[i],
  /// targets[j]) (row-major). `out` must have sources.size() *
  /// targets.size() slots.
  virtual void ManyToMany(std::span<const NodeId> sources,
                          std::span<const NodeId> targets,
                          std::span<double> out);

  /// True when the batch calls are genuinely batched rather than the base
  /// class's Cost() loops. Callers use this to decide whether cache-priming
  /// prefetches (e.g. the shareability graph's per-anchor candidate batch)
  /// pay for themselves.
  virtual bool NativeBatch() const { return false; }

  /// Seconds spent building memoized search spaces (bucket-CH only; 0
  /// elsewhere). Accumulated once per build under the oracle's mutex, so —
  /// unlike the racy diagnostic counters below — it is exact.
  virtual double bucket_build_seconds() const { return 0.0; }

  /// Number of point queries answered, batched or not (diagnostics).
  int64_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }

  /// Number of batch calls answered (diagnostics).
  int64_t batch_count() const {
    return batch_count_.load(std::memory_order_relaxed);
  }

  /// Total batched endpoints across all batch calls: sources for
  /// many-to-one, targets for one-to-many, both for many-to-many. Divided
  /// by batch_count() this is the mean batch width the consumers achieve.
  int64_t batch_points() const {
    return batch_points_.load(std::memory_order_relaxed);
  }

 protected:
  // Deliberately non-atomic read-modify-writes (racy increments may be
  // lost): Cost() is the hottest call in the tree and a lock-prefixed
  // fetch_add here costs several percent end-to-end. The counters are purely
  // diagnostic; the relaxed atomic accesses keep them TSan-clean and exact
  // whenever queries are serial. These three (query_count_, batch_count_,
  // batch_points_) are the only remaining racy-by-design counters —
  // bucket_build_seconds accumulates under the bucket oracle's mutex and
  // is exact.
  void CountQuery() { CountQueries(1); }

  void CountQueries(int64_t n) {
    query_count_.store(query_count_.load(std::memory_order_relaxed) + n,
                       std::memory_order_relaxed);
  }

  void CountBatch(int64_t points) {
    batch_count_.store(batch_count_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    batch_points_.store(batch_points_.load(std::memory_order_relaxed) + points,
                        std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> query_count_{0};
  std::atomic<int64_t> batch_count_{0};
  std::atomic<int64_t> batch_points_{0};
};

/// Oracle backed by a dense all-pairs matrix: O(1) per query.
class MatrixOracle : public TravelTimeOracle {
 public:
  explicit MatrixOracle(std::shared_ptr<const CostMatrix> matrix)
      : matrix_(std::move(matrix)) {}

  double Cost(NodeId from, NodeId to) override {
    CountQuery();
    return matrix_->Cost(from, to);
  }

 private:
  std::shared_ptr<const CostMatrix> matrix_;
};

/// Oracle backed by a contraction hierarchy with a small memo cache.
class ChOracle : public TravelTimeOracle {
 public:
  ChOracle(std::shared_ptr<const ContractionHierarchy> ch,
           size_t cache_capacity = 1 << 20)
      : ch_(std::move(ch)), cache_capacity_(cache_capacity) {}

  double Cost(NodeId from, NodeId to) override;

  size_t cache_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

 private:
  std::shared_ptr<const ContractionHierarchy> ch_;
  size_t cache_capacity_;
  mutable std::mutex mu_;  // Guards cache_.
  std::unordered_map<uint64_t, double> cache_;
};

/// Oracle running full Dijkstra per distinct source, LRU-bounded.
///
/// Amortizes well when many queries share sources (e.g. one order's pickup
/// probed against many candidate partners).
class DijkstraOracle : public TravelTimeOracle {
 public:
  explicit DijkstraOracle(const Graph* graph, size_t max_cached_sources = 256);

  double Cost(NodeId from, NodeId to) override;

 private:
  const std::vector<double>& RowFor(NodeId source);

  const Graph* graph_;
  size_t max_cached_sources_;
  std::mutex mu_;  // Guards rows_ and the LRU bookkeeping.
  std::unordered_map<NodeId, std::vector<double>> rows_;
  std::list<NodeId> lru_;  // Front = most recent.
  std::unordered_map<NodeId, std::list<NodeId>::iterator> lru_pos_;
};

}  // namespace watter

#endif  // WATTER_GEO_TRAVEL_TIME_ORACLE_H_
