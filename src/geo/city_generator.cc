#include "src/geo/city_generator.h"

#include <cmath>
#include <utility>

#include "src/geo/bucket_ch.h"

namespace watter {
namespace {

/// Congestion/arterial speed multiplier for the edge between two nodes.
double EdgeFactor(const CityOptions& options, double row, double col) {
  double center_row = (options.height - 1) / 2.0;
  double center_col = (options.width - 1) / 2.0;
  double sigma =
      options.center_sigma * std::max(options.width, options.height);
  double dr = row - center_row;
  double dc = col - center_col;
  double congestion =
      1.0 + (options.center_slowdown - 1.0) *
                std::exp(-(dr * dr + dc * dc) / (2.0 * sigma * sigma));
  bool arterial =
      options.arterial_every > 0 &&
      (static_cast<int>(row) % options.arterial_every == 0 ||
       static_cast<int>(col) % options.arterial_every == 0);
  return congestion * (arterial ? options.arterial_factor : 1.0);
}

}  // namespace

Result<City> GenerateCity(const CityOptions& options) {
  if (options.width < 2 || options.height < 2) {
    return Status::InvalidArgument("city must be at least 2x2");
  }
  if (options.cell_seconds <= 0.0) {
    return Status::InvalidArgument("cell_seconds must be positive");
  }
  if (options.jitter < 0.0 || options.jitter >= 1.0) {
    return Status::InvalidArgument("jitter must be in [0, 1)");
  }
  City city;
  city.width = options.width;
  city.height = options.height;
  city.cell_seconds = options.cell_seconds;

  for (int row = 0; row < options.height; ++row) {
    for (int col = 0; col < options.width; ++col) {
      city.graph.AddNode(Point{static_cast<double>(col),
                               static_cast<double>(row)});
    }
  }

  Rng rng(options.seed);
  auto jittered = [&](double base) {
    return base * rng.Uniform(1.0 - options.jitter, 1.0 + options.jitter);
  };
  for (int row = 0; row < options.height; ++row) {
    for (int col = 0; col < options.width; ++col) {
      NodeId here = city.NodeAt(row, col);
      if (col + 1 < options.width) {
        NodeId east = city.NodeAt(row, col + 1);
        double base = options.cell_seconds *
                      EdgeFactor(options, row, col + 0.5);
        // Independent jitter per direction: mildly asymmetric streets.
        city.graph.AddEdge(here, east, jittered(base));
        city.graph.AddEdge(east, here, jittered(base));
      }
      if (row + 1 < options.height) {
        NodeId south = city.NodeAt(row + 1, col);
        double base = options.cell_seconds *
                      EdgeFactor(options, row + 0.5, col);
        city.graph.AddEdge(here, south, jittered(base));
        city.graph.AddEdge(south, here, jittered(base));
      }
    }
  }
  WATTER_RETURN_IF_ERROR(city.graph.Finalize());
  if (!city.graph.IsWeaklyConnected()) {
    return Status::Internal("generated city is not connected");
  }
  return city;
}

Result<std::unique_ptr<TravelTimeOracle>> BuildOracle(const Graph& graph,
                                                      OracleKind kind,
                                                      GeoBackend backend) {
  switch (kind) {
    case OracleKind::kMatrix: {
      auto matrix = CostMatrix::Build(graph);
      if (!matrix.ok()) return matrix.status();
      auto shared =
          std::make_shared<const CostMatrix>(std::move(matrix).value());
      return std::unique_ptr<TravelTimeOracle>(
          new MatrixOracle(std::move(shared)));
    }
    case OracleKind::kCh: {
      auto ch = ContractionHierarchy::Build(graph);
      if (!ch.ok()) return ch.status();
      auto shared =
          std::make_shared<const ContractionHierarchy>(std::move(ch).value());
      if (backend == GeoBackend::kBucket) {
        return std::unique_ptr<TravelTimeOracle>(
            new BucketChOracle(std::move(shared)));
      }
      return std::unique_ptr<TravelTimeOracle>(
          new ChOracle(std::move(shared)));
    }
    case OracleKind::kDijkstra:
      return std::unique_ptr<TravelTimeOracle>(new DijkstraOracle(&graph));
  }
  return Status::InvalidArgument("unknown oracle kind");
}

}  // namespace watter
