#include "src/geo/bucket_ch.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <utility>

#include "src/obs/trace.h"

namespace watter {
namespace {

uint64_t PairKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

BucketChOracle::BucketChOracle(std::shared_ptr<const ContractionHierarchy> ch,
                               size_t cache_capacity, size_t space_budget)
    : ch_(std::move(ch)),
      cache_capacity_(cache_capacity),
      space_budget_(space_budget) {
  const size_t n = static_cast<size_t>(ch_->num_nodes());
  dist_f_.assign(n, kInfCost);
  dist_b_.assign(n, kInfCost);
  version_f_.assign(n, 0);
  version_b_.assign(n, 0);
  buckets_.resize(n);
  space_f_.resize(n);
  space_b_.resize(n);
  space_built_f_.assign(n, 0);
  space_built_b_.assign(n, 0);
}

bool BucketChOracle::CacheLookup(NodeId from, NodeId to, double* cost) const {
  auto it = cache_.find(PairKey(from, to));
  if (it == cache_.end()) return false;
  *cost = it->second;
  return true;
}

void BucketChOracle::CacheInsert(NodeId from, NodeId to, double cost) {
  if (cache_.size() >= cache_capacity_) cache_.clear();  // Cheap epoch flush.
  cache_.emplace(PairKey(from, to), cost);
}

template <typename Emit>
void BucketChOracle::SearchSpace(NodeId root, bool forward, Emit&& emit) {
  std::vector<double>& dist = forward ? dist_f_ : dist_b_;
  std::vector<uint32_t>& version = forward ? version_f_ : version_b_;
  ++query_version_;
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist[root] = 0.0;
  version[root] = query_version_;
  queue.push({0.0, root});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (version[v] != query_version_ || d > dist[v]) continue;
    emit(v, d);
    for (const Arc& arc : forward ? ch_->UpArcs(v) : ch_->DownArcs(v)) {
      double candidate = d + arc.weight;
      if (version[arc.to] != query_version_ || candidate < dist[arc.to]) {
        dist[arc.to] = candidate;
        version[arc.to] = query_version_;
        queue.push({candidate, arc.to});
      }
    }
  }
}

const std::vector<BucketChOracle::SpaceEntry>* BucketChOracle::CachedSpace(
    NodeId root, bool forward) {
  std::vector<std::vector<SpaceEntry>>& spaces = forward ? space_f_ : space_b_;
  std::vector<uint8_t>& built = forward ? space_built_f_ : space_built_b_;
  if (built[root]) return &spaces[root];
  // A space is computed at most once per (node, direction) while the budget
  // lasts; the stored settle order reproduces a fresh emit sequence exactly.
  const bool adopt = space_entries_ < space_budget_;
  std::vector<SpaceEntry>& entries = adopt ? spaces[root] : space_scratch_;
  entries.clear();
  // bucket_build_seconds_ counts exactly the Dijkstra builds — each done at
  // most once per (node, direction) while the budget lasts — not the per-
  // batch scatter of already-built spaces. The accumulate is monotone and
  // race-free: every caller holds mu_.
  const auto build_start = std::chrono::steady_clock::now();
  SearchSpace(root, forward,
              [&entries](NodeId v, double d) { entries.push_back({v, d}); });
  bucket_build_seconds_ += SecondsSince(build_start);
  if (!adopt) return &space_scratch_;
  built[root] = 1;
  space_entries_ += entries.size();
  return &spaces[root];
}

// Same algorithm, relaxation order, and tie-breaking as
// ContractionHierarchy::Query, over this oracle's private scratch. Kept as a
// verbatim twin so point results are bitwise identical whichever oracle
// answers them.
double BucketChOracle::PointQuery(NodeId source, NodeId target) {
  const int n = ch_->num_nodes();
  if (source < 0 || source >= n || target < 0 || target >= n) return kInfCost;
  if (source == target) return 0.0;
  ++query_version_;
  using Entry = std::pair<double, NodeId>;
  using Queue =
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;
  Queue forward, backward;
  dist_f_[source] = 0.0;
  version_f_[source] = query_version_;
  forward.push({0.0, source});
  dist_b_[target] = 0.0;
  version_b_[target] = query_version_;
  backward.push({0.0, target});

  double best = kInfCost;
  while (!forward.empty() || !backward.empty()) {
    double front_f = forward.empty() ? kInfCost : forward.top().first;
    double front_b = backward.empty() ? kInfCost : backward.top().first;
    if (std::min(front_f, front_b) >= best) break;
    if (front_f <= front_b) {
      auto [d, v] = forward.top();
      forward.pop();
      if (version_f_[v] != query_version_ || d > dist_f_[v]) continue;
      if (version_b_[v] == query_version_ && d + dist_b_[v] < best) {
        best = d + dist_b_[v];
      }
      for (const Arc& arc : ch_->UpArcs(v)) {
        double candidate = d + arc.weight;
        if (version_f_[arc.to] != query_version_ ||
            candidate < dist_f_[arc.to]) {
          dist_f_[arc.to] = candidate;
          version_f_[arc.to] = query_version_;
          forward.push({candidate, arc.to});
        }
      }
    } else {
      auto [d, v] = backward.top();
      backward.pop();
      if (version_b_[v] != query_version_ || d > dist_b_[v]) continue;
      if (version_f_[v] == query_version_ && d + dist_f_[v] < best) {
        best = d + dist_f_[v];
      }
      for (const Arc& arc : ch_->DownArcs(v)) {
        double candidate = d + arc.weight;
        if (version_b_[arc.to] != query_version_ ||
            candidate < dist_b_[arc.to]) {
          dist_b_[arc.to] = candidate;
          version_b_[arc.to] = query_version_;
          backward.push({candidate, arc.to});
        }
      }
    }
  }
  return best;
}

double BucketChOracle::Cost(NodeId from, NodeId to) {
  CountQuery();
  if (from == to) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  double cost;
  if (CacheLookup(from, to, &cost)) return cost;
  cost = PointQuery(from, to);
  CacheInsert(from, to, cost);
  return cost;
}

// Why the batch result is bitwise identical to a Cost() loop: both compute
// min over meeting nodes v of dist_up(endpoint_a, v) + dist_down(v,
// endpoint_b). The pruned point query may stop before settling some v, but
// every node it skips satisfies dist >= frontier >= best in both directions,
// so the full-space bucket enumeration can only add candidates >= best, and
// the labels of co-settled nodes are identical because SearchSpace is the
// same Dijkstra (same heap, same tie-breaking) minus the stopping rule.
void BucketChOracle::BatchAgainstApex(std::span<const NodeId> batch,
                                      NodeId apex, bool batch_is_sources,
                                      std::span<double> out) {
  const NodeId n = ch_->num_nodes();
  const bool apex_ok = apex >= 0 && apex < n;
  // Resolve trivial and cached pairs up front; dedupe the rest into slots so
  // each distinct endpoint's search space is computed once.
  std::unordered_map<NodeId, int32_t> slot_of;
  std::vector<NodeId> pending;
  std::vector<int32_t> out_slot(batch.size(), -1);
  for (size_t i = 0; i < batch.size(); ++i) {
    const NodeId b = batch[i];
    if (b == apex) {  // Matches Cost(): equality wins before range checks.
      out[i] = 0.0;
      continue;
    }
    if (!apex_ok || b < 0 || b >= n) {
      out[i] = kInfCost;
      continue;
    }
    double cost;
    const bool hit = batch_is_sources ? CacheLookup(b, apex, &cost)
                                      : CacheLookup(apex, b, &cost);
    if (hit) {
      out[i] = cost;
      continue;
    }
    auto [it, inserted] =
        slot_of.try_emplace(b, static_cast<int32_t>(pending.size()));
    if (inserted) pending.push_back(b);
    out_slot[i] = it->second;
  }
  if (pending.empty()) return;

  // Scatter the batch side's (memoized) search spaces into buckets — the
  // work the per-query oracle would redo once per pair instead of once per
  // endpoint — then join with the apex's space. Only a first visit's
  // Dijkstra (inside CachedSpace) counts toward bucket_build_seconds;
  // re-scattering a memoized space is the steady state and is not "build".
  std::vector<double> best(pending.size(), kInfCost);
  for (size_t k = 0; k < pending.size(); ++k) {
    const int32_t slot = static_cast<int32_t>(k);
    const std::vector<SpaceEntry>& space =
        *CachedSpace(pending[k], /*forward=*/batch_is_sources);
    for (const SpaceEntry& label : space) {
      if (buckets_[label.node].empty()) touched_.push_back(label.node);
      buckets_[label.node].push_back({slot, label.dist});
    }
  }
  const std::vector<SpaceEntry>& apex_space =
      *CachedSpace(apex, /*forward=*/!batch_is_sources);
  for (const SpaceEntry& label : apex_space) {
    for (const BucketEntry& entry : buckets_[label.node]) {
      const double candidate = entry.dist + label.dist;
      if (candidate < best[entry.slot]) best[entry.slot] = candidate;
    }
  }
  for (NodeId v : touched_) buckets_[v].clear();
  touched_.clear();

  for (size_t k = 0; k < pending.size(); ++k) {
    if (batch_is_sources) {
      CacheInsert(pending[k], apex, best[k]);
    } else {
      CacheInsert(apex, pending[k], best[k]);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (out_slot[i] >= 0) out[i] = best[out_slot[i]];
  }
}

void BucketChOracle::ManyToOne(std::span<const NodeId> sources, NodeId target,
                               std::span<double> out) {
  WATTER_TRACE_SPAN_HOT("oracle.many_to_one");
  CountBatch(static_cast<int64_t>(sources.size()));
  CountQueries(static_cast<int64_t>(sources.size()));
  std::lock_guard<std::mutex> lock(mu_);
  BatchAgainstApex(sources, target, /*batch_is_sources=*/true, out);
}

void BucketChOracle::OneToMany(NodeId source, std::span<const NodeId> targets,
                               std::span<double> out) {
  WATTER_TRACE_SPAN_HOT("oracle.one_to_many");
  CountBatch(static_cast<int64_t>(targets.size()));
  CountQueries(static_cast<int64_t>(targets.size()));
  std::lock_guard<std::mutex> lock(mu_);
  BatchAgainstApex(targets, source, /*batch_is_sources=*/false, out);
}

void BucketChOracle::ManyToMany(std::span<const NodeId> sources,
                                std::span<const NodeId> targets,
                                std::span<double> out) {
  WATTER_TRACE_SPAN_HOT("oracle.many_to_many");
  CountBatch(static_cast<int64_t>(sources.size() + targets.size()));
  CountQueries(static_cast<int64_t>(sources.size() * targets.size()));
  const NodeId n = ch_->num_nodes();
  const size_t num_targets = targets.size();
  std::lock_guard<std::mutex> lock(mu_);

  // Backward buckets over the distinct valid targets, built once for the
  // whole matrix; each source then contributes one forward sweep.
  std::unordered_map<NodeId, int32_t> slot_of;
  std::vector<NodeId> pending;
  std::vector<int32_t> target_slot(num_targets, -1);
  for (size_t j = 0; j < num_targets; ++j) {
    const NodeId t = targets[j];
    if (t < 0 || t >= n) continue;
    auto [it, inserted] =
        slot_of.try_emplace(t, static_cast<int32_t>(pending.size()));
    if (inserted) pending.push_back(t);
    target_slot[j] = it->second;
  }
  for (size_t k = 0; k < pending.size(); ++k) {
    const int32_t slot = static_cast<int32_t>(k);
    const std::vector<SpaceEntry>& space =
        *CachedSpace(pending[k], /*forward=*/false);
    for (const SpaceEntry& label : space) {
      if (buckets_[label.node].empty()) touched_.push_back(label.node);
      buckets_[label.node].push_back({slot, label.dist});
    }
  }

  std::vector<double> best(pending.size(), kInfCost);
  for (size_t i = 0; i < sources.size(); ++i) {
    const NodeId s = sources[i];
    std::span<double> row = out.subspan(i * num_targets, num_targets);
    const bool s_ok = s >= 0 && s < n;
    if (s_ok && !pending.empty()) {
      std::fill(best.begin(), best.end(), kInfCost);
      const std::vector<SpaceEntry>& space = *CachedSpace(s, /*forward=*/true);
      for (const SpaceEntry& label : space) {
        for (const BucketEntry& entry : buckets_[label.node]) {
          const double candidate = label.dist + entry.dist;
          if (candidate < best[entry.slot]) best[entry.slot] = candidate;
        }
      }
    }
    for (size_t j = 0; j < num_targets; ++j) {
      if (s == targets[j]) {  // Cost() order: equality before range checks.
        row[j] = 0.0;
      } else if (!s_ok || target_slot[j] < 0) {
        row[j] = kInfCost;
      } else {
        row[j] = best[target_slot[j]];
        CacheInsert(s, targets[j], row[j]);
      }
    }
  }
  for (NodeId v : touched_) buckets_[v].clear();
  touched_.clear();
}

}  // namespace watter
