// Uniform 2-D grid index over points.
//
// The paper (Section VII-A) partitions the city into an n x n cell grid and
// uses it to (a) speed up nearest-worker and nearby-order search and (b)
// quantize locations for the RL state features. This index serves both
// purposes: it supports insert/remove/relocate of identified points, ring-
// expansion k-nearest queries, and exposes per-cell occupancy counts.
#ifndef WATTER_GEO_GRID_INDEX_H_
#define WATTER_GEO_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/geo/point.h"

namespace watter {

/// Grid spatial index with integer element ids.
class GridIndex {
 public:
  /// Covers [min_corner, max_corner] with cells_per_side^2 cells. Points
  /// outside the box are clamped into the border cells.
  GridIndex(Point min_corner, Point max_corner, int cells_per_side);

  /// Inserts `id` at `p`; re-inserting an existing id relocates it.
  void Insert(int64_t id, Point p);

  /// Removes `id`; NotFound if absent.
  Status Remove(int64_t id);

  /// Moves `id` to `p`; NotFound if absent.
  Status Relocate(int64_t id, Point p);

  /// Drops all elements (grid geometry is retained).
  void Clear();

  bool Contains(int64_t id) const { return points_.count(id) > 0; }
  size_t size() const { return points_.size(); }
  int cells_per_side() const { return cells_per_side_; }

  /// Flat cell index (row-major) containing `p`.
  int CellOf(Point p) const;

  /// Geographic region (shard) of `p` under a deterministic partition of
  /// the cell grid into `num_regions` contiguous rectangular blocks — the
  /// partitioner of the region-sharded dispatch engine (docs/DISPATCH.md).
  /// `num_regions` is factored into rows x cols as near-square as possible
  /// (RegionShape); block boundaries depend only on the grid geometry and
  /// `num_regions`, never on the stored elements, so every index sharing
  /// this geometry (demand, supply, idle workers) agrees on the partition.
  /// Returns 0 for `num_regions <= 1`.
  int RegionOf(Point p, int num_regions) const;

  /// Region of a flat cell index (row-major), same partition as RegionOf.
  int RegionOfCell(int cell, int num_regions) const;

  /// Splits `num_regions` into `rows * cols` blocks with `rows <= cols`,
  /// rows the largest divisor not exceeding sqrt(num_regions) (16 -> 4x4,
  /// 2 -> 1x2, primes -> 1xN stripes). Pure and deterministic.
  static void RegionShape(int num_regions, int* rows, int* cols);

  /// Location of a stored element; kInvalid point if absent.
  Point PointOf(int64_t id) const;

  /// Up to `k` stored ids nearest to `p` by Euclidean distance, optionally
  /// filtered by `accept`. Sorted by distance ascending.
  std::vector<int64_t> KNearest(
      int64_t k, Point p,
      const std::function<bool(int64_t)>& accept = nullptr) const;

  /// All stored ids within Euclidean `radius` of `p` (unsorted).
  std::vector<int64_t> WithinRadius(Point p, double radius) const;

  /// Occupancy count per cell (row-major, cells_per_side^2 entries).
  std::vector<int> CellCounts() const;

  /// All stored ids (unspecified order).
  std::vector<int64_t> AllIds() const;

 private:
  int RowOf(double y) const;
  int ColOf(double x) const;

  Point min_corner_;
  Point max_corner_;
  int cells_per_side_;
  double cell_width_;
  double cell_height_;
  std::vector<std::unordered_set<int64_t>> cells_;
  std::unordered_map<int64_t, Point> points_;
};

}  // namespace watter

#endif  // WATTER_GEO_GRID_INDEX_H_
