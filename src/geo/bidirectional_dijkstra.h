// Bidirectional Dijkstra for point-to-point cost queries.
//
// Roughly halves the search space of plain Dijkstra on road networks; used
// as the mid-tier travel-time oracle (between the APSP matrix for small
// cities and contraction hierarchies for large ones).
#ifndef WATTER_GEO_BIDIRECTIONAL_DIJKSTRA_H_
#define WATTER_GEO_BIDIRECTIONAL_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "src/geo/graph.h"

namespace watter {

/// Reusable bidirectional point-to-point shortest path search.
class BidirectionalDijkstra {
 public:
  /// Binds to `graph`, which must outlive this object and be finalized.
  explicit BidirectionalDijkstra(const Graph* graph);

  /// Returns the shortest travel cost from `source` to `target`, or kInfCost
  /// if unreachable.
  double Query(NodeId source, NodeId target);

 private:
  bool FreshF(NodeId v) const { return version_f_[v] == current_version_; }
  bool FreshB(NodeId v) const { return version_b_[v] == current_version_; }

  const Graph* graph_;
  std::vector<double> dist_f_;
  std::vector<double> dist_b_;
  std::vector<uint32_t> version_f_;
  std::vector<uint32_t> version_b_;
  uint32_t current_version_ = 0;
};

}  // namespace watter

#endif  // WATTER_GEO_BIDIRECTIONAL_DIJKSTRA_H_
