// A* point-to-point search with an automatically derived admissible
// heuristic.
//
// For city graphs whose nodes carry coordinates, a lower bound on remaining
// travel time is euclidean_distance * min_seconds_per_unit, where the factor
// is the tightest ratio of edge weight to endpoint distance observed in the
// graph. The factor is computed once at construction; graphs with co-located
// adjacent nodes degrade gracefully to factor 0 (plain Dijkstra ordering).
#ifndef WATTER_GEO_ASTAR_H_
#define WATTER_GEO_ASTAR_H_

#include <cstdint>
#include <vector>

#include "src/geo/graph.h"

namespace watter {

/// Reusable A* searcher over a finalized graph.
class AStar {
 public:
  /// Binds to `graph` (must outlive this object) and derives the heuristic
  /// scale from its edges.
  explicit AStar(const Graph* graph);

  /// Shortest travel cost from `source` to `target`; kInfCost if
  /// unreachable.
  double Query(NodeId source, NodeId target);

  /// The derived admissible seconds-per-coordinate-unit factor.
  double heuristic_factor() const { return heuristic_factor_; }

  /// Nodes settled by the last query (to compare against Dijkstra).
  int settled_count() const { return settled_count_; }

 private:
  bool Fresh(NodeId v) const { return version_[v] == current_version_; }

  const Graph* graph_;
  double heuristic_factor_ = 0.0;
  std::vector<double> dist_;
  std::vector<uint32_t> version_;
  uint32_t current_version_ = 0;
  int settled_count_ = 0;
};

}  // namespace watter

#endif  // WATTER_GEO_ASTAR_H_
