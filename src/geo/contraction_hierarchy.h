// Contraction Hierarchies (CH) for microsecond point-to-point queries.
//
// Preprocessing contracts nodes in importance order, inserting shortcuts that
// preserve shortest-path distances; queries run a bidirectional upward
// Dijkstra over the augmented graph. This is the oracle of choice for city
// graphs too large for an all-pairs matrix.
//
// Reference: Geisberger et al., "Contraction Hierarchies: Faster and Simpler
// Hierarchical Routing in Road Networks" (WEA 2008).
#ifndef WATTER_GEO_CONTRACTION_HIERARCHY_H_
#define WATTER_GEO_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/geo/graph.h"

namespace watter {

/// Build-time tuning knobs for CH preprocessing.
struct ChOptions {
  /// Witness-search settle limit; smaller builds faster but may add
  /// redundant (never harmful) shortcuts.
  int witness_settle_limit = 64;
  /// Witness-search hop limit.
  int witness_hop_limit = 16;
};

/// An immutable contraction hierarchy over a road graph.
class ContractionHierarchy {
 public:
  /// Preprocesses `graph` (must be finalized). O(n log n) shortcuts on
  /// road-like graphs.
  static Result<ContractionHierarchy> Build(const Graph& graph,
                                            const ChOptions& options = {});

  /// Shortest travel cost from `source` to `target`; kInfCost if unreachable.
  double Query(NodeId source, NodeId target) const;

  int num_nodes() const { return num_nodes_; }
  /// Total arcs in the upward/downward search graphs (original + shortcuts).
  int num_search_arcs() const {
    return static_cast<int>(up_arcs_.size() + down_arcs_.size());
  }
  /// Number of shortcut arcs added during preprocessing.
  int num_shortcuts() const { return num_shortcuts_; }

  /// The forward (upward) search graph's arcs out of `v`. Exposed so batch
  /// backends (bucket-CH, src/geo/bucket_ch.h) can run their own searches
  /// over the hierarchy with private scratch — sharing one hierarchy between
  /// a ChOracle and a BucketChOracle is then safe as long as each oracle
  /// serializes its own Query() use.
  std::span<const Arc> UpArcs(NodeId v) const {
    return {&up_arcs_[up_offsets_[v]], &up_arcs_[up_offsets_[v + 1]]};
  }
  /// The backward search graph's arcs at `v` (Arc::to is the *tail* of the
  /// original arc; weights are unchanged).
  std::span<const Arc> DownArcs(NodeId v) const {
    return {&down_arcs_[down_offsets_[v]], &down_arcs_[down_offsets_[v + 1]]};
  }

 private:
  ContractionHierarchy() = default;

  int num_nodes_ = 0;
  int num_shortcuts_ = 0;
  // Forward search graph: arcs u->v with rank[v] > rank[u].
  std::vector<int32_t> up_offsets_;
  std::vector<Arc> up_arcs_;
  // Backward search graph: reversed arcs u->v with rank[u] > rank[v], stored
  // at v pointing to u.
  std::vector<int32_t> down_offsets_;
  std::vector<Arc> down_arcs_;
  // Scratch buffers reused across queries (mutable: Query is logically const).
  mutable std::vector<double> dist_f_;
  mutable std::vector<double> dist_b_;
  mutable std::vector<uint32_t> version_f_;
  mutable std::vector<uint32_t> version_b_;
  mutable uint32_t query_version_ = 0;
};

}  // namespace watter

#endif  // WATTER_GEO_CONTRACTION_HIERARCHY_H_
