#include "src/geo/dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace watter {

Dijkstra::Dijkstra(const Graph* graph) : graph_(graph) {
  const size_t n = static_cast<size_t>(graph_->num_nodes());
  dist_.assign(n, kInfCost);
  parent_.assign(n, kInvalidNode);
  version_.assign(n, 0);
}

void Dijkstra::Run(NodeId source, NodeId target, bool reverse) {
  ++current_version_;
  settled_count_ = 0;
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist_[source] = 0.0;
  parent_[source] = kInvalidNode;
  version_[source] = current_version_;
  queue.push({0.0, source});
  // Versioned "settled" marking: a node is settled the first time it is
  // popped with its current distance.
  std::vector<bool> settled;  // lazily sized only when needed would cost more;
  settled.assign(static_cast<size_t>(graph_->num_nodes()), false);
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (settled[v]) continue;
    if (!Fresh(v) || d > dist_[v]) continue;
    settled[v] = true;
    ++settled_count_;
    if (v == target) return;
    auto arcs = reverse ? graph_->InArcs(v) : graph_->OutArcs(v);
    for (const Arc& arc : arcs) {
      double candidate = d + arc.weight;
      if (!Fresh(arc.to) || candidate < dist_[arc.to]) {
        dist_[arc.to] = candidate;
        parent_[arc.to] = v;
        version_[arc.to] = current_version_;
        queue.push({candidate, arc.to});
      }
    }
  }
}

double Dijkstra::DistanceTo(NodeId v) const {
  if (v < 0 || v >= graph_->num_nodes()) return kInfCost;
  return Fresh(v) ? dist_[v] : kInfCost;
}

std::vector<NodeId> Dijkstra::PathTo(NodeId v) const {
  std::vector<NodeId> path;
  if (DistanceTo(v) == kInfCost) return path;
  for (NodeId cursor = v; cursor != kInvalidNode; cursor = parent_[cursor]) {
    path.push_back(cursor);
    if (!Fresh(cursor)) {
      path.clear();
      return path;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double ShortestPathCost(const Graph& graph, NodeId from, NodeId to) {
  Dijkstra search(&graph);
  search.Run(from, to);
  return search.DistanceTo(to);
}

}  // namespace watter
