// Directed weighted road-network graph with CSR storage.
//
// The graph is built incrementally (AddNode/AddEdge) and then Finalize()d
// into forward and reverse CSR adjacency for cache-friendly traversal. All
// shortest-path code (Dijkstra, bidirectional search, contraction
// hierarchies) operates on the finalized form.
#ifndef WATTER_GEO_GRAPH_H_
#define WATTER_GEO_GRAPH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/geo/point.h"

namespace watter {

/// Identifier of a road-network node. Negative values are invalid.
using NodeId = int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel for "unreachable" travel costs.
inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// One outgoing (or incoming) arc of the CSR adjacency.
struct Arc {
  NodeId to = kInvalidNode;  ///< Head node (tail node for reverse arcs).
  double weight = 0.0;       ///< Travel time in seconds.
};

/// Road network. Edge weights are travel times in seconds.
class Graph {
 public:
  Graph() = default;

  /// Adds a node located at `p`; returns its id (dense, starting at 0).
  NodeId AddNode(Point p);

  /// Adds a directed edge. Requires valid endpoints and weight >= 0;
  /// violations surface at Finalize().
  void AddEdge(NodeId from, NodeId to, double weight);

  /// Adds both directions with the same weight.
  void AddBidirectionalEdge(NodeId a, NodeId b, double weight);

  /// Validates and freezes the graph, building CSR adjacency. Must be called
  /// exactly once before any traversal.
  Status Finalize();

  bool finalized() const { return finalized_; }
  int num_nodes() const { return static_cast<int>(points_.size()); }
  int num_edges() const {
    return static_cast<int>(finalized_ ? out_arcs_.size() : edge_from_.size());
  }

  /// Location of `node`. Requires a valid id.
  const Point& node_point(NodeId node) const { return points_[node]; }

  /// Outgoing arcs of `node`. Requires finalized().
  std::span<const Arc> OutArcs(NodeId node) const {
    return {&out_arcs_[out_offsets_[node]],
            &out_arcs_[out_offsets_[node + 1]]};
  }

  /// Incoming arcs of `node` (Arc::to is the tail). Requires finalized().
  std::span<const Arc> InArcs(NodeId node) const {
    return {&in_arcs_[in_offsets_[node]], &in_arcs_[in_offsets_[node + 1]]};
  }

  /// True if every node can reach every other node treating arcs as
  /// undirected. Requires finalized().
  bool IsWeaklyConnected() const;

  /// Bounding box over node locations. Requires at least one node.
  Point MinCorner() const;
  Point MaxCorner() const;

 private:
  std::vector<Point> points_;
  // Edge staging before Finalize().
  std::vector<NodeId> edge_from_;
  std::vector<NodeId> edge_to_;
  std::vector<double> edge_weight_;
  // CSR storage after Finalize().
  std::vector<int32_t> out_offsets_;
  std::vector<Arc> out_arcs_;
  std::vector<int32_t> in_offsets_;
  std::vector<Arc> in_arcs_;
  bool finalized_ = false;
};

}  // namespace watter

#endif  // WATTER_GEO_GRAPH_H_
