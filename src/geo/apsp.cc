#include "src/geo/apsp.h"

#include <string>

#include "src/geo/dijkstra.h"

namespace watter {

Result<CostMatrix> CostMatrix::Build(const Graph& graph, int64_t max_cells) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized before APSP");
  }
  const int n = graph.num_nodes();
  const int64_t cells = static_cast<int64_t>(n) * n;
  if (cells > max_cells) {
    return Status::OutOfRange("APSP matrix of " + std::to_string(n) +
                              " nodes exceeds the configured budget");
  }
  std::vector<float> matrix(static_cast<size_t>(cells), kUnreachable + 1.0f);
  Dijkstra search(&graph);
  for (NodeId source = 0; source < n; ++source) {
    search.Run(source);
    float* row = &matrix[static_cast<size_t>(source) * n];
    for (NodeId v = 0; v < n; ++v) {
      double d = search.DistanceTo(v);
      row[v] = d == kInfCost ? kUnreachable + 1.0f : static_cast<float>(d);
    }
  }
  return CostMatrix(n, std::move(matrix));
}

}  // namespace watter
