#include "src/geo/astar.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace watter {

AStar::AStar(const Graph* graph) : graph_(graph) {
  const int n = graph_->num_nodes();
  dist_.assign(static_cast<size_t>(n), kInfCost);
  version_.assign(static_cast<size_t>(n), 0);
  // Tightest admissible seconds-per-unit over all edges. Any path's cost is
  // at least factor * euclidean(source, target) by the triangle inequality
  // (each edge costs at least factor * its endpoint distance).
  double factor = kInfCost;
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& arc : graph_->OutArcs(v)) {
      double gap = EuclideanDistance(graph_->node_point(v),
                                     graph_->node_point(arc.to));
      if (gap <= 1e-12) {
        factor = 0.0;  // Co-located neighbors: no usable bound.
        continue;
      }
      factor = std::min(factor, arc.weight / gap);
    }
  }
  heuristic_factor_ = factor == kInfCost ? 0.0 : factor;
}

double AStar::Query(NodeId source, NodeId target) {
  if (source == target) return 0.0;
  ++current_version_;
  settled_count_ = 0;
  const Point goal = graph_->node_point(target);
  auto heuristic = [&](NodeId v) {
    return heuristic_factor_ *
           EuclideanDistance(graph_->node_point(v), goal);
  };
  using Entry = std::pair<double, NodeId>;  // (f = g + h, node).
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist_[source] = 0.0;
  version_[source] = current_version_;
  queue.push({heuristic(source), source});
  std::vector<bool> settled(static_cast<size_t>(graph_->num_nodes()), false);
  while (!queue.empty()) {
    auto [f, v] = queue.top();
    queue.pop();
    if (settled[v]) continue;
    settled[v] = true;
    ++settled_count_;
    if (v == target) return dist_[v];
    double g = dist_[v];
    for (const Arc& arc : graph_->OutArcs(v)) {
      double candidate = g + arc.weight;
      if (!Fresh(arc.to) || candidate < dist_[arc.to]) {
        dist_[arc.to] = candidate;
        version_[arc.to] = current_version_;
        queue.push({candidate + heuristic(arc.to), arc.to});
      }
    }
  }
  return kInfCost;
}

}  // namespace watter
