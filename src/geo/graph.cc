#include "src/geo/graph.h"

#include <algorithm>
#include <string>

namespace watter {

NodeId Graph::AddNode(Point p) {
  points_.push_back(p);
  return static_cast<NodeId>(points_.size()) - 1;
}

void Graph::AddEdge(NodeId from, NodeId to, double weight) {
  edge_from_.push_back(from);
  edge_to_.push_back(to);
  edge_weight_.push_back(weight);
}

void Graph::AddBidirectionalEdge(NodeId a, NodeId b, double weight) {
  AddEdge(a, b, weight);
  AddEdge(b, a, weight);
}

Status Graph::Finalize() {
  if (finalized_) return Status::FailedPrecondition("graph already finalized");
  const int n = num_nodes();
  const int m = num_edges();
  for (int e = 0; e < m; ++e) {
    if (edge_from_[e] < 0 || edge_from_[e] >= n || edge_to_[e] < 0 ||
        edge_to_[e] >= n) {
      return Status::InvalidArgument("edge " + std::to_string(e) +
                                     " references an unknown node");
    }
    if (!(edge_weight_[e] >= 0.0) || edge_weight_[e] == kInfCost) {
      return Status::InvalidArgument("edge " + std::to_string(e) +
                                     " has a non-finite or negative weight");
    }
  }

  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (int e = 0; e < m; ++e) {
    ++out_offsets_[edge_from_[e] + 1];
    ++in_offsets_[edge_to_[e] + 1];
  }
  for (int v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_arcs_.resize(m);
  in_arcs_.resize(m);
  std::vector<int32_t> out_cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<int32_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (int e = 0; e < m; ++e) {
    out_arcs_[out_cursor[edge_from_[e]]++] = {edge_to_[e], edge_weight_[e]};
    in_arcs_[in_cursor[edge_to_[e]]++] = {edge_from_[e], edge_weight_[e]};
  }
  // Release staging storage.
  edge_from_.clear();
  edge_from_.shrink_to_fit();
  edge_to_.clear();
  edge_to_.shrink_to_fit();
  edge_weight_.clear();
  edge_weight_.shrink_to_fit();
  finalized_ = true;
  return Status::Ok();
}

bool Graph::IsWeaklyConnected() const {
  const int n = num_nodes();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (const Arc& arc : OutArcs(v)) {
      if (!seen[arc.to]) {
        seen[arc.to] = true;
        ++visited;
        stack.push_back(arc.to);
      }
    }
    for (const Arc& arc : InArcs(v)) {
      if (!seen[arc.to]) {
        seen[arc.to] = true;
        ++visited;
        stack.push_back(arc.to);
      }
    }
  }
  return visited == n;
}

Point Graph::MinCorner() const {
  Point corner = points_.front();
  for (const Point& p : points_) {
    corner.x = std::min(corner.x, p.x);
    corner.y = std::min(corner.y, p.y);
  }
  return corner;
}

Point Graph::MaxCorner() const {
  Point corner = points_.front();
  for (const Point& p : points_) {
    corner.x = std::max(corner.x, p.x);
    corner.y = std::max(corner.y, p.y);
  }
  return corner;
}

}  // namespace watter
