// Synthetic city road networks.
//
// The paper evaluates on New York, Chengdu and Xi'an road networks, which are
// not shipped with this reproduction. Instead we generate perturbed-grid
// cities with the structural features that drive the algorithms' relative
// behaviour: a congested centre, fast arterial corridors, and per-edge jitter
// so shortest paths are unique and non-trivial. Every algorithm consumes the
// city only through TravelTimeOracle::Cost, so the substitution preserves the
// code paths exercised by the real datasets (see DESIGN.md, substitutions).
#ifndef WATTER_GEO_CITY_GENERATOR_H_
#define WATTER_GEO_CITY_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/geo/graph.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// Parameters of the perturbed-grid city generator.
struct CityOptions {
  int width = 48;                ///< Nodes per row.
  int height = 48;               ///< Nodes per column.
  double cell_seconds = 60.0;    ///< Base travel time of one grid edge.
  double jitter = 0.2;           ///< Per-edge multiplicative noise, U[1-j,1+j].
  double center_slowdown = 1.6;  ///< Peak congestion factor at the centre.
  double center_sigma = 0.25;    ///< Congestion radius as a fraction of size.
  int arterial_every = 8;        ///< Every k-th row/col is an arterial road.
  double arterial_factor = 0.55; ///< Speed multiplier on arterials (< 1).
  uint64_t seed = 7;             ///< Generator seed.
};

/// A generated city: the road graph plus its grid dimensions.
struct City {
  Graph graph;
  int width = 0;
  int height = 0;
  double cell_seconds = 0.0;

  /// Node id at (row, col).
  NodeId NodeAt(int row, int col) const {
    return static_cast<NodeId>(row) * width + col;
  }

  /// Uniformly random node.
  NodeId RandomNode(Rng* rng) const {
    return static_cast<NodeId>(
        rng->UniformInt(0, static_cast<int64_t>(graph.num_nodes()) - 1));
  }
};

/// Generates a city; the returned graph is finalized and weakly connected.
Result<City> GenerateCity(const CityOptions& options);

/// Which shortest-path backend an oracle should use.
enum class OracleKind {
  kMatrix,    ///< Precomputed all-pairs matrix (fastest queries).
  kCh,        ///< Contraction hierarchy with memoization.
  kDijkstra,  ///< On-demand Dijkstra rows with an LRU (no preprocessing).
};

/// How CH-backed oracles answer batch queries. Only meaningful for
/// OracleKind::kCh: the matrix oracle is O(1) per query and the Dijkstra
/// oracle's row cache is already batch-shaped, so both ignore this.
enum class GeoBackend {
  kPerQuery,  ///< ChOracle: every batch slot is an independent point query.
  kBucket,    ///< BucketChOracle: bucket-CH batch queries (bitwise-equal
              ///< results; default since the equivalence suite pins them).
};

/// Builds a travel-time oracle over `graph`. The graph must outlive the
/// oracle for kDijkstra; matrix/CH oracles own their backing structure.
Result<std::unique_ptr<TravelTimeOracle>> BuildOracle(
    const Graph& graph, OracleKind kind,
    GeoBackend backend = GeoBackend::kBucket);

}  // namespace watter

#endif  // WATTER_GEO_CITY_GENERATOR_H_
