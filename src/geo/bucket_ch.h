// Bucket contraction hierarchies: batched one-to-many / many-to-one /
// many-to-many distance queries over an existing CH.
//
// A point-to-point CH query runs one forward upward search from the source
// and one backward upward search from the target. When one endpoint is
// shared across a batch — a fleet probe rates K workers against one pickup,
// a pool insertion rates one order against all resident candidates — the
// per-query oracle repeats the shared half K times. The bucket technique
// (Knopp et al., "Computing Many-to-Many Shortest Paths Using Highway
// Hierarchies", ALENEX 2007; applied to large-scale dispatching by the KIT
// scalable-dispatcher line of work) computes each endpoint's upward search
// space exactly once: the spaces of one batch side are scattered into
// per-node buckets, and a single sweep from the other side joins against
// the buckets. A K-source many-to-one batch costs K forward spaces + 1
// backward space instead of K full bidirectional queries, and an |S| x |T|
// many-to-many costs |S| + |T| searches instead of |S| * |T|.
//
// Search spaces are also *node-deterministic*: the full upward space of a
// node never changes, so the oracle memoizes each computed space (per
// direction, within a bounded entry budget). Across batches the dispatch
// workload revisits the same endpoints constantly — every idle worker is
// probed by many orders — and a revisit turns the Dijkstra into an array
// append, which is where the bulk of the batch speedup comes from.
//
// Exactness: the batch result for a pair is min over meeting nodes v of
// dist_up(s, v) + dist_down(v, t), computed from the same upward/downward
// search graphs and the same Dijkstra relaxations as
// ContractionHierarchy::Query — so results are bitwise identical to the
// per-query oracle (geo_oracle_equivalence_test pins this, including
// unreachable pairs and source == target).
#ifndef WATTER_GEO_BUCKET_CH_H_
#define WATTER_GEO_BUCKET_CH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/geo/contraction_hierarchy.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// Batch-first oracle over a contraction hierarchy.
///
/// Point queries run the same pruned bidirectional upward search as
/// ChOracle (plus the same memo cache), so the bucket backend is never a
/// regression for point-to-point callers; batch queries use buckets and
/// *prime the memo cache* with every pair they answer, which is what makes
/// the pool's per-anchor prefetch turn the planner's later point queries
/// into cache hits.
///
/// Thread safety: all queries serialize behind one internal mutex (the same
/// contract as ChOracle). The oracle keeps private search scratch — it
/// never touches the hierarchy's own Query() buffers — so a hierarchy may
/// be shared with a ChOracle as long as that oracle's use is serialized
/// separately.
class BucketChOracle : public TravelTimeOracle {
 public:
  /// `space_budget` caps the total entries memoized across all per-node
  /// search spaces (~16 bytes each); past it, spaces are recomputed into
  /// scratch instead of cached. The default (~64 MB worst case) covers every
  /// node of the generated cities many times over.
  explicit BucketChOracle(std::shared_ptr<const ContractionHierarchy> ch,
                          size_t cache_capacity = 1 << 20,
                          size_t space_budget = 1 << 22);

  double Cost(NodeId from, NodeId to) override;
  void ManyToOne(std::span<const NodeId> sources, NodeId target,
                 std::span<double> out) override;
  void OneToMany(NodeId source, std::span<const NodeId> targets,
                 std::span<double> out) override;
  void ManyToMany(std::span<const NodeId> sources,
                  std::span<const NodeId> targets,
                  std::span<double> out) override;

  bool NativeBatch() const override { return true; }

  /// Cumulative seconds spent running the memoized search-space Dijkstras
  /// (the batch-side preprocessing the per-query oracle has no analogue
  /// of). Each (node, direction) build is timed exactly once, accumulated
  /// monotonically under mu_ — unlike the base-class query/batch counters,
  /// this figure is exact even under concurrent callers.
  double bucket_build_seconds() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return bucket_build_seconds_;
  }

  size_t cache_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

  /// Total entries currently memoized across per-node search spaces.
  size_t space_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return space_entries_;
  }

 private:
  /// One scattered search-space entry: `slot` indexes the batch-local
  /// distinct-endpoint list, `dist` is the upward distance from (or to) it.
  struct BucketEntry {
    int32_t slot;
    double dist;
  };

  /// One memoized search-space label: the settled node and its upward
  /// distance from (or to) the space's root, in settle order.
  struct SpaceEntry {
    NodeId node;
    double dist;
  };

  /// Runs a full (unpruned) upward Dijkstra from `root` over the forward or
  /// backward search graph, invoking emit(node, dist) for every settled
  /// node. Uses the direction's private scratch; caller holds mu_.
  template <typename Emit>
  void SearchSpace(NodeId root, bool forward, Emit&& emit);

  /// `root`'s full search space in settle order, memoized per direction
  /// while space_budget_ lasts (recomputed into scratch past it — the
  /// returned pointer is then only valid until the next call). The space of
  /// a node is deterministic, so cached and fresh spaces are identical and
  /// batch results cannot depend on cache state. Caller holds mu_.
  const std::vector<SpaceEntry>* CachedSpace(NodeId root, bool forward);

  /// The pruned bidirectional point query (same algorithm and relaxation
  /// order as ContractionHierarchy::Query, over private scratch).
  double PointQuery(NodeId source, NodeId target);

  /// Shared core of ManyToOne/OneToMany: answers all (batch[i], apex) or
  /// (apex, batch[i]) pairs, `forward` naming the batch side's search
  /// direction. Caller holds mu_.
  void BatchAgainstApex(std::span<const NodeId> batch, NodeId apex,
                        bool batch_is_sources, std::span<double> out);

  /// Memo-cache insert with the epoch flush ChOracle uses.
  void CacheInsert(NodeId from, NodeId to, double cost);
  bool CacheLookup(NodeId from, NodeId to, double* cost) const;

  std::shared_ptr<const ContractionHierarchy> ch_;
  size_t cache_capacity_;

  mutable std::mutex mu_;  // Guards everything below.
  std::unordered_map<uint64_t, double> cache_;
  double bucket_build_seconds_ = 0.0;

  // Versioned Dijkstra scratch, one pair per direction, reused across
  // queries without clearing.
  std::vector<double> dist_f_;
  std::vector<double> dist_b_;
  std::vector<uint32_t> version_f_;
  std::vector<uint32_t> version_b_;
  uint32_t query_version_ = 0;

  // Bucket scratch: buckets_[v] holds the scattered entries of the current
  // batch; touched_ lists the non-empty buckets so clearing is O(spaces),
  // not O(nodes).
  std::vector<std::vector<BucketEntry>> buckets_;
  std::vector<NodeId> touched_;

  // Memoized per-node search spaces (space_f_[v] valid iff
  // space_built_f_[v], same for backward), bounded by space_budget_ total
  // entries; space_scratch_ receives over-budget recomputations.
  std::vector<std::vector<SpaceEntry>> space_f_;
  std::vector<std::vector<SpaceEntry>> space_b_;
  std::vector<uint8_t> space_built_f_;
  std::vector<uint8_t> space_built_b_;
  std::vector<SpaceEntry> space_scratch_;
  size_t space_budget_;
  size_t space_entries_ = 0;
};

}  // namespace watter

#endif  // WATTER_GEO_BUCKET_CH_H_
