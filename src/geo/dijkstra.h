// Reusable single-source Dijkstra with versioned state arrays.
//
// A Dijkstra object is bound to a graph and can answer many queries without
// reallocating; each Run() bumps a version counter instead of clearing the
// O(n) distance arrays, which matters when thousands of short queries are
// issued during a simulation.
#ifndef WATTER_GEO_DIJKSTRA_H_
#define WATTER_GEO_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "src/geo/graph.h"

namespace watter {

/// Single-source shortest paths over a finalized Graph.
class Dijkstra {
 public:
  /// Binds to `graph`, which must outlive this object and be finalized.
  explicit Dijkstra(const Graph* graph);

  /// Computes shortest paths from `source`. If `target` is a valid node the
  /// search stops as soon as it is settled. If `reverse` is true the search
  /// runs over incoming arcs (distances *to* `source`).
  void Run(NodeId source, NodeId target = kInvalidNode, bool reverse = false);

  /// Distance from the last Run()'s source to `v` (kInfCost if unreached or
  /// not settled before early termination).
  double DistanceTo(NodeId v) const;

  /// Reconstructs the node sequence from the source to `v`; empty if
  /// unreachable. Only meaningful for forward searches.
  std::vector<NodeId> PathTo(NodeId v) const;

  /// Number of nodes settled by the last Run() (for bench instrumentation).
  int settled_count() const { return settled_count_; }

 private:
  bool Fresh(NodeId v) const { return version_[v] == current_version_; }

  const Graph* graph_;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;
  std::vector<uint32_t> version_;
  uint32_t current_version_ = 0;
  int settled_count_ = 0;
};

/// One-shot convenience: shortest travel cost from `from` to `to`.
double ShortestPathCost(const Graph& graph, NodeId from, NodeId to);

}  // namespace watter

#endif  // WATTER_GEO_DIJKSTRA_H_
