// 2-D point in city coordinates (grid-cell units for synthetic cities).
#ifndef WATTER_GEO_POINT_H_
#define WATTER_GEO_POINT_H_

#include <cmath>

namespace watter {

/// Planar point; for generated cities the unit is one road-grid cell.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// Euclidean distance between two points.
inline double EuclideanDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Manhattan (L1) distance; a lower bound proxy on grid-city travel.
inline double ManhattanDistance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace watter

#endif  // WATTER_GEO_POINT_H_
