// All-pairs shortest path matrix for small/medium cities.
//
// For the default synthetic cities (a few thousand nodes) an n x n float
// matrix fits comfortably in memory and turns every travel-time query into a
// single load, which is what makes large simulation sweeps cheap.
#ifndef WATTER_GEO_APSP_H_
#define WATTER_GEO_APSP_H_

#include <vector>

#include "src/common/result.h"
#include "src/geo/graph.h"

namespace watter {

/// Dense all-pairs travel-cost matrix (float to halve the footprint).
class CostMatrix {
 public:
  /// Runs one Dijkstra per node. Refuses graphs whose matrix would exceed
  /// `max_cells` (default ~512M cells ≈ 2 GB) to avoid accidental blowups.
  static Result<CostMatrix> Build(const Graph& graph,
                                  int64_t max_cells = int64_t{512} << 20);

  /// Travel cost from `from` to `to`; kInfCost if unreachable.
  double Cost(NodeId from, NodeId to) const {
    float value = cells_[static_cast<size_t>(from) * n_ + to];
    return value < kUnreachable ? static_cast<double>(value) : kInfCost;
  }

  int num_nodes() const { return n_; }

 private:
  static constexpr float kUnreachable = 3.0e38f;

  CostMatrix(int n, std::vector<float> cells)
      : n_(n), cells_(std::move(cells)) {}

  int n_ = 0;
  std::vector<float> cells_;
};

}  // namespace watter

#endif  // WATTER_GEO_APSP_H_
