#include "src/geo/bidirectional_dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace watter {

BidirectionalDijkstra::BidirectionalDijkstra(const Graph* graph)
    : graph_(graph) {
  const size_t n = static_cast<size_t>(graph_->num_nodes());
  dist_f_.assign(n, kInfCost);
  dist_b_.assign(n, kInfCost);
  version_f_.assign(n, 0);
  version_b_.assign(n, 0);
}

double BidirectionalDijkstra::Query(NodeId source, NodeId target) {
  if (source == target) return 0.0;
  ++current_version_;
  using Entry = std::pair<double, NodeId>;
  using Queue =
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;
  Queue forward, backward;
  dist_f_[source] = 0.0;
  version_f_[source] = current_version_;
  forward.push({0.0, source});
  dist_b_[target] = 0.0;
  version_b_[target] = current_version_;
  backward.push({0.0, target});

  double best = kInfCost;
  // Alternate expansions; terminate when the sum of both frontiers' minima
  // already exceeds the best meeting point found.
  while (!forward.empty() || !backward.empty()) {
    double front_f = forward.empty() ? kInfCost : forward.top().first;
    double front_b = backward.empty() ? kInfCost : backward.top().first;
    if (front_f + front_b >= best) break;
    bool expand_forward = front_f <= front_b;
    if (expand_forward) {
      auto [d, v] = forward.top();
      forward.pop();
      if (d > dist_f_[v] || !FreshF(v)) continue;
      if (FreshB(v) && d + dist_b_[v] < best) best = d + dist_b_[v];
      for (const Arc& arc : graph_->OutArcs(v)) {
        double candidate = d + arc.weight;
        if (!FreshF(arc.to) || candidate < dist_f_[arc.to]) {
          dist_f_[arc.to] = candidate;
          version_f_[arc.to] = current_version_;
          forward.push({candidate, arc.to});
        }
      }
    } else {
      auto [d, v] = backward.top();
      backward.pop();
      if (d > dist_b_[v] || !FreshB(v)) continue;
      if (FreshF(v) && d + dist_f_[v] < best) best = d + dist_f_[v];
      for (const Arc& arc : graph_->InArcs(v)) {
        double candidate = d + arc.weight;
        if (!FreshB(arc.to) || candidate < dist_b_[arc.to]) {
          dist_b_[arc.to] = candidate;
          version_b_[arc.to] = current_version_;
          backward.push({candidate, arc.to});
        }
      }
    }
  }
  return best;
}

}  // namespace watter
