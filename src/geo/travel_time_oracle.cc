#include "src/geo/travel_time_oracle.h"

#include "src/geo/dijkstra.h"

namespace watter {

void TravelTimeOracle::ManyToOne(std::span<const NodeId> sources,
                                 NodeId target, std::span<double> out) {
  CountBatch(static_cast<int64_t>(sources.size()));
  for (size_t i = 0; i < sources.size(); ++i) {
    out[i] = Cost(sources[i], target);
  }
}

void TravelTimeOracle::OneToMany(NodeId source,
                                 std::span<const NodeId> targets,
                                 std::span<double> out) {
  CountBatch(static_cast<int64_t>(targets.size()));
  for (size_t j = 0; j < targets.size(); ++j) {
    out[j] = Cost(source, targets[j]);
  }
}

void TravelTimeOracle::ManyToMany(std::span<const NodeId> sources,
                                  std::span<const NodeId> targets,
                                  std::span<double> out) {
  CountBatch(static_cast<int64_t>(sources.size() + targets.size()));
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      out[i * targets.size() + j] = Cost(sources[i], targets[j]);
    }
  }
}

double ChOracle::Cost(NodeId from, NodeId to) {
  CountQuery();
  if (from == to) return 0.0;
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
                 static_cast<uint32_t>(to);
  // The lock also covers ch_->Query: the hierarchy reuses mutable scratch
  // buffers across queries, so queries must not overlap.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  double cost = ch_->Query(from, to);
  if (cache_.size() >= cache_capacity_) cache_.clear();  // Cheap epoch flush.
  cache_.emplace(key, cost);
  return cost;
}

DijkstraOracle::DijkstraOracle(const Graph* graph, size_t max_cached_sources)
    : graph_(graph), max_cached_sources_(max_cached_sources) {}

const std::vector<double>& DijkstraOracle::RowFor(NodeId source) {
  auto it = rows_.find(source);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, lru_pos_[source]);
    return it->second;
  }
  if (rows_.size() >= max_cached_sources_) {
    NodeId victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    rows_.erase(victim);
  }
  Dijkstra search(graph_);
  search.Run(source);
  std::vector<double> row(static_cast<size_t>(graph_->num_nodes()), kInfCost);
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    row[v] = search.DistanceTo(v);
  }
  auto [inserted, _] = rows_.emplace(source, std::move(row));
  lru_.push_front(source);
  lru_pos_[source] = lru_.begin();
  return inserted->second;
}

double DijkstraOracle::Cost(NodeId from, NodeId to) {
  CountQuery();
  // One lock around lookup-or-compute: RowFor mutates the row cache and the
  // LRU list, and the returned row reference must not be invalidated by a
  // concurrent eviction while we read it.
  std::lock_guard<std::mutex> lock(mu_);
  return RowFor(from)[to];
}

}  // namespace watter
