#include "src/geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace watter {

GridIndex::GridIndex(Point min_corner, Point max_corner, int cells_per_side)
    : min_corner_(min_corner),
      max_corner_(max_corner),
      cells_per_side_(std::max(1, cells_per_side)) {
  double width = std::max(1e-9, max_corner_.x - min_corner_.x);
  double height = std::max(1e-9, max_corner_.y - min_corner_.y);
  cell_width_ = width / cells_per_side_;
  cell_height_ = height / cells_per_side_;
  cells_.resize(static_cast<size_t>(cells_per_side_) * cells_per_side_);
}

int GridIndex::ColOf(double x) const {
  int col = static_cast<int>((x - min_corner_.x) / cell_width_);
  return std::clamp(col, 0, cells_per_side_ - 1);
}

int GridIndex::RowOf(double y) const {
  int row = static_cast<int>((y - min_corner_.y) / cell_height_);
  return std::clamp(row, 0, cells_per_side_ - 1);
}

int GridIndex::CellOf(Point p) const {
  return RowOf(p.y) * cells_per_side_ + ColOf(p.x);
}

void GridIndex::RegionShape(int num_regions, int* rows, int* cols) {
  num_regions = std::max(1, num_regions);
  int r = 1;
  for (int d = 1; d * d <= num_regions; ++d) {
    if (num_regions % d == 0) r = d;
  }
  *rows = r;
  *cols = num_regions / r;
}

int GridIndex::RegionOfCell(int cell, int num_regions) const {
  if (num_regions <= 1) return 0;
  int rows = 1;
  int cols = 1;
  RegionShape(num_regions, &rows, &cols);
  int cell_row = cell / cells_per_side_;
  int cell_col = cell % cells_per_side_;
  // Monotone map of [0, cells_per_side) onto [0, rows): blocks are
  // contiguous and as even as integer division allows; with more block rows
  // than cell rows some regions are simply empty, which is harmless.
  int region_row = std::min(rows - 1, cell_row * rows / cells_per_side_);
  int region_col = std::min(cols - 1, cell_col * cols / cells_per_side_);
  return region_row * cols + region_col;
}

int GridIndex::RegionOf(Point p, int num_regions) const {
  return RegionOfCell(CellOf(p), num_regions);
}

void GridIndex::Insert(int64_t id, Point p) {
  auto it = points_.find(id);
  if (it != points_.end()) {
    cells_[CellOf(it->second)].erase(id);
    it->second = p;
  } else {
    points_.emplace(id, p);
  }
  cells_[CellOf(p)].insert(id);
}

Status GridIndex::Remove(int64_t id) {
  auto it = points_.find(id);
  if (it == points_.end()) {
    return Status::NotFound("grid element " + std::to_string(id));
  }
  cells_[CellOf(it->second)].erase(id);
  points_.erase(it);
  return Status::Ok();
}

Status GridIndex::Relocate(int64_t id, Point p) {
  if (points_.find(id) == points_.end()) {
    return Status::NotFound("grid element " + std::to_string(id));
  }
  Insert(id, p);
  return Status::Ok();
}

void GridIndex::Clear() {
  for (auto& cell : cells_) cell.clear();
  points_.clear();
}

Point GridIndex::PointOf(int64_t id) const {
  auto it = points_.find(id);
  if (it == points_.end()) {
    return Point{std::numeric_limits<double>::quiet_NaN(),
                 std::numeric_limits<double>::quiet_NaN()};
  }
  return it->second;
}

std::vector<int64_t> GridIndex::KNearest(
    int64_t k, Point p, const std::function<bool(int64_t)>& accept) const {
  std::vector<std::pair<double, int64_t>> found;
  if (k <= 0 || points_.empty()) return {};
  const int center_row = RowOf(p.y);
  const int center_col = ColOf(p.x);
  const int max_ring = cells_per_side_;  // Worst case scans everything.
  double safe_radius = -1.0;  // Distance below which results are final.
  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once we hold k candidates, we may stop as soon as the closest possible
    // point in the next unexplored ring cannot beat the current k-th best.
    if (static_cast<int64_t>(found.size()) >= k) {
      std::nth_element(
          found.begin(), found.begin() + (k - 1), found.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      double kth = found[k - 1].first;
      safe_radius = (ring - 1) * std::min(cell_width_, cell_height_);
      if (kth <= safe_radius) break;
    }
    bool any_cell = false;
    for (int row = center_row - ring; row <= center_row + ring; ++row) {
      if (row < 0 || row >= cells_per_side_) continue;
      for (int col = center_col - ring; col <= center_col + ring; ++col) {
        if (col < 0 || col >= cells_per_side_) continue;
        // Only the ring boundary (interior was handled by earlier rings).
        if (ring > 0 && std::max(std::abs(row - center_row),
                                 std::abs(col - center_col)) != ring) {
          continue;
        }
        any_cell = true;
        for (int64_t id : cells_[static_cast<size_t>(row) * cells_per_side_ +
                                 col]) {
          if (accept != nullptr && !accept(id)) continue;
          found.emplace_back(EuclideanDistance(points_.at(id), p), id);
        }
      }
    }
    if (!any_cell && ring > 0) break;  // Left the grid on all sides.
  }
  std::sort(found.begin(), found.end());
  if (static_cast<int64_t>(found.size()) > k) found.resize(k);
  std::vector<int64_t> ids;
  ids.reserve(found.size());
  for (const auto& [dist, id] : found) ids.push_back(id);
  return ids;
}

std::vector<int64_t> GridIndex::WithinRadius(Point p, double radius) const {
  std::vector<int64_t> ids;
  if (radius < 0.0) return ids;
  int row_lo = RowOf(p.y - radius);
  int row_hi = RowOf(p.y + radius);
  int col_lo = ColOf(p.x - radius);
  int col_hi = ColOf(p.x + radius);
  for (int row = row_lo; row <= row_hi; ++row) {
    for (int col = col_lo; col <= col_hi; ++col) {
      for (int64_t id :
           cells_[static_cast<size_t>(row) * cells_per_side_ + col]) {
        if (EuclideanDistance(points_.at(id), p) <= radius) {
          ids.push_back(id);
        }
      }
    }
  }
  return ids;
}

std::vector<int64_t> GridIndex::AllIds() const {
  std::vector<int64_t> ids;
  ids.reserve(points_.size());
  for (const auto& [id, point] : points_) ids.push_back(id);
  return ids;
}

std::vector<int> GridIndex::CellCounts() const {
  std::vector<int> counts(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    counts[i] = static_cast<int>(cells_[i].size());
  }
  return counts;
}

}  // namespace watter
