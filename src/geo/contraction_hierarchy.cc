#include "src/geo/contraction_hierarchy.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

namespace watter {
namespace {

/// Mutable adjacency used during preprocessing (shrinks as nodes contract,
/// grows with shortcuts).
struct DynamicArc {
  NodeId to;
  double weight;
};

/// Bounded local Dijkstra used for witness searches. Versioned arrays let us
/// run hundreds of thousands of tiny searches without clearing.
class WitnessSearch {
 public:
  WitnessSearch(int n, const std::vector<std::vector<DynamicArc>>* out,
                const std::vector<bool>* contracted)
      : out_(out),
        contracted_(contracted),
        dist_(n, kInfCost),
        hops_(n, 0),
        version_(n, 0) {}

  /// Runs Dijkstra from `source`, ignoring `excluded` and contracted nodes,
  /// stopping once the frontier exceeds `bound` or limits are hit.
  void Run(NodeId source, NodeId excluded, double bound, int settle_limit,
           int hop_limit) {
    ++version_counter_;
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
    dist_[source] = 0.0;
    hops_[source] = 0;
    version_[source] = version_counter_;
    queue.push({0.0, source});
    int settled = 0;
    while (!queue.empty()) {
      auto [d, v] = queue.top();
      queue.pop();
      if (version_[v] != version_counter_ || d > dist_[v]) continue;
      if (d > bound) break;
      if (++settled > settle_limit) break;
      if (hops_[v] >= hop_limit) continue;
      for (const DynamicArc& arc : (*out_)[v]) {
        if (arc.to == excluded || (*contracted_)[arc.to]) continue;
        double candidate = d + arc.weight;
        if (candidate > bound) continue;
        if (version_[arc.to] != version_counter_ ||
            candidate < dist_[arc.to]) {
          dist_[arc.to] = candidate;
          hops_[arc.to] = hops_[v] + 1;
          version_[arc.to] = version_counter_;
          queue.push({candidate, arc.to});
        }
      }
    }
  }

  double DistanceTo(NodeId v) const {
    return version_[v] == version_counter_ ? dist_[v] : kInfCost;
  }

 private:
  const std::vector<std::vector<DynamicArc>>* out_;
  const std::vector<bool>* contracted_;
  std::vector<double> dist_;
  std::vector<int> hops_;
  std::vector<uint32_t> version_;
  uint32_t version_counter_ = 0;
};

/// Inserts arc from->to with `weight`, keeping only the minimum over
/// parallel arcs. Returns true if the adjacency changed.
bool UpsertArc(std::vector<DynamicArc>* arcs, NodeId to, double weight) {
  for (DynamicArc& arc : *arcs) {
    if (arc.to == to) {
      if (weight < arc.weight) {
        arc.weight = weight;
        return true;
      }
      return false;
    }
  }
  arcs->push_back({to, weight});
  return true;
}

struct Shortcut {
  NodeId from;
  NodeId to;
  double weight;
};

}  // namespace

Result<ContractionHierarchy> ContractionHierarchy::Build(
    const Graph& graph, const ChOptions& options) {
  if (!graph.finalized()) {
    return Status::FailedPrecondition("graph must be finalized before CH");
  }
  const int n = graph.num_nodes();

  // Dynamic adjacency seeded from the graph, parallel arcs deduplicated.
  std::vector<std::vector<DynamicArc>> out(n), in(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& arc : graph.OutArcs(v)) {
      if (arc.to == v) continue;  // Self loops never help shortest paths.
      UpsertArc(&out[v], arc.to, arc.weight);
      UpsertArc(&in[arc.to], v, arc.weight);
    }
  }

  std::vector<bool> contracted(n, false);
  std::vector<int> contracted_neighbors(n, 0);
  std::vector<int> rank(n, 0);
  WitnessSearch witness(n, &out, &contracted);

  // Computes the shortcuts required to contract v right now.
  auto simulate = [&](NodeId v, std::vector<Shortcut>* shortcuts) {
    if (shortcuts != nullptr) shortcuts->clear();
    int needed = 0;
    for (const DynamicArc& incoming : in[v]) {
      NodeId u = incoming.to;
      if (contracted[u] || u == v) continue;
      double bound = 0.0;
      for (const DynamicArc& outgoing : out[v]) {
        if (contracted[outgoing.to] || outgoing.to == u ||
            outgoing.to == v) {
          continue;
        }
        bound = std::max(bound, incoming.weight + outgoing.weight);
      }
      if (bound == 0.0) continue;
      witness.Run(u, v, bound, options.witness_settle_limit,
                  options.witness_hop_limit);
      for (const DynamicArc& outgoing : out[v]) {
        NodeId w = outgoing.to;
        if (contracted[w] || w == u || w == v) continue;
        double through = incoming.weight + outgoing.weight;
        if (witness.DistanceTo(w) <= through) continue;  // Witness found.
        ++needed;
        if (shortcuts != nullptr) shortcuts->push_back({u, w, through});
      }
    }
    return needed;
  };

  auto priority_of = [&](NodeId v) {
    int degree = 0;
    for (const DynamicArc& arc : in[v]) degree += contracted[arc.to] ? 0 : 1;
    for (const DynamicArc& arc : out[v]) degree += contracted[arc.to] ? 0 : 1;
    int shortcuts = simulate(v, nullptr);
    // Classic linear combination: edge difference + deleted neighbors.
    return 4 * (shortcuts - degree) + 2 * contracted_neighbors[v];
  };

  using QueueEntry = std::pair<int, NodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      order_queue;
  for (NodeId v = 0; v < n; ++v) order_queue.push({priority_of(v), v});

  std::vector<Shortcut> all_shortcuts;
  std::vector<Shortcut> pending;
  int next_rank = 0;
  while (!order_queue.empty()) {
    auto [prio, v] = order_queue.top();
    order_queue.pop();
    if (contracted[v]) continue;
    // Lazy update: re-evaluate and requeue if the node is no longer minimal.
    int fresh_prio = priority_of(v);
    if (!order_queue.empty() && fresh_prio > order_queue.top().first) {
      order_queue.push({fresh_prio, v});
      continue;
    }
    simulate(v, &pending);
    for (const Shortcut& sc : pending) {
      UpsertArc(&out[sc.from], sc.to, sc.weight);
      UpsertArc(&in[sc.to], sc.from, sc.weight);
      all_shortcuts.push_back(sc);
    }
    contracted[v] = true;
    rank[v] = next_rank++;
    for (const DynamicArc& arc : out[v]) {
      if (!contracted[arc.to]) ++contracted_neighbors[arc.to];
    }
    for (const DynamicArc& arc : in[v]) {
      if (!contracted[arc.to]) ++contracted_neighbors[arc.to];
    }
  }

  // Assemble the upward/downward search graphs from original arcs plus
  // shortcuts. Parallel arcs are reduced to their minimum weight via the
  // staging maps below.
  ContractionHierarchy ch;
  ch.num_nodes_ = n;
  ch.num_shortcuts_ = static_cast<int>(all_shortcuts.size());

  std::vector<std::vector<DynamicArc>> up(n), down(n);
  auto add_search_arc = [&](NodeId from, NodeId to, double weight) {
    if (from == to) return;
    if (rank[to] > rank[from]) {
      UpsertArc(&up[from], to, weight);
    } else {
      // Stored reversed at the head for the backward search.
      UpsertArc(&down[to], from, weight);
    }
  };
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& arc : graph.OutArcs(v)) add_search_arc(v, arc.to, arc.weight);
  }
  for (const Shortcut& sc : all_shortcuts) {
    add_search_arc(sc.from, sc.to, sc.weight);
  }

  auto flatten = [](const std::vector<std::vector<DynamicArc>>& lists,
                    std::vector<int32_t>* offsets, std::vector<Arc>* arcs) {
    offsets->assign(lists.size() + 1, 0);
    size_t total = 0;
    for (size_t v = 0; v < lists.size(); ++v) {
      total += lists[v].size();
      (*offsets)[v + 1] = static_cast<int32_t>(total);
    }
    arcs->reserve(total);
    for (const auto& list : lists) {
      for (const DynamicArc& arc : list) arcs->push_back({arc.to, arc.weight});
    }
  };
  flatten(up, &ch.up_offsets_, &ch.up_arcs_);
  flatten(down, &ch.down_offsets_, &ch.down_arcs_);

  ch.dist_f_.assign(n, kInfCost);
  ch.dist_b_.assign(n, kInfCost);
  ch.version_f_.assign(n, 0);
  ch.version_b_.assign(n, 0);
  return ch;
}

double ContractionHierarchy::Query(NodeId source, NodeId target) const {
  if (source < 0 || source >= num_nodes_ || target < 0 ||
      target >= num_nodes_) {
    return kInfCost;
  }
  if (source == target) return 0.0;
  ++query_version_;
  using Entry = std::pair<double, NodeId>;
  using Queue =
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;
  Queue forward, backward;
  dist_f_[source] = 0.0;
  version_f_[source] = query_version_;
  forward.push({0.0, source});
  dist_b_[target] = 0.0;
  version_b_[target] = query_version_;
  backward.push({0.0, target});

  double best = kInfCost;
  while (!forward.empty() || !backward.empty()) {
    double front_f = forward.empty() ? kInfCost : forward.top().first;
    double front_b = backward.empty() ? kInfCost : backward.top().first;
    if (std::min(front_f, front_b) >= best) break;
    if (front_f <= front_b) {
      auto [d, v] = forward.top();
      forward.pop();
      if (version_f_[v] != query_version_ || d > dist_f_[v]) continue;
      if (version_b_[v] == query_version_ && d + dist_b_[v] < best) {
        best = d + dist_b_[v];
      }
      for (const Arc& arc : UpArcs(v)) {
        double candidate = d + arc.weight;
        if (version_f_[arc.to] != query_version_ ||
            candidate < dist_f_[arc.to]) {
          dist_f_[arc.to] = candidate;
          version_f_[arc.to] = query_version_;
          forward.push({candidate, arc.to});
        }
      }
    } else {
      auto [d, v] = backward.top();
      backward.pop();
      if (version_b_[v] != query_version_ || d > dist_b_[v]) continue;
      if (version_f_[v] == query_version_ && d + dist_f_[v] < best) {
        best = d + dist_f_[v];
      }
      for (const Arc& arc : DownArcs(v)) {
        double candidate = d + arc.weight;
        if (version_b_[arc.to] != query_version_ ||
            candidate < dist_b_[arc.to]) {
          dist_b_[arc.to] = candidate;
          version_b_[arc.to] = query_version_;
          backward.push({candidate, arc.to});
        }
      }
    }
  }
  return best;
}

}  // namespace watter
