// CommitPipeline: the deferred-bookkeeping stage of the sharded dispatch
// pipeline (docs/DISPATCH.md, "Pipelining the commit").
//
// The sharded batched engine splits a round's commit into two halves. The
// *state* half (fleet claims, pool removals, index updates) must finish
// before the next round's propose phase freezes its snapshots, so it stays
// synchronous. The *bookkeeping* half (metrics accumulation, observer
// callbacks) reads nothing the next round writes — every job captures
// copies of what it records — so it is enqueued here and drained by one
// background consumer while round k+1 already proposes.
//
// Determinism contract: a single consumer thread executes jobs in exactly
// the enqueue order, which the platform makes the same order the legacy
// synchronous path used. Floating-point accumulation order — the only way
// bookkeeping could diverge — is therefore bitwise identical to running the
// jobs inline, for any thread or shard count. Drain() is the barrier the
// platform calls before anything reads the metrics (threshold prologue,
// GMM refits, the final report).
//
// Backpressure (docs/ROBUSTNESS.md): an optional queue bound makes Enqueue
// block while the consumer is `max_depth` jobs behind, so a stalled
// consumer slows the producer instead of growing the queue without limit.
// InjectStall enqueues a metric-neutral consumer sleep (fault injection's
// stall events), and DrainFor is the timeout-bounded drain the watchdog
// paths use — it reports DeadlineExceeded instead of blocking forever.
#ifndef WATTER_SIM_COMMIT_PIPELINE_H_
#define WATTER_SIM_COMMIT_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/status.h"

namespace watter {

/// Single-consumer FIFO executor for deferred commit bookkeeping.
class CommitPipeline {
 public:
  /// `max_depth` bounds the queue (0 = unbounded): Enqueue blocks until a
  /// slot frees up when the bound is reached.
  explicit CommitPipeline(int max_depth = 0);
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Appends a job; the consumer runs jobs strictly in enqueue order.
  /// Jobs must own (by copy or shared snapshot) everything they touch.
  /// Blocks while the queue is at max_depth (bounded pipelines only).
  void Enqueue(std::function<void()> job);

  /// Blocks until every job enqueued so far has finished executing.
  void Drain();

  /// Drain with a timeout: DeadlineExceeded if jobs are still outstanding
  /// after `timeout_seconds` (the queue keeps draining in the background —
  /// the timeout abandons the wait, not the work).
  Status DrainFor(double timeout_seconds);

  /// Enqueues a consumer sleep of `seconds` (fault injection's pipeline
  /// stall). Purely wall-clock: no metrics or state are touched, so stalls
  /// are run-neutral on everything the determinism contract covers.
  void InjectStall(double seconds);

  /// Jobs waiting (plus the one running, if any) right now. Diagnostic: the
  /// timeline sampler reads it between rounds to chart consumer backlog.
  int depth() const;

  /// Stall events executed so far (diagnostic).
  int64_t stalls_executed() const;

  /// The configured queue bound (0 = unbounded).
  int max_depth() const { return max_depth_; }

 private:
  void ConsumerLoop();

  const int max_depth_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signals new jobs (or shutdown).
  std::condition_variable drain_cv_;  // Signals the queue ran dry.
  std::condition_variable space_cv_;  // Signals a bounded queue freed a slot.
  std::deque<std::function<void()>> queue_;
  bool running_ = false;  // Consumer is inside a job (not yet drained).
  bool stop_ = false;
  int64_t stalls_executed_ = 0;
  std::thread consumer_;
};

}  // namespace watter

#endif  // WATTER_SIM_COMMIT_PIPELINE_H_
