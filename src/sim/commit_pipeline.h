// CommitPipeline: the deferred-bookkeeping stage of the sharded dispatch
// pipeline (docs/DISPATCH.md, "Pipelining the commit").
//
// The sharded batched engine splits a round's commit into two halves. The
// *state* half (fleet claims, pool removals, index updates) must finish
// before the next round's propose phase freezes its snapshots, so it stays
// synchronous. The *bookkeeping* half (metrics accumulation, observer
// callbacks) reads nothing the next round writes — every job captures
// copies of what it records — so it is enqueued here and drained by one
// background consumer while round k+1 already proposes.
//
// Determinism contract: a single consumer thread executes jobs in exactly
// the enqueue order, which the platform makes the same order the legacy
// synchronous path used. Floating-point accumulation order — the only way
// bookkeeping could diverge — is therefore bitwise identical to running the
// jobs inline, for any thread or shard count. Drain() is the barrier the
// platform calls before anything reads the metrics (threshold prologue,
// GMM refits, the final report).
#ifndef WATTER_SIM_COMMIT_PIPELINE_H_
#define WATTER_SIM_COMMIT_PIPELINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace watter {

/// Single-consumer FIFO executor for deferred commit bookkeeping.
class CommitPipeline {
 public:
  CommitPipeline();
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  /// Appends a job; the consumer runs jobs strictly in enqueue order.
  /// Jobs must own (by copy or shared snapshot) everything they touch.
  void Enqueue(std::function<void()> job);

  /// Blocks until every job enqueued so far has finished executing.
  void Drain();

  /// Jobs waiting (plus the one running, if any) right now. Diagnostic: the
  /// timeline sampler reads it between rounds to chart consumer backlog.
  int depth() const;

 private:
  void ConsumerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signals new jobs (or shutdown).
  std::condition_variable drain_cv_;  // Signals the queue ran dry.
  std::deque<std::function<void()>> queue_;
  bool running_ = false;  // Consumer is inside a job (not yet drained).
  bool stop_ = false;
  std::thread consumer_;
};

}  // namespace watter

#endif  // WATTER_SIM_COMMIT_PIPELINE_H_
