#include "src/sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/rng.h"

namespace watter {

namespace {

// Parses a strictly numeric field; the full token must be consumed.
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && std::isfinite(*out);
}

bool ParseCount(const std::string& text, int* out) {
  double value = 0.0;
  if (!ParseDouble(text, &value)) return false;
  if (value < 0.0 || value != std::floor(value) || value > 1e9) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseSeed(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 0);
  return end == text.c_str() + text.size();
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t sep = spec.find_first_of(";,", pos);
    if (sep == std::string::npos) sep = spec.size();
    std::string clause = spec.substr(pos, sep - pos);
    pos = sep + 1;
    // Trim surrounding whitespace.
    size_t b = clause.find_first_not_of(" \t");
    size_t e = clause.find_last_not_of(" \t");
    if (b == std::string::npos) continue;  // Empty clause: tolerated.
    clause = clause.substr(b, e - b + 1);
    size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault clause '" + clause +
                                     "' is not key=value");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      ok = ParseSeed(value, &out.seed);
    } else if (key == "dropouts") {
      ok = ParseCount(value, &out.dropouts);
    } else if (key == "late_dropouts") {
      ok = ParseCount(value, &out.late_dropouts);
    } else if (key == "downtime") {
      ok = ParseDouble(value, &out.downtime) && out.downtime >= 0.0;
    } else if (key == "grace") {
      ok = ParseDouble(value, &out.grace) && out.grace >= 0.0;
    } else if (key == "brownouts") {
      ok = ParseCount(value, &out.brownouts);
    } else if (key == "brownout_len") {
      ok = ParseDouble(value, &out.brownout_len) && out.brownout_len > 0.0;
    } else if (key == "brownout_factor") {
      ok = ParseDouble(value, &out.brownout_factor) &&
           out.brownout_factor > 0.0;
    } else if (key == "stalls") {
      ok = ParseCount(value, &out.stalls);
    } else if (key == "stall_ms") {
      ok = ParseDouble(value, &out.stall_ms) && out.stall_ms >= 0.0;
    } else if (key == "qcap") {
      ok = ParseCount(value, &out.qcap);
    } else {
      return Status::InvalidArgument("unknown fault key '" + key + "'");
    }
    if (!ok) {
      return Status::InvalidArgument("bad value for fault key '" + key +
                                     "': '" + value + "'");
    }
  }
  return out;
}

std::string FaultSpecToString(const FaultSpec& spec) {
  const FaultSpec defaults;
  std::string out;
  auto add = [&out](const std::string& clause) {
    if (!out.empty()) out += ';';
    out += clause;
  };
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };
  if (spec.seed != defaults.seed) add("seed=" + std::to_string(spec.seed));
  if (spec.dropouts) add("dropouts=" + std::to_string(spec.dropouts));
  if (spec.late_dropouts) {
    add("late_dropouts=" + std::to_string(spec.late_dropouts));
  }
  if (spec.downtime != defaults.downtime) add("downtime=" + num(spec.downtime));
  if (spec.grace != defaults.grace) add("grace=" + num(spec.grace));
  if (spec.brownouts) add("brownouts=" + std::to_string(spec.brownouts));
  if (spec.brownout_len != defaults.brownout_len) {
    add("brownout_len=" + num(spec.brownout_len));
  }
  if (spec.brownout_factor != defaults.brownout_factor) {
    add("brownout_factor=" + num(spec.brownout_factor));
  }
  if (spec.stalls) add("stalls=" + std::to_string(spec.stalls));
  if (spec.stall_ms != defaults.stall_ms) add("stall_ms=" + num(spec.stall_ms));
  if (spec.qcap) add("qcap=" + std::to_string(spec.qcap));
  return out;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropout:
      return "dropout";
    case FaultKind::kReturn:
      return "return";
    case FaultKind::kBrownoutStart:
      return "brownout_start";
    case FaultKind::kBrownoutEnd:
      return "brownout_end";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kLateDropout:
      return "late_dropout";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultSpec& spec, int num_workers,
                             double horizon, double start)
    : spec_(spec) {
  Rng rng(spec.seed);
  // Fork order is part of the schedule contract: adding a fault type later
  // must append a fork, never reorder these.
  Rng drop_rng = rng.Fork();
  Rng brown_rng = rng.Fork();
  Rng stall_rng = rng.Fork();
  Rng late_rng = rng.Fork();

  if (num_workers > 0) {
    for (int i = 0; i < spec.dropouts; ++i) {
      FaultEvent down;
      down.time = start + drop_rng.Uniform(0.0, horizon);
      down.kind = FaultKind::kDropout;
      down.worker =
          static_cast<WorkerId>(drop_rng.UniformInt(1, num_workers));
      events_.push_back(down);
      FaultEvent up = down;
      up.time = down.time + drop_rng.Uniform(0.5, 1.5) * spec.downtime;
      up.kind = FaultKind::kReturn;
      events_.push_back(up);
    }
  }
  for (int i = 0; i < spec.brownouts; ++i) {
    FaultEvent open;
    open.time = start + brown_rng.Uniform(0.0, horizon);
    open.kind = FaultKind::kBrownoutStart;
    events_.push_back(open);
    FaultEvent close = open;
    close.time = open.time + spec.brownout_len;
    close.kind = FaultKind::kBrownoutEnd;
    events_.push_back(close);
  }
  for (int i = 0; i < spec.stalls; ++i) {
    FaultEvent stall;
    stall.time = start + stall_rng.Uniform(0.0, horizon);
    stall.kind = FaultKind::kStall;
    events_.push_back(stall);
  }
  if (num_workers > 0) {
    for (int i = 0; i < spec.late_dropouts; ++i) {
      FaultEvent drop;
      drop.time = start + late_rng.Uniform(0.0, horizon);
      drop.kind = FaultKind::kLateDropout;
      drop.worker =
          static_cast<WorkerId>(late_rng.UniformInt(1, num_workers));
      late_events_.push_back(drop);
    }
  }
  // stable_sort keeps generation order among same-time events, so the
  // schedule is a pure function of the spec.
  auto by_time = [](const FaultEvent& a, const FaultEvent& b) {
    return a.time < b.time;
  };
  std::stable_sort(events_.begin(), events_.end(), by_time);
  std::stable_sort(late_events_.begin(), late_events_.end(), by_time);
}

std::vector<FaultEvent> FaultInjector::TakeDue(Time now) {
  std::vector<FaultEvent> due;
  while (next_ < events_.size() && events_[next_].time <= now) {
    due.push_back(events_[next_++]);
  }
  return due;
}

std::vector<FaultEvent> FaultInjector::TakeLateDue(Time now) {
  std::vector<FaultEvent> due;
  while (next_late_ < late_events_.size() && late_events_[next_late_].time <= now) {
    due.push_back(late_events_[next_late_++]);
  }
  return due;
}

void DegradedOracle::ScaleInPlace(std::span<double> out) const {
  if (factor_ == 1.0) return;
  for (double& v : out) {
    if (v != kInfCost) v *= factor_;
  }
}

double DegradedOracle::Cost(NodeId from, NodeId to) {
  double v = inner_->Cost(from, to);
  if (factor_ != 1.0 && v != kInfCost) v *= factor_;
  return v;
}

void DegradedOracle::ManyToOne(std::span<const NodeId> sources, NodeId target,
                               std::span<double> out) {
  inner_->ManyToOne(sources, target, out);
  ScaleInPlace(out);
}

void DegradedOracle::OneToMany(NodeId source, std::span<const NodeId> targets,
                               std::span<double> out) {
  inner_->OneToMany(source, targets, out);
  ScaleInPlace(out);
}

void DegradedOracle::ManyToMany(std::span<const NodeId> sources,
                                std::span<const NodeId> targets,
                                std::span<double> out) {
  inner_->ManyToMany(sources, targets, out);
  ScaleInPlace(out);
}

}  // namespace watter
