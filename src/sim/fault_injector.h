// Deterministic fault injection for the simulation platform.
//
// A FaultSpec (parsed from the `--faults key=value;...` grammar, see
// docs/ROBUSTNESS.md) describes a population of fault events: worker
// dropouts and returns, oracle brownout windows, and commit-pipeline
// stalls. FaultInjector expands the spec into a concrete event schedule
// up front, as a pure function of (spec, fleet size, arrival window)
// driven by the spec's own seeded RNG stream — never the platform's — so
// the same
// spec yields the same schedule on every engine, thread count, and shard
// count. The platform consumes events serially at round boundaries
// (TakeDue) and between conflict resolution and commit (TakeLateDue),
// which keeps faulted runs bitwise deterministic.
#ifndef WATTER_SIM_FAULT_INJECTOR_H_
#define WATTER_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// Parsed `--faults` specification. All fields have inert defaults: a
/// default-constructed (or empty-string-parsed) spec schedules nothing and
/// the platform runs byte-for-byte as if fault injection did not exist.
struct FaultSpec {
  /// Seed for the injector's private RNG stream (never the platform's).
  uint64_t seed = 0xFA1157ULL;

  /// Worker dropout events applied at round boundaries. Each takes one
  /// worker offline (idle or mid-route) and schedules a matching return.
  int dropouts = 0;

  /// Dropouts applied *between* conflict resolution and commit — the
  /// narrow window where a resolved winner can lose its worker. These
  /// exercise the recoverable claim-failure paths.
  int late_dropouts = 0;

  /// Mean offline duration in seconds; actual durations draw uniformly
  /// from [0.5, 1.5) x downtime.
  double downtime = 900.0;

  /// Deadline extension (seconds) granted to aboard-but-unserved riders
  /// re-pooled after their worker drops out.
  double grace = 600.0;

  /// Oracle brownout windows: while one is open every travel-time answer
  /// is scaled by brownout_factor (degraded, but still deterministic).
  int brownouts = 0;

  /// Brownout window length in seconds.
  double brownout_len = 120.0;

  /// Cost multiplier while a brownout window is open. Must be > 0;
  /// 1.0 makes brownouts observable-only.
  double brownout_factor = 1.5;

  /// Commit-pipeline stall events: each injects a consumer-side sleep,
  /// exercising backpressure on the bounded queue. Wall-clock only —
  /// stalls never touch metrics.
  int stalls = 0;

  /// Consumer sleep per stall event, in milliseconds.
  double stall_ms = 50.0;

  /// Bound on the commit pipeline's queue depth (0 = unbounded).
  /// Producers block when the queue is full.
  int qcap = 0;

  /// True when any event is scheduled (brownouts/stalls included).
  bool any() const {
    return dropouts > 0 || late_dropouts > 0 || brownouts > 0 || stalls > 0 ||
           qcap > 0;
  }

  /// True when any worker dropout (regular or late) is scheduled.
  bool has_dropouts() const { return dropouts > 0 || late_dropouts > 0; }
};

/// Parses the `key=value[;key=value...]` fault grammar (`,` also accepted
/// as a separator; empty string yields the inert default spec). Unknown
/// keys, malformed numbers, and out-of-domain values are InvalidArgument.
Result<FaultSpec> ParseFaultSpec(const std::string& spec);

/// Renders a spec back to canonical `key=value;...` form (only non-default
/// fields; empty string for an inert spec). Round-trips through
/// ParseFaultSpec.
std::string FaultSpecToString(const FaultSpec& spec);

enum class FaultKind {
  kDropout,        // Worker goes offline at a round boundary.
  kReturn,         // Offline worker comes back online.
  kBrownoutStart,  // Oracle degradation window opens.
  kBrownoutEnd,    // Oracle degradation window closes.
  kStall,          // Commit-pipeline consumer sleeps.
  kLateDropout,    // Worker goes offline between resolve and commit.
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  Time time = 0.0;
  FaultKind kind = FaultKind::kDropout;
  WorkerId worker = 0;  // Dropout/return events only; 0 otherwise.
};

/// Expands a FaultSpec into a concrete, time-sorted event schedule and
/// hands events to the platform as simulation time passes. The schedule
/// is computed entirely in the constructor from the spec's private RNG
/// stream, so it is identical across engines, thread counts, and shard
/// counts by construction.
class FaultInjector {
 public:
  /// `num_workers` bounds the worker ids drawn for dropouts; event times
  /// are drawn uniformly from [start, start + horizon) — the simulated
  /// time window, which need not begin at zero (workloads sample release
  /// times as time-of-day). All three must be derived from workload
  /// options only, never from run-dependent state.
  FaultInjector(const FaultSpec& spec, int num_workers, double horizon,
                double start = 0.0);

  /// Returns (once each) every round-boundary event with time <= now, in
  /// (time, generation) order. Call serially.
  std::vector<FaultEvent> TakeDue(Time now);

  /// Returns (once each) every late-dropout event with time <= now. Call
  /// serially, after conflict resolution and before commit.
  std::vector<FaultEvent> TakeLateDue(Time now);

  const FaultSpec& spec() const { return spec_; }
  size_t total_events() const { return events_.size() + late_events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  const std::vector<FaultEvent>& late_events() const { return late_events_; }

 private:
  FaultSpec spec_;
  std::vector<FaultEvent> events_;       // Round-boundary events, sorted.
  std::vector<FaultEvent> late_events_;  // Resolve/commit-window events.
  size_t next_ = 0;
  size_t next_late_ = 0;
};

/// Delegating oracle that scales every finite travel-time answer by a
/// factor while a brownout window is open. With factor 1.0 every call
/// forwards untouched, so an idle wrapper is bitwise transparent.
///
/// SetFactor is only called from the platform's serial fault phase (no
/// parallel work in flight), so the factor needs no synchronization with
/// the parallel propose/refresh loops that read costs.
class DegradedOracle : public TravelTimeOracle {
 public:
  explicit DegradedOracle(TravelTimeOracle* inner) : inner_(inner) {}

  void SetFactor(double factor) { factor_ = factor; }
  double factor() const { return factor_; }

  double Cost(NodeId from, NodeId to) override;
  void ManyToOne(std::span<const NodeId> sources, NodeId target,
                 std::span<double> out) override;
  void OneToMany(NodeId source, std::span<const NodeId> targets,
                 std::span<double> out) override;
  void ManyToMany(std::span<const NodeId> sources,
                  std::span<const NodeId> targets,
                  std::span<double> out) override;
  bool NativeBatch() const override { return inner_->NativeBatch(); }
  double bucket_build_seconds() const override {
    return inner_->bucket_build_seconds();
  }

 private:
  void ScaleInPlace(std::span<double> out) const;

  TravelTimeOracle* inner_;  // Borrowed; counts queries itself.
  double factor_ = 1.0;
};

}  // namespace watter

#endif  // WATTER_SIM_FAULT_INJECTOR_H_
