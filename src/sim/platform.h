// WatterPlatform: the end-to-end simulation of Algorithm 1.
//
// Consumes a Scenario's time-ordered order stream, maintains the order pool
// (temporal shareability graph + best-group map), runs asynchronous periodic
// checks, applies the threshold-based grouping strategy (Algorithm 2) with a
// pluggable ThresholdProvider, assigns dispatched groups to the closest
// available worker, and accumulates the paper's four metrics.
//
// Dispatch/hold semantics implemented here (see DESIGN.md):
//  - A group is dispatched when Algorithm 2 says so, or when holding it past
//    the next check would let it expire (feasibility-forced dispatch; this
//    is what "as late as possible" means for WATTER-timeout).
//  - A lone order (no shared group) waits until its watching window eta
//    elapses, then is served solo while feasible ("dispatched immediately
//    when there is a suitable group, otherwise rejected").
//  - An order is rejected once no feasible service remains (its latest
//    dispatch time has passed without a worker).
#ifndef WATTER_SIM_PLATFORM_H_
#define WATTER_SIM_PLATFORM_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/metrics.h"
#include "src/geo/grid_index.h"
#include "src/obs/timeline.h"
#include "src/pool/order_pool.h"
#include "src/sim/commit_pipeline.h"
#include "src/sim/fault_injector.h"
#include "src/sim/fleet.h"
#include "src/strategy/decision.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {

/// How a check round turns warm best-group caches into dispatches.
enum class DispatchMode {
  /// The paper-faithful sequential decision loop: orders are visited in
  /// arrival order and every dispatch immediately reshapes what later
  /// orders see (lazy regrouping, worker consumption).
  kSerial,
  /// The batched engine (docs/DISPATCH.md): candidate offers are computed
  /// in parallel against frozen pool/fleet state, then committed in one
  /// serial pass over offers sorted by (cost, anchor, worker) with explicit
  /// conflict resolution — the KIT sorted-offers scheme. Results are
  /// bitwise identical across thread counts, but intentionally differ from
  /// kSerial (different, globally-ranked commit order); the flag exists for
  /// exactly that A/B comparison.
  kBatched,
};

/// Simulation configuration.
struct SimOptions {
  /// Asynchronous periodic check interval (seconds).
  double check_period = 5.0;
  /// Pool configuration (capacity is overridden by the scenario's Kw).
  PoolOptions pool;
  /// Metric weights and penalties.
  MetricsOptions metrics;
  /// Spatial feature grid (paper Section VII-A: 10x10 cells).
  int grid_cells = 10;
  /// Candidates probed for the closest-worker query.
  int worker_candidates = 8;
  /// Serve timed-out lone orders alone when feasible.
  bool solo_fallback = true;
  /// Rider impatience: once an order's watching window has elapsed, it
  /// cancels with this per-second hazard rate (0 disables). The paper folds
  /// cancellations into expirations ("the order may be canceled at any
  /// time, which is also considered as an expiration").
  double cancellation_hazard = 0.0;
  /// Seed for platform-side randomness (currently only cancellations).
  uint64_t sim_seed = 0xC0FFEE;
  /// Threads for the check loop and pool maintenance. 0 = inherit the
  /// scenario's WorkloadOptions::num_threads; otherwise as there (1 =
  /// serial, negative = all hardware threads). Metrics and dispatch
  /// decisions are bitwise identical for any value (see thread_pool.h).
  int num_threads = 0;
  /// Dispatch engine for the decision phase of each check round. Batched is
  /// the default since the paper-scale A/B (docs/PERFORMANCE.md): global
  /// cost-ranked commits serve up to +11pp service rate under fleet
  /// contention and are within noise otherwise. `kSerial` keeps the
  /// paper-faithful sequential loop (CLI `--dispatch=serial`).
  DispatchMode dispatch = DispatchMode::kBatched;
  /// Geographic shards for the batched engine's commit pass (CLI
  /// `--shards`). 0 = inherit the scenario's WorkloadOptions::num_shards;
  /// 1 keeps the unsharded commit path. With N > 1 the feature grid is
  /// partitioned into N rectangular regions (GridIndex::RegionOf), interior
  /// offers resolve per shard in parallel with border components
  /// reconciled serially (docs/DISPATCH.md), and commit bookkeeping is
  /// pipelined against the next round's propose phase. Metrics and served
  /// sets are bitwise identical for any shard count; ignored by kSerial.
  int num_shards = 0;
  /// Chrome trace-event JSON output path. Empty = inherit the scenario's
  /// WorkloadOptions::trace_path (the common case; this override exists for
  /// embedders that run several platforms over one scenario). Tracing obeys
  /// the observability contract (docs/OBSERVABILITY.md): off is a no-op,
  /// on never changes a single metric bit.
  std::string trace_path;
  /// Per-round timeline output path (JSON, or CSV for `.csv` paths). Empty
  /// = inherit WorkloadOptions::timeline_path. Same contract as trace_path.
  std::string timeline_path;
  /// Deterministic fault-injection spec (docs/ROBUSTNESS.md grammar; CLI
  /// `--faults`). Empty = inherit WorkloadOptions::faults. Faults-off runs
  /// are byte-identical to a build without the robustness subsystem; a
  /// fixed spec is bitwise deterministic across threads and shards.
  std::string faults;
  /// Per-round propose work budget, in deterministic work units (candidate
  /// probes + planner plans — never wall-clock). When a round's pooled
  /// orders would exceed it, the least-urgent tail in
  /// latest-dispatch-then-id order is shed to the next round
  /// (docs/ROBUSTNESS.md). 0 = inherit WorkloadOptions::round_work_budget;
  /// negative forces unlimited even when the workload sets a budget.
  int64_t round_work_budget = 0;
  /// Opt-in wall-clock watchdog (CLI `--watchdog-ms`): when a check round
  /// takes longer than this many milliseconds, the effective work budget
  /// is halved (floored at a small minimum); compliant rounds grow it back
  /// ~25% per round toward the configured budget (or unlimited). Inherently
  /// wall-clock driven, so runs with a watchdog are excluded from the
  /// bitwise-determinism contract — it exists for live CLI deployments,
  /// not experiments. 0 disables.
  double watchdog_ms = 0.0;
};

/// One observed per-order decision; the RL trainer consumes these to build
/// MDP transitions offline (Section VI-A).
struct DecisionObservation {
  OrderId order = kInvalidOrder;
  const Order* order_ref = nullptr;
  Time now = 0.0;
  int action = 0;        ///< 1 = dispatch, 0 = wait.
  bool expired = false;  ///< Order left the platform unserved.
  double detour = 0.0;   ///< Realized detour (valid when dispatched).
  /// Cell-count snapshots (valid during the callback only).
  const std::vector<int>* demand_pickup = nullptr;
  const std::vector<int>* demand_dropoff = nullptr;
  const std::vector<int>* supply = nullptr;
};

/// Drives one full simulation run.
class WatterPlatform {
 public:
  /// `scenario` and `provider` must outlive the platform.
  WatterPlatform(Scenario* scenario, ThresholdProvider* provider,
                 SimOptions options);

  /// Runs the simulation to completion and returns the metric report.
  MetricsReport Run();

  /// Installs an observer called on every decision (RL data collection).
  void set_observer(std::function<void(const DecisionObservation&)> observer) {
    observer_ = std::move(observer);
  }

  const MetricsCollector& metrics() const { return metrics_; }
  const OrderPool& pool() const { return pool_; }
  const Fleet& fleet() const { return fleet_; }

  /// Fault/degradation counters accumulated so far (all zero when faults
  /// and the work budget are off). Tests read these between/after runs.
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// The fault injector, or nullptr when the resolved spec is inert.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// The commit pipeline (sharded batched engine only; else nullptr).
  const CommitPipeline* commit_pipeline() const { return pipeline_.get(); }

  /// The per-round timeline, populated only when a timeline path was
  /// resolved (SimOptions or WorkloadOptions); nullptr otherwise. Valid for
  /// the platform's lifetime — tests read it after Run().
  const obs::TimelineSampler* timeline() const { return timeline_.get(); }

 private:
  /// Frozen copies of one round's feature-grid snapshots. Deferred
  /// bookkeeping jobs share one of these per round: their observer
  /// callbacks may run while the platform's live snapshot vectors are
  /// already being rebuilt for the next round.
  struct RoundSnapshot {
    std::vector<int> demand_pickup;
    std::vector<int> demand_dropoff;
    std::vector<int> supply;
  };

  /// One rider group aboard a dispatched worker, kept (only while dropouts
  /// are scheduled) so a mid-route dropout can reverse the not-yet-delivered
  /// members' bookkeeping and re-pool them (docs/ROBUSTNESS.md).
  struct AboardMember {
    Order order;
    double response = 0.0;
    double detour = 0.0;
    Time dropoff_time = 0.0;  ///< When this member's drop-off completes.
  };
  struct ActiveTrip {
    Time dispatch_time = 0.0;
    double travel = 0.0;  ///< Worker travel recorded for this trip.
    int group_size = 1;
    std::vector<AboardMember> members;
  };

  void InsertArrival(const Order& order, Time now);
  void RunCheck(Time now);
  /// The sequential decision/dispatch loop (DispatchMode::kSerial).
  /// `propose_ids` is the budget-eligible subset of `ids` (== `ids` when
  /// the work budget is off); shed orders only get the wait/expiry path.
  void RunDecisionLoopSerial(const std::vector<OrderId>& ids,
                             const std::vector<OrderId>& propose_ids, Time now,
                             const PoolContext& context);
  /// The batched engine (DispatchMode::kBatched): parallel offer propose,
  /// sorted-offers conflict resolution, serial commit, serial post-sweep.
  /// Runs the serial threshold prologue, then hands off to the sharded
  /// variant when `num_shards_ > 1`. Only `propose_ids` bid; the sweep
  /// walks all of `ids`.
  void RunDecisionLoopBatched(const std::vector<OrderId>& ids,
                              const std::vector<OrderId>& propose_ids,
                              Time now, const PoolContext& context);
  /// The region-sharded, pipelined variant of the batched decision phase
  /// (docs/DISPATCH.md): shard-bucketed propose, ResolveOffersSharded with
  /// per-shard parallel scans + serial border reconciliation, arena-staged
  /// two-stage commit, and bookkeeping deferred onto `pipeline_` so it
  /// overlaps the next round's maintenance and propose phases.
  void RunDecisionLoopSharded(
      const std::vector<OrderId>& ids,
      const std::vector<OrderId>& propose_ids, Time now,
      const std::unordered_map<OrderId, double>& thresholds);
  /// Serial prologue shared by both batched variants: thresholds for every
  /// order appearing in some cached best group, queried in ascending id
  /// order (providers are stateful and not thread-safe).
  std::unordered_map<OrderId, double> PrecomputeThresholds(
      const std::vector<OrderId>& ids, Time now, const PoolContext& context);
  /// Pure propose step for one order against frozen pool/fleet state:
  /// returns an offer with a bound worker, or worker == kInvalidWorker when
  /// the order makes no dispatch bid this round. `thresholds` carries the
  /// serially precomputed theta per pooled order.
  DispatchOffer ProposeOffer(
      OrderId id, Time now,
      const std::unordered_map<OrderId, double>& thresholds);
  /// Commits one resolved offer: claims its worker, records metrics, and
  /// removes the members from the pool. FailedPrecondition when the worker
  /// is no longer claimable (a late-dropout fault took it offline between
  /// resolution and commit); the offer is then abandoned and its members
  /// stay pooled for the sweep.
  Status CommitOffer(const DispatchOffer& offer, Time now);
  /// Sharded-commit apply step for one winning offer whose worker was
  /// already staged via TryClaim: enqueues the bookkeeping (metrics +
  /// observer) on `pipeline_`, finalizes the claim, and removes the members
  /// from the pool. Jobs own copies of everything they record.
  void CommitOfferStaged(const DispatchOffer& offer, Time now,
                         const std::shared_ptr<const RoundSnapshot>& snap);
  /// RejectOrder with the bookkeeping half deferred onto `pipeline_`.
  void RejectOrderDeferred(const Order& order, Time now, bool cancelled,
                           const std::shared_ptr<const RoundSnapshot>& snap);
  /// Grid region of `node` under the `num_shards_` partition.
  int ShardOfNode(NodeId node) const;
  /// Attempts to dispatch `members` on `plan`; true on success.
  bool TryDispatch(const std::vector<const Order*>& members,
                   const GroupPlan& plan, Time now);
  /// `cancelled` marks a rider-hazard cancellation (same penalties, broken
  /// out in the metrics as a subset of rejections).
  void RejectOrder(const Order& order, Time now, bool cancelled = false);
  void RemoveFromIndexes(const Order& order);
  /// Applies every fault event due at this round boundary (serial phase):
  /// dropouts/returns, brownout window toggles, pipeline stalls.
  void ApplyFaults(Time now);
  /// Applies due late-dropout events — between conflict resolution and
  /// commit in the batched engines, after the decision loop in the serial
  /// engine.
  void ApplyLateFaults(Time now);
  /// Takes one worker offline and, when it was mid-route, recovers the
  /// interrupted trip (reverse bookkeeping, re-pool or fail the riders).
  void HandleDropout(WorkerId id, Time now, bool late);
  void RecoverTrip(WorkerId id, Time now);
  /// Remembers a dispatched trip for dropout recovery (only while dropouts
  /// are scheduled; otherwise trips are not tracked at all).
  void TrackTrip(WorkerId worker, ActiveTrip trip);
  /// Estimated propose-phase work units for one pooled order (candidate
  /// probes + planner plans), from frozen post-refresh state.
  int64_t EstimateWorkUnits(OrderId id, Time now) const;
  /// Solo-fallback eligibility shared by ProposeOffer, the serial loop and
  /// the work-unit estimator.
  bool SoloEligible(const Order& order, Time now) const;
  /// The budget pre-pass: charges estimated work units in latest-dispatch-
  /// then-id order and returns the eligible prefix (ascending id). Sheds
  /// the rest to the next round, updating the shed/degraded counters. Only
  /// called when budgeting is on.
  std::vector<OrderId> BudgetedIds(const std::vector<OrderId>& ids, Time now);
  /// Wall-clock watchdog (CLI opt-in): halve the effective budget after an
  /// overrun round, recover it gradually on compliant rounds.
  void AdjustWatchdog(double round_ms);
  void Observe(const Order& order, Time now, int action, bool expired,
               double detour);
  /// Closes the current RoundSample: end-of-round state, dispatch/counter
  /// deltas, and the phase durations the decision loops stamped into
  /// `round_sample_`. No-op unless the timeline sampler is active.
  void FinishRoundSample(Time now, double total_seconds);

  Scenario* scenario_;
  ThresholdProvider* provider_;
  SimOptions options_;
  // Resolved shard count (>= 1) for the batched commit pass.
  int num_shards_ = 1;
  // Fault-injection state (docs/ROBUSTNESS.md), declared before the pool:
  // oracle_ is the effective cost source every platform query (pool
  // planning included) goes through — the degraded wrapper whenever
  // brownouts are scheduled, the scenario's oracle otherwise.
  FaultSpec fault_spec_;
  std::unique_ptr<FaultInjector> injector_;          // null = faults off.
  std::unique_ptr<DegradedOracle> degraded_oracle_;  // Brownouts only.
  TravelTimeOracle* oracle_ = nullptr;
  // Declared before the pool and fleet that borrow it, so it outlives them.
  ThreadPool executor_;
  OrderPool pool_;
  Fleet fleet_;
  MetricsCollector metrics_;
  Rng rng_;
  // Deferred-bookkeeping consumer, live only when the sharded batched
  // engine is active (batched && num_shards_ > 1). Declared after the
  // metrics it writes; drained before anything reads them.
  std::unique_ptr<CommitPipeline> pipeline_;
  // Batched-engine work counters, copied into MetricsReport::dispatch.
  DispatchStats dispatch_stats_;
  // Fault/degradation counters, copied into MetricsReport::faults.
  FaultStats fault_stats_;
  // In-flight trips for dropout recovery, keyed by worker; populated only
  // while dropouts are scheduled (track_trips_). Entries are overwritten on
  // re-dispatch and erased on recovery; entries of naturally completed
  // trips linger harmlessly (bounded by fleet size) until overwritten.
  std::unordered_map<WorkerId, ActiveTrip> active_trips_;
  bool track_trips_ = false;
  int brownout_depth_ = 0;  // Open brownout windows right now.
  // Overload-degradation state: budgeting_ arms the budget pre-pass
  // (configured budget and/or watchdog); effective_budget_ is what the
  // current round enforces (0 = unlimited) and differs from work_budget_
  // only while the watchdog has it clamped.
  bool budgeting_ = false;
  int64_t work_budget_ = 0;
  int64_t effective_budget_ = 0;
  int64_t round_units_ = 0;  // Work units charged in the last budget pass.
  // Observability (all inert unless the run resolved a trace/timeline
  // path; see docs/OBSERVABILITY.md). The sampler is allocated up front so
  // `sampling_` is one bool test on the round path; `round_sample_` is the
  // in-progress sample the decision loops stamp phase durations into, and
  // `counter_base_` holds the previous round's cumulative counters so each
  // sample carries per-round deltas.
  std::string trace_path_;
  std::string timeline_path_;
  bool sampling_ = false;
  std::unique_ptr<obs::TimelineSampler> timeline_;
  obs::RoundSample round_sample_;
  obs::RoundSample counter_base_;
  int64_t round_counter_ = 0;
  GridIndex demand_pickup_index_;
  GridIndex demand_dropoff_index_;
  std::function<void(const DecisionObservation&)> observer_;
  // Snapshots rebuilt at each check round.
  std::vector<int> demand_pickup_counts_;
  std::vector<int> demand_dropoff_counts_;
  std::vector<int> supply_counts_;
};

/// Convenience: builds the platform and runs it.
MetricsReport RunWatter(Scenario* scenario, ThresholdProvider* provider,
                        const SimOptions& options = {});

}  // namespace watter

#endif  // WATTER_SIM_PLATFORM_H_
