#include "src/sim/platform.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/obs/histogram_registry.h"
#include "src/obs/trace.h"

namespace watter {
namespace {

PoolOptions MergePoolOptions(PoolOptions base, const Scenario& scenario) {
  base.capacity = scenario.options.max_capacity;
  return base;
}

int ResolveThreads(const SimOptions& options, const Scenario& scenario) {
  int threads =
      options.num_threads != 0 ? options.num_threads
                               : scenario.options.num_threads;
  return threads <= 0 ? ThreadPool::DefaultThreads() : threads;
}

int ResolveShards(const SimOptions& options, const Scenario& scenario) {
  int shards = options.num_shards != 0 ? options.num_shards
                                       : scenario.options.num_shards;
  return std::max(1, shards);
}

// Everything a deferred commit job records about one served member, copied
// out of the pool before the member is removed.
struct ServedMember {
  Order order;
  double response = 0.0;
  double detour = 0.0;
};

// Accumulates the enclosing scope's wall-clock into `*slot` when armed;
// disarmed it reads no clock at all (the timeline contract: sampling off is
// free, sampling on touches only diagnostic state).
class PhaseTimer {
 public:
  PhaseTimer(bool armed, double* slot) : slot_(armed ? slot : nullptr) {
    if (slot_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (slot_ != nullptr) {
      *slot_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

WatterPlatform::WatterPlatform(Scenario* scenario, ThresholdProvider* provider,
                               SimOptions options)
    : scenario_(scenario),
      provider_(provider),
      options_(options),
      num_shards_(ResolveShards(options, *scenario)),
      executor_(ResolveThreads(options, *scenario)),
      pool_(scenario->oracle.get(),
            MergePoolOptions(options.pool, *scenario)),
      fleet_(scenario->workers, &scenario->city->graph, options.grid_cells),
      metrics_(options.metrics),
      rng_(options.sim_seed),
      demand_pickup_index_(scenario->city->graph.MinCorner(),
                           scenario->city->graph.MaxCorner(),
                           options.grid_cells),
      demand_dropoff_index_(scenario->city->graph.MinCorner(),
                            scenario->city->graph.MaxCorner(),
                            options.grid_cells) {
  pool_.set_executor(&executor_);
  // The bookkeeping pipeline exists only for the sharded batched engine;
  // the unsharded path keeps its fully synchronous commit.
  if (options_.dispatch == DispatchMode::kBatched && num_shards_ > 1) {
    pipeline_ = std::make_unique<CommitPipeline>();
  }
  // Observability knobs: SimOptions wins when set, else the scenario's
  // workload options (the CLI/bench path).
  trace_path_ = !options_.trace_path.empty() ? options_.trace_path
                                             : scenario->options.trace_path;
  timeline_path_ = !options_.timeline_path.empty()
                       ? options_.timeline_path
                       : scenario->options.timeline_path;
  if (!timeline_path_.empty()) {
    timeline_ = std::make_unique<obs::TimelineSampler>();
    sampling_ = true;
  }
}

int WatterPlatform::ShardOfNode(NodeId node) const {
  // The idle index carries the feature-grid geometry; all three platform
  // grids share it, so any of them defines the same region partition.
  return fleet_.idle_index().RegionOf(
      scenario_->city->graph.node_point(node), num_shards_);
}

void WatterPlatform::Observe(const Order& order, Time now, int action,
                             bool expired, double detour) {
  if (!observer_) return;
  DecisionObservation obs;
  obs.order = order.id;
  obs.order_ref = &order;
  obs.now = now;
  obs.action = action;
  obs.expired = expired;
  obs.detour = detour;
  obs.demand_pickup = &demand_pickup_counts_;
  obs.demand_dropoff = &demand_dropoff_counts_;
  obs.supply = &supply_counts_;
  observer_(obs);
}

void WatterPlatform::InsertArrival(const Order& order, Time now) {
  if (!pool_.Insert(order, now).ok()) return;
  const Graph& graph = scenario_->city->graph;
  demand_pickup_index_.Insert(order.id, graph.node_point(order.pickup));
  demand_dropoff_index_.Insert(order.id, graph.node_point(order.dropoff));
}

void WatterPlatform::RemoveFromIndexes(const Order& order) {
  // Every pooled order was indexed by InsertArrival, so absence here would
  // mean the pool and the demand indexes have diverged.
  WATTER_CHECK_OK(demand_pickup_index_.Remove(order.id));
  WATTER_CHECK_OK(demand_dropoff_index_.Remove(order.id));
}

void WatterPlatform::RejectOrder(const Order& order, Time now) {
  Observe(order, now, /*action=*/0, /*expired=*/true, 0.0);
  metrics_.RecordRejected(order);
  RemoveFromIndexes(order);
  WATTER_CHECK_OK(pool_.Remove(order.id));
}

bool WatterPlatform::TryDispatch(const std::vector<const Order*>& members,
                                 const GroupPlan& plan, Time now) {
  int riders = 0;
  for (const Order* member : members) riders += member->riders;
  NodeId first_stop = plan.route.stops.front().node;
  WorkerId worker_id =
      fleet_.FindClosestIdle(first_stop, riders, scenario_->oracle.get(),
                             options_.worker_candidates);
  if (worker_id == kInvalidWorker) return false;

  // Claim-validate-commit (the same two-phase protocol the batched commit
  // pass uses): reserve the worker, roll the claim back if the exact
  // pickup leg turns out unreachable.
  WATTER_CHECK(fleet_.TryClaim(worker_id),
               "serial dispatch: closest idle worker not claimable");
  const Worker& worker = fleet_.worker(worker_id);
  double pickup_delay =
      scenario_->oracle->Cost(worker.location, first_stop);
  if (pickup_delay == kInfCost) {
    fleet_.ReleaseClaim(worker_id);
    return false;
  }

  // Record outcomes per member (response = notification wait, Definition 4;
  // detour per Definition 5).
  for (size_t i = 0; i < members.size(); ++i) {
    const Order& member = *members[i];
    double response = now - member.release;
    // Clamp: float rounding in matrix oracles can yield -1e-5 "detours".
    double detour =
        std::max(0.0, plan.completion[i] - member.shortest_cost);
    metrics_.RecordServed(member, response, detour,
                          static_cast<int>(members.size()));
    Observe(member, now, /*action=*/1, /*expired=*/false, detour);
  }
  metrics_.AddWorkerTravel(pickup_delay + plan.total_cost);
  NodeId final_node = plan.route.stops.back().node;
  fleet_.CommitClaim(worker_id, now + pickup_delay + plan.total_cost,
                     final_node);
  for (const Order* member : members) {
    RemoveFromIndexes(*member);
    WATTER_CHECK_OK(pool_.Remove(member->id));
  }
  return true;
}

void WatterPlatform::RunCheck(Time now) {
  WATTER_TRACE_SPAN("round");
  std::chrono::steady_clock::time_point round_start;
  if (sampling_) {
    round_sample_ = obs::RoundSample{};
    round_start = std::chrono::steady_clock::now();
  }

  PoolContext context{&demand_pickup_counts_, &demand_dropoff_counts_,
                      &supply_counts_};
  std::vector<OrderId> ids;
  {
    // Maintenance phase. Edge expiry shards per graph entry inside the
    // pool. The three grid snapshots stay serial on purpose: each is
    // O(cells) of trivial work, far below the pool's wake/join cost.
    WATTER_TRACE_SPAN("round.maintenance");
    PhaseTimer timer(sampling_, &round_sample_.maintenance_s);
    pool_.ExpireEdges(now);
    demand_pickup_counts_ = demand_pickup_index_.CellCounts();
    demand_dropoff_counts_ = demand_dropoff_index_.CellCounts();
    supply_counts_ = fleet_.IdleCellCounts();
    ids = pool_.SortedOrderIds();  // Arrival-ordered.
  }

  {
    // Phase A: recompute every stale best group in parallel against the
    // frozen graph. The decision phase below then runs against a warm
    // cache; in serial mode, groups invalidated by this round's own
    // dispatches are lazily recomputed in-loop, exactly as in the serial
    // algorithm.
    //
    // This phase runs at EVERY thread count, including 1 — do not
    // "optimize" it away in serial mode. A lazy recompute at loop position
    // sees the post-dispatch graph; when the clique visit budget truncates
    // enumeration, that can select a different group than the pre-dispatch
    // phase-A value, and metrics would then depend on the thread count.
    // Keeping the algorithm fixed costs ~7% serial time on dense workloads
    // and is what makes the determinism contract unconditional.
    WATTER_TRACE_SPAN("round.refresh");
    PhaseTimer timer(sampling_, &round_sample_.refresh_s);
    pool_.RefreshBestGroups(ids, now);
  }

  // Phase B: the decision/dispatch phase, in the configured engine.
  if (options_.dispatch == DispatchMode::kBatched) {
    RunDecisionLoopBatched(ids, now, context);
  } else {
    RunDecisionLoopSerial(ids, now, context);
  }

  if (sampling_) {
    FinishRoundSample(now, std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - round_start)
                               .count());
  }
}

void WatterPlatform::RunDecisionLoopSerial(const std::vector<OrderId>& ids,
                                           Time now,
                                           const PoolContext& context) {
  // The sequential decision/dispatch loop. Each dispatch consumes workers
  // and removes partner orders, which changes the problem every later order
  // sees — that chained re-evaluation is this engine's semantics. The whole
  // loop lands in the timeline's commit_s: this engine has no
  // propose/resolve/sweep split to attribute separately.
  WATTER_TRACE_SPAN("round.commit");
  PhaseTimer timer(sampling_, &round_sample_.commit_s);
  for (OrderId id : ids) {
    if (!pool_.Contains(id)) continue;  // Dispatched earlier this round.
    const Order* order = pool_.GetOrder(id);
    const Order order_copy = *order;  // Stable across pool mutation.
    bool dispatched = false;

    const BestGroup* group = pool_.BestFor(id, now);
    if (group != nullptr) {
      std::vector<const Order*> members;
      members.reserve(group->members.size());
      bool resolved = true;
      for (OrderId member : group->members) {
        const Order* m = pool_.GetOrder(member);
        if (m == nullptr) {
          resolved = false;
          break;
        }
        members.push_back(m);
      }
      if (resolved) {
        bool go = DecideGroupDispatch(*group, members, now,
                                      pool_.options().weights, provider_,
                                      context);
        // Feasibility-forced dispatch: holding past the next check would
        // let the group expire.
        if (!go && group->plan.latest_departure < now + options_.check_period) {
          go = true;
        }
        if (go) dispatched = TryDispatch(members, group->plan, now);
      }
    }

    if (!dispatched && pool_.Contains(id)) {
      // Impatience: past the watching window the rider may cancel at any
      // check (hazard model; counted as an expiration like the paper).
      if (options_.cancellation_hazard > 0.0 &&
          now > order_copy.WaitDeadline() &&
          rng_.Bernoulli(1.0 - std::exp(-options_.cancellation_hazard *
                                        options_.check_period))) {
        RejectOrder(order_copy, now);
        continue;
      }
      if (now > order_copy.LatestDispatch()) {
        // No feasible service remains.
        RejectOrder(order_copy, now);
      } else if (options_.solo_fallback && group == nullptr &&
                 (now > order_copy.WaitDeadline() ||
                  now + options_.check_period > order_copy.LatestDispatch())) {
        // Watching window elapsed — or feasibility about to expire —
        // without a shared group: serve alone.
        const Order* fresh = pool_.GetOrder(id);
        auto solo = pool_.planner().PlanBest({fresh}, now,
                                             pool_.options().capacity);
        if (solo.ok()) {
          dispatched = TryDispatch({fresh}, *solo, now);
        }
        if (!dispatched) {
          Observe(order_copy, now, /*action=*/0, /*expired=*/false, 0.0);
        }
      } else {
        Observe(order_copy, now, /*action=*/0, /*expired=*/false, 0.0);
      }
    }
  }
}

DispatchOffer WatterPlatform::ProposeOffer(
    OrderId id, Time now,
    const std::unordered_map<OrderId, double>& thresholds) {
  // Pure against frozen state: reads the pool caches (PeekBest, GetOrder),
  // the idle fleet, and the oracle; mutates nothing. Runs concurrently for
  // distinct ids in the propose phase.
  DispatchOffer offer;
  offer.anchor = id;
  const Order* order = pool_.GetOrder(id);
  if (order == nullptr) return offer;

  const BestGroup* group = pool_.PeekBest(id, now);
  int riders = 0;
  if (group != nullptr) {
    std::vector<const Order*> members;
    std::vector<double> member_thresholds;
    members.reserve(group->members.size());
    member_thresholds.reserve(group->members.size());
    for (OrderId member : group->members) {
      const Order* m = pool_.GetOrder(member);
      auto it = thresholds.find(member);
      if (m == nullptr || it == thresholds.end()) return offer;
      members.push_back(m);
      member_thresholds.push_back(it->second);
      riders += m->riders;
    }
    bool go = DecideGroupDispatchPrecomputed(*group, members,
                                             member_thresholds, now,
                                             pool_.options().weights);
    // Feasibility-forced dispatch: holding past the next check would let
    // the group expire (same rule as the serial engine).
    if (!go && group->plan.latest_departure < now + options_.check_period) {
      go = true;
    }
    if (!go) return offer;
    offer.members = group->members;
    offer.plan = group->plan;  // Copy: survives this round's pool removals.
  } else {
    // Solo fallback as an offer, with the serial engine's eligibility: the
    // watching window elapsed — or feasibility is about to — without a
    // shared group, and a rejection is not yet due.
    if (!options_.solo_fallback) return offer;
    if (now > order->LatestDispatch()) return offer;  // Sweep will reject.
    if (!(now > order->WaitDeadline() ||
          now + options_.check_period > order->LatestDispatch())) {
      return offer;
    }
    auto solo = pool_.planner().PlanBest({order}, now,
                                         pool_.options().capacity);
    if (!solo.ok()) return offer;
    offer.solo = true;
    offer.members = {id};
    offer.plan = std::move(solo).value();
    riders = order->riders;
  }

  // Bind the closest capacity-feasible idle worker; no worker, no bid.
  NodeId first_stop = offer.plan.route.stops.front().node;
  WorkerId worker_id =
      fleet_.FindClosestIdle(first_stop, riders, scenario_->oracle.get(),
                             options_.worker_candidates);
  if (worker_id == kInvalidWorker) return offer;
  double pickup_delay =
      scenario_->oracle->Cost(fleet_.worker(worker_id).location, first_stop);
  if (pickup_delay == kInfCost) return offer;
  offer.worker = worker_id;
  offer.pickup_delay = pickup_delay;
  offer.cost = pickup_delay + offer.plan.total_cost;
  return offer;
}

void WatterPlatform::CommitOffer(const DispatchOffer& offer, Time now) {
  // ResolveOffers guaranteed the worker unclaimed and every member still
  // pooled, and the fleet only changes through committed offers, so the
  // claim must succeed; a failure means resolution and fleet diverged.
  WATTER_CHECK(fleet_.TryClaim(offer.worker),
               "batched commit: offered worker not claimable");
  for (size_t i = 0; i < offer.members.size(); ++i) {
    const Order* member = pool_.GetOrder(offer.members[i]);
    WATTER_CHECK(member != nullptr,
                 "batched commit: dispatched member left the pool");
    double response = now - member->release;
    // Clamp: float rounding in matrix oracles can yield -1e-5 "detours".
    double detour =
        std::max(0.0, offer.plan.completion[i] - member->shortest_cost);
    metrics_.RecordServed(*member, response, detour,
                          static_cast<int>(offer.members.size()));
    Observe(*member, now, /*action=*/1, /*expired=*/false, detour);
  }
  metrics_.AddWorkerTravel(offer.pickup_delay + offer.plan.total_cost);
  fleet_.CommitClaim(offer.worker,
                     now + offer.pickup_delay + offer.plan.total_cost,
                     offer.plan.route.stops.back().node);
  for (OrderId member : offer.members) {
    const Order* m = pool_.GetOrder(member);
    RemoveFromIndexes(*m);
    WATTER_CHECK_OK(pool_.Remove(member));
  }
}

std::unordered_map<OrderId, double> WatterPlatform::PrecomputeThresholds(
    const std::vector<OrderId>& ids, Time now, const PoolContext& context) {
  // Thresholds for every order appearing in some cached best group.
  // Providers are stateful (memo tables, feature scratch), so they are
  // queried once per member here, in ascending id order, and the parallel
  // propose phase reads only the resulting immutable map.
  std::vector<OrderId> member_ids;
  for (OrderId id : ids) {
    const BestGroup* group = pool_.PeekBest(id, now);
    if (group == nullptr) continue;
    member_ids.insert(member_ids.end(), group->members.begin(),
                      group->members.end());
  }
  std::sort(member_ids.begin(), member_ids.end());
  member_ids.erase(std::unique(member_ids.begin(), member_ids.end()),
                   member_ids.end());
  std::unordered_map<OrderId, double> thresholds;
  thresholds.reserve(member_ids.size());
  for (OrderId member : member_ids) {
    const Order* order = pool_.GetOrder(member);
    if (order == nullptr) continue;
    thresholds.emplace(member, provider_->ThresholdFor(*order, now, context));
  }
  return thresholds;
}

void WatterPlatform::RunDecisionLoopBatched(const std::vector<OrderId>& ids,
                                            Time now,
                                            const PoolContext& context) {
  // Serial prologue (shared with the sharded variant). Attributed to the
  // propose phase: thresholds are inputs to the offers.
  std::unordered_map<OrderId, double> thresholds;
  {
    WATTER_TRACE_SPAN("round.thresholds");
    PhaseTimer timer(sampling_, &round_sample_.propose_s);
    thresholds = PrecomputeThresholds(ids, now, context);
  }

  if (num_shards_ > 1) {
    RunDecisionLoopSharded(ids, now, thresholds);
    return;
  }

  // Parallel propose: one offer slot per pooled order, each a pure function
  // of the frozen pool/fleet/threshold state (ordered-map pattern, see
  // thread_pool.h).
  std::vector<DispatchOffer> offers;
  {
    WATTER_TRACE_SPAN("round.propose");
    PhaseTimer timer(sampling_, &round_sample_.propose_s);
    executor_.ParallelMap(ids.size(), 4, &offers, [&](size_t i) {
      return ProposeOffer(ids[i], now, thresholds);
    });
  }

  // Drop the non-bids, then resolve conflicts in the sorted-offers total
  // order and commit the winners serially. The outcome sequence is a pure
  // function of the offer set, hence of the frozen round state — never of
  // the thread count.
  std::vector<OfferOutcome> outcomes;
  {
    WATTER_TRACE_SPAN("round.resolve");
    PhaseTimer timer(sampling_, &round_sample_.resolve_s);
    offers.erase(std::remove_if(offers.begin(), offers.end(),
                                [](const DispatchOffer& offer) {
                                  return offer.worker == kInvalidWorker;
                                }),
                 offers.end());
    outcomes = ResolveOffers(&offers);
  }
  dispatch_stats_.offers += static_cast<int64_t>(offers.size());
  {
    WATTER_TRACE_SPAN("round.commit");
    PhaseTimer timer(sampling_, &round_sample_.commit_s);
    for (size_t i = 0; i < offers.size(); ++i) {
      switch (outcomes[i]) {
        case OfferOutcome::kCommitted:
          ++dispatch_stats_.committed;
          CommitOffer(offers[i], now);
          break;
        case OfferOutcome::kWorkerConflict:
          ++dispatch_stats_.worker_conflicts;
          break;
        case OfferOutcome::kOrderConflict:
          ++dispatch_stats_.order_conflicts;
          break;
      }
    }
  }

  // Serial post-sweep in ascending id order over the orders that did not
  // dispatch: hazard cancellation (the RNG draws happen here, serially, so
  // the sequence is thread-count-invariant), rejection once no feasible
  // service remains, and wait observations for everyone else.
  WATTER_TRACE_SPAN("round.sweep");
  PhaseTimer sweep_timer(sampling_, &round_sample_.sweep_s);
  for (OrderId id : ids) {
    if (!pool_.Contains(id)) continue;  // Dispatched this round.
    const Order order_copy = *pool_.GetOrder(id);
    if (options_.cancellation_hazard > 0.0 &&
        now > order_copy.WaitDeadline() &&
        rng_.Bernoulli(1.0 - std::exp(-options_.cancellation_hazard *
                                      options_.check_period))) {
      RejectOrder(order_copy, now);
      continue;
    }
    if (now > order_copy.LatestDispatch()) {
      RejectOrder(order_copy, now);
    } else {
      Observe(order_copy, now, /*action=*/0, /*expired=*/false, 0.0);
    }
  }
}

void WatterPlatform::CommitOfferStaged(
    const DispatchOffer& offer, Time now,
    const std::shared_ptr<const RoundSnapshot>& snap) {
  // State half, synchronous: finalize the staged claim and remove the
  // members — the next round's frozen snapshots must see both. Member data
  // is copied out first so the bookkeeping half owns everything it records.
  std::vector<ServedMember> served;
  served.reserve(offer.members.size());
  for (size_t i = 0; i < offer.members.size(); ++i) {
    const Order* member = pool_.GetOrder(offer.members[i]);
    WATTER_CHECK(member != nullptr,
                 "sharded commit: dispatched member left the pool");
    double response = now - member->release;
    // Clamp: float rounding in matrix oracles can yield -1e-5 "detours".
    double detour =
        std::max(0.0, offer.plan.completion[i] - member->shortest_cost);
    served.push_back({*member, response, detour});
  }
  double travel = offer.pickup_delay + offer.plan.total_cost;
  int group_size = static_cast<int>(offer.members.size());
  fleet_.CommitClaim(offer.worker, now + travel,
                     offer.plan.route.stops.back().node);
  for (OrderId member : offer.members) {
    RemoveFromIndexes(*pool_.GetOrder(member));
    WATTER_CHECK_OK(pool_.Remove(member));
  }

  // Bookkeeping half, deferred: runs FIFO on the pipeline's consumer, in
  // the same per-member RecordServed-then-Observe sequence CommitOffer
  // uses, so the metric accumulation order — hence every float sum — is
  // bitwise identical to the unsharded path.
  pipeline_->Enqueue([this, served = std::move(served), travel, group_size,
                      now, snap] {
    for (const ServedMember& m : served) {
      metrics_.RecordServed(m.order, m.response, m.detour, group_size);
      if (observer_) {
        DecisionObservation obs;
        obs.order = m.order.id;
        obs.order_ref = &m.order;
        obs.now = now;
        obs.action = 1;
        obs.expired = false;
        obs.detour = m.detour;
        obs.demand_pickup = &snap->demand_pickup;
        obs.demand_dropoff = &snap->demand_dropoff;
        obs.supply = &snap->supply;
        observer_(obs);
      }
    }
    metrics_.AddWorkerTravel(travel);
  });
}

void WatterPlatform::RejectOrderDeferred(
    const Order& order, Time now,
    const std::shared_ptr<const RoundSnapshot>& snap) {
  pipeline_->Enqueue([this, order, now, snap] {
    // Same observe-then-record sequence as RejectOrder.
    if (observer_) {
      DecisionObservation obs;
      obs.order = order.id;
      obs.order_ref = &order;
      obs.now = now;
      obs.action = 0;
      obs.expired = true;
      obs.demand_pickup = &snap->demand_pickup;
      obs.demand_dropoff = &snap->demand_dropoff;
      obs.supply = &snap->supply;
      observer_(obs);
    }
    metrics_.RecordRejected(order);
  });
  RemoveFromIndexes(order);
  WATTER_CHECK_OK(pool_.Remove(order.id));
}

void WatterPlatform::RunDecisionLoopSharded(
    const std::vector<OrderId>& ids, Time now,
    const std::unordered_map<OrderId, double>& thresholds) {
  // Shard-bucketed propose: the same offer per order as the flat propose
  // (ProposeOffer is pure over frozen state), but walked shard by shard so
  // each shard's orders form one contiguous slice of the work list. The
  // commit pass below re-imposes the global sorted-offers order, so the
  // bucketed visit order never shows in the results.
  std::vector<DispatchOffer> offers;
  {
    WATTER_TRACE_SPAN("round.propose");
    PhaseTimer timer(sampling_, &round_sample_.propose_s);
    std::vector<std::vector<OrderId>> buckets = pool_.SortedOrderIdsByRegion(
        num_shards_,
        [this](const Order& order) { return ShardOfNode(order.pickup); });
    std::vector<OrderId> flat_ids;
    flat_ids.reserve(ids.size());
    for (const std::vector<OrderId>& bucket : buckets) {
      flat_ids.insert(flat_ids.end(), bucket.begin(), bucket.end());
    }
    executor_.ParallelMap(flat_ids.size(), 4, &offers, [&](size_t i) {
      return ProposeOffer(flat_ids[i], now, thresholds);
    });
    offers.erase(std::remove_if(offers.begin(), offers.end(),
                                [](const DispatchOffer& offer) {
                                  return offer.worker == kInvalidWorker;
                                }),
                 offers.end());
  }

  // Sharded conflict resolution: home shard = worker's region, member
  // shards = pickup regions. Both callbacks read only frozen round state
  // (the fleet mutates after resolution, the pool only through commits).
  ShardedResolution resolution;
  {
    WATTER_TRACE_SPAN("round.resolve");
    PhaseTimer timer(sampling_, &round_sample_.resolve_s);
    OfferShardMap shard_map;
    shard_map.num_shards = num_shards_;
    shard_map.worker_shard = [this](WorkerId worker) {
      return ShardOfNode(fleet_.worker(worker).location);
    };
    shard_map.order_shard = [this](OrderId member) {
      return ShardOfNode(pool_.GetOrder(member)->pickup);
    };
    resolution = ResolveOffersSharded(&offers, shard_map, &executor_);
  }

  dispatch_stats_.offers += static_cast<int64_t>(offers.size());
  dispatch_stats_.border_offers += resolution.border_offers;
  dispatch_stats_.border_affected += resolution.border_affected;
  for (OfferOutcome outcome : resolution.outcomes) {
    switch (outcome) {
      case OfferOutcome::kCommitted:
        ++dispatch_stats_.committed;
        break;
      case OfferOutcome::kWorkerConflict:
        ++dispatch_stats_.worker_conflicts;
        break;
      case OfferOutcome::kOrderConflict:
        ++dispatch_stats_.order_conflicts;
        break;
    }
  }

  // Deferred jobs outlive this round's live snapshot vectors, so observer
  // rounds pin a frozen copy; without an observer no job reads them.
  std::shared_ptr<const RoundSnapshot> snap;
  if (observer_) {
    auto frozen = std::make_shared<RoundSnapshot>();
    frozen->demand_pickup = demand_pickup_counts_;
    frozen->demand_dropoff = demand_dropoff_counts_;
    frozen->supply = supply_counts_;
    snap = std::move(frozen);
  }

  // Two-stage commit. Stage: claim every winner's worker in the sorted
  // total order, tagged with its claim arena — the home shard for interior
  // winners, the dedicated border arena for reconciled ones — so an
  // abandoned staging could be rolled back per shard (Fleet::ReleaseArena).
  // Resolution guaranteed the winners conflict-free, so every claim must
  // succeed; a failure means resolution and fleet state diverged.
  {
    WATTER_TRACE_SPAN("round.commit");
    PhaseTimer timer(sampling_, &round_sample_.commit_s);
    const int border_arena = num_shards_;
    for (size_t i = 0; i < offers.size(); ++i) {
      if (resolution.outcomes[i] != OfferOutcome::kCommitted) continue;
      int arena = resolution.scopes[i] == OfferScope::kInterior
                      ? resolution.home_shards[i]
                      : border_arena;
      WATTER_CHECK(fleet_.TryClaim(offers[i].worker, arena),
                   "sharded commit: offered worker not claimable");
    }
    // Apply: finalize the staged claims in the same sorted order, deferring
    // each winner's bookkeeping onto the pipeline.
    for (size_t i = 0; i < offers.size(); ++i) {
      if (resolution.outcomes[i] != OfferOutcome::kCommitted) continue;
      CommitOfferStaged(offers[i], now, snap);
    }
    WATTER_CHECK(fleet_.claimed_count() == 0,
                 "sharded commit: staged claims left unfinalized");
  }

  // Serial post-sweep, same ascending-id order and hazard RNG sequence as
  // the unsharded engine (the pool holds exactly the same survivors: the
  // committed sets are bitwise equal); only the bookkeeping is deferred.
  WATTER_TRACE_SPAN("round.sweep");
  PhaseTimer sweep_timer(sampling_, &round_sample_.sweep_s);
  for (OrderId id : ids) {
    if (!pool_.Contains(id)) continue;  // Dispatched this round.
    const Order order_copy = *pool_.GetOrder(id);
    if (options_.cancellation_hazard > 0.0 &&
        now > order_copy.WaitDeadline() &&
        rng_.Bernoulli(1.0 - std::exp(-options_.cancellation_hazard *
                                      options_.check_period))) {
      RejectOrderDeferred(order_copy, now, snap);
      continue;
    }
    if (now > order_copy.LatestDispatch()) {
      RejectOrderDeferred(order_copy, now, snap);
    } else if (observer_) {
      pipeline_->Enqueue([this, order_copy, now, snap] {
        DecisionObservation obs;
        obs.order = order_copy.id;
        obs.order_ref = &order_copy;
        obs.now = now;
        obs.action = 0;
        obs.expired = false;
        obs.demand_pickup = &snap->demand_pickup;
        obs.demand_dropoff = &snap->demand_dropoff;
        obs.supply = &snap->supply;
        observer_(obs);
      });
    }
  }
}

void WatterPlatform::FinishRoundSample(Time now, double total_seconds) {
  if (!sampling_) return;
  obs::RoundSample& sample = round_sample_;
  sample.round = ++round_counter_;
  sample.now = now;
  sample.total_s = total_seconds;

  // End-of-round state. depth() is a mutex peek at the consumer backlog —
  // diagnostic only, so the inherent raciness is fine.
  sample.pool_size = static_cast<int64_t>(pool_.size());
  sample.shareability_edges = pool_.graph().edge_count();
  sample.pipeline_depth = pipeline_ ? pipeline_->depth() : 0;

  // Per-round deltas of the cumulative counters; counter_base_ reuses the
  // sample fields to hold the previous round's cumulative values.
  const auto delta = [](int64_t current, int64_t& base) {
    int64_t d = current - base;
    base = current;
    return d;
  };
  obs::RoundSample& base = counter_base_;
  sample.offers = delta(dispatch_stats_.offers, base.offers);
  sample.committed = delta(dispatch_stats_.committed, base.committed);
  sample.worker_conflicts =
      delta(dispatch_stats_.worker_conflicts, base.worker_conflicts);
  sample.order_conflicts =
      delta(dispatch_stats_.order_conflicts, base.order_conflicts);
  sample.planner_plans =
      delta(pool_.planner().plan_count(), base.planner_plans);
  sample.pair_tests = delta(pool_.graph().pair_tests(), base.pair_tests);
  sample.recomputes =
      delta(pool_.best_groups().recompute_count(), base.recomputes);
  sample.plan_cache_hits =
      delta(pool_.best_groups().plan_cache_hits(), base.plan_cache_hits);
  sample.plan_cache_misses =
      delta(pool_.best_groups().plan_cache_misses(), base.plan_cache_misses);
  sample.geo_queries = delta(scenario_->oracle->query_count(),
                             base.geo_queries);
  sample.geo_batches = delta(scenario_->oracle->batch_count(),
                             base.geo_batches);

  timeline_->Record(sample);

  // Phase-duration histograms ride on the same sampling pass (the registry
  // is armed whenever a trace or timeline was requested).
  obs::RecordLatency("round.total_s", sample.total_s, /*hi_seconds=*/60.0);
  obs::RecordLatency("round.maintenance_s", sample.maintenance_s, 60.0);
  obs::RecordLatency("round.refresh_s", sample.refresh_s, 60.0);
  obs::RecordLatency("round.propose_s", sample.propose_s, 60.0);
  obs::RecordLatency("round.resolve_s", sample.resolve_s, 60.0);
  obs::RecordLatency("round.commit_s", sample.commit_s, 60.0);
  obs::RecordLatency("round.sweep_s", sample.sweep_s, 60.0);
}

MetricsReport WatterPlatform::Run() {
  // Arm the process-global observability sinks before the first round.
  // Both stay enabled for the rest of the process (they accumulate across
  // runs by design; see docs/OBSERVABILITY.md "Lifecycle") — the platform
  // merely exports the current state at the end of this run.
  if (!trace_path_.empty()) {
    obs::TraceRecorder::Global().SetCurrentThreadName("main");
    obs::TraceRecorder::Global().Enable();
  }
  if (!trace_path_.empty() || sampling_) {
    obs::HistogramRegistry::Global().Enable();
  }
  Stopwatch algorithm_time;
  {
    ScopedTimer timer(&algorithm_time);
    const std::vector<Order>& orders = scenario_->orders;
    size_t next_order = 0;
    Time next_check =
        orders.empty() ? 0.0 : orders.front().release + options_.check_period;
    Time last_event = orders.empty() ? 0.0 : orders.front().release;
    while (next_order < orders.size() || pool_.size() > 0) {
      Time arrival = next_order < orders.size() ? orders[next_order].release
                                                : kInfCost;
      if (pool_.size() == 0 && arrival > next_check) {
        // Nothing to check; fast-forward to the next arrival.
        next_check = arrival + options_.check_period;
      }
      if (arrival <= next_check) {
        fleet_.ReleaseUntil(arrival);
        InsertArrival(orders[next_order], arrival);
        ++next_order;
        last_event = arrival;
      } else {
        fleet_.ReleaseUntil(next_check);
        RunCheck(next_check);
        last_event = next_check;
        next_check += options_.check_period;
      }
    }
    // Pipeline barrier: all deferred bookkeeping must land before anything
    // reads the metrics (or before the timer stops attributing its cost).
    if (pipeline_) pipeline_->Drain();
    if (!orders.empty()) {
      metrics_.SetFleetInfo(fleet_.size(),
                            last_event - orders.front().release);
    }
  }
  metrics_.AddAlgorithmTime(algorithm_time.ElapsedSeconds());
  MetricsReport report = metrics_.Report();
  // Pool-side work counters: deterministic for a fixed scenario, so bench
  // baselines can diff them across PRs (docs/PERFORMANCE.md).
  report.pool.best_group_recomputes = pool_.best_groups().recompute_count();
  report.pool.groups_evaluated = pool_.best_groups().groups_evaluated();
  report.pool.planner_plans = pool_.planner().plan_count();
  report.pool.pair_tests = pool_.graph().pair_tests();
  report.pool.plan_cache_hits = pool_.best_groups().plan_cache_hits();
  report.pool.plan_cache_misses = pool_.best_groups().plan_cache_misses();
  report.pool.plan_cache_replans = pool_.best_groups().plan_cache_replans();
  report.pool.plan_cache_evictions =
      pool_.best_groups().plan_cache_evictions();
  report.pool.plan_cache_seeds = pool_.best_groups().plan_cache_seeds();
  report.pool.reverse_index_fanout =
      pool_.best_groups().reverse_index_fanout();
  // Oracle-side counters: diagnostic only (racy increments, backend-specific
  // totals); cumulative since oracle construction, so they include scenario
  // generation's shortest-cost sampling.
  const TravelTimeOracle& oracle = *scenario_->oracle;
  report.geo.queries = oracle.query_count();
  report.geo.batches = oracle.batch_count();
  report.geo.batch_points = oracle.batch_points();
  report.geo.bucket_build_seconds = oracle.bucket_build_seconds();
  // Batched-engine counters (zero under kSerial). Offer/outcome totals are
  // deterministic across threads AND shards; the border splits describe the
  // shard layout itself (metrics.h).
  report.dispatch = dispatch_stats_;

  // Export the observability artifacts last, after the pipeline drain and
  // the pool's final fan-in — every traced thread has synchronized with
  // this one, so the recorder is quiescent (trace.h). Failures only warn:
  // diagnostics must never fail a run.
  if (timeline_) {
    const bool csv = timeline_path_.size() >= 4 &&
                     timeline_path_.compare(timeline_path_.size() - 4, 4,
                                            ".csv") == 0;
    bool ok = csv ? timeline_->WriteCsv(timeline_path_)
                  : timeline_->WriteJson(timeline_path_);
    if (!ok) {
      std::fprintf(stderr, "warning: could not write timeline to %s\n",
                   timeline_path_.c_str());
    }
  }
  if (!trace_path_.empty() &&
      !obs::TraceRecorder::Global().ExportChromeTrace(trace_path_)) {
    std::fprintf(stderr, "warning: could not write trace to %s\n",
                 trace_path_.c_str());
  }
  return report;
}

MetricsReport RunWatter(Scenario* scenario, ThresholdProvider* provider,
                        const SimOptions& options) {
  WatterPlatform platform(scenario, provider, options);
  return platform.Run();
}

}  // namespace watter
