#include "src/sim/platform.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/obs/histogram_registry.h"
#include "src/obs/trace.h"

namespace watter {
namespace {

PoolOptions MergePoolOptions(PoolOptions base, const Scenario& scenario) {
  base.capacity = scenario.options.max_capacity;
  return base;
}

int ResolveThreads(const SimOptions& options, const Scenario& scenario) {
  int threads =
      options.num_threads != 0 ? options.num_threads
                               : scenario.options.num_threads;
  return threads <= 0 ? ThreadPool::DefaultThreads() : threads;
}

int ResolveShards(const SimOptions& options, const Scenario& scenario) {
  int shards = options.num_shards != 0 ? options.num_shards
                                       : scenario.options.num_shards;
  return std::max(1, shards);
}

FaultSpec ResolveFaultSpec(const SimOptions& options,
                           const Scenario& scenario) {
  const std::string& spec = !options.faults.empty()
                                ? options.faults
                                : scenario.options.faults;
  if (spec.empty()) return FaultSpec{};
  Result<FaultSpec> parsed = ParseFaultSpec(spec);
  // The CLI validates specs before construction; an invalid spec reaching
  // an embedder is a configuration programmer error.
  WATTER_CHECK(parsed.ok(), parsed.status().ToString().c_str());
  return std::move(parsed).value();
}

int64_t ResolveBudget(const SimOptions& options, const Scenario& scenario) {
  int64_t budget = options.round_work_budget != 0
                       ? options.round_work_budget
                       : scenario.options.round_work_budget;
  return budget < 0 ? 0 : budget;  // Negative = force unlimited.
}

// Fault event times are drawn over the arrival window, derived from
// workload options only (never run state), so the schedule is
// engine/thread/shard-invariant. Workloads sample release times as
// time-of-day, so the window starts at `start_hour`, not zero; the window
// length is the arrival duration, so every injected event lands while
// orders are still arriving (the pool is guaranteed non-empty, so check
// rounds are still running). Scheduled *returns* may spill past it into
// the drain tail — or past the last round entirely, in which case the
// worker simply never comes back.
double FaultWindowStart(const Scenario& scenario) {
  return scenario.options.start_hour * 3600.0;
}

double FaultHorizon(const Scenario& scenario) {
  return scenario.options.duration;
}

// Work-unit charge for one planner plan, relative to a single candidate
// probe (a plan is a small combinatorial search; a probe is one batched
// oracle query). Calibration matters less than determinism: any fixed
// constant yields a deterministic shed set.
constexpr int64_t kPlanWorkUnits = 8;

// Floor the watchdog can clamp the effective budget to — rounds always
// retain enough budget to make progress on the most urgent orders.
constexpr int64_t kMinWatchdogBudget = 64;

// Everything a deferred commit job records about one served member, copied
// out of the pool before the member is removed.
struct ServedMember {
  Order order;
  double response = 0.0;
  double detour = 0.0;
};

// Accumulates the enclosing scope's wall-clock into `*slot` when armed;
// disarmed it reads no clock at all (the timeline contract: sampling off is
// free, sampling on touches only diagnostic state).
class PhaseTimer {
 public:
  PhaseTimer(bool armed, double* slot) : slot_(armed ? slot : nullptr) {
    if (slot_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (slot_ != nullptr) {
      *slot_ += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

WatterPlatform::WatterPlatform(Scenario* scenario, ThresholdProvider* provider,
                               SimOptions options)
    : scenario_(scenario),
      provider_(provider),
      options_(options),
      num_shards_(ResolveShards(options, *scenario)),
      fault_spec_(ResolveFaultSpec(options, *scenario)),
      injector_(fault_spec_.any()
                    ? std::make_unique<FaultInjector>(
                          fault_spec_,
                          static_cast<int>(scenario->workers.size()),
                          FaultHorizon(*scenario),
                          FaultWindowStart(*scenario))
                    : nullptr),
      degraded_oracle_(fault_spec_.brownouts > 0
                           ? std::make_unique<DegradedOracle>(
                                 scenario->oracle.get())
                           : nullptr),
      oracle_(degraded_oracle_
                  ? static_cast<TravelTimeOracle*>(degraded_oracle_.get())
                  : scenario->oracle.get()),
      executor_(ResolveThreads(options, *scenario)),
      pool_(oracle_, MergePoolOptions(options.pool, *scenario)),
      fleet_(scenario->workers, &scenario->city->graph, options.grid_cells),
      metrics_(options.metrics),
      rng_(options.sim_seed),
      demand_pickup_index_(scenario->city->graph.MinCorner(),
                           scenario->city->graph.MaxCorner(),
                           options.grid_cells),
      demand_dropoff_index_(scenario->city->graph.MinCorner(),
                            scenario->city->graph.MaxCorner(),
                            options.grid_cells) {
  pool_.set_executor(&executor_);
  // The bookkeeping pipeline exists only for the sharded batched engine;
  // the unsharded path keeps its fully synchronous commit. The fault
  // spec's qcap bounds the queue (0 = unbounded, the default).
  if (options_.dispatch == DispatchMode::kBatched && num_shards_ > 1) {
    pipeline_ = std::make_unique<CommitPipeline>(fault_spec_.qcap);
  }
  track_trips_ = injector_ != nullptr && fault_spec_.has_dropouts();
  work_budget_ = ResolveBudget(options_, *scenario);
  effective_budget_ = work_budget_;
  budgeting_ = work_budget_ > 0 || options_.watchdog_ms > 0.0;
  // Observability knobs: SimOptions wins when set, else the scenario's
  // workload options (the CLI/bench path).
  trace_path_ = !options_.trace_path.empty() ? options_.trace_path
                                             : scenario->options.trace_path;
  timeline_path_ = !options_.timeline_path.empty()
                       ? options_.timeline_path
                       : scenario->options.timeline_path;
  if (!timeline_path_.empty()) {
    timeline_ = std::make_unique<obs::TimelineSampler>();
    sampling_ = true;
  }
}

int WatterPlatform::ShardOfNode(NodeId node) const {
  // The idle index carries the feature-grid geometry; all three platform
  // grids share it, so any of them defines the same region partition.
  return fleet_.idle_index().RegionOf(
      scenario_->city->graph.node_point(node), num_shards_);
}

void WatterPlatform::Observe(const Order& order, Time now, int action,
                             bool expired, double detour) {
  if (!observer_) return;
  DecisionObservation obs;
  obs.order = order.id;
  obs.order_ref = &order;
  obs.now = now;
  obs.action = action;
  obs.expired = expired;
  obs.detour = detour;
  obs.demand_pickup = &demand_pickup_counts_;
  obs.demand_dropoff = &demand_dropoff_counts_;
  obs.supply = &supply_counts_;
  observer_(obs);
}

void WatterPlatform::InsertArrival(const Order& order, Time now) {
  if (!pool_.Insert(order, now).ok()) return;
  const Graph& graph = scenario_->city->graph;
  demand_pickup_index_.Insert(order.id, graph.node_point(order.pickup));
  demand_dropoff_index_.Insert(order.id, graph.node_point(order.dropoff));
}

void WatterPlatform::RemoveFromIndexes(const Order& order) {
  // Every pooled order was indexed by InsertArrival, so absence here would
  // mean the pool and the demand indexes have diverged.
  WATTER_CHECK_OK(demand_pickup_index_.Remove(order.id));
  WATTER_CHECK_OK(demand_dropoff_index_.Remove(order.id));
}

void WatterPlatform::RejectOrder(const Order& order, Time now,
                                 bool cancelled) {
  Observe(order, now, /*action=*/0, /*expired=*/true, 0.0);
  if (cancelled) {
    metrics_.RecordCancelled(order);
  } else {
    metrics_.RecordRejected(order);
  }
  RemoveFromIndexes(order);
  WATTER_CHECK_OK(pool_.Remove(order.id));
}

bool WatterPlatform::TryDispatch(const std::vector<const Order*>& members,
                                 const GroupPlan& plan, Time now) {
  int riders = 0;
  for (const Order* member : members) riders += member->riders;
  NodeId first_stop = plan.route.stops.front().node;
  WorkerId worker_id =
      fleet_.FindClosestIdle(first_stop, riders, oracle_,
                             options_.worker_candidates);
  if (worker_id == kInvalidWorker) return false;

  // Claim-validate-commit (the same two-phase protocol the batched commit
  // pass uses): reserve the worker, roll the claim back if the exact
  // pickup leg turns out unreachable. The claim itself must succeed —
  // FindClosestIdle just returned the worker from the idle index and
  // nothing mutates the fleet in between.
  WATTER_CHECK(fleet_.TryClaim(worker_id),
               "serial dispatch: closest idle worker not claimable");
  const Worker& worker = fleet_.worker(worker_id);
  double pickup_delay = oracle_->Cost(worker.location, first_stop);
  if (pickup_delay == kInfCost) {
    WATTER_CHECK_OK(fleet_.ReleaseClaim(worker_id));
    return false;
  }

  // Record outcomes per member (response = notification wait, Definition 4;
  // detour per Definition 5).
  ActiveTrip trip;
  for (size_t i = 0; i < members.size(); ++i) {
    const Order& member = *members[i];
    double response = now - member.release;
    // Clamp: float rounding in matrix oracles can yield -1e-5 "detours".
    double detour =
        std::max(0.0, plan.completion[i] - member.shortest_cost);
    metrics_.RecordServed(member, response, detour,
                          static_cast<int>(members.size()));
    Observe(member, now, /*action=*/1, /*expired=*/false, detour);
    if (track_trips_) {
      trip.members.push_back({member, response, detour,
                              now + pickup_delay + plan.completion[i]});
    }
  }
  metrics_.AddWorkerTravel(pickup_delay + plan.total_cost);
  NodeId final_node = plan.route.stops.back().node;
  WATTER_CHECK_OK(fleet_.CommitClaim(
      worker_id, now + pickup_delay + plan.total_cost, final_node));
  if (track_trips_) {
    trip.dispatch_time = now;
    trip.travel = pickup_delay + plan.total_cost;
    trip.group_size = static_cast<int>(members.size());
    TrackTrip(worker_id, std::move(trip));
  }
  for (const Order* member : members) {
    RemoveFromIndexes(*member);
    WATTER_CHECK_OK(pool_.Remove(member->id));
  }
  return true;
}

void WatterPlatform::RunCheck(Time now) {
  WATTER_TRACE_SPAN("round");
  std::chrono::steady_clock::time_point round_start;
  if (sampling_) {
    round_sample_ = obs::RoundSample{};
    round_start = std::chrono::steady_clock::now();
  }
  std::chrono::steady_clock::time_point watchdog_start;
  if (options_.watchdog_ms > 0.0) {
    watchdog_start = std::chrono::steady_clock::now();
  }

  // Fault events due at this round boundary fire first, serially, so the
  // snapshots below already see dropped/returned workers and the round runs
  // under the current brownout factor.
  ApplyFaults(now);

  PoolContext context{&demand_pickup_counts_, &demand_dropoff_counts_,
                      &supply_counts_};
  std::vector<OrderId> ids;
  {
    // Maintenance phase. Edge expiry shards per graph entry inside the
    // pool. The three grid snapshots stay serial on purpose: each is
    // O(cells) of trivial work, far below the pool's wake/join cost.
    WATTER_TRACE_SPAN("round.maintenance");
    PhaseTimer timer(sampling_, &round_sample_.maintenance_s);
    pool_.ExpireEdges(now);
    demand_pickup_counts_ = demand_pickup_index_.CellCounts();
    demand_dropoff_counts_ = demand_dropoff_index_.CellCounts();
    supply_counts_ = fleet_.IdleCellCounts();
    ids = pool_.SortedOrderIds();  // Arrival-ordered.
  }

  {
    // Phase A: recompute every stale best group in parallel against the
    // frozen graph. The decision phase below then runs against a warm
    // cache; in serial mode, groups invalidated by this round's own
    // dispatches are lazily recomputed in-loop, exactly as in the serial
    // algorithm.
    //
    // This phase runs at EVERY thread count, including 1 — do not
    // "optimize" it away in serial mode. A lazy recompute at loop position
    // sees the post-dispatch graph; when the clique visit budget truncates
    // enumeration, that can select a different group than the pre-dispatch
    // phase-A value, and metrics would then depend on the thread count.
    // Keeping the algorithm fixed costs ~7% serial time on dense workloads
    // and is what makes the determinism contract unconditional.
    WATTER_TRACE_SPAN("round.refresh");
    PhaseTimer timer(sampling_, &round_sample_.refresh_s);
    pool_.RefreshBestGroups(ids, now);
  }

  // Overload-degradation pre-pass: when budgeting is armed, only the most
  // urgent prefix of the pool bids this round; the rest is shed to the next
  // round. Computed serially from frozen post-refresh state, so the shed
  // set is a pure function of the round state (never of wall-clock).
  std::vector<OrderId> budgeted;
  const std::vector<OrderId>* propose_ids = &ids;
  if (budgeting_) {
    budgeted = BudgetedIds(ids, now);
    propose_ids = &budgeted;
  }

  // Phase B: the decision/dispatch phase, in the configured engine.
  if (options_.dispatch == DispatchMode::kBatched) {
    RunDecisionLoopBatched(ids, *propose_ids, now, context);
  } else {
    RunDecisionLoopSerial(ids, *propose_ids, now, context);
    // The serial engine has no resolve/commit seam; late dropouts land
    // after its decision loop instead.
    ApplyLateFaults(now);
  }

  if (options_.watchdog_ms > 0.0) {
    AdjustWatchdog(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - watchdog_start)
                       .count());
  }
  if (sampling_) {
    FinishRoundSample(now, std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - round_start)
                               .count());
  }
}

void WatterPlatform::RunDecisionLoopSerial(
    const std::vector<OrderId>& ids, const std::vector<OrderId>& propose_ids,
    Time now, const PoolContext& context) {
  // The sequential decision/dispatch loop. Each dispatch consumes workers
  // and removes partner orders, which changes the problem every later order
  // sees — that chained re-evaluation is this engine's semantics. The whole
  // loop lands in the timeline's commit_s: this engine has no
  // propose/resolve/sweep split to attribute separately.
  WATTER_TRACE_SPAN("round.commit");
  PhaseTimer timer(sampling_, &round_sample_.commit_s);
  // Shed orders (budget pre-pass) keep their arrival-order slot but skip
  // all decision work — they only see the wait/expiry path below. With the
  // budget off, propose_ids aliases ids and this stays a no-op.
  const bool shedding = propose_ids.size() != ids.size();
  std::unordered_set<OrderId> eligible;
  if (shedding) eligible.insert(propose_ids.begin(), propose_ids.end());
  for (OrderId id : ids) {
    if (!pool_.Contains(id)) continue;  // Dispatched earlier this round.
    const Order* order = pool_.GetOrder(id);
    const Order order_copy = *order;  // Stable across pool mutation.
    bool dispatched = false;
    const bool shed = shedding && eligible.count(id) == 0;

    const BestGroup* group = shed ? nullptr : pool_.BestFor(id, now);
    if (group != nullptr) {
      std::vector<const Order*> members;
      members.reserve(group->members.size());
      bool resolved = true;
      for (OrderId member : group->members) {
        const Order* m = pool_.GetOrder(member);
        if (m == nullptr) {
          resolved = false;
          break;
        }
        members.push_back(m);
      }
      if (resolved) {
        bool go = DecideGroupDispatch(*group, members, now,
                                      pool_.options().weights, provider_,
                                      context);
        // Feasibility-forced dispatch: holding past the next check would
        // let the group expire.
        if (!go && group->plan.latest_departure < now + options_.check_period) {
          go = true;
        }
        if (go) dispatched = TryDispatch(members, group->plan, now);
      }
    }

    if (!dispatched && pool_.Contains(id)) {
      // Impatience: past the watching window the rider may cancel at any
      // check (hazard model; counted as an expiration like the paper).
      if (options_.cancellation_hazard > 0.0 &&
          now > order_copy.WaitDeadline() &&
          rng_.Bernoulli(1.0 - std::exp(-options_.cancellation_hazard *
                                        options_.check_period))) {
        RejectOrder(order_copy, now, /*cancelled=*/true);
        continue;
      }
      if (now > order_copy.LatestDispatch()) {
        // No feasible service remains.
        RejectOrder(order_copy, now);
      } else if (!shed && options_.solo_fallback && group == nullptr &&
                 (now > order_copy.WaitDeadline() ||
                  now + options_.check_period > order_copy.LatestDispatch())) {
        // Watching window elapsed — or feasibility about to expire —
        // without a shared group: serve alone.
        const Order* fresh = pool_.GetOrder(id);
        auto solo = pool_.planner().PlanBest({fresh}, now,
                                             pool_.options().capacity);
        if (solo.ok()) {
          dispatched = TryDispatch({fresh}, *solo, now);
        }
        if (!dispatched) {
          Observe(order_copy, now, /*action=*/0, /*expired=*/false, 0.0);
        }
      } else {
        Observe(order_copy, now, /*action=*/0, /*expired=*/false, 0.0);
      }
    }
  }
}

DispatchOffer WatterPlatform::ProposeOffer(
    OrderId id, Time now,
    const std::unordered_map<OrderId, double>& thresholds) {
  // Pure against frozen state: reads the pool caches (PeekBest, GetOrder),
  // the idle fleet, and the oracle; mutates nothing. Runs concurrently for
  // distinct ids in the propose phase.
  DispatchOffer offer;
  offer.anchor = id;
  const Order* order = pool_.GetOrder(id);
  if (order == nullptr) return offer;

  const BestGroup* group = pool_.PeekBest(id, now);
  int riders = 0;
  if (group != nullptr) {
    std::vector<const Order*> members;
    std::vector<double> member_thresholds;
    members.reserve(group->members.size());
    member_thresholds.reserve(group->members.size());
    for (OrderId member : group->members) {
      const Order* m = pool_.GetOrder(member);
      auto it = thresholds.find(member);
      if (m == nullptr || it == thresholds.end()) return offer;
      members.push_back(m);
      member_thresholds.push_back(it->second);
      riders += m->riders;
    }
    bool go = DecideGroupDispatchPrecomputed(*group, members,
                                             member_thresholds, now,
                                             pool_.options().weights);
    // Feasibility-forced dispatch: holding past the next check would let
    // the group expire (same rule as the serial engine).
    if (!go && group->plan.latest_departure < now + options_.check_period) {
      go = true;
    }
    if (!go) return offer;
    offer.members = group->members;
    offer.plan = group->plan;  // Copy: survives this round's pool removals.
  } else {
    // Solo fallback as an offer, with the serial engine's eligibility: the
    // watching window elapsed — or feasibility is about to — without a
    // shared group, and a rejection is not yet due.
    if (!options_.solo_fallback) return offer;
    if (now > order->LatestDispatch()) return offer;  // Sweep will reject.
    if (!(now > order->WaitDeadline() ||
          now + options_.check_period > order->LatestDispatch())) {
      return offer;
    }
    auto solo = pool_.planner().PlanBest({order}, now,
                                         pool_.options().capacity);
    if (!solo.ok()) return offer;
    offer.solo = true;
    offer.members = {id};
    offer.plan = std::move(solo).value();
    riders = order->riders;
  }

  // Bind the closest capacity-feasible idle worker; no worker, no bid.
  NodeId first_stop = offer.plan.route.stops.front().node;
  WorkerId worker_id =
      fleet_.FindClosestIdle(first_stop, riders, oracle_,
                             options_.worker_candidates);
  if (worker_id == kInvalidWorker) return offer;
  double pickup_delay =
      oracle_->Cost(fleet_.worker(worker_id).location, first_stop);
  if (pickup_delay == kInfCost) return offer;
  offer.worker = worker_id;
  offer.pickup_delay = pickup_delay;
  offer.cost = pickup_delay + offer.plan.total_cost;
  return offer;
}

Status WatterPlatform::CommitOffer(const DispatchOffer& offer, Time now) {
  // ResolveOffers guaranteed the worker unclaimed and every member still
  // pooled, and the fleet only changes through committed offers — except
  // when a late-dropout fault takes the worker offline between resolution
  // and commit. That is a recoverable conflict: the offer is abandoned and
  // its members stay pooled for the sweep.
  if (!fleet_.TryClaim(offer.worker)) {
    return Status::FailedPrecondition(
        "batched commit: offered worker no longer claimable (worker " +
        std::to_string(offer.worker) + ")");
  }
  ActiveTrip trip;
  for (size_t i = 0; i < offer.members.size(); ++i) {
    const Order* member = pool_.GetOrder(offer.members[i]);
    // A missing member is a broken invariant (resolution guarantees member
    // exclusivity; faults never remove pooled orders), not a recoverable
    // condition.
    WATTER_CHECK(member != nullptr,
                 "batched commit: dispatched member left the pool");
    double response = now - member->release;
    // Clamp: float rounding in matrix oracles can yield -1e-5 "detours".
    double detour =
        std::max(0.0, offer.plan.completion[i] - member->shortest_cost);
    metrics_.RecordServed(*member, response, detour,
                          static_cast<int>(offer.members.size()));
    Observe(*member, now, /*action=*/1, /*expired=*/false, detour);
    if (track_trips_) {
      trip.members.push_back({*member, response, detour,
                              now + offer.pickup_delay +
                                  offer.plan.completion[i]});
    }
  }
  metrics_.AddWorkerTravel(offer.pickup_delay + offer.plan.total_cost);
  WATTER_CHECK_OK(fleet_.CommitClaim(
      offer.worker, now + offer.pickup_delay + offer.plan.total_cost,
      offer.plan.route.stops.back().node));
  if (track_trips_) {
    trip.dispatch_time = now;
    trip.travel = offer.pickup_delay + offer.plan.total_cost;
    trip.group_size = static_cast<int>(offer.members.size());
    TrackTrip(offer.worker, std::move(trip));
  }
  for (OrderId member : offer.members) {
    const Order* m = pool_.GetOrder(member);
    RemoveFromIndexes(*m);
    WATTER_CHECK_OK(pool_.Remove(member));
  }
  return Status::Ok();
}

std::unordered_map<OrderId, double> WatterPlatform::PrecomputeThresholds(
    const std::vector<OrderId>& ids, Time now, const PoolContext& context) {
  // Thresholds for every order appearing in some cached best group.
  // Providers are stateful (memo tables, feature scratch), so they are
  // queried once per member here, in ascending id order, and the parallel
  // propose phase reads only the resulting immutable map.
  std::vector<OrderId> member_ids;
  for (OrderId id : ids) {
    const BestGroup* group = pool_.PeekBest(id, now);
    if (group == nullptr) continue;
    member_ids.insert(member_ids.end(), group->members.begin(),
                      group->members.end());
  }
  std::sort(member_ids.begin(), member_ids.end());
  member_ids.erase(std::unique(member_ids.begin(), member_ids.end()),
                   member_ids.end());
  std::unordered_map<OrderId, double> thresholds;
  thresholds.reserve(member_ids.size());
  for (OrderId member : member_ids) {
    const Order* order = pool_.GetOrder(member);
    if (order == nullptr) continue;
    thresholds.emplace(member, provider_->ThresholdFor(*order, now, context));
  }
  return thresholds;
}

void WatterPlatform::RunDecisionLoopBatched(
    const std::vector<OrderId>& ids, const std::vector<OrderId>& propose_ids,
    Time now, const PoolContext& context) {
  // Serial prologue (shared with the sharded variant). Attributed to the
  // propose phase: thresholds are inputs to the offers. Computed over the
  // budget-eligible anchors only — their groups' members (which may include
  // shed orders) all get thresholds.
  std::unordered_map<OrderId, double> thresholds;
  {
    WATTER_TRACE_SPAN("round.thresholds");
    PhaseTimer timer(sampling_, &round_sample_.propose_s);
    thresholds = PrecomputeThresholds(propose_ids, now, context);
  }

  if (num_shards_ > 1) {
    RunDecisionLoopSharded(ids, propose_ids, now, thresholds);
    return;
  }

  // Parallel propose: one offer slot per eligible pooled order, each a pure
  // function of the frozen pool/fleet/threshold state (ordered-map pattern,
  // see thread_pool.h).
  std::vector<DispatchOffer> offers;
  {
    WATTER_TRACE_SPAN("round.propose");
    PhaseTimer timer(sampling_, &round_sample_.propose_s);
    executor_.ParallelMap(propose_ids.size(), 4, &offers, [&](size_t i) {
      return ProposeOffer(propose_ids[i], now, thresholds);
    });
  }

  // Drop the non-bids, then resolve conflicts in the sorted-offers total
  // order and commit the winners serially. The outcome sequence is a pure
  // function of the offer set, hence of the frozen round state — never of
  // the thread count.
  std::vector<OfferOutcome> outcomes;
  {
    WATTER_TRACE_SPAN("round.resolve");
    PhaseTimer timer(sampling_, &round_sample_.resolve_s);
    offers.erase(std::remove_if(offers.begin(), offers.end(),
                                [](const DispatchOffer& offer) {
                                  return offer.worker == kInvalidWorker;
                                }),
                 offers.end());
    outcomes = ResolveOffers(&offers);
  }
  dispatch_stats_.offers += static_cast<int64_t>(offers.size());

  // Late dropouts land on the resolve/commit seam: resolution has already
  // picked winners against the pre-fault fleet, so a winner whose worker
  // just vanished fails its claim below and is abandoned.
  ApplyLateFaults(now);

  {
    WATTER_TRACE_SPAN("round.commit");
    PhaseTimer timer(sampling_, &round_sample_.commit_s);
    for (size_t i = 0; i < offers.size(); ++i) {
      switch (outcomes[i]) {
        case OfferOutcome::kCommitted:
          if (CommitOffer(offers[i], now).ok()) {
            ++dispatch_stats_.committed;
          } else {
            ++fault_stats_.aborted_commits;
          }
          break;
        case OfferOutcome::kWorkerConflict:
          ++dispatch_stats_.worker_conflicts;
          break;
        case OfferOutcome::kOrderConflict:
          ++dispatch_stats_.order_conflicts;
          break;
      }
    }
  }

  // Serial post-sweep in ascending id order over the orders that did not
  // dispatch: hazard cancellation (the RNG draws happen here, serially, so
  // the sequence is thread-count-invariant), rejection once no feasible
  // service remains, and wait observations for everyone else.
  WATTER_TRACE_SPAN("round.sweep");
  PhaseTimer sweep_timer(sampling_, &round_sample_.sweep_s);
  for (OrderId id : ids) {
    if (!pool_.Contains(id)) continue;  // Dispatched this round.
    const Order order_copy = *pool_.GetOrder(id);
    if (options_.cancellation_hazard > 0.0 &&
        now > order_copy.WaitDeadline() &&
        rng_.Bernoulli(1.0 - std::exp(-options_.cancellation_hazard *
                                      options_.check_period))) {
      RejectOrder(order_copy, now, /*cancelled=*/true);
      continue;
    }
    if (now > order_copy.LatestDispatch()) {
      RejectOrder(order_copy, now);
    } else {
      Observe(order_copy, now, /*action=*/0, /*expired=*/false, 0.0);
    }
  }
}

void WatterPlatform::CommitOfferStaged(
    const DispatchOffer& offer, Time now,
    const std::shared_ptr<const RoundSnapshot>& snap) {
  // State half, synchronous: finalize the staged claim and remove the
  // members — the next round's frozen snapshots must see both. Member data
  // is copied out first so the bookkeeping half owns everything it records.
  std::vector<ServedMember> served;
  served.reserve(offer.members.size());
  ActiveTrip trip;
  for (size_t i = 0; i < offer.members.size(); ++i) {
    const Order* member = pool_.GetOrder(offer.members[i]);
    WATTER_CHECK(member != nullptr,
                 "sharded commit: dispatched member left the pool");
    double response = now - member->release;
    // Clamp: float rounding in matrix oracles can yield -1e-5 "detours".
    double detour =
        std::max(0.0, offer.plan.completion[i] - member->shortest_cost);
    served.push_back({*member, response, detour});
    if (track_trips_) {
      trip.members.push_back({*member, response, detour,
                              now + offer.pickup_delay +
                                  offer.plan.completion[i]});
    }
  }
  double travel = offer.pickup_delay + offer.plan.total_cost;
  int group_size = static_cast<int>(offer.members.size());
  // The claim was staged by the caller and faults only fire at serial
  // points outside the commit stage, so finalization must succeed.
  WATTER_CHECK_OK(fleet_.CommitClaim(offer.worker, now + travel,
                                     offer.plan.route.stops.back().node));
  if (track_trips_) {
    trip.dispatch_time = now;
    trip.travel = travel;
    trip.group_size = group_size;
    TrackTrip(offer.worker, std::move(trip));
  }
  for (OrderId member : offer.members) {
    RemoveFromIndexes(*pool_.GetOrder(member));
    WATTER_CHECK_OK(pool_.Remove(member));
  }

  // Bookkeeping half, deferred: runs FIFO on the pipeline's consumer, in
  // the same per-member RecordServed-then-Observe sequence CommitOffer
  // uses, so the metric accumulation order — hence every float sum — is
  // bitwise identical to the unsharded path.
  pipeline_->Enqueue([this, served = std::move(served), travel, group_size,
                      now, snap] {
    for (const ServedMember& m : served) {
      metrics_.RecordServed(m.order, m.response, m.detour, group_size);
      if (observer_) {
        DecisionObservation obs;
        obs.order = m.order.id;
        obs.order_ref = &m.order;
        obs.now = now;
        obs.action = 1;
        obs.expired = false;
        obs.detour = m.detour;
        obs.demand_pickup = &snap->demand_pickup;
        obs.demand_dropoff = &snap->demand_dropoff;
        obs.supply = &snap->supply;
        observer_(obs);
      }
    }
    metrics_.AddWorkerTravel(travel);
  });
}

void WatterPlatform::RejectOrderDeferred(
    const Order& order, Time now, bool cancelled,
    const std::shared_ptr<const RoundSnapshot>& snap) {
  pipeline_->Enqueue([this, order, now, cancelled, snap] {
    // Same observe-then-record sequence as RejectOrder.
    if (observer_) {
      DecisionObservation obs;
      obs.order = order.id;
      obs.order_ref = &order;
      obs.now = now;
      obs.action = 0;
      obs.expired = true;
      obs.demand_pickup = &snap->demand_pickup;
      obs.demand_dropoff = &snap->demand_dropoff;
      obs.supply = &snap->supply;
      observer_(obs);
    }
    if (cancelled) {
      metrics_.RecordCancelled(order);
    } else {
      metrics_.RecordRejected(order);
    }
  });
  RemoveFromIndexes(order);
  WATTER_CHECK_OK(pool_.Remove(order.id));
}

void WatterPlatform::RunDecisionLoopSharded(
    const std::vector<OrderId>& ids, const std::vector<OrderId>& propose_ids,
    Time now, const std::unordered_map<OrderId, double>& thresholds) {
  // Shard-bucketed propose: the same offer per order as the flat propose
  // (ProposeOffer is pure over frozen state), but walked shard by shard so
  // each shard's orders form one contiguous slice of the work list. The
  // commit pass below re-imposes the global sorted-offers order, so the
  // bucketed visit order never shows in the results.
  std::vector<DispatchOffer> offers;
  {
    WATTER_TRACE_SPAN("round.propose");
    PhaseTimer timer(sampling_, &round_sample_.propose_s);
    std::vector<std::vector<OrderId>> buckets = pool_.SortedOrderIdsByRegion(
        num_shards_,
        [this](const Order& order) { return ShardOfNode(order.pickup); });
    std::vector<OrderId> flat_ids;
    flat_ids.reserve(propose_ids.size());
    // Budget shedding restricts the bid set; with the budget off,
    // propose_ids covers the whole pool and the filter never fires.
    const bool shedding = propose_ids.size() != ids.size();
    std::unordered_set<OrderId> eligible;
    if (shedding) eligible.insert(propose_ids.begin(), propose_ids.end());
    for (const std::vector<OrderId>& bucket : buckets) {
      for (OrderId id : bucket) {
        if (shedding && eligible.count(id) == 0) continue;
        flat_ids.push_back(id);
      }
    }
    executor_.ParallelMap(flat_ids.size(), 4, &offers, [&](size_t i) {
      return ProposeOffer(flat_ids[i], now, thresholds);
    });
    offers.erase(std::remove_if(offers.begin(), offers.end(),
                                [](const DispatchOffer& offer) {
                                  return offer.worker == kInvalidWorker;
                                }),
                 offers.end());
  }

  // Sharded conflict resolution: home shard = worker's region, member
  // shards = pickup regions. Both callbacks read only frozen round state
  // (the fleet mutates after resolution, the pool only through commits).
  ShardedResolution resolution;
  {
    WATTER_TRACE_SPAN("round.resolve");
    PhaseTimer timer(sampling_, &round_sample_.resolve_s);
    OfferShardMap shard_map;
    shard_map.num_shards = num_shards_;
    shard_map.worker_shard = [this](WorkerId worker) {
      return ShardOfNode(fleet_.worker(worker).location);
    };
    shard_map.order_shard = [this](OrderId member) {
      return ShardOfNode(pool_.GetOrder(member)->pickup);
    };
    resolution = ResolveOffersSharded(&offers, shard_map, &executor_);
  }

  dispatch_stats_.offers += static_cast<int64_t>(offers.size());
  dispatch_stats_.border_offers += resolution.border_offers;
  dispatch_stats_.border_affected += resolution.border_affected;
  // Conflict outcomes are final here; committed is counted in the staging
  // pass below, where a late-dropout fault can still abort a winner — so
  // the committed total matches the unsharded engine under faults too.
  for (OfferOutcome outcome : resolution.outcomes) {
    switch (outcome) {
      case OfferOutcome::kCommitted:
        break;
      case OfferOutcome::kWorkerConflict:
        ++dispatch_stats_.worker_conflicts;
        break;
      case OfferOutcome::kOrderConflict:
        ++dispatch_stats_.order_conflicts;
        break;
    }
  }

  // Late dropouts land on the resolve/commit seam (same point as the
  // unsharded engine): a winner whose worker just went offline fails its
  // staging claim below and is abandoned.
  ApplyLateFaults(now);

  // Deferred jobs outlive this round's live snapshot vectors, so observer
  // rounds pin a frozen copy; without an observer no job reads them.
  std::shared_ptr<const RoundSnapshot> snap;
  if (observer_) {
    auto frozen = std::make_shared<RoundSnapshot>();
    frozen->demand_pickup = demand_pickup_counts_;
    frozen->demand_dropoff = demand_dropoff_counts_;
    frozen->supply = supply_counts_;
    snap = std::move(frozen);
  }

  // Two-stage commit. Stage: claim every winner's worker in the sorted
  // total order, tagged with its claim arena — the home shard for interior
  // winners, the dedicated border arena for reconciled ones — so an
  // abandoned staging can be rolled back per shard (Fleet::ReleaseArena).
  // Resolution guaranteed the winners conflict-free against the pre-fault
  // fleet; a claim that fails anyway lost its worker to a late dropout and
  // the offer is abandoned (its members stay pooled for the sweep).
  {
    WATTER_TRACE_SPAN("round.commit");
    PhaseTimer timer(sampling_, &round_sample_.commit_s);
    const int border_arena = num_shards_;
    std::vector<bool> staged(offers.size(), false);
    for (size_t i = 0; i < offers.size(); ++i) {
      if (resolution.outcomes[i] != OfferOutcome::kCommitted) continue;
      int arena = resolution.scopes[i] == OfferScope::kInterior
                      ? resolution.home_shards[i]
                      : border_arena;
      if (fleet_.TryClaim(offers[i].worker, arena)) {
        staged[i] = true;
      } else {
        ++fault_stats_.aborted_commits;
      }
    }
    // Apply: finalize the staged claims in the same sorted order, deferring
    // each winner's bookkeeping onto the pipeline.
    for (size_t i = 0; i < offers.size(); ++i) {
      if (!staged[i]) continue;
      ++dispatch_stats_.committed;
      CommitOfferStaged(offers[i], now, snap);
    }
    // Every staged claim was finalized above; anything left is a staging
    // leak. Roll it back (graceful degradation: the workers return to the
    // idle set) rather than aborting the run, but make it loud.
    if (fleet_.claimed_count() != 0) {
      int leaked = 0;
      for (int arena = 0; arena <= num_shards_; ++arena) {
        leaked += fleet_.ReleaseArena(arena);
      }
      std::fprintf(stderr,
                   "warning: sharded commit rolled back %d leaked claims\n",
                   leaked);
    }
  }

  // Serial post-sweep, same ascending-id order and hazard RNG sequence as
  // the unsharded engine (the pool holds exactly the same survivors: the
  // committed sets are bitwise equal); only the bookkeeping is deferred.
  WATTER_TRACE_SPAN("round.sweep");
  PhaseTimer sweep_timer(sampling_, &round_sample_.sweep_s);
  for (OrderId id : ids) {
    if (!pool_.Contains(id)) continue;  // Dispatched this round.
    const Order order_copy = *pool_.GetOrder(id);
    if (options_.cancellation_hazard > 0.0 &&
        now > order_copy.WaitDeadline() &&
        rng_.Bernoulli(1.0 - std::exp(-options_.cancellation_hazard *
                                      options_.check_period))) {
      RejectOrderDeferred(order_copy, now, /*cancelled=*/true, snap);
      continue;
    }
    if (now > order_copy.LatestDispatch()) {
      RejectOrderDeferred(order_copy, now, /*cancelled=*/false, snap);
    } else if (observer_) {
      pipeline_->Enqueue([this, order_copy, now, snap] {
        DecisionObservation obs;
        obs.order = order_copy.id;
        obs.order_ref = &order_copy;
        obs.now = now;
        obs.action = 0;
        obs.expired = false;
        obs.demand_pickup = &snap->demand_pickup;
        obs.demand_dropoff = &snap->demand_dropoff;
        obs.supply = &snap->supply;
        observer_(obs);
      });
    }
  }
}

void WatterPlatform::ApplyFaults(Time now) {
  if (injector_ == nullptr) return;
  WATTER_TRACE_SPAN("round.faults");
  for (const FaultEvent& event : injector_->TakeDue(now)) {
    switch (event.kind) {
      case FaultKind::kDropout:
        HandleDropout(event.worker, now, /*late=*/false);
        break;
      case FaultKind::kReturn: {
        // Benign no-op when the worker is not offline: its dropout hit an
        // already-offline worker, or an overlapping return already fired.
        Status status = fleet_.BringOnline(event.worker, now);
        if (status.ok()) ++fault_stats_.returns;
        break;
      }
      case FaultKind::kBrownoutStart:
        ++brownout_depth_;
        if (degraded_oracle_) {
          degraded_oracle_->SetFactor(fault_spec_.brownout_factor);
        }
        break;
      case FaultKind::kBrownoutEnd:
        if (brownout_depth_ > 0) --brownout_depth_;
        if (brownout_depth_ == 0 && degraded_oracle_) {
          degraded_oracle_->SetFactor(1.0);
        }
        break;
      case FaultKind::kStall:
        // The stall is always counted (the schedule is engine-invariant);
        // only the sharded batched engine has a pipeline to actually stall.
        ++fault_stats_.stalls;
        if (pipeline_) pipeline_->InjectStall(fault_spec_.stall_ms / 1000.0);
        break;
      case FaultKind::kLateDropout:
        // Late dropouts live in their own queue (TakeLateDue); one showing
        // up here means the injector's partitioning broke.
        WATTER_CHECK(false, "late dropout in the round-boundary queue");
        break;
    }
  }
  if (brownout_depth_ > 0) ++fault_stats_.brownout_rounds;
}

void WatterPlatform::ApplyLateFaults(Time now) {
  if (injector_ == nullptr) return;
  for (const FaultEvent& event : injector_->TakeLateDue(now)) {
    HandleDropout(event.worker, now, /*late=*/true);
  }
}

void WatterPlatform::HandleDropout(WorkerId id, Time now, bool late) {
  WorkerTake take = fleet_.TakeOffline(id);
  if (take == WorkerTake::kOffline) return;  // Already down; nothing new.
  if (late) {
    ++fault_stats_.late_dropouts;
  } else {
    ++fault_stats_.dropouts;
  }
  if (take == WorkerTake::kBusy) {
    ++fault_stats_.midroute_dropouts;
    RecoverTrip(id, now);
  }
  // kIdle and kClaimed need no recovery: an evicted idle worker had no
  // riders, and a discarded claim surfaces as a FailedPrecondition at the
  // claim holder's CommitClaim (counted there as an aborted commit).
}

void WatterPlatform::RecoverTrip(WorkerId id, Time now) {
  auto it = active_trips_.find(id);
  // Dispatches overwrite the entry and only busy workers reach here, so
  // the tracked trip is always the interrupted one.
  WATTER_CHECK(it != active_trips_.end(),
               "dropout recovery: no tracked trip for a busy worker");
  ActiveTrip trip = std::move(it->second);
  active_trips_.erase(it);

  // Bookkeeping barrier: deferred RecordServed jobs for this trip must land
  // before the reversal subtracts them (sharded engine only; recovery runs
  // at a serial point, so a mid-round drain is safe).
  if (pipeline_) pipeline_->Drain();

  // The worker stops driving now: credit back the unfinished remainder of
  // the recorded trip travel.
  double elapsed = now - trip.dispatch_time;
  double remaining = std::max(0.0, trip.travel - elapsed);
  if (remaining > 0.0) metrics_.AddWorkerTravel(-remaining);

  for (const AboardMember& member : trip.members) {
    if (member.dropoff_time <= now) continue;  // Delivered before the drop.
    metrics_.ReverseServed(member.order, member.response, member.detour,
                           trip.group_size);
    Order order = member.order;
    // Grace-extended re-insert: the rider tolerates `grace` extra seconds
    // after a dropout. If even the extended deadline leaves no feasible
    // dispatch, the service has failed terminally — penalized with the
    // ORIGINAL order's penalty, like a rejection.
    order.deadline = std::max(order.deadline, now) + fault_spec_.grace;
    if (order.LatestDispatch() >= now) {
      InsertArrival(order, now);
      ++fault_stats_.recovered_orders;
    } else {
      metrics_.RecordFailedService(member.order);
      ++fault_stats_.failed_services;
      Observe(member.order, now, /*action=*/0, /*expired=*/true, 0.0);
    }
  }
}

void WatterPlatform::TrackTrip(WorkerId worker, ActiveTrip trip) {
  active_trips_[worker] = std::move(trip);
}

bool WatterPlatform::SoloEligible(const Order& order, Time now) const {
  if (now > order.LatestDispatch()) return false;  // Reject, not solo.
  return now > order.WaitDeadline() ||
         now + options_.check_period > order.LatestDispatch();
}

int64_t WatterPlatform::EstimateWorkUnits(OrderId id, Time now) const {
  // Mirrors what ProposeOffer would do for this order: a group bid costs
  // the candidate probe plus the worker-candidate refinement; an eligible
  // solo bid additionally pays a planner plan; everything else is one probe
  // of bookkeeping. Estimated from the same frozen post-refresh caches the
  // propose phase reads, so the charge is deterministic.
  const Order* order = pool_.GetOrder(id);
  if (order == nullptr) return 1;
  if (pool_.PeekBest(id, now) != nullptr) {
    return 1 + options_.worker_candidates;
  }
  if (options_.solo_fallback && SoloEligible(*order, now)) {
    return 1 + kPlanWorkUnits + options_.worker_candidates;
  }
  return 1;
}

std::vector<OrderId> WatterPlatform::BudgetedIds(
    const std::vector<OrderId>& ids, Time now) {
  WATTER_TRACE_SPAN("round.budget");
  // Urgency order: earliest latest-dispatch first, id as the tiebreak.
  // Charging in this order means the budget always funds the orders
  // closest to expiry.
  std::vector<std::pair<Time, OrderId>> urgency;
  urgency.reserve(ids.size());
  for (OrderId id : ids) {
    urgency.emplace_back(pool_.GetOrder(id)->LatestDispatch(), id);
  }
  std::sort(urgency.begin(), urgency.end());

  const int64_t limit = effective_budget_;
  int64_t spent = 0;
  int64_t shed = 0;
  std::vector<OrderId> eligible;
  eligible.reserve(ids.size());
  for (size_t i = 0; i < urgency.size(); ++i) {
    OrderId id = urgency[i].second;
    int64_t units = EstimateWorkUnits(id, now);
    // Always fund at least one order per round — a budget below the
    // cheapest single bid must still make progress.
    if (limit > 0 && spent + units > limit && !eligible.empty()) {
      shed = static_cast<int64_t>(urgency.size() - i);
      break;
    }
    spent += units;
    eligible.push_back(id);
  }
  round_units_ = spent;
  fault_stats_.work_units += spent;
  if (shed > 0) {
    fault_stats_.shed_orders += shed;
    ++fault_stats_.degraded_rounds;
  }
  // Ascending id: a canonical order for the engines' membership tests and
  // the batched propose (conflict resolution re-sorts offers anyway).
  std::sort(eligible.begin(), eligible.end());
  return eligible;
}

void WatterPlatform::AdjustWatchdog(double round_ms) {
  if (round_ms > options_.watchdog_ms) {
    ++fault_stats_.watchdog_trips;
    // Multiplicative decrease. When currently unlimited, start from what
    // the overrun round actually spent (or a small floor if unknown).
    int64_t base = effective_budget_ > 0
                       ? effective_budget_
                       : std::max(round_units_, int64_t{2} * kMinWatchdogBudget);
    effective_budget_ = std::max(kMinWatchdogBudget, base / 2);
  } else if (effective_budget_ > 0) {
    // Additive-ish recovery: ~25% growth per compliant round, back toward
    // the configured budget — or all the way to unlimited when none is set.
    int64_t grown = effective_budget_ + effective_budget_ / 4 + 1;
    if (work_budget_ > 0) {
      effective_budget_ = std::min(grown, work_budget_);
    } else if (grown > (int64_t{1} << 40)) {
      effective_budget_ = 0;  // Fully recovered: unlimited again.
    } else {
      effective_budget_ = grown;
    }
  }
}

void WatterPlatform::FinishRoundSample(Time now, double total_seconds) {
  if (!sampling_) return;
  obs::RoundSample& sample = round_sample_;
  sample.round = ++round_counter_;
  sample.now = now;
  sample.total_s = total_seconds;

  // End-of-round state. depth() is a mutex peek at the consumer backlog —
  // diagnostic only, so the inherent raciness is fine.
  sample.pool_size = static_cast<int64_t>(pool_.size());
  sample.shareability_edges = pool_.graph().edge_count();
  sample.pipeline_depth = pipeline_ ? pipeline_->depth() : 0;

  // Per-round deltas of the cumulative counters; counter_base_ reuses the
  // sample fields to hold the previous round's cumulative values.
  const auto delta = [](int64_t current, int64_t& base) {
    int64_t d = current - base;
    base = current;
    return d;
  };
  obs::RoundSample& base = counter_base_;
  sample.offers = delta(dispatch_stats_.offers, base.offers);
  sample.committed = delta(dispatch_stats_.committed, base.committed);
  sample.worker_conflicts =
      delta(dispatch_stats_.worker_conflicts, base.worker_conflicts);
  sample.order_conflicts =
      delta(dispatch_stats_.order_conflicts, base.order_conflicts);
  sample.planner_plans =
      delta(pool_.planner().plan_count(), base.planner_plans);
  sample.pair_tests = delta(pool_.graph().pair_tests(), base.pair_tests);
  sample.recomputes =
      delta(pool_.best_groups().recompute_count(), base.recomputes);
  sample.plan_cache_hits =
      delta(pool_.best_groups().plan_cache_hits(), base.plan_cache_hits);
  sample.plan_cache_misses =
      delta(pool_.best_groups().plan_cache_misses(), base.plan_cache_misses);
  sample.geo_queries = delta(scenario_->oracle->query_count(),
                             base.geo_queries);
  sample.geo_batches = delta(scenario_->oracle->batch_count(),
                             base.geo_batches);
  // Robustness columns: deltas of the cumulative fault counters, plus the
  // current brownout state. All stay zero when faults/budget are off.
  sample.fault_events = delta(fault_stats_.dropouts +
                                  fault_stats_.late_dropouts +
                                  fault_stats_.returns + fault_stats_.stalls,
                              base.fault_events);
  sample.recovered = delta(fault_stats_.recovered_orders, base.recovered);
  sample.failed = delta(fault_stats_.failed_services, base.failed);
  sample.shed = delta(fault_stats_.shed_orders, base.shed);
  sample.degraded = brownout_depth_ > 0 ? 1 : 0;
  sample.work_units = delta(fault_stats_.work_units, base.work_units);

  timeline_->Record(sample);

  // Phase-duration histograms ride on the same sampling pass (the registry
  // is armed whenever a trace or timeline was requested).
  obs::RecordLatency("round.total_s", sample.total_s, /*hi_seconds=*/60.0);
  obs::RecordLatency("round.maintenance_s", sample.maintenance_s, 60.0);
  obs::RecordLatency("round.refresh_s", sample.refresh_s, 60.0);
  obs::RecordLatency("round.propose_s", sample.propose_s, 60.0);
  obs::RecordLatency("round.resolve_s", sample.resolve_s, 60.0);
  obs::RecordLatency("round.commit_s", sample.commit_s, 60.0);
  obs::RecordLatency("round.sweep_s", sample.sweep_s, 60.0);
}

MetricsReport WatterPlatform::Run() {
  // Arm the process-global observability sinks before the first round.
  // Both stay enabled for the rest of the process (they accumulate across
  // runs by design; see docs/OBSERVABILITY.md "Lifecycle") — the platform
  // merely exports the current state at the end of this run.
  if (!trace_path_.empty()) {
    obs::TraceRecorder::Global().SetCurrentThreadName("main");
    obs::TraceRecorder::Global().Enable();
  }
  if (!trace_path_.empty() || sampling_) {
    obs::HistogramRegistry::Global().Enable();
  }
  Stopwatch algorithm_time;
  {
    ScopedTimer timer(&algorithm_time);
    const std::vector<Order>& orders = scenario_->orders;
    size_t next_order = 0;
    Time next_check =
        orders.empty() ? 0.0 : orders.front().release + options_.check_period;
    Time last_event = orders.empty() ? 0.0 : orders.front().release;
    while (next_order < orders.size() || pool_.size() > 0) {
      Time arrival = next_order < orders.size() ? orders[next_order].release
                                                : kInfCost;
      if (pool_.size() == 0 && arrival > next_check) {
        // Nothing to check; fast-forward to the next arrival.
        next_check = arrival + options_.check_period;
      }
      if (arrival <= next_check) {
        fleet_.ReleaseUntil(arrival);
        InsertArrival(orders[next_order], arrival);
        ++next_order;
        last_event = arrival;
      } else {
        fleet_.ReleaseUntil(next_check);
        RunCheck(next_check);
        last_event = next_check;
        next_check += options_.check_period;
      }
    }
    // Pipeline barrier: all deferred bookkeeping must land before anything
    // reads the metrics (or before the timer stops attributing its cost).
    if (pipeline_) pipeline_->Drain();
    if (!orders.empty()) {
      metrics_.SetFleetInfo(fleet_.size(),
                            last_event - orders.front().release);
    }
  }
  metrics_.AddAlgorithmTime(algorithm_time.ElapsedSeconds());
  MetricsReport report = metrics_.Report();
  // Pool-side work counters: deterministic for a fixed scenario, so bench
  // baselines can diff them across PRs (docs/PERFORMANCE.md).
  report.pool.best_group_recomputes = pool_.best_groups().recompute_count();
  report.pool.groups_evaluated = pool_.best_groups().groups_evaluated();
  report.pool.planner_plans = pool_.planner().plan_count();
  report.pool.pair_tests = pool_.graph().pair_tests();
  report.pool.plan_cache_hits = pool_.best_groups().plan_cache_hits();
  report.pool.plan_cache_misses = pool_.best_groups().plan_cache_misses();
  report.pool.plan_cache_replans = pool_.best_groups().plan_cache_replans();
  report.pool.plan_cache_evictions =
      pool_.best_groups().plan_cache_evictions();
  report.pool.plan_cache_seeds = pool_.best_groups().plan_cache_seeds();
  report.pool.reverse_index_fanout =
      pool_.best_groups().reverse_index_fanout();
  // Oracle-side counters: diagnostic only (racy increments, backend-specific
  // totals); cumulative since oracle construction, so they include scenario
  // generation's shortest-cost sampling.
  const TravelTimeOracle& oracle = *scenario_->oracle;
  report.geo.queries = oracle.query_count();
  report.geo.batches = oracle.batch_count();
  report.geo.batch_points = oracle.batch_points();
  report.geo.bucket_build_seconds = oracle.bucket_build_seconds();
  // Batched-engine counters (zero under kSerial). Offer/outcome totals are
  // deterministic across threads AND shards; the border splits describe the
  // shard layout itself (metrics.h).
  report.dispatch = dispatch_stats_;
  // Fault/degradation counters (all zero when faults and the budget are
  // off). Deterministic except watchdog_trips (metrics.h).
  report.faults = fault_stats_;

  // Export the observability artifacts last, after the pipeline drain and
  // the pool's final fan-in — every traced thread has synchronized with
  // this one, so the recorder is quiescent (trace.h). Failures only warn:
  // diagnostics must never fail a run.
  if (timeline_) {
    const bool csv = timeline_path_.size() >= 4 &&
                     timeline_path_.compare(timeline_path_.size() - 4, 4,
                                            ".csv") == 0;
    bool ok = csv ? timeline_->WriteCsv(timeline_path_)
                  : timeline_->WriteJson(timeline_path_);
    if (!ok) {
      std::fprintf(stderr, "warning: could not write timeline to %s\n",
                   timeline_path_.c_str());
    }
  }
  if (!trace_path_.empty() &&
      !obs::TraceRecorder::Global().ExportChromeTrace(trace_path_)) {
    std::fprintf(stderr, "warning: could not write trace to %s\n",
                 trace_path_.c_str());
  }
  return report;
}

MetricsReport RunWatter(Scenario* scenario, ThresholdProvider* provider,
                        const SimOptions& options) {
  WatterPlatform platform(scenario, provider, options);
  return platform.Run();
}

}  // namespace watter
