#include "src/sim/commit_pipeline.h"

#include <chrono>

#include "src/obs/histogram_registry.h"
#include "src/obs/trace.h"

namespace watter {

CommitPipeline::CommitPipeline(int max_depth) : max_depth_(max_depth) {
  consumer_ = std::thread([this] {
    obs::TraceRecorder::Global().SetCurrentThreadName("commit-pipeline");
    ConsumerLoop();
  });
}

CommitPipeline::~CommitPipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();  // Unblock any producer stuck on a full queue.
  consumer_.join();
}

void CommitPipeline::Enqueue(std::function<void()> job) {
  // Pipeline lag = how long bookkeeping sits behind the consumer. Only
  // measured when the latency registry is armed; the wrapper captures the
  // enqueue instant so the consumer can report queue-wait on dequeue.
  if (obs::HistogramRegistry::enabled()) {
    auto enqueued = std::chrono::steady_clock::now();
    job = [enqueued, inner = std::move(job)] {
      double lag = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - enqueued)
                       .count();
      obs::RecordLatency("commit_pipeline.lag_s", lag, /*hi_seconds=*/10.0);
      inner();
    };
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_depth_ > 0) {
      // Backpressure: a producer ahead of a stalled consumer waits here
      // instead of growing the queue without bound. Wall-clock only — job
      // order (the determinism-bearing property) is unchanged.
      space_cv_.wait(lock, [this] {
        return stop_ || static_cast<int>(queue_.size()) < max_depth_;
      });
      if (stop_) return;  // Shutting down; the job would never run anyway.
    }
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void CommitPipeline::Drain() {
  WATTER_TRACE_SPAN("pipeline.drain");
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

Status CommitPipeline::DrainFor(double timeout_seconds) {
  WATTER_TRACE_SPAN("pipeline.drain");
  std::unique_lock<std::mutex> lock(mu_);
  bool drained = drain_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return queue_.empty() && !running_; });
  if (!drained) {
    return Status::DeadlineExceeded(
        "commit pipeline still has " +
        std::to_string(queue_.size() + (running_ ? 1 : 0)) +
        " job(s) outstanding");
  }
  return Status::Ok();
}

void CommitPipeline::InjectStall(double seconds) {
  Enqueue([this, seconds] {
    WATTER_TRACE_SPAN("pipeline.stall");
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    std::lock_guard<std::mutex> lock(mu_);
    ++stalls_executed_;
  });
}

int CommitPipeline::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size()) + (running_ ? 1 : 0);
}

int64_t CommitPipeline::stalls_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stalls_executed_;
}

void CommitPipeline::ConsumerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    if (max_depth_ > 0) space_cv_.notify_one();
    lock.unlock();
    {
      WATTER_TRACE_SPAN_HOT("pipeline.job");
      job();  // Strictly FIFO: one consumer, jobs run in enqueue order.
    }
    lock.lock();
    running_ = false;
    if (queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace watter
