#include "src/sim/commit_pipeline.h"

namespace watter {

CommitPipeline::CommitPipeline() {
  consumer_ = std::thread([this] { ConsumerLoop(); });
}

CommitPipeline::~CommitPipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  consumer_.join();
}

void CommitPipeline::Enqueue(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void CommitPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

void CommitPipeline::ConsumerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    lock.unlock();
    job();  // Strictly FIFO: one consumer, jobs run in enqueue order.
    lock.lock();
    running_ = false;
    if (queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace watter
