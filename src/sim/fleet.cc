#include "src/sim/fleet.h"

#include "src/common/status.h"

namespace watter {

Fleet::Fleet(std::vector<Worker> workers, const Graph* graph, int grid_cells)
    : workers_(std::move(workers)),
      graph_(graph),
      idle_index_(graph->MinCorner(), graph->MaxCorner(), grid_cells) {
  for (const Worker& worker : workers_) {
    idle_index_.Insert(worker.id, graph_->node_point(worker.location));
  }
}

void Fleet::ReleaseUntil(Time now) {
  while (!busy_.empty() && busy_.top().first <= now) {
    WorkerId id = busy_.top().second;
    busy_.pop();
    Worker& worker = workers_[id - 1];
    worker.busy = false;
    idle_index_.Insert(id, graph_->node_point(worker.location));
  }
}

WorkerId Fleet::FindClosestIdle(NodeId target, int min_capacity,
                                TravelTimeOracle* oracle,
                                int candidates) const {
  auto nearby = idle_index_.KNearest(
      candidates, graph_->node_point(target),
      [this, min_capacity](int64_t id) {
        return workers_[id - 1].capacity >= min_capacity;
      });
  // Exact refinement of the Euclidean pre-filter, issued as one many-to-one
  // batch: all candidate workers share `target`, which is exactly the shape
  // the bucket-CH backend answers with K forward spaces + 1 backward sweep
  // instead of K bidirectional queries. Batch results equal the Cost() loop
  // bitwise, so the selection below is backend-independent. Buffers are
  // local because the batched dispatch engine probes concurrently.
  std::vector<NodeId> probe_locations;
  probe_locations.reserve(nearby.size());
  for (int64_t id : nearby) {
    probe_locations.push_back(workers_[id - 1].location);
  }
  std::vector<double> probe_costs(probe_locations.size());
  oracle->ManyToOne(probe_locations, target, probe_costs);
  WorkerId best = kInvalidWorker;
  double best_cost = kInfCost;
  for (size_t i = 0; i < nearby.size(); ++i) {
    if (probe_costs[i] < best_cost) {
      best_cost = probe_costs[i];
      best = workers_[nearby[i] - 1].id;
    }
  }
  return best;
}

std::vector<WorkerId> Fleet::IdleWorkerIds() const {
  std::vector<WorkerId> ids;
  ids.reserve(idle_index_.size());
  for (int64_t id : idle_index_.AllIds()) {
    ids.push_back(static_cast<WorkerId>(id));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool Fleet::TryClaim(WorkerId id, int arena) {
  // A worker is claimable exactly while it sits in the idle index: driving
  // workers left it in CommitClaim, claimed ones in a previous TryClaim.
  if (!idle_index_.Contains(id)) return false;
  WATTER_CHECK_OK(idle_index_.Remove(id));
  workers_[id - 1].busy = true;
  claimed_.emplace(id, arena);
  return true;
}

void Fleet::CommitClaim(WorkerId id, Time until, NodeId final_node) {
  // Committing an unclaimed worker means the commit pass and the fleet
  // state diverged.
  WATTER_CHECK(claimed_.erase(id) == 1, "commit of unclaimed worker");
  Worker& worker = workers_[id - 1];
  worker.available_at = until;
  worker.location = final_node;
  busy_.push({until, id});
}

void Fleet::ReleaseClaim(WorkerId id) {
  WATTER_CHECK(claimed_.erase(id) == 1, "release of unclaimed worker");
  Worker& worker = workers_[id - 1];
  worker.busy = false;
  idle_index_.Insert(id, graph_->node_point(worker.location));
}

int Fleet::ReleaseArena(int arena) {
  std::vector<WorkerId> staged;
  for (const auto& [id, claim_arena] : claimed_) {
    if (claim_arena == arena) staged.push_back(id);
  }
  // Ascending-id rollback: the released workers re-enter the idle index in
  // a deterministic order, so later probes never depend on map iteration.
  std::sort(staged.begin(), staged.end());
  for (WorkerId id : staged) ReleaseClaim(id);
  return static_cast<int>(staged.size());
}

void Fleet::Dispatch(WorkerId id, Time until, NodeId final_node) {
  // Dispatch is only called for workers FindClosestIdle returned, so the
  // claim must succeed.
  WATTER_CHECK(TryClaim(id), "dispatch of non-idle worker");
  CommitClaim(id, until, final_node);
}

}  // namespace watter
