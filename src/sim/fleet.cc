#include "src/sim/fleet.h"

#include <algorithm>

#include "src/common/status.h"

namespace watter {

Fleet::Fleet(std::vector<Worker> workers, const Graph* graph, int grid_cells)
    : workers_(std::move(workers)),
      graph_(graph),
      idle_index_(graph->MinCorner(), graph->MaxCorner(), grid_cells),
      trip_epoch_(workers_.size(), 0) {
  for (const Worker& worker : workers_) {
    idle_index_.Insert(worker.id, graph_->node_point(worker.location));
  }
}

void Fleet::ReleaseUntil(Time now) {
  while (!busy_.empty() && std::get<0>(busy_.top()) <= now) {
    auto [until, id, epoch] = busy_.top();
    busy_.pop();
    // A mismatched epoch marks a trip cancelled by TakeOffline: the worker
    // is no longer driving this route, so the entry is dead weight.
    if (epoch != trip_epoch_[id - 1]) continue;
    Worker& worker = workers_[id - 1];
    worker.busy = false;
    idle_index_.Insert(id, graph_->node_point(worker.location));
  }
}

WorkerId Fleet::FindClosestIdle(NodeId target, int min_capacity,
                                TravelTimeOracle* oracle,
                                int candidates) const {
  auto nearby = idle_index_.KNearest(
      candidates, graph_->node_point(target),
      [this, min_capacity](int64_t id) {
        return workers_[id - 1].capacity >= min_capacity;
      });
  // Exact refinement of the Euclidean pre-filter, issued as one many-to-one
  // batch: all candidate workers share `target`, which is exactly the shape
  // the bucket-CH backend answers with K forward spaces + 1 backward sweep
  // instead of K bidirectional queries. Batch results equal the Cost() loop
  // bitwise, so the selection below is backend-independent. Buffers are
  // local because the batched dispatch engine probes concurrently.
  std::vector<NodeId> probe_locations;
  probe_locations.reserve(nearby.size());
  for (int64_t id : nearby) {
    probe_locations.push_back(workers_[id - 1].location);
  }
  std::vector<double> probe_costs(probe_locations.size());
  oracle->ManyToOne(probe_locations, target, probe_costs);
  WorkerId best = kInvalidWorker;
  double best_cost = kInfCost;
  for (size_t i = 0; i < nearby.size(); ++i) {
    if (probe_costs[i] < best_cost) {
      best_cost = probe_costs[i];
      best = workers_[nearby[i] - 1].id;
    }
  }
  return best;
}

std::vector<WorkerId> Fleet::IdleWorkerIds() const {
  std::vector<WorkerId> ids;
  ids.reserve(idle_index_.size());
  for (int64_t id : idle_index_.AllIds()) {
    ids.push_back(static_cast<WorkerId>(id));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool Fleet::TryClaim(WorkerId id, int arena) {
  // A worker is claimable exactly while it sits in the idle index: driving
  // workers left it in CommitClaim, claimed ones in a previous TryClaim,
  // offline ones in TakeOffline.
  if (!idle_index_.Contains(id)) return false;
  WATTER_CHECK_OK(idle_index_.Remove(id));
  workers_[id - 1].busy = true;
  claimed_.emplace(id, arena);
  return true;
}

Status Fleet::CommitClaim(WorkerId id, Time until, NodeId final_node) {
  // The claim can legitimately be gone: a fault may have taken the claimed
  // worker offline between resolution and commit. The caller treats this
  // like losing the worker-contention conflict.
  if (claimed_.erase(id) != 1) {
    return Status::FailedPrecondition("commit of unclaimed worker " +
                                      std::to_string(id));
  }
  Worker& worker = workers_[id - 1];
  worker.available_at = until;
  worker.location = final_node;
  busy_.push({until, id, trip_epoch_[id - 1]});
  return Status::Ok();
}

Status Fleet::ReleaseClaim(WorkerId id) {
  if (claimed_.erase(id) != 1) {
    return Status::FailedPrecondition("release of unclaimed worker " +
                                      std::to_string(id));
  }
  Worker& worker = workers_[id - 1];
  worker.busy = false;
  idle_index_.Insert(id, graph_->node_point(worker.location));
  return Status::Ok();
}

int Fleet::ReleaseArena(int arena) {
  std::vector<WorkerId> staged;
  for (const auto& [id, claim_arena] : claimed_) {
    if (claim_arena == arena) staged.push_back(id);
  }
  // Ascending-id rollback: the released workers re-enter the idle index in
  // a deterministic order, so later probes never depend on map iteration.
  std::sort(staged.begin(), staged.end());
  // The ids were collected from claimed_ this instant, so each release must
  // succeed — failure here is a real invariant break, not a fault path.
  for (WorkerId id : staged) WATTER_CHECK_OK(ReleaseClaim(id));
  return static_cast<int>(staged.size());
}

Status Fleet::Dispatch(WorkerId id, Time until, NodeId final_node) {
  if (!TryClaim(id)) {
    return Status::FailedPrecondition("dispatch of non-idle worker " +
                                      std::to_string(id));
  }
  return CommitClaim(id, until, final_node);
}

WorkerTake Fleet::TakeOffline(WorkerId id) {
  Worker& worker = workers_[id - 1];
  if (worker.offline) return WorkerTake::kOffline;
  worker.offline = true;
  ++offline_count_;
  if (idle_index_.Contains(id)) {
    WATTER_CHECK_OK(idle_index_.Remove(id));
    worker.busy = false;
    return WorkerTake::kIdle;
  }
  if (claimed_.erase(id) == 1) {
    // The claim dies with the worker; the commit pass notices when its
    // CommitClaim/ReleaseClaim comes back FailedPrecondition.
    worker.busy = false;
    return WorkerTake::kClaimed;
  }
  // Mid-route: cancel the trip by bumping the epoch; the busy-heap entry
  // recorded the old epoch and will be skipped when it surfaces.
  ++trip_epoch_[id - 1];
  worker.busy = false;
  return WorkerTake::kBusy;
}

Status Fleet::BringOnline(WorkerId id, Time now) {
  Worker& worker = workers_[id - 1];
  if (!worker.offline) {
    return Status::FailedPrecondition("worker " + std::to_string(id) +
                                      " is not offline");
  }
  worker.offline = false;
  worker.busy = false;
  worker.available_at = now;
  --offline_count_;
  idle_index_.Insert(id, graph_->node_point(worker.location));
  return Status::Ok();
}

}  // namespace watter
