// Fleet: worker availability tracking and closest-idle-worker lookup.
//
// WATTER workers serve one order group at a time (paper Section II); a
// dispatched worker is busy until the route completes, then reappears idle
// at the route's last stop. Idle workers are indexed in the spatial grid so
// "assign the group to the closest available worker" is a cheap k-NN probe
// refined by exact travel costs.
//
// Fault injection (docs/ROBUSTNESS.md) adds an offline dimension: a worker
// can be taken offline from any state — idle, claimed, or mid-route — and
// later brought back online at its recorded location. Mid-route takedowns
// invalidate the worker's busy-heap entry via a per-worker trip epoch
// instead of heap surgery: the entry stays in the heap but is skipped when
// popped, because its recorded epoch no longer matches.
#ifndef WATTER_SIM_FLEET_H_
#define WATTER_SIM_FLEET_H_

#include <cstdint>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/geo/graph.h"
#include "src/geo/grid_index.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// The state a worker was in when TakeOffline removed it.
enum class WorkerTake {
  kIdle,     // Was idle; removed from the spatial index.
  kClaimed,  // Was claimed but uncommitted; the claim was discarded.
  kBusy,     // Was mid-route; the caller owns trip recovery.
  kOffline,  // Was already offline; the call was a no-op.
};

/// Manages worker state over simulated time.
class Fleet {
 public:
  /// `graph` supplies node locations for the spatial index; must outlive
  /// the fleet. All workers start idle at their initial locations.
  Fleet(std::vector<Worker> workers, const Graph* graph, int grid_cells);

  /// Moves every worker whose delivery finished by `now` back to idle.
  void ReleaseUntil(Time now);

  /// Returns the idle worker closest (by travel time to `target`) among the
  /// `candidates` nearest by Euclidean distance, with capacity >=
  /// `min_capacity`; kInvalidWorker if none qualifies. Pure read: safe to
  /// call concurrently (the batched propose phase probes the frozen idle
  /// set in parallel) as long as `oracle` is thread-safe — all are.
  WorkerId FindClosestIdle(NodeId target, int min_capacity,
                           TravelTimeOracle* oracle, int candidates = 8) const;

  /// Two-phase dispatch, used by the batched commit pass (docs/DISPATCH.md):
  ///
  ///   TryClaim(w, arena)   reserve an idle worker; later probes skip it
  ///   CommitClaim(w, ...)  finalize: busy until `until` at `final_node`
  ///   ReleaseClaim(w)      roll back an unfinalized claim; idle again
  ///   ReleaseArena(a)      roll back every unfinalized claim in arena `a`
  ///
  /// TryClaim returns false when the worker is not currently idle (claimed,
  /// driving, or offline) — the caller's offer then loses the
  /// worker-contention conflict. `arena` tags the claim for bulk rollback:
  /// the sharded commit pass stages each shard's claims in their own arena
  /// (border winners in a dedicated extra arena) so a whole shard's staging
  /// can be rolled back as one unit if it is abandoned before CommitClaim.
  /// ReleaseArena rolls its claims back in ascending worker-id order
  /// (deterministic) and returns how many it released. Claims are
  /// serial-phase only; they are not thread-safe.
  ///
  /// CommitClaim and ReleaseClaim return FailedPrecondition instead of
  /// aborting when the worker holds no claim — reachable when a fault takes
  /// a claimed worker offline between resolution and commit, so the platform
  /// loop handles it as a recoverable conflict (docs/ROBUSTNESS.md).
  bool TryClaim(WorkerId id, int arena = 0);
  Status CommitClaim(WorkerId id, Time until, NodeId final_node);
  Status ReleaseClaim(WorkerId id);
  int ReleaseArena(int arena);

  /// Unfinalized claims currently outstanding (all arenas).
  int claimed_count() const { return static_cast<int>(claimed_.size()); }

  /// One-shot claim + commit for the serial dispatch path. Fails with
  /// FailedPrecondition when the worker is not currently idle.
  Status Dispatch(WorkerId id, Time until, NodeId final_node);

  /// Takes a worker offline from whatever state it is in and reports that
  /// state. Idle workers leave the spatial index; claimed workers lose
  /// their claim (the commit pass sees the claim vanish and must treat the
  /// offer as lost); busy workers get their trip epoch bumped so the
  /// busy-heap entry is ignored — the caller is responsible for recovering
  /// the interrupted trip's riders. Serial-phase only.
  WorkerTake TakeOffline(WorkerId id);

  /// Brings an offline worker back online, idle at its recorded location.
  /// FailedPrecondition if the worker is not offline.
  Status BringOnline(WorkerId id, Time now);

  /// Workers currently offline.
  int offline_count() const { return offline_count_; }

  const Worker& worker(WorkerId id) const { return workers_[id - 1]; }
  int idle_count() const { return static_cast<int>(idle_index_.size()); }
  int size() const { return static_cast<int>(workers_.size()); }

  /// Idle workers per grid cell (the RL supply feature sW).
  std::vector<int> IdleCellCounts() const { return idle_index_.CellCounts(); }

  /// Ids of all currently idle workers, ascending.
  std::vector<WorkerId> IdleWorkerIds() const;

  /// The spatial grid geometry (shared with demand features).
  const GridIndex& idle_index() const { return idle_index_; }

 private:
  std::vector<Worker> workers_;  // Indexed by id - 1.
  const Graph* graph_;
  GridIndex idle_index_;
  // Min-heap of (available_at, worker id, trip epoch) for busy workers.
  // Entries whose epoch no longer matches trip_epoch_[id - 1] are stale
  // (their trip was cancelled by TakeOffline) and skipped on pop.
  using BusyEntry = std::tuple<Time, WorkerId, uint32_t>;
  std::priority_queue<BusyEntry, std::vector<BusyEntry>,
                      std::greater<BusyEntry>>
      busy_;
  // Workers claimed but not yet committed/released, tagged with the claim
  // arena that staged them (commit-pass state).
  std::unordered_map<WorkerId, int> claimed_;
  std::vector<uint32_t> trip_epoch_;  // Indexed by id - 1.
  int offline_count_ = 0;
};

}  // namespace watter

#endif  // WATTER_SIM_FLEET_H_
