// Fleet: worker availability tracking and closest-idle-worker lookup.
//
// WATTER workers serve one order group at a time (paper Section II); a
// dispatched worker is busy until the route completes, then reappears idle
// at the route's last stop. Idle workers are indexed in the spatial grid so
// "assign the group to the closest available worker" is a cheap k-NN probe
// refined by exact travel costs.
#ifndef WATTER_SIM_FLEET_H_
#define WATTER_SIM_FLEET_H_

#include <queue>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"
#include "src/geo/graph.h"
#include "src/geo/grid_index.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// Manages worker state over simulated time.
class Fleet {
 public:
  /// `graph` supplies node locations for the spatial index; must outlive
  /// the fleet. All workers start idle at their initial locations.
  Fleet(std::vector<Worker> workers, const Graph* graph, int grid_cells);

  /// Moves every worker whose delivery finished by `now` back to idle.
  void ReleaseUntil(Time now);

  /// Returns the idle worker closest (by travel time to `target`) among the
  /// `candidates` nearest by Euclidean distance, with capacity >=
  /// `min_capacity`; kInvalidWorker if none qualifies. Pure read: safe to
  /// call concurrently (the batched propose phase probes the frozen idle
  /// set in parallel) as long as `oracle` is thread-safe — all are.
  WorkerId FindClosestIdle(NodeId target, int min_capacity,
                           TravelTimeOracle* oracle, int candidates = 8) const;

  /// Two-phase dispatch, used by the batched commit pass (docs/DISPATCH.md):
  ///
  ///   TryClaim(w, arena)   reserve an idle worker; later probes skip it
  ///   CommitClaim(w, ...)  finalize: busy until `until` at `final_node`
  ///   ReleaseClaim(w)      roll back an unfinalized claim; idle again
  ///   ReleaseArena(a)      roll back every unfinalized claim in arena `a`
  ///
  /// TryClaim returns false when the worker is not currently idle (claimed
  /// or driving) — the caller's offer then loses the worker-contention
  /// conflict. `arena` tags the claim for bulk rollback: the sharded commit
  /// pass stages each shard's claims in their own arena (border winners in
  /// a dedicated extra arena) so a whole shard's staging can be rolled back
  /// as one unit if it is abandoned before CommitClaim. ReleaseArena rolls
  /// its claims back in ascending worker-id order (deterministic) and
  /// returns how many it released. Claims are serial-phase only; they are
  /// not thread-safe.
  bool TryClaim(WorkerId id, int arena = 0);
  void CommitClaim(WorkerId id, Time until, NodeId final_node);
  void ReleaseClaim(WorkerId id);
  int ReleaseArena(int arena);

  /// Unfinalized claims currently outstanding (all arenas).
  int claimed_count() const { return static_cast<int>(claimed_.size()); }

  /// One-shot claim + commit for the serial dispatch path. The worker must
  /// currently be idle.
  void Dispatch(WorkerId id, Time until, NodeId final_node);

  const Worker& worker(WorkerId id) const { return workers_[id - 1]; }
  int idle_count() const { return static_cast<int>(idle_index_.size()); }
  int size() const { return static_cast<int>(workers_.size()); }

  /// Idle workers per grid cell (the RL supply feature sW).
  std::vector<int> IdleCellCounts() const { return idle_index_.CellCounts(); }

  /// Ids of all currently idle workers, ascending.
  std::vector<WorkerId> IdleWorkerIds() const;

  /// The spatial grid geometry (shared with demand features).
  const GridIndex& idle_index() const { return idle_index_; }

 private:
  std::vector<Worker> workers_;  // Indexed by id - 1.
  const Graph* graph_;
  GridIndex idle_index_;
  // Min-heap of (available_at, worker id) for busy workers.
  using BusyEntry = std::pair<Time, WorkerId>;
  std::priority_queue<BusyEntry, std::vector<BusyEntry>,
                      std::greater<BusyEntry>>
      busy_;
  // Workers claimed but not yet committed/released, tagged with the claim
  // arena that staged them (commit-pass state).
  std::unordered_map<WorkerId, int> claimed_;
};

}  // namespace watter

#endif  // WATTER_SIM_FLEET_H_
