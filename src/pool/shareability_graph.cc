#include "src/pool/shareability_graph.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "src/obs/trace.h"

namespace watter {
namespace {

// Minimum shard size before a maintenance loop fans out to the executor;
// below this the planner calls are cheaper than waking the pool.
constexpr size_t kParallelGrain = 16;

/// True if the route has riders of two different orders on board for a
/// strictly positive duration (i.e. pooling actually happens; a pickup at
/// the exact node where a partner alights does not count).
bool RouteInterleaves(const Route& route) {
  int onboard_orders = 0;
  for (size_t s = 0; s + 1 < route.stops.size(); ++s) {
    onboard_orders += route.stops[s].is_pickup ? 1 : -1;
    if (onboard_orders >= 2 &&
        route.offsets[s + 1] > route.offsets[s]) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<OrderId>> ShareabilityGraph::Insert(
    const Order& order, Time now, std::vector<PairPlanSeed>* pair_plans) {
  WATTER_TRACE_SPAN_HOT("graph.insert");
  if (entries_.count(order.id) > 0) {
    return Status::AlreadyExists("order " + std::to_string(order.id) +
                                 " already pooled");
  }
  Entry entry;
  entry.order = order;
  entry.inserted_at = now;

  // Candidate partners in ascending-id order, quick-rejected up front: an
  // order past its latest dispatch can never be part of a feasible route,
  // and the planner would discover that the expensive way. One sorted list
  // serves the serial and parallel paths alike — adjacency *order* is
  // unobservable (CliqueEnumerator sorts, every other consumer scans), so
  // unifying on sorted ids changes no behavior; see the
  // ParallelMaintenanceMatchesSerial property.
  std::vector<OrderId> candidates;
  if (now <= order.LatestDispatch()) {
    candidates.reserve(entries_.size());
    for (const auto& [other_id, other] : entries_) {
      if (now > other.order.LatestDispatch()) continue;
      candidates.push_back(other_id);
    }
    std::sort(candidates.begin(), candidates.end());
  }
  pair_tests_ += static_cast<int64_t>(candidates.size());

  // Batch prefetch for natively batched oracles: every pair plan below needs
  // costs between the new order's endpoints and the candidate's, so issue
  // them as four anchor-shaped batches (one per direction per endpoint).
  // The bucket backend answers each with two search spaces for the anchor
  // plus one per distinct candidate node — and primes its memo cache, which
  // turns the planner's point queries into hits. Results are discarded; the
  // batches are bitwise-equal to the Cost() calls they pre-answer, so this
  // cannot change any plan.
  TravelTimeOracle* oracle = planner_->oracle();
  if (oracle->NativeBatch() && !candidates.empty()) {
    std::vector<NodeId> nodes;
    nodes.reserve(candidates.size() * 2);
    for (OrderId id : candidates) {
      const Order& candidate = entries_.find(id)->second.order;
      nodes.push_back(candidate.pickup);
      nodes.push_back(candidate.dropoff);
    }
    std::vector<double> scratch(nodes.size());
    oracle->OneToMany(order.pickup, nodes, scratch);
    oracle->OneToMany(order.dropoff, nodes, scratch);
    oracle->ManyToOne(nodes, order.pickup, scratch);
    oracle->ManyToOne(nodes, order.dropoff, scratch);
  }

  // Fan-out phase: pair-feasibility tests are pure (planner + oracle are
  // thread-safe; the graph is not mutated), each writing only its own slot.
  struct TestedEdge {
    ShareEdge edge;
    GroupPlan plan;
  };
  auto test_pair = [&](size_t i) -> std::optional<TestedEdge> {
    const Order& candidate = entries_.find(candidates[i])->second.order;
    auto plan = planner_->PlanBest({&entry.order, &candidate}, now,
                                   options_.capacity);
    if (!plan.ok()) return std::nullopt;
    if (options_.require_overlap && !RouteInterleaves(plan->route)) {
      return std::nullopt;
    }
    ShareEdge edge{candidates[i], plan->latest_departure, plan->total_cost};
    return TestedEdge{edge, std::move(plan).value()};
  };
  std::vector<std::optional<TestedEdge>> tested;
  bool parallel = executor_ != nullptr && executor_->num_threads() > 1 &&
                  candidates.size() > kParallelGrain;
  if (parallel) {
    executor_->ParallelMap(candidates.size(), kParallelGrain, &tested,
                           test_pair);
  } else {
    tested.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      tested.push_back(test_pair(i));
    }
  }

  // Ordered commit: mirror each surviving edge on both endpoints, ascending
  // by candidate id, and surface the plan behind it for cache seeding.
  std::vector<OrderId> gained;
  for (std::optional<TestedEdge>& t : tested) {
    if (!t.has_value()) continue;
    entry.edges.push_back(t->edge);
    entries_.find(t->edge.other)
        ->second.edges.push_back(
            ShareEdge{order.id, t->edge.expiry, t->edge.pair_cost});
    ++edge_count_;
    gained.push_back(t->edge.other);
    if (pair_plans != nullptr) {
      pair_plans->push_back(PairPlanSeed{t->edge.other, std::move(t->plan)});
    }
  }
  entries_.emplace(order.id, std::move(entry));
  return gained;
}

Result<std::vector<OrderId>> ShareabilityGraph::Remove(OrderId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("order " + std::to_string(id) + " not pooled");
  }
  std::vector<OrderId> neighbors;
  neighbors.reserve(it->second.edges.size());
  for (const ShareEdge& edge : it->second.edges) {
    neighbors.push_back(edge.other);
    RemoveEdgeTo(edge.other, id);
    --edge_count_;
  }
  entries_.erase(it);
  return neighbors;
}

void ShareabilityGraph::RemoveEdgeTo(OrderId from, OrderId to) {
  auto it = entries_.find(from);
  if (it == entries_.end()) return;
  auto& edges = it->second.edges;
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [to](const ShareEdge& e) {
                               return e.other == to;
                             }),
              edges.end());
}

std::vector<OrderId> ShareabilityGraph::ExpireEdges(Time now) {
  std::vector<OrderId> affected;
  if (executor_ == nullptr || executor_->num_threads() <= 1 ||
      entries_.size() <= kParallelGrain) {
    // Serial fast path: one pass over the map, no snapshot. The affected
    // list's *order* differs from the parallel path's sorted one, but it
    // only feeds unordered dirty-marking, so behavior is identical.
    for (auto& [id, entry] : entries_) {
      auto& edges = entry.edges;
      size_t before = edges.size();
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [now](const ShareEdge& e) {
                                   return e.expiry < now;
                                 }),
                  edges.end());
      if (edges.size() != before) affected.push_back(id);
    }
    int64_t directed = 0;
    for (const auto& [id, entry] : entries_) {
      directed += static_cast<int64_t>(entry.edges.size());
    }
    // Each expired edge was trimmed from both endpoints.
    edge_count_ = directed / 2;
    return affected;
  }

  // Parallel path: shard by entry — each task trims exactly one adjacency
  // list, so shards touch disjoint state. The snapshot is sorted so the
  // affected list is identical for any thread count.
  std::vector<OrderId> ids = OrderIds();
  std::sort(ids.begin(), ids.end());
  std::vector<int64_t> kept(ids.size(), 0);
  std::vector<char> trimmed(ids.size(), 0);
  executor_->ParallelFor(
      ids.size(), kParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          auto& edges = entries_.find(ids[i])->second.edges;
          size_t before = edges.size();
          edges.erase(std::remove_if(edges.begin(), edges.end(),
                                     [now](const ShareEdge& e) {
                                       return e.expiry < now;
                                     }),
                      edges.end());
          kept[i] = static_cast<int64_t>(edges.size());
          trimmed[i] = edges.size() != before ? 1 : 0;
        }
      });

  // Ordered reduction: rebuild the affected list and the edge count from
  // the per-entry results.
  int64_t directed = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (trimmed[i]) affected.push_back(ids[i]);
    directed += kept[i];
  }
  edge_count_ = directed / 2;
  return affected;
}

const Order* ShareabilityGraph::GetOrder(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.order;
}

Time ShareabilityGraph::InsertedAt(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? -1.0 : it->second.inserted_at;
}

const std::vector<ShareEdge>& ShareabilityGraph::Neighbors(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? empty_ : it->second.edges;
}

bool ShareabilityGraph::HasEdge(OrderId a, OrderId b) const {
  for (const ShareEdge& edge : Neighbors(a)) {
    if (edge.other == b) return true;
  }
  return false;
}

std::vector<OrderId> ShareabilityGraph::OrderIds() const {
  std::vector<OrderId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

}  // namespace watter
