#include "src/pool/shareability_graph.h"

#include <algorithm>
#include <string>

namespace watter {
namespace {

/// True if the route has riders of two different orders on board for a
/// strictly positive duration (i.e. pooling actually happens; a pickup at
/// the exact node where a partner alights does not count).
bool RouteInterleaves(const Route& route) {
  int onboard_orders = 0;
  for (size_t s = 0; s + 1 < route.stops.size(); ++s) {
    onboard_orders += route.stops[s].is_pickup ? 1 : -1;
    if (onboard_orders >= 2 &&
        route.offsets[s + 1] > route.offsets[s]) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<OrderId>> ShareabilityGraph::Insert(const Order& order,
                                                       Time now) {
  if (entries_.count(order.id) > 0) {
    return Status::AlreadyExists("order " + std::to_string(order.id) +
                                 " already pooled");
  }
  Entry entry;
  entry.order = order;
  entry.inserted_at = now;

  std::vector<OrderId> gained;
  for (auto& [other_id, other] : entries_) {
    const Order& candidate = other.order;
    // Sound quick rejects: an order past its latest dispatch can never be
    // part of a feasible route, and the planner would discover that the
    // expensive way.
    if (now > order.LatestDispatch() || now > candidate.LatestDispatch()) {
      continue;
    }
    ++pair_tests_;
    auto plan = planner_->PlanBest({&entry.order, &candidate}, now,
                                   options_.capacity);
    if (!plan.ok()) continue;
    if (options_.require_overlap && !RouteInterleaves(plan->route)) continue;
    ShareEdge to_other{other_id, plan->latest_departure, plan->total_cost};
    ShareEdge to_new{order.id, plan->latest_departure, plan->total_cost};
    entry.edges.push_back(to_other);
    other.edges.push_back(to_new);
    ++edge_count_;
    gained.push_back(other_id);
  }
  entries_.emplace(order.id, std::move(entry));
  return gained;
}

Result<std::vector<OrderId>> ShareabilityGraph::Remove(OrderId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("order " + std::to_string(id) + " not pooled");
  }
  std::vector<OrderId> neighbors;
  neighbors.reserve(it->second.edges.size());
  for (const ShareEdge& edge : it->second.edges) {
    neighbors.push_back(edge.other);
    RemoveEdgeTo(edge.other, id);
    --edge_count_;
  }
  entries_.erase(it);
  return neighbors;
}

void ShareabilityGraph::RemoveEdgeTo(OrderId from, OrderId to) {
  auto it = entries_.find(from);
  if (it == entries_.end()) return;
  auto& edges = it->second.edges;
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [to](const ShareEdge& e) {
                               return e.other == to;
                             }),
              edges.end());
}

std::vector<OrderId> ShareabilityGraph::ExpireEdges(Time now) {
  std::vector<OrderId> affected;
  for (auto& [id, entry] : entries_) {
    auto& edges = entry.edges;
    size_t before = edges.size();
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [now](const ShareEdge& e) {
                                 return e.expiry < now;
                               }),
                edges.end());
    if (edges.size() != before) affected.push_back(id);
  }
  // Each expired edge was trimmed from both endpoints; recount.
  int64_t directed = 0;
  for (const auto& [id, entry] : entries_) {
    directed += static_cast<int64_t>(entry.edges.size());
  }
  edge_count_ = directed / 2;
  return affected;
}

const Order* ShareabilityGraph::GetOrder(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.order;
}

Time ShareabilityGraph::InsertedAt(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? -1.0 : it->second.inserted_at;
}

const std::vector<ShareEdge>& ShareabilityGraph::Neighbors(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? empty_ : it->second.edges;
}

bool ShareabilityGraph::HasEdge(OrderId a, OrderId b) const {
  for (const ShareEdge& edge : Neighbors(a)) {
    if (edge.other == b) return true;
  }
  return false;
}

std::vector<OrderId> ShareabilityGraph::OrderIds() const {
  std::vector<OrderId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

}  // namespace watter
