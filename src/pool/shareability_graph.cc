#include "src/pool/shareability_graph.h"

#include <algorithm>
#include <optional>
#include <string>

namespace watter {
namespace {

// Minimum shard size before a maintenance loop fans out to the executor;
// below this the planner calls are cheaper than waking the pool.
constexpr size_t kParallelGrain = 16;

/// True if the route has riders of two different orders on board for a
/// strictly positive duration (i.e. pooling actually happens; a pickup at
/// the exact node where a partner alights does not count).
bool RouteInterleaves(const Route& route) {
  int onboard_orders = 0;
  for (size_t s = 0; s + 1 < route.stops.size(); ++s) {
    onboard_orders += route.stops[s].is_pickup ? 1 : -1;
    if (onboard_orders >= 2 &&
        route.offsets[s + 1] > route.offsets[s]) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<OrderId>> ShareabilityGraph::Insert(const Order& order,
                                                       Time now) {
  if (entries_.count(order.id) > 0) {
    return Status::AlreadyExists("order " + std::to_string(order.id) +
                                 " already pooled");
  }
  Entry entry;
  entry.order = order;
  entry.inserted_at = now;

  std::vector<OrderId> gained;
  bool parallel = executor_ != nullptr && executor_->num_threads() > 1 &&
                  entries_.size() > kParallelGrain;
  if (!parallel) {
    // Serial fast path: one pass, no scratch allocations. Edge *order*
    // within an adjacency list is unobservable (consumers sort or scan),
    // so this path and the sorted parallel commit below yield identical
    // behavior; see the ParallelMaintenanceMatchesSerial property.
    for (auto& [other_id, other] : entries_) {
      const Order& candidate = other.order;
      // Sound quick rejects: an order past its latest dispatch can never be
      // part of a feasible route, and the planner would discover that the
      // expensive way.
      if (now > order.LatestDispatch() || now > candidate.LatestDispatch()) {
        continue;
      }
      ++pair_tests_;
      auto plan = planner_->PlanBest({&entry.order, &candidate}, now,
                                     options_.capacity);
      if (!plan.ok()) continue;
      if (options_.require_overlap && !RouteInterleaves(plan->route)) continue;
      entry.edges.push_back(
          ShareEdge{other_id, plan->latest_departure, plan->total_cost});
      other.edges.push_back(
          ShareEdge{order.id, plan->latest_departure, plan->total_cost});
      ++edge_count_;
      gained.push_back(other_id);
    }
    entries_.emplace(order.id, std::move(entry));
    return gained;
  }

  // Parallel path. Candidate partners in ascending-id order: deterministic
  // regardless of hash-map iteration and of the executor's thread count.
  std::vector<OrderId> candidates;
  if (now <= order.LatestDispatch()) {
    candidates.reserve(entries_.size());
    for (const auto& [other_id, other] : entries_) {
      if (now > other.order.LatestDispatch()) continue;
      candidates.push_back(other_id);
    }
    std::sort(candidates.begin(), candidates.end());
  }

  // Fan-out phase: pair-feasibility tests are pure (planner + oracle are
  // thread-safe; the graph is not mutated), each writing only its own slot.
  std::vector<std::optional<ShareEdge>> tested;
  executor_->ParallelMap(
      candidates.size(), kParallelGrain, &tested,
      [&](size_t i) -> std::optional<ShareEdge> {
        const Order& candidate = entries_.find(candidates[i])->second.order;
        auto plan = planner_->PlanBest({&entry.order, &candidate}, now,
                                       options_.capacity);
        if (!plan.ok()) return std::nullopt;
        if (options_.require_overlap && !RouteInterleaves(plan->route)) {
          return std::nullopt;
        }
        return ShareEdge{candidates[i], plan->latest_departure,
                         plan->total_cost};
      });
  pair_tests_ += static_cast<int64_t>(candidates.size());

  // Ordered commit: mirror each surviving edge on both endpoints, ascending
  // by candidate id.
  for (const std::optional<ShareEdge>& edge : tested) {
    if (!edge.has_value()) continue;
    entry.edges.push_back(*edge);
    entries_.find(edge->other)
        ->second.edges.push_back(
            ShareEdge{order.id, edge->expiry, edge->pair_cost});
    ++edge_count_;
    gained.push_back(edge->other);
  }
  entries_.emplace(order.id, std::move(entry));
  return gained;
}

Result<std::vector<OrderId>> ShareabilityGraph::Remove(OrderId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("order " + std::to_string(id) + " not pooled");
  }
  std::vector<OrderId> neighbors;
  neighbors.reserve(it->second.edges.size());
  for (const ShareEdge& edge : it->second.edges) {
    neighbors.push_back(edge.other);
    RemoveEdgeTo(edge.other, id);
    --edge_count_;
  }
  entries_.erase(it);
  return neighbors;
}

void ShareabilityGraph::RemoveEdgeTo(OrderId from, OrderId to) {
  auto it = entries_.find(from);
  if (it == entries_.end()) return;
  auto& edges = it->second.edges;
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [to](const ShareEdge& e) {
                               return e.other == to;
                             }),
              edges.end());
}

std::vector<OrderId> ShareabilityGraph::ExpireEdges(Time now) {
  std::vector<OrderId> affected;
  if (executor_ == nullptr || executor_->num_threads() <= 1 ||
      entries_.size() <= kParallelGrain) {
    // Serial fast path: one pass over the map, no snapshot. The affected
    // list's *order* differs from the parallel path's sorted one, but it
    // only feeds unordered dirty-marking, so behavior is identical.
    for (auto& [id, entry] : entries_) {
      auto& edges = entry.edges;
      size_t before = edges.size();
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [now](const ShareEdge& e) {
                                   return e.expiry < now;
                                 }),
                  edges.end());
      if (edges.size() != before) affected.push_back(id);
    }
    int64_t directed = 0;
    for (const auto& [id, entry] : entries_) {
      directed += static_cast<int64_t>(entry.edges.size());
    }
    // Each expired edge was trimmed from both endpoints.
    edge_count_ = directed / 2;
    return affected;
  }

  // Parallel path: shard by entry — each task trims exactly one adjacency
  // list, so shards touch disjoint state. The snapshot is sorted so the
  // affected list is identical for any thread count.
  std::vector<OrderId> ids = OrderIds();
  std::sort(ids.begin(), ids.end());
  std::vector<int64_t> kept(ids.size(), 0);
  std::vector<char> trimmed(ids.size(), 0);
  executor_->ParallelFor(
      ids.size(), kParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          auto& edges = entries_.find(ids[i])->second.edges;
          size_t before = edges.size();
          edges.erase(std::remove_if(edges.begin(), edges.end(),
                                     [now](const ShareEdge& e) {
                                       return e.expiry < now;
                                     }),
                      edges.end());
          kept[i] = static_cast<int64_t>(edges.size());
          trimmed[i] = edges.size() != before ? 1 : 0;
        }
      });

  // Ordered reduction: rebuild the affected list and the edge count from
  // the per-entry results.
  int64_t directed = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (trimmed[i]) affected.push_back(ids[i]);
    directed += kept[i];
  }
  edge_count_ = directed / 2;
  return affected;
}

const Order* ShareabilityGraph::GetOrder(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.order;
}

Time ShareabilityGraph::InsertedAt(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? -1.0 : it->second.inserted_at;
}

const std::vector<ShareEdge>& ShareabilityGraph::Neighbors(OrderId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? empty_ : it->second.edges;
}

bool ShareabilityGraph::HasEdge(OrderId a, OrderId b) const {
  for (const ShareEdge& edge : Neighbors(a)) {
    if (edge.other == b) return true;
  }
  return false;
}

std::vector<OrderId> ShareabilityGraph::OrderIds() const {
  std::vector<OrderId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

}  // namespace watter
