// Temporal shareability graph (Definition 8).
//
// Nodes are waiting orders; an edge (o_i, o_j, tau_e) certifies that the two
// orders admit a feasible *beneficially shared* route if dispatched before
// timestamp tau_e. Edges are computed exactly with the route planner when an
// order is inserted: deadlines only tighten as time passes, so a pair that is
// infeasible now can never become feasible later, and a feasible pair stays
// feasible exactly until its latest departure — which becomes the edge
// expiry.
//
// "Beneficially shared" means the minimum-cost pair route interleaves the
// riders (someone is on board while the other is picked up). Purely
// sequential chaining satisfies the route constraints but provides no pooling
// benefit and would make the graph near-complete; the paper's shareability
// notion ("orders that can be shared in a group") is interpreted as true
// sharing. See DESIGN.md, key decisions.
#ifndef WATTER_POOL_SHAREABILITY_GRAPH_H_
#define WATTER_POOL_SHAREABILITY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/route_planner.h"
#include "src/core/types.h"

namespace watter {

/// One shareability edge from the perspective of a node.
struct ShareEdge {
  OrderId other = kInvalidOrder;
  Time expiry = 0.0;       ///< tau_e: latest departure keeping the pair feasible.
  double pair_cost = 0.0;  ///< Minimal travel cost of the shared route.
};

/// A pair plan Insert computed while certifying an edge, surfaced so the
/// caller can seed the group-plan cache instead of re-planning the same pair
/// during the next RefreshBestGroups. `plan.completion` is aligned to the
/// input order {inserted order, other}, not to sorted member ids.
struct PairPlanSeed {
  OrderId other = kInvalidOrder;
  GroupPlan plan;
};

/// Configuration of edge creation.
struct ShareabilityOptions {
  /// Vehicle capacity assumed when testing pair routes (the fleet's max).
  int capacity = 4;
  /// Require the min-cost pair route to interleave riders (see file header).
  bool require_overlap = true;
};

/// The dynamic order pool graph.
///
/// Concurrency model: the graph itself is single-writer — all mutation
/// happens on the caller's thread. Insert and ExpireEdges internally fan
/// their pure per-candidate/per-entry work out over an optional ThreadPool
/// and commit the results serially in ascending-id order, so the resulting
/// graph is bitwise identical for any thread count (see thread_pool.h,
/// determinism contract).
class ShareabilityGraph {
 public:
  ShareabilityGraph(RoutePlanner* planner, ShareabilityOptions options)
      : planner_(planner), options_(options) {}

  /// Installs the executor used to parallelize Insert's pair-feasibility
  /// tests and ExpireEdges' per-entry trims. Null (the default) or a
  /// 1-thread pool keeps everything on the calling thread. Not owned.
  void set_executor(ThreadPool* executor) { executor_ = executor; }

  /// Inserts `order` at time `now`, computing edges against every resident
  /// order. Returns the ids of existing orders that gained an edge (their
  /// best group may improve). AlreadyExists if the id is resident. When
  /// `pair_plans` is non-null it receives the plan behind every new edge
  /// (ascending by neighbor id) so callers can seed their plan caches.
  Result<std::vector<OrderId>> Insert(
      const Order& order, Time now,
      std::vector<PairPlanSeed>* pair_plans = nullptr);

  /// Removes an order and all its edges. Returns the ids of former
  /// neighbors. NotFound if absent.
  Result<std::vector<OrderId>> Remove(OrderId id);

  /// Drops all edges with expiry < now. Returns the ids of orders that lost
  /// at least one edge.
  std::vector<OrderId> ExpireEdges(Time now);

  bool Contains(OrderId id) const { return entries_.count(id) > 0; }
  const Order* GetOrder(OrderId id) const;
  Time InsertedAt(OrderId id) const;

  /// Adjacency of `id` (empty if unknown).
  const std::vector<ShareEdge>& Neighbors(OrderId id) const;

  /// True if an un-expired edge links a and b.
  bool HasEdge(OrderId a, OrderId b) const;

  /// Ids of all resident orders (unspecified order).
  std::vector<OrderId> OrderIds() const;

  size_t size() const { return entries_.size(); }
  int64_t edge_count() const { return edge_count_; }
  int64_t pair_tests() const { return pair_tests_; }

 private:
  struct Entry {
    Order order;
    Time inserted_at = 0.0;
    std::vector<ShareEdge> edges;
  };

  void RemoveEdgeTo(OrderId from, OrderId to);

  RoutePlanner* planner_;
  ShareabilityOptions options_;
  ThreadPool* executor_ = nullptr;  // Optional; not owned.
  std::unordered_map<OrderId, Entry> entries_;
  int64_t edge_count_ = 0;   // Undirected edges currently present.
  int64_t pair_tests_ = 0;   // Pair plans attempted (diagnostics).
  std::vector<ShareEdge> empty_;
};

}  // namespace watter

#endif  // WATTER_POOL_SHAREABILITY_GRAPH_H_
