// Best-group map Gb (Algorithm 1).
//
// For every pooled order we cache the *best group*: the clique-derived,
// planner-verified group with the smallest average extra time among all
// shareable groups containing the order (Section IV-A). Lookups are O(1);
// recomputation is dirty-driven, triggered by exactly the paper's four update
// situations: order arrival, order departure, edge expiry and group expiry.
//
// A key property keeps this cheap: between graph updates, every candidate
// group's average extra time grows at the same rate (beta per second of
// waiting, uniformly), so the *ranking* of groups is time-invariant and a
// cached best group stays best until the graph changes or the group expires.
//
// Maintenance is incremental end-to-end (docs/ARCHITECTURE.md, "Incremental
// pool maintenance"):
//  - a reverse-membership index (member -> owners whose cached best group
//    contains it) makes departures O(owners) instead of a full-map scan;
//  - a shared GroupPlanCache holds one exact plan per distinct member set,
//    so re-searches after unrelated dirty events — and the k anchors that
//    enumerate the same clique — reuse instead of re-planning;
//  - searches run in three deterministic phases (frozen-cache scan, batch
//    planning of the distinct missing member sets, best-group selection),
//    which is also what keeps every counter thread-count-invariant.
//
// Timestamps passed to BestFor/Recompute/RefreshMany must be non-decreasing
// across calls: the plan cache's permanent-infeasibility rule (like the
// shareability graph's edge expiries) relies on deadlines only tightening.
#ifndef WATTER_POOL_BEST_GROUP_MAP_H_
#define WATTER_POOL_BEST_GROUP_MAP_H_

#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/route_planner.h"
#include "src/core/types.h"
#include "src/pool/clique_enumerator.h"
#include "src/pool/group_plan_cache.h"
#include "src/pool/shareability_graph.h"

namespace watter {

/// A verified candidate group for dispatch.
struct BestGroup {
  std::vector<OrderId> members;  ///< Sorted; includes the owner order.
  GroupPlan plan;                ///< Min-cost feasible route and expiry.
  double sum_detour = 0.0;       ///< Sum over members of completion - shortest.
  double sum_release = 0.0;      ///< Sum of member release times.

  int size() const { return static_cast<int>(members.size()); }

  /// Average extra time of the group if dispatched at `now`
  /// (Definition 6 averaged over members; Algorithm 2 line 4).
  double AverageExtraTime(Time now, const ExtraTimeWeights& weights) const {
    double avg_detour = sum_detour / size();
    double avg_response = now - sum_release / size();
    return weights.alpha * avg_detour + weights.beta * avg_response;
  }

  /// Earliest release among members (whose wait limit fires first is
  /// computed by the strategy from member orders).
  Time latest_departure() const { return plan.latest_departure; }
};

/// Maintains the best group of every pooled order.
///
/// By default only *shared* groups (size >= 2) are considered, matching the
/// paper's semantics: a lone order has no "group arrangement" to rate
/// against its threshold and waits for partners until its watching window
/// elapses (solo service is the platform's timeout fallback, not a pool
/// group). Set `include_singletons` for the permissive variant.
class BestGroupMap {
 public:
  BestGroupMap(const ShareabilityGraph* graph, RoutePlanner* planner,
               ExtraTimeWeights weights, int capacity, CliqueOptions cliques,
               bool include_singletons = false)
      : graph_(graph),
        planner_(planner),
        weights_(weights),
        capacity_(capacity),
        clique_options_(cliques),
        include_singletons_(include_singletons) {}

  /// Installs the executor RefreshMany fans out on. Null (default) or a
  /// 1-thread pool keeps recomputation on the calling thread. Not owned.
  void set_executor(ThreadPool* executor) { executor_ = executor; }

  /// Marks an order's cached best group stale.
  void MarkDirty(OrderId id) { dirty_.insert(id); }

  /// Marks every order whose cached best group contains `member` stale (via
  /// the reverse-membership index: O(owners), not a map scan), forgets
  /// `member`'s own entry, and evicts the member's cached plans. Call on
  /// departure.
  void OnOrderRemoved(OrderId member);

  /// Returns the current best group of `id` at time `now`, recomputing if
  /// stale or expired; nullptr if the order has no feasible group anymore
  /// (not even serving it alone) or is unknown.
  const BestGroup* BestFor(OrderId id, Time now);

  /// Pure cached lookup: the best group of `id` if its entry is fresh
  /// (clean, unexpired) at `now`, else nullptr. Never recomputes, never
  /// mutates — safe to call concurrently from the batched propose phase.
  /// After RefreshMany over the live ids, PeekBest and BestFor agree for
  /// every refreshed id until the graph next changes.
  const BestGroup* PeekBest(OrderId id, Time now) const;

  /// Seeds the shared plan cache with a pair plan the shareability graph
  /// already computed while certifying the edge {order, other} (see
  /// PairPlanSeed). `plan.completion` must be aligned to the input order
  /// {order, other}; it is re-aligned to sorted member ids here, matching
  /// what PlanGroup would produce. No-op if the pair is already cached, so
  /// seeding never clobbers a fresher entry.
  void SeedPlan(const Order& order, const Order& other, const GroupPlan& plan);

  /// Forces recomputation of `id` at `now` (used by tests/benches).
  void Recompute(OrderId id, Time now);

  /// Refreshes every stale entry among `ids` (callers pass them sorted for
  /// a deterministic commit order), fanning the pure per-order searches out
  /// over the executor and committing results serially in `ids` order. After
  /// this, BestFor on any id in `ids` is a cache hit until the graph next
  /// changes. Results — including the diagnostic counters — are identical
  /// for any thread count: each phase runs against state frozen before its
  /// fan-out, and all commits are serial in a fixed order.
  void RefreshMany(const std::vector<OrderId>& ids, Time now);

  int64_t recompute_count() const { return recompute_count_; }
  int64_t groups_evaluated() const { return groups_evaluated_; }
  /// Plan-cache traffic. A hit is a lookup answered from the cache
  /// (including cached-infeasible verdicts); a miss planned a fresh member
  /// set; a replan re-planned an entry whose cached route had expired.
  int64_t plan_cache_hits() const { return plan_cache_hits_; }
  int64_t plan_cache_misses() const { return plan_cache_misses_; }
  int64_t plan_cache_replans() const { return plan_cache_replans_; }
  /// Pair plans adopted from ShareabilityGraph::Insert instead of being
  /// re-planned by a refresh (SeedPlan calls that actually inserted).
  int64_t plan_cache_seeds() const { return plan_cache_seeds_; }
  int64_t plan_cache_evictions() const { return plan_cache_.evictions(); }
  size_t plan_cache_size() const { return plan_cache_.size(); }
  /// Owners dirtied through the reverse-membership index by departures.
  int64_t reverse_index_fanout() const { return reverse_index_fanout_; }

 private:
  /// True if `group` is missing, expired, or references departed orders.
  bool NeedsRefresh(OrderId id, Time now) const;

  /// Outcome of one pure best-group search.
  struct SearchResult {
    std::optional<BestGroup> best;
    int64_t groups_evaluated = 0;
    /// True when clique enumeration hit the visit budget: the search saw
    /// only a prefix of the candidate groups.
    bool truncated = false;
  };

  /// Phase-1 outcome for one anchor: the member sets its enumeration needs
  /// planned (cache misses and expired entries), plus the lookup counts.
  /// Pure against the frozen graph + cache; safe to run concurrently.
  struct CandidateScan {
    std::vector<GroupKey> need_plan;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t replans = 0;
  };

  /// False if any member departed or the summed riders exceed the fleet
  /// capacity — the admissibility pre-filter both enumeration passes share
  /// (identical filters are what guarantee phase 3 only looks up planned
  /// keys).
  bool CandidateAdmissible(std::span<const OrderId> members) const;

  CandidateScan ScanCandidates(OrderId id, Time now) const;

  /// Plans one member set exactly at depart time `now` (pure).
  CachedGroupPlan PlanGroup(const GroupKey& key, Time now) const;

  /// Phase-3 search for `id` at `now`: re-enumerates the (unchanged)
  /// candidates and ranks them from the now-complete cache. Pure.
  SearchResult SelectBest(OrderId id, Time now) const;

  /// The three-phase refresh shared by Recompute and RefreshMany (so the
  /// serial and batched paths cannot diverge): scan -> plan distinct
  /// missing member sets -> select + ordered serial commit.
  void RefreshInternal(const std::vector<OrderId>& anchors, Time now);

  /// Installs a search result into the caches and the reverse-membership
  /// index.
  void Commit(OrderId id, SearchResult result);

  /// Detaches `owner` from its cached group's member buckets in the
  /// reverse-membership index (no-op if it has no cached group).
  void RemoveOwnerEntries(OrderId owner);

  const ShareabilityGraph* graph_;
  RoutePlanner* planner_;
  ExtraTimeWeights weights_;
  int capacity_;
  CliqueOptions clique_options_;
  bool include_singletons_;
  ThreadPool* executor_ = nullptr;  // Optional; not owned.
  std::unordered_map<OrderId, BestGroup> best_;
  std::unordered_set<OrderId> dirty_;
  /// Reverse-membership index: member -> owners whose cached best group in
  /// `best_` contains it (owners include themselves). Maintained by Commit
  /// and OnOrderRemoved; what makes departures O(owners).
  std::unordered_map<OrderId, std::unordered_set<OrderId>> owners_of_;
  /// Shared plan cache: one exact plan per distinct admissible member set,
  /// reused across anchors and rounds; invalidated through its own reverse
  /// index on departure (see group_plan_cache.h).
  GroupPlanCache plan_cache_;
  // Negative-result cache: orders whose last search found no feasible group
  // after *complete* (untruncated) clique enumeration. Sound until the next
  // graph change: with deadlines only tightening, a later search over an
  // unchanged-or-smaller graph can only find fewer groups, and every event
  // that could add a group (an arrival creating an edge) marks the order
  // dirty. Truncated searches are never cached as negative — when the visit
  // budget clips enumeration, removing a neighbor can pull previously
  // unseen (and feasible) cliques inside the budget, so "none among the
  // visited prefix" is not monotone. The group-plan cache is orthogonal to
  // this rule: it caches per-member-set planner verdicts (exact regardless
  // of truncation), never "no group exists for this order" — so a truncated
  // search stays re-runnable, merely with warm plans. Without this cache,
  // hopeless orders would re-run the full clique search every check round.
  std::unordered_set<OrderId> none_;
  int64_t recompute_count_ = 0;
  int64_t groups_evaluated_ = 0;
  int64_t plan_cache_hits_ = 0;
  int64_t plan_cache_misses_ = 0;
  int64_t plan_cache_replans_ = 0;
  int64_t plan_cache_seeds_ = 0;
  int64_t reverse_index_fanout_ = 0;
};

}  // namespace watter

#endif  // WATTER_POOL_BEST_GROUP_MAP_H_
