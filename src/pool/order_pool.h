// OrderPool: the graph-based order pooling manager of Algorithm 1.
//
// Composes the temporal shareability graph with the best-group map and keeps
// both consistent across the four update situations: (1) order arrival,
// (2) order departure, (3) edge expiration, (4) group expiration.
#ifndef WATTER_POOL_ORDER_POOL_H_
#define WATTER_POOL_ORDER_POOL_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/route_planner.h"
#include "src/core/types.h"
#include "src/geo/travel_time_oracle.h"
#include "src/pool/best_group_map.h"
#include "src/pool/clique_enumerator.h"
#include "src/pool/shareability_graph.h"

namespace watter {

/// Pool-wide configuration.
struct PoolOptions {
  /// Max riders per group route (the fleet's largest vehicle, Kw).
  int capacity = 4;
  /// Shared routes must truly interleave riders (see shareability_graph.h).
  bool require_overlap = true;
  /// Clique enumeration bounds.
  CliqueOptions cliques;
  /// Extra-time weights used to rank candidate groups.
  ExtraTimeWeights weights;
  /// Let lone orders form 1-"groups" in the best-group map (non-paper
  /// variant; see BestGroupMap).
  bool include_singletons = false;
};

/// Dynamic pool of waiting orders with O(1) best-group retrieval.
class OrderPool {
 public:
  /// `oracle` must outlive the pool.
  OrderPool(TravelTimeOracle* oracle, PoolOptions options)
      : options_(options),
        planner_(oracle),
        graph_(&planner_,
               ShareabilityOptions{options.capacity, options.require_overlap}),
        best_(&graph_, &planner_, options.weights, options.capacity,
              options.cliques, options.include_singletons) {}

  /// Installs the executor used by the maintenance passes (edge refresh on
  /// insert, edge expiry, best-group recomputation). Null or a 1-thread
  /// pool keeps the pool fully serial. Not owned; must outlive the pool's
  /// use. Results are identical for any thread count.
  void set_executor(ThreadPool* executor) {
    graph_.set_executor(executor);
    best_.set_executor(executor);
  }

  /// Inserts an arriving order (Algorithm 1 line 3) and updates edges and
  /// dirty best-groups.
  Status Insert(const Order& order, Time now);

  /// Removes a dispatched/rejected/expired order (lines 12, 15).
  Status Remove(OrderId id);

  /// Drops expired edges (lines 5-6) and marks affected orders stale.
  void ExpireEdges(Time now);

  /// Best group of `id` at `now`; nullptr when no feasible group remains.
  const BestGroup* BestFor(OrderId id, Time now) {
    return best_.BestFor(id, now);
  }

  /// Pure cached best-group lookup (see BestGroupMap::PeekBest): never
  /// recomputes, safe for concurrent reads. The batched dispatch engine
  /// proposes offers against this frozen view after RefreshBestGroups.
  const BestGroup* PeekBest(OrderId id, Time now) const {
    return best_.PeekBest(id, now);
  }

  /// Refreshes the stale best groups of `ids` in one (possibly parallel)
  /// batch so the platform's serial decision loop hits a warm cache. Pass
  /// `ids` sorted: the commit order follows it deterministically.
  void RefreshBestGroups(const std::vector<OrderId>& ids, Time now) {
    best_.RefreshMany(ids, now);
  }

  const Order* GetOrder(OrderId id) const { return graph_.GetOrder(id); }
  bool Contains(OrderId id) const { return graph_.Contains(id); }
  std::vector<OrderId> OrderIds() const { return graph_.OrderIds(); }

  /// Pooled order ids in ascending (arrival) order — the canonical frozen
  /// work list of both dispatch engines' check rounds.
  std::vector<OrderId> SortedOrderIds() const {
    std::vector<OrderId> ids = graph_.OrderIds();
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  /// SortedOrderIds bucketed by shard region: bucket `r` holds the pooled
  /// ids with `region_of(order) == r`, each bucket ascending. Concatenating
  /// the buckets yields a permutation of SortedOrderIds — the sharded
  /// propose phase walks buckets so each shard scans a contiguous,
  /// cache-friendly slice, while the commit pass re-imposes the global
  /// sorted-offers order.
  std::vector<std::vector<OrderId>> SortedOrderIdsByRegion(
      int num_regions,
      const std::function<int(const Order&)>& region_of) const {
    std::vector<std::vector<OrderId>> buckets(
        static_cast<size_t>(std::max(1, num_regions)));
    for (OrderId id : SortedOrderIds()) {
      buckets[static_cast<size_t>(region_of(*graph_.GetOrder(id)))]
          .push_back(id);
    }
    return buckets;
  }

  size_t size() const { return graph_.size(); }

  const ShareabilityGraph& graph() const { return graph_; }
  BestGroupMap& best_groups() { return best_; }
  RoutePlanner& planner() { return planner_; }
  const PoolOptions& options() const { return options_; }

 private:
  PoolOptions options_;
  RoutePlanner planner_;
  ShareabilityGraph graph_;
  BestGroupMap best_;
};

}  // namespace watter

#endif  // WATTER_POOL_ORDER_POOL_H_
