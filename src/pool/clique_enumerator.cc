#include "src/pool/clique_enumerator.h"

#include <algorithm>

namespace watter {
namespace {

struct EnumerationState {
  const ShareabilityGraph* graph;
  const CliqueOptions* options;
  const std::function<void(const std::vector<OrderId>&)>* visit;
  std::vector<OrderId> current;
  int visited = 0;
};

void Extend(EnumerationState* state, const std::vector<OrderId>& candidates) {
  if (state->visited >= state->options->max_visits) return;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (state->visited >= state->options->max_visits) return;
    OrderId next = candidates[i];
    state->current.push_back(next);

    std::vector<OrderId> sorted = state->current;
    std::sort(sorted.begin(), sorted.end());
    ++state->visited;
    (*state->visit)(sorted);

    if (static_cast<int>(state->current.size()) < state->options->max_size) {
      // Candidates for deeper extension: later-indexed candidates adjacent
      // to `next` (adjacency to all earlier members is inductively true).
      std::vector<OrderId> deeper;
      for (size_t j = i + 1; j < candidates.size(); ++j) {
        if (state->graph->HasEdge(next, candidates[j])) {
          deeper.push_back(candidates[j]);
        }
      }
      if (!deeper.empty()) Extend(state, deeper);
    }
    state->current.pop_back();
  }
}

}  // namespace

int EnumerateCliquesContaining(
    const ShareabilityGraph& graph, OrderId anchor,
    const CliqueOptions& options,
    const std::function<void(const std::vector<OrderId>&)>& visit) {
  if (!graph.Contains(anchor) || options.max_size < 2) return 0;
  std::vector<OrderId> neighbors;
  for (const ShareEdge& edge : graph.Neighbors(anchor)) {
    neighbors.push_back(edge.other);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(neighbors.begin(), neighbors.end());

  EnumerationState state;
  state.graph = &graph;
  state.options = &options;
  state.visit = &visit;
  state.current = {anchor};
  Extend(&state, neighbors);
  return state.visited;
}

}  // namespace watter
