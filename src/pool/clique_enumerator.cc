#include "src/pool/clique_enumerator.h"

namespace watter {

int EnumerateCliquesContaining(
    const ShareabilityGraph& graph, OrderId anchor,
    const CliqueOptions& options,
    const std::function<void(std::span<const OrderId>)>& visit) {
  CliqueEnumerator enumerator;
  return enumerator.Enumerate(graph, anchor, options, visit);
}

}  // namespace watter
