#include "src/pool/group_plan_cache.h"

#include <algorithm>

namespace watter {

void GroupPlanCache::Put(const GroupKey& key, CachedGroupPlan entry) {
  auto [it, inserted] = entries_.try_emplace(key);
  it->second = std::move(entry);
  if (!inserted) return;  // Re-plan overwrite: reverse index already set.
  for (OrderId member : key.members()) {
    containing_[member].push_back(key);
  }
}

void GroupPlanCache::OnOrderRemoved(OrderId member) {
  auto bucket = containing_.find(member);
  if (bucket == containing_.end()) return;
  // Detach the bucket first: the per-key cleanup below mutates containing_,
  // and the member's own bucket must not be re-created mid-loop.
  std::vector<GroupKey> keys = std::move(bucket->second);
  containing_.erase(bucket);
  for (const GroupKey& key : keys) {
    entries_.erase(key);
    ++evictions_;
    for (OrderId other : key.members()) {
      if (other == member) continue;
      auto it = containing_.find(other);
      if (it == containing_.end()) continue;
      // Swap-pop: bucket order is irrelevant (buckets only feed erasure).
      auto pos = std::find(it->second.begin(), it->second.end(), key);
      if (pos != it->second.end()) {
        *pos = it->second.back();
        it->second.pop_back();
      }
      if (it->second.empty()) containing_.erase(it);
    }
  }
}

}  // namespace watter
