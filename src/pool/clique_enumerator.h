// k-clique enumeration over the shareability graph.
//
// Theorem IV.1: a group of k orders can only have a feasible route if the
// corresponding nodes form a k-clique. The pool therefore enumerates cliques
// containing a given anchor order to collect candidate groups, which are then
// verified exactly with the route planner. Enumeration is bounded both by
// the maximum group size and by a visit budget so pathological dense pools
// cannot stall a decision round.
//
// The enumerator is allocation-free on the visit path: one reusable scratch
// buffer holds every level's candidate range (an explicit stack of ranges
// into it replaces recursion), members are emitted through a span over a
// small sorted buffer, and all scratch is reused across Enumerate calls.
// The previous recursive implementation heap-allocated a sorted copy plus a
// filtered candidate vector per visited clique — at 4096 visits per anchor
// that dominated dense-pool maintenance.
#ifndef WATTER_POOL_CLIQUE_ENUMERATOR_H_
#define WATTER_POOL_CLIQUE_ENUMERATOR_H_

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "src/core/types.h"
#include "src/pool/shareability_graph.h"

namespace watter {

/// Bounds for clique enumeration.
struct CliqueOptions {
  int max_size = kMaxGroupSize;  ///< Largest clique (group) size emitted.
  int max_visits = 4096;         ///< Hard cap on emitted cliques per anchor.
};

/// Reusable clique enumerator. Each instance owns scratch buffers that grow
/// to the densest anchor seen and are reused across calls; distinct
/// instances are fully independent, so concurrent searches each carry their
/// own enumerator (BestGroupMap keeps one per parallel task via a
/// thread_local).
class CliqueEnumerator {
 public:
  /// Calls `visit` with a sorted member span (anchor included) for every
  /// clique of size in [2, options.max_size] that contains `anchor`.
  /// Returns the number of cliques visited; stops early once
  /// options.max_visits is reached.
  ///
  /// The same clique is emitted exactly once, and sub-cliques of larger
  /// cliques are emitted too (every sub-clique is itself a candidate group).
  /// The visit sequence is deterministic — depth-first, candidates in
  /// ascending id order — and identical to the recursive reference
  /// implementation this replaced, so a truncated enumeration sees exactly
  /// the same prefix (the `none_` soundness rules depend on this).
  ///
  /// The span passed to `visit` aliases internal scratch: it is valid only
  /// for the duration of the call and must be copied to outlive it.
  template <typename Visitor>
  int Enumerate(const ShareabilityGraph& graph, OrderId anchor,
                const CliqueOptions& options, Visitor&& visit) {
    if (!graph.Contains(anchor) || options.max_size < 2) return 0;
    candidates_.clear();
    members_.clear();
    frames_.clear();

    for (const ShareEdge& edge : graph.Neighbors(anchor)) {
      candidates_.push_back(edge.other);
    }
    // Deterministic order regardless of hash-map iteration.
    std::sort(candidates_.begin(), candidates_.end());

    members_.push_back(anchor);
    frames_.push_back(Frame{0, candidates_.size(), 0, false});
    int visited = 0;

    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      if (frame.member_pushed) {
        // Done with candidates_[next - 1]: drop it and advance.
        PopMember(candidates_[frame.next - 1]);
        frame.member_pushed = false;
        continue;
      }
      if (visited >= options.max_visits || frame.next >= frame.end) {
        candidates_.resize(frame.begin);
        frames_.pop_back();
        continue;
      }
      OrderId next = candidates_[frame.next++];
      PushMember(next);
      frame.member_pushed = true;
      ++visited;
      visit(std::span<const OrderId>(members_));

      if (static_cast<int>(members_.size()) < options.max_size) {
        // Candidates for deeper extension: later-indexed candidates
        // adjacent to `next` (adjacency to all earlier members is
        // inductively true). Appended to the shared buffer; the child
        // frame's range is truncated away when it pops.
        size_t child_begin = candidates_.size();
        for (size_t j = frame.next; j < frame.end; ++j) {
          if (graph.HasEdge(next, candidates_[j])) {
            candidates_.push_back(candidates_[j]);
          }
        }
        if (candidates_.size() > child_begin) {
          // Invalidates `frame`; nothing below touches it.
          frames_.push_back(
              Frame{child_begin, candidates_.size(), child_begin, false});
        }
      }
    }
    return visited;
  }

 private:
  /// One in-flight enumeration level: a candidate range in `candidates_`
  /// and the loop position within it.
  struct Frame {
    size_t begin;        ///< Range start in candidates_.
    size_t end;          ///< Range end in candidates_.
    size_t next;         ///< Next candidate index to try (absolute).
    bool member_pushed;  ///< candidates_[next-1] currently in members_.
  };

  /// Inserts `id` keeping members_ sorted (<= kMaxGroupSize elements).
  void PushMember(OrderId id) {
    members_.push_back(id);
    for (size_t p = members_.size() - 1; p > 0 && members_[p - 1] > id; --p) {
      std::swap(members_[p - 1], members_[p]);
    }
  }

  void PopMember(OrderId id) {
    members_.erase(std::find(members_.begin(), members_.end(), id));
  }

  std::vector<OrderId> candidates_;  ///< All levels' ranges, stacked.
  std::vector<OrderId> members_;    ///< Current clique, sorted.
  std::vector<Frame> frames_;
};

/// Convenience wrapper over a local CliqueEnumerator for one-off calls
/// (tests, tools). Hot paths should hold a CliqueEnumerator and reuse it.
int EnumerateCliquesContaining(
    const ShareabilityGraph& graph, OrderId anchor,
    const CliqueOptions& options,
    const std::function<void(std::span<const OrderId>)>& visit);

}  // namespace watter

#endif  // WATTER_POOL_CLIQUE_ENUMERATOR_H_
