// k-clique enumeration over the shareability graph.
//
// Theorem IV.1: a group of k orders can only have a feasible route if the
// corresponding nodes form a k-clique. The pool therefore enumerates cliques
// containing a given anchor order to collect candidate groups, which are then
// verified exactly with the route planner. Enumeration is bounded both by
// the maximum group size and by a visit budget so pathological dense pools
// cannot stall a decision round.
#ifndef WATTER_POOL_CLIQUE_ENUMERATOR_H_
#define WATTER_POOL_CLIQUE_ENUMERATOR_H_

#include <functional>
#include <vector>

#include "src/core/types.h"
#include "src/pool/shareability_graph.h"

namespace watter {

/// Bounds for clique enumeration.
struct CliqueOptions {
  int max_size = kMaxGroupSize;  ///< Largest clique (group) size emitted.
  int max_visits = 4096;         ///< Hard cap on emitted cliques per anchor.
};

/// Calls `visit` for every clique of size in [2, max_size] that contains
/// `anchor`, as a sorted member vector (anchor included). Returns the number
/// of cliques visited; stops early once options.max_visits is reached.
///
/// The same clique is emitted exactly once. Sub-cliques of larger cliques are
/// emitted too (every sub-clique is itself a candidate group — a cheaper
/// route may exist for fewer members).
int EnumerateCliquesContaining(
    const ShareabilityGraph& graph, OrderId anchor,
    const CliqueOptions& options,
    const std::function<void(const std::vector<OrderId>&)>& visit);

}  // namespace watter

#endif  // WATTER_POOL_CLIQUE_ENUMERATOR_H_
