#include "src/pool/order_pool.h"

namespace watter {

Status OrderPool::Insert(const Order& order, Time now) {
  std::vector<PairPlanSeed> seeds;
  auto gained = graph_.Insert(order, now, &seeds);
  if (!gained.ok()) return gained.status();
  // Seed the group-plan cache with the pair plans edge certification just
  // computed: the next RefreshBestGroups would otherwise re-plan exactly
  // these member sets as cache misses.
  for (const PairPlanSeed& seed : seeds) {
    const Order* other = graph_.GetOrder(seed.other);
    if (other != nullptr) best_.SeedPlan(order, *other, seed.plan);
  }
  best_.MarkDirty(order.id);
  for (OrderId neighbor : *gained) best_.MarkDirty(neighbor);
  return Status::Ok();
}

Status OrderPool::Remove(OrderId id) {
  auto neighbors = graph_.Remove(id);
  if (!neighbors.ok()) return neighbors.status();
  best_.OnOrderRemoved(id);
  return Status::Ok();
}

void OrderPool::ExpireEdges(Time now) {
  for (OrderId affected : graph_.ExpireEdges(now)) {
    best_.MarkDirty(affected);
  }
}

}  // namespace watter
