#include "src/pool/order_pool.h"

namespace watter {

Status OrderPool::Insert(const Order& order, Time now) {
  auto gained = graph_.Insert(order, now);
  if (!gained.ok()) return gained.status();
  best_.MarkDirty(order.id);
  for (OrderId neighbor : *gained) best_.MarkDirty(neighbor);
  return Status::Ok();
}

Status OrderPool::Remove(OrderId id) {
  auto neighbors = graph_.Remove(id);
  if (!neighbors.ok()) return neighbors.status();
  best_.OnOrderRemoved(id);
  return Status::Ok();
}

void OrderPool::ExpireEdges(Time now) {
  for (OrderId affected : graph_.ExpireEdges(now)) {
    best_.MarkDirty(affected);
  }
}

}  // namespace watter
