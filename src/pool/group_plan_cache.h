// Shared group-plan cache: one exact DAR plan per distinct member set.
//
// A GroupPlan is depart-time-*invariant* for a fixed member set in the
// following sense: deadlines only tighten as time passes, so the min-cost
// route feasible at time t0 is still the min-cost feasible route at any
// t in [t0, latest_departure], and a member set the planner rejects at t0
// stays infeasible forever. A plan computed once is therefore reusable by
// every anchor whose clique enumeration emits the same member set — today's
// pool re-planned the same clique up to k times per round (once per member
// acting as anchor), and again after every unrelated dirty event — with
// per-lookup feasibility reduced to a `latest_departure >= now` comparison.
// Entries whose cached route has expired are re-planned at the later
// depart time (a costlier route with more deadline slack may still exist)
// and overwritten; infeasible verdicts are cached permanently.
//
// The soundness of both rules requires lookups to use non-decreasing `now`
// timestamps, which simulation time guarantees (the same monotonicity the
// shareability graph's edge expiries already rely on).
//
// Invalidation: a reverse-membership index (member -> keys containing it)
// drops every entry touching a departed order in O(entries containing it).
//
// Concurrency: mutation is single-writer (the pool's serial commit phases);
// Find is const and safe to call concurrently from the parallel search
// phases as long as no writer runs, which BestGroupMap's frozen-scan /
// serial-commit structure guarantees.
#ifndef WATTER_POOL_GROUP_PLAN_CACHE_H_
#define WATTER_POOL_GROUP_PLAN_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/route_planner.h"
#include "src/core/types.h"

namespace watter {

/// Cache key: the sorted member ids of a candidate group, stored inline
/// (groups never exceed kMaxGroupSize members).
struct GroupKey {
  std::array<OrderId, kMaxGroupSize> ids;
  int size = 0;

  GroupKey() { ids.fill(kInvalidOrder); }

  /// `members` must be sorted and at most kMaxGroupSize long.
  explicit GroupKey(std::span<const OrderId> members) : GroupKey() {
    size = static_cast<int>(members.size());
    for (int i = 0; i < size; ++i) ids[static_cast<size_t>(i)] = members[i];
  }

  std::span<const OrderId> members() const {
    return std::span<const OrderId>(ids.data(), static_cast<size_t>(size));
  }

  /// Unused slots are kInvalidOrder-padded, so whole-array comparison is
  /// correct and gives the deterministic lexicographic order the batched
  /// planning phase sorts by.
  friend bool operator==(const GroupKey& a, const GroupKey& b) {
    return a.ids == b.ids;
  }
  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    return a.ids < b.ids;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    uint64_t h = 1469598103934665603ull;  // FNV-1a over the member ids.
    for (int i = 0; i < key.size; ++i) {
      h ^= static_cast<uint64_t>(key.ids[static_cast<size_t>(i)]);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// One cached planning outcome. `sum_detour`/`sum_release` are the
/// member-set invariants BestGroup ranking needs, precomputed so cache hits
/// skip the per-member aggregation too.
struct CachedGroupPlan {
  bool feasible = false;
  GroupPlan plan;           ///< Valid when feasible.
  double sum_detour = 0.0;  ///< Sum over members of completion - shortest.
  double sum_release = 0.0; ///< Sum of member release times.
};

/// The shared plan cache with reverse-membership invalidation.
class GroupPlanCache {
 public:
  /// The cached outcome for `key`, or nullptr. Entries with
  /// `plan.latest_departure < now` are stale hits: the caller must re-plan
  /// at its current depart time and Put the result back.
  const CachedGroupPlan* Find(const GroupKey& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Inserts or overwrites `key`'s outcome. The reverse index is updated on
  /// first insert only (overwrites keep the same member set by definition).
  void Put(const GroupKey& key, CachedGroupPlan entry);

  /// Drops every entry whose member set contains `member` and forgets the
  /// member's reverse-index bucket. Call on order departure.
  void OnOrderRemoved(OrderId member);

  size_t size() const { return entries_.size(); }
  int64_t evictions() const { return evictions_; }

 private:
  std::unordered_map<GroupKey, CachedGroupPlan, GroupKeyHash> entries_;
  /// member -> keys of cached entries containing it.
  std::unordered_map<OrderId, std::vector<GroupKey>> containing_;
  int64_t evictions_ = 0;
};

}  // namespace watter

#endif  // WATTER_POOL_GROUP_PLAN_CACHE_H_
