#include "src/pool/best_group_map.h"

#include <algorithm>

namespace watter {

void BestGroupMap::OnOrderRemoved(OrderId member) {
  best_.erase(member);
  dirty_.erase(member);
  for (auto& [id, group] : best_) {
    if (std::binary_search(group.members.begin(), group.members.end(),
                           member)) {
      dirty_.insert(id);
    }
  }
}

bool BestGroupMap::NeedsRefresh(OrderId id, Time now) const {
  if (dirty_.count(id) > 0) return true;
  auto it = best_.find(id);
  if (it == best_.end()) return true;
  if (it->second.plan.latest_departure < now) return true;  // Group expired.
  return false;
}

const BestGroup* BestGroupMap::BestFor(OrderId id, Time now) {
  if (!graph_->Contains(id)) return nullptr;
  if (NeedsRefresh(id, now)) Recompute(id, now);
  auto it = best_.find(id);
  if (it == best_.end()) return nullptr;
  if (it->second.plan.latest_departure < now) return nullptr;
  return &it->second;
}

void BestGroupMap::Recompute(OrderId id, Time now) {
  ++recompute_count_;
  dirty_.erase(id);
  best_.erase(id);
  const Order* anchor = graph_->GetOrder(id);
  if (anchor == nullptr) return;

  BestGroup best;
  bool have_best = false;
  double best_avg = kInfCost;

  auto consider = [&](const std::vector<OrderId>& members) {
    ++groups_evaluated_;
    std::vector<const Order*> orders;
    orders.reserve(members.size());
    int riders = 0;
    for (OrderId member : members) {
      const Order* order = graph_->GetOrder(member);
      if (order == nullptr) return;
      riders += order->riders;
      orders.push_back(order);
    }
    if (riders > capacity_) return;
    auto plan = planner_->PlanBest(orders, now, capacity_);
    if (!plan.ok()) return;
    BestGroup group;
    group.members = members;
    group.sum_detour = 0.0;
    group.sum_release = 0.0;
    for (size_t i = 0; i < orders.size(); ++i) {
      group.sum_detour += plan->completion[i] - orders[i]->shortest_cost;
      group.sum_release += orders[i]->release;
    }
    group.plan = std::move(plan).value();
    double avg = group.AverageExtraTime(now, weights_);
    if (!have_best || avg < best_avg) {
      best = std::move(group);
      best_avg = avg;
      have_best = true;
    }
  };

  if (include_singletons_) consider({id});
  EnumerateCliquesContaining(*graph_, id, clique_options_, consider);

  if (have_best) best_.emplace(id, std::move(best));
}

}  // namespace watter
