#include "src/pool/best_group_map.h"

#include <algorithm>

namespace watter {
namespace {

// Minimum number of stale entries before RefreshMany fans out; one
// best-group search (clique enumeration + route planning) is the unit of
// work, so even small batches amortize the pool wake-up.
constexpr size_t kParallelGrain = 4;

}  // namespace

void BestGroupMap::OnOrderRemoved(OrderId member) {
  best_.erase(member);
  dirty_.erase(member);
  none_.erase(member);
  for (auto& [id, group] : best_) {
    if (std::binary_search(group.members.begin(), group.members.end(),
                           member)) {
      dirty_.insert(id);
    }
  }
}

bool BestGroupMap::NeedsRefresh(OrderId id, Time now) const {
  if (dirty_.count(id) > 0) return true;
  if (none_.count(id) > 0) return false;  // Known groupless until dirty.
  auto it = best_.find(id);
  if (it == best_.end()) return true;
  if (it->second.plan.latest_departure < now) return true;  // Group expired.
  return false;
}

const BestGroup* BestGroupMap::PeekBest(OrderId id, Time now) const {
  if (!graph_->Contains(id)) return nullptr;
  if (dirty_.count(id) > 0) return nullptr;  // Stale — caller must refresh.
  auto it = best_.find(id);
  if (it == best_.end()) return nullptr;
  if (it->second.plan.latest_departure < now) return nullptr;
  return &it->second;
}

const BestGroup* BestGroupMap::BestFor(OrderId id, Time now) {
  if (!graph_->Contains(id)) return nullptr;
  if (NeedsRefresh(id, now)) Recompute(id, now);
  auto it = best_.find(id);
  if (it == best_.end()) return nullptr;
  if (it->second.plan.latest_departure < now) return nullptr;
  return &it->second;
}

BestGroupMap::SearchResult BestGroupMap::ComputeBest(OrderId id,
                                                     Time now) const {
  SearchResult result;
  const Order* anchor = graph_->GetOrder(id);
  if (anchor == nullptr) return result;

  std::optional<BestGroup>& best = result.best;
  double best_avg = kInfCost;

  auto consider = [&](const std::vector<OrderId>& members) {
    ++result.groups_evaluated;
    std::vector<const Order*> orders;
    orders.reserve(members.size());
    int riders = 0;
    for (OrderId member : members) {
      const Order* order = graph_->GetOrder(member);
      if (order == nullptr) return;
      riders += order->riders;
      orders.push_back(order);
    }
    if (riders > capacity_) return;
    auto plan = planner_->PlanBest(orders, now, capacity_);
    if (!plan.ok()) return;
    BestGroup group;
    group.members = members;
    group.sum_detour = 0.0;
    group.sum_release = 0.0;
    for (size_t i = 0; i < orders.size(); ++i) {
      group.sum_detour += plan->completion[i] - orders[i]->shortest_cost;
      group.sum_release += orders[i]->release;
    }
    group.plan = std::move(plan).value();
    double avg = group.AverageExtraTime(now, weights_);
    if (!best.has_value() || avg < best_avg) {
      best = std::move(group);
      best_avg = avg;
    }
  };

  if (include_singletons_) consider({id});
  int visited =
      EnumerateCliquesContaining(*graph_, id, clique_options_, consider);
  result.truncated = visited >= clique_options_.max_visits;
  return result;
}

void BestGroupMap::Commit(OrderId id, SearchResult result) {
  ++recompute_count_;
  groups_evaluated_ += result.groups_evaluated;
  dirty_.erase(id);
  best_.erase(id);
  none_.erase(id);
  if (result.best.has_value()) {
    best_.emplace(id, std::move(*result.best));
  } else if (!result.truncated) {
    // Only a complete search proves the order groupless (see none_ docs).
    none_.insert(id);
  }
}

void BestGroupMap::Recompute(OrderId id, Time now) {
  Commit(id, ComputeBest(id, now));
}

void BestGroupMap::RefreshMany(const std::vector<OrderId>& ids, Time now) {
  // Freeze the stale set up front (in the caller's order) so the work list
  // does not depend on scheduling.
  std::vector<OrderId> stale;
  for (OrderId id : ids) {
    if (graph_->Contains(id) && NeedsRefresh(id, now)) stale.push_back(id);
  }
  if (stale.empty()) return;

  if (executor_ == nullptr || executor_->num_threads() <= 1 ||
      stale.size() <= kParallelGrain) {
    for (OrderId id : stale) Recompute(id, now);
    return;
  }

  // Parallel phase: each slot is written by exactly one task; the graph is
  // frozen and ComputeBest never touches the caches.
  std::vector<SearchResult> results(stale.size());
  executor_->ParallelFor(
      stale.size(), kParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          results[i] = ComputeBest(stale[i], now);
        }
      });

  // Ordered commit, identical to running Recompute serially over `stale`.
  for (size_t i = 0; i < stale.size(); ++i) {
    Commit(stale[i], std::move(results[i]));
  }
}

}  // namespace watter
