#include "src/pool/best_group_map.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"

namespace watter {
namespace {

// Minimum number of work items before a refresh phase fans out; one
// best-group scan/selection (clique enumeration) or one group plan is the
// unit of work, so even small batches amortize the pool wake-up.
constexpr size_t kParallelGrain = 4;

}  // namespace

void BestGroupMap::OnOrderRemoved(OrderId member) {
  // Reverse-membership dirtying: O(owners of the departed member), where the
  // previous implementation scanned every cached best group in the map.
  auto bucket = owners_of_.find(member);
  if (bucket != owners_of_.end()) {
    for (OrderId owner : bucket->second) {
      if (owner == member) continue;
      ++reverse_index_fanout_;
      dirty_.insert(owner);
    }
  }
  RemoveOwnerEntries(member);
  owners_of_.erase(member);
  best_.erase(member);
  dirty_.erase(member);
  none_.erase(member);
  plan_cache_.OnOrderRemoved(member);
}

void BestGroupMap::RemoveOwnerEntries(OrderId owner) {
  auto it = best_.find(owner);
  if (it == best_.end()) return;
  for (OrderId member : it->second.members) {
    auto bucket = owners_of_.find(member);
    if (bucket == owners_of_.end()) continue;
    bucket->second.erase(owner);
    if (bucket->second.empty()) owners_of_.erase(bucket);
  }
}

bool BestGroupMap::NeedsRefresh(OrderId id, Time now) const {
  if (dirty_.count(id) > 0) return true;
  if (none_.count(id) > 0) return false;  // Known groupless until dirty.
  auto it = best_.find(id);
  if (it == best_.end()) return true;
  if (it->second.plan.latest_departure < now) return true;  // Group expired.
  return false;
}

const BestGroup* BestGroupMap::PeekBest(OrderId id, Time now) const {
  if (!graph_->Contains(id)) return nullptr;
  if (dirty_.count(id) > 0) return nullptr;  // Stale — caller must refresh.
  auto it = best_.find(id);
  if (it == best_.end()) return nullptr;
  if (it->second.plan.latest_departure < now) return nullptr;
  return &it->second;
}

const BestGroup* BestGroupMap::BestFor(OrderId id, Time now) {
  if (!graph_->Contains(id)) return nullptr;
  if (NeedsRefresh(id, now)) Recompute(id, now);
  auto it = best_.find(id);
  if (it == best_.end()) return nullptr;
  if (it->second.plan.latest_departure < now) return nullptr;
  return &it->second;
}

bool BestGroupMap::CandidateAdmissible(
    std::span<const OrderId> members) const {
  // Oversized cliques (CliqueOptions::max_size above kMaxGroupSize) cannot
  // be planned — and must not reach the fixed-width GroupKey.
  if (members.size() > static_cast<size_t>(kMaxGroupSize)) return false;
  int riders = 0;
  for (OrderId member : members) {
    const Order* order = graph_->GetOrder(member);
    if (order == nullptr) return false;
    riders += order->riders;
  }
  return riders <= capacity_;
}

BestGroupMap::CandidateScan BestGroupMap::ScanCandidates(OrderId id,
                                                         Time now) const {
  CandidateScan scan;
  if (graph_->GetOrder(id) == nullptr) return scan;

  auto classify = [&](std::span<const OrderId> members) {
    if (!CandidateAdmissible(members)) return;
    GroupKey key(members);
    const CachedGroupPlan* entry = plan_cache_.Find(key);
    if (entry == nullptr) {
      ++scan.misses;
      scan.need_plan.push_back(key);
    } else if (!entry->feasible || entry->plan.latest_departure >= now) {
      // Cached verdict still answers the query (infeasibility is permanent;
      // an unexpired plan is still the min-cost feasible plan — see
      // group_plan_cache.h).
      ++scan.hits;
    } else {
      // The cached min-cost route expired; a costlier route with more
      // deadline slack may still exist, so re-plan at the current time.
      ++scan.replans;
      scan.need_plan.push_back(key);
    }
  };

  if (include_singletons_) {
    const OrderId self[] = {id};
    classify(std::span<const OrderId>(self));
  }
  thread_local CliqueEnumerator enumerator;
  enumerator.Enumerate(*graph_, id, clique_options_, classify);
  return scan;
}

CachedGroupPlan BestGroupMap::PlanGroup(const GroupKey& key, Time now) const {
  CachedGroupPlan entry;
  std::vector<const Order*> orders;
  orders.reserve(static_cast<size_t>(key.size));
  for (OrderId member : key.members()) {
    const Order* order = graph_->GetOrder(member);
    if (order == nullptr) return entry;  // Unreachable: scan filtered these.
    orders.push_back(order);
  }
  auto plan = planner_->PlanBest(orders, now, capacity_);
  if (!plan.ok()) return entry;
  entry.feasible = true;
  for (size_t i = 0; i < orders.size(); ++i) {
    entry.sum_detour += plan->completion[i] - orders[i]->shortest_cost;
    entry.sum_release += orders[i]->release;
  }
  entry.plan = std::move(plan).value();
  return entry;
}

BestGroupMap::SearchResult BestGroupMap::SelectBest(OrderId id,
                                                    Time now) const {
  SearchResult result;
  if (graph_->GetOrder(id) == nullptr) return result;

  const CachedGroupPlan* best_entry = nullptr;
  GroupKey best_key;
  double best_avg = kInfCost;

  auto consider = [&](std::span<const OrderId> members) {
    ++result.groups_evaluated;
    if (!CandidateAdmissible(members)) return;
    GroupKey key(members);
    // Every admissible candidate was planned (or found cached) by the scan
    // + plan phases over the same frozen graph, so the guards below are
    // defensive rather than load-bearing.
    const CachedGroupPlan* entry = plan_cache_.Find(key);
    if (entry == nullptr || !entry->feasible) return;
    if (entry->plan.latest_departure < now) return;
    double size = static_cast<double>(members.size());
    double avg_detour = entry->sum_detour / size;
    double avg_response = now - entry->sum_release / size;
    double avg = weights_.alpha * avg_detour + weights_.beta * avg_response;
    if (best_entry == nullptr || avg < best_avg) {
      best_entry = entry;
      best_key = key;
      best_avg = avg;
    }
  };

  if (include_singletons_) {
    const OrderId self[] = {id};
    consider(std::span<const OrderId>(self));
  }
  thread_local CliqueEnumerator enumerator;
  int visited = enumerator.Enumerate(*graph_, id, clique_options_, consider);
  result.truncated = visited >= clique_options_.max_visits;

  if (best_entry != nullptr) {
    BestGroup group;
    group.members.assign(best_key.members().begin(),
                         best_key.members().end());
    group.plan = best_entry->plan;  // Copied: the cache retains its entry.
    group.sum_detour = best_entry->sum_detour;
    group.sum_release = best_entry->sum_release;
    result.best = std::move(group);
  }
  return result;
}

void BestGroupMap::Commit(OrderId id, SearchResult result) {
  ++recompute_count_;
  groups_evaluated_ += result.groups_evaluated;
  dirty_.erase(id);
  RemoveOwnerEntries(id);
  best_.erase(id);
  none_.erase(id);
  if (result.best.has_value()) {
    for (OrderId member : result.best->members) {
      owners_of_[member].insert(id);
    }
    best_.emplace(id, std::move(*result.best));
  } else if (!result.truncated) {
    // Only a complete search proves the order groupless (see none_ docs).
    none_.insert(id);
  }
}

void BestGroupMap::RefreshInternal(const std::vector<OrderId>& anchors,
                                   Time now) {
  if (anchors.empty()) return;
  bool parallel = executor_ != nullptr && executor_->num_threads() > 1;

  // Phase 1: scan every anchor's candidates against the cache frozen at
  // batch entry. Lookups see only pre-batch state, so each anchor's outcome
  // — and every counter derived below — is a pure function of (graph,
  // cache, anchors, now), never of thread count or sibling anchors.
  std::vector<CandidateScan> scans(anchors.size());
  std::vector<GroupKey> need;
  {
    WATTER_TRACE_SPAN("refresh.scan");
    if (parallel && anchors.size() > kParallelGrain) {
      executor_->ParallelMap(anchors.size(), kParallelGrain, &scans,
                             [&](size_t i) {
                               return ScanCandidates(anchors[i], now);
                             });
    } else {
      for (size_t i = 0; i < anchors.size(); ++i) {
        scans[i] = ScanCandidates(anchors[i], now);
      }
    }

    // Merge: the distinct member sets needing a plan, in lexicographic key
    // order. This is the intra-batch dedupe — the k anchors sharing a
    // clique contribute the key k times but it is planned once.
    for (const CandidateScan& scan : scans) {
      plan_cache_hits_ += scan.hits;
      plan_cache_misses_ += scan.misses;
      plan_cache_replans_ += scan.replans;
      need.insert(need.end(), scan.need_plan.begin(), scan.need_plan.end());
    }
    std::sort(need.begin(), need.end());
    need.erase(std::unique(need.begin(), need.end()), need.end());
  }

  // Phase 2: plan each distinct member set exactly once, then commit the
  // outcomes serially in key order.
  {
    WATTER_TRACE_SPAN("refresh.plan");
    std::vector<CachedGroupPlan> planned(need.size());
    if (parallel && need.size() > kParallelGrain) {
      executor_->ParallelMap(need.size(), kParallelGrain, &planned,
                             [&](size_t i) { return PlanGroup(need[i], now); });
    } else {
      for (size_t i = 0; i < need.size(); ++i) {
        planned[i] = PlanGroup(need[i], now);
      }
    }
    for (size_t i = 0; i < need.size(); ++i) {
      plan_cache_.Put(need[i], std::move(planned[i]));
    }
  }

  // Phase 3: rank each anchor's candidates from the now-complete cache and
  // commit serially in `anchors` order — identical to a serial per-anchor
  // recompute.
  {
    WATTER_TRACE_SPAN("refresh.select");
    std::vector<SearchResult> results(anchors.size());
    if (parallel && anchors.size() > kParallelGrain) {
      executor_->ParallelMap(anchors.size(), kParallelGrain, &results,
                             [&](size_t i) {
                               return SelectBest(anchors[i], now);
                             });
    } else {
      for (size_t i = 0; i < anchors.size(); ++i) {
        results[i] = SelectBest(anchors[i], now);
      }
    }
    for (size_t i = 0; i < anchors.size(); ++i) {
      Commit(anchors[i], std::move(results[i]));
    }
  }
}

void BestGroupMap::SeedPlan(const Order& order, const Order& other,
                            const GroupPlan& plan) {
  const OrderId members[] = {std::min(order.id, other.id),
                             std::max(order.id, other.id)};
  GroupKey key{std::span<const OrderId>(members)};
  // Never overwrite: an existing entry is at least as fresh as the seed
  // (both are exact plans; Put's reverse index also assumes first-insert).
  if (plan_cache_.Find(key) != nullptr) return;

  CachedGroupPlan entry;
  entry.feasible = true;
  entry.plan = plan;
  if (order.id > other.id) {
    // PlanGroup aligns completion with the sorted member ids; the edge plan
    // was computed with input order {order, other}.
    std::swap(entry.plan.completion[0], entry.plan.completion[1]);
  }
  entry.sum_detour = (plan.completion[0] - order.shortest_cost) +
                     (plan.completion[1] - other.shortest_cost);
  entry.sum_release = order.release + other.release;
  plan_cache_.Put(key, std::move(entry));
  ++plan_cache_seeds_;
}

void BestGroupMap::Recompute(OrderId id, Time now) {
  RefreshInternal({id}, now);
}

void BestGroupMap::RefreshMany(const std::vector<OrderId>& ids, Time now) {
  // Freeze the stale set up front (in the caller's order) so the work list
  // does not depend on scheduling.
  std::vector<OrderId> stale;
  for (OrderId id : ids) {
    if (graph_->Contains(id) && NeedsRefresh(id, now)) stale.push_back(id);
  }
  RefreshInternal(stale, now);
}

}  // namespace watter
