// The insertion operator used by the GDP baseline (paper reference [9]):
// given a vehicle's committed route suffix, find the cheapest positions to
// splice a new order's pickup and drop-off while preserving every promised
// deadline and the capacity profile.
//
// Extracted from the GDP simulation so it can be property-tested in
// isolation; the simulation builds an InsertionQuery per candidate worker.
#ifndef WATTER_BASELINE_INSERTION_H_
#define WATTER_BASELINE_INSERTION_H_

#include <vector>

#include "src/core/types.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// One stop of the flexible (re-plannable) part of a vehicle route.
struct InsertionStop {
  NodeId node = kInvalidNode;
  /// Drop-off deadline enforced at this stop; kInfCost for pickups.
  Time deadline = kInfCost;
  /// Riders boarding (+) or alighting (-) here.
  int rider_delta = 0;
};

/// The vehicle-side inputs of one insertion search.
struct InsertionQuery {
  NodeId anchor = kInvalidNode;  ///< Where the flexible part begins.
  Time anchor_time = 0.0;        ///< When the vehicle is there.
  int onboard_at_anchor = 0;     ///< Riders on board at the anchor.
  int capacity = 4;
  std::vector<InsertionStop> suffix;  ///< Retained stops after the anchor.
};

/// A candidate insertion: pickup before suffix item `pickup_pos`, drop-off
/// before item `dropoff_pos` (a position equal to suffix.size() appends).
/// `added_cost` stays infinite when no feasible insertion exists.
struct InsertionCandidate {
  int pickup_pos = -1;
  int dropoff_pos = -1;
  double added_cost = kInfCost;

  bool feasible() const { return added_cost < kInfCost; }
};

/// Exhaustively evaluates all O(|suffix|^2) position pairs and returns the
/// cheapest feasible one.
InsertionCandidate FindBestInsertion(const InsertionQuery& query,
                                     const Order& order,
                                     TravelTimeOracle* oracle);

/// Cost and feasibility of one specific position pair (exposed for tests
/// and diagnostics). Returns kInfCost when infeasible.
double EvaluateInsertion(const InsertionQuery& query, const Order& order,
                         int pickup_pos, int dropoff_pos,
                         TravelTimeOracle* oracle);

}  // namespace watter

#endif  // WATTER_BASELINE_INSERTION_H_
