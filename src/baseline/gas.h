// GAS baseline: batch-based group assignment (paper reference [2], the
// Shared-Route Planning Query solver).
//
// Orders are pooled per fixed batch window. At each batch boundary the
// platform builds, per idle worker, an "additive tree" of feasible order
// groups: singletons first, each node extended by one more order whenever an
// exact feasible shared route exists. The worker takes the maximum-utility
// group in its tree (utility = total fare, proxied by the sum of member
// shortest travel costs, tie-broken by cheaper routes). Orders that stay
// unassigned roll over to the next batch until their latest dispatch time
// passes, at which point they are rejected.
//
// Faithfulness notes: the original GAS searches all workers' trees jointly;
// we assign greedily per worker in id order within a batch, and bound the
// tree by breadth/size budgets so a dense batch cannot take exponential time
// (the paper observes GAS's exponential blow-up; the budgets keep our runs
// finite while preserving its batch-based character).
#ifndef WATTER_BASELINE_GAS_H_
#define WATTER_BASELINE_GAS_H_

#include "src/core/metrics.h"
#include "src/workload/scenario.h"

namespace watter {

/// GAS configuration.
struct GasOptions {
  MetricsOptions metrics;
  /// Batch window (the paper discusses ~5-10 s mini-batches).
  double batch_period = 10.0;
  /// Spatial grid for candidate lookup.
  int grid_cells = 10;
  /// Waiting orders considered per worker tree (nearest by pickup).
  int candidate_orders = 16;
  /// Cap on tree nodes (groups) evaluated per worker per batch. High enough
  /// that dense batches exhibit the exponential growth the paper reports
  /// for GAS, while still bounding the worst case.
  int max_groups_per_worker = 1024;
};

/// Runs the GAS baseline over a scenario.
MetricsReport RunGas(Scenario* scenario, const GasOptions& options = {});

}  // namespace watter

#endif  // WATTER_BASELINE_GAS_H_
