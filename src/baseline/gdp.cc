#include "src/baseline/gdp.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/baseline/insertion.h"
#include "src/common/stopwatch.h"
#include "src/geo/grid_index.h"

namespace watter {
namespace {

struct RouteStop {
  NodeId node = kInvalidNode;
  OrderId order = kInvalidOrder;
  bool is_pickup = false;
  Time arrival = 0.0;
};

struct AssignedOrder {
  Order order;
  Time assigned_at = 0.0;
  Time pickup_arrival = 0.0;
  bool picked = false;
};

struct GdpWorker {
  Worker base;
  std::vector<RouteStop> route;     // Remaining stops, arrival-ordered.
  int onboard = 0;                  // Riders currently in the vehicle.
  NodeId last_node = kInvalidNode;  // Where the current leg started.
  Time last_time = 0.0;             // When it started.

  /// Where the next flexible leg departs from: the committed next stop if
  /// driving, otherwise the parked location.
  NodeId anchor_node() const {
    return route.empty() ? base.location : route.front().node;
  }
  Time anchor_time(Time now) const {
    return route.empty() ? now : route.front().arrival;
  }
};

class GdpSimulation {
 public:
  GdpSimulation(Scenario* scenario, const GdpOptions& options)
      : scenario_(scenario),
        options_(options),
        metrics_(options.metrics),
        worker_index_(scenario->city->graph.MinCorner(),
                      scenario->city->graph.MaxCorner(), options.grid_cells) {
    workers_.reserve(scenario->workers.size());
    for (const Worker& w : scenario->workers) {
      GdpWorker gw;
      gw.base = w;
      gw.last_node = w.location;
      workers_.push_back(gw);
      worker_index_.Insert(w.id,
                           scenario->city->graph.node_point(w.location));
    }
  }

  MetricsReport Run() {
    Stopwatch algorithm_time;
    {
      ScopedTimer timer(&algorithm_time);
      for (const Order& order : scenario_->orders) {
        AdvanceAll(order.release);
        HandleArrival(order);
      }
      AdvanceAll(kInfCost);  // Drain every remaining route.
      if (!scenario_->orders.empty()) {
        Time horizon_end = scenario_->orders.back().release;
        for (const GdpWorker& worker : workers_) {
          horizon_end = std::max(horizon_end, worker.last_time);
        }
        metrics_.SetFleetInfo(
            static_cast<int>(workers_.size()),
            horizon_end - scenario_->orders.front().release);
      }
    }
    metrics_.AddAlgorithmTime(algorithm_time.ElapsedSeconds());
    return metrics_.Report();
  }

 private:
  double Cost(NodeId a, NodeId b) { return scenario_->oracle->Cost(a, b); }

  void AdvanceAll(Time now) {
    for (GdpWorker& worker : workers_) Advance(&worker, now);
  }

  /// Executes all stops scheduled at or before `now`.
  void Advance(GdpWorker* worker, Time now) {
    while (!worker->route.empty() && worker->route.front().arrival <= now) {
      RouteStop stop = worker->route.front();
      worker->route.erase(worker->route.begin());
      metrics_.AddWorkerTravel(stop.arrival - worker->last_time);
      worker->last_node = stop.node;
      worker->last_time = stop.arrival;
      worker->base.location = stop.node;
      auto it = assigned_.find(stop.order);
      if (it != assigned_.end()) {
        AssignedOrder& record = it->second;
        if (stop.is_pickup) {
          record.picked = true;
          record.pickup_arrival = stop.arrival;
          worker->onboard += record.order.riders;
        } else {
          worker->onboard -= record.order.riders;
          double response = record.assigned_at - record.order.release;
          // Definition 5: T(L^(i)) runs from the route position at
          // assignment through the drop-off, so time spent riding along —
          // or waiting for — the vehicle's other commitments counts as
          // detour, exactly as pre-pickup riding does in a WATTER group.
          double detour = (stop.arrival - record.assigned_at) -
                          record.order.shortest_cost;
          metrics_.RecordServed(record.order, response,
                                std::max(0.0, detour), /*group_size=*/1);
          assigned_.erase(it);
        }
      }
      worker_index_.Insert(worker->base.id,
                           scenario_->city->graph.node_point(stop.node));
    }
  }

  /// Builds the insertion query describing `worker`'s flexible suffix.
  InsertionQuery BuildQuery(const GdpWorker& worker, Time now) {
    InsertionQuery query;
    query.anchor = worker.anchor_node();
    query.anchor_time = worker.anchor_time(now);
    query.onboard_at_anchor = worker.onboard;
    query.capacity = worker.base.capacity;
    const int stops = static_cast<int>(worker.route.size());
    const int first_free = stops == 0 ? 0 : 1;
    if (stops > 0) {
      // The committed head stop executes before anything we insert.
      const RouteStop& head = worker.route[0];
      auto it = assigned_.find(head.order);
      int riders = it != assigned_.end() ? it->second.order.riders : 0;
      query.onboard_at_anchor += head.is_pickup ? riders : -riders;
    }
    for (int s = first_free; s < stops; ++s) {
      const RouteStop& stop = worker.route[s];
      auto it = assigned_.find(stop.order);
      int riders = it != assigned_.end() ? it->second.order.riders : 0;
      Time deadline = (!stop.is_pickup && it != assigned_.end())
                          ? it->second.order.deadline
                          : kInfCost;
      query.suffix.push_back(
          {stop.node, deadline, stop.is_pickup ? riders : -riders});
    }
    return query;
  }

  void ApplyInsertion(GdpWorker* worker, const Order& order,
                      const InsertionCandidate& insertion, Time now) {
    const int stops = static_cast<int>(worker->route.size());
    const int first_free = stops == 0 ? 0 : 1;
    const int m = stops - first_free;
    std::vector<RouteStop> updated;
    updated.reserve(worker->route.size() + 2);
    for (int s = 0; s < first_free; ++s) updated.push_back(worker->route[s]);
    for (int s = 0; s <= m; ++s) {
      if (s == insertion.pickup_pos) {
        updated.push_back({order.pickup, order.id, true, 0.0});
      }
      if (s == insertion.dropoff_pos) {
        updated.push_back({order.dropoff, order.id, false, 0.0});
      }
      if (s < m) updated.push_back(worker->route[first_free + s]);
    }
    // Recompute arrivals from the anchor.
    NodeId prev = worker->anchor_node();
    Time t = worker->anchor_time(now);
    for (size_t s = static_cast<size_t>(first_free); s < updated.size();
         ++s) {
      t += Cost(prev, updated[s].node);
      prev = updated[s].node;
      updated[s].arrival = t;
    }
    if (worker->route.empty()) {
      // Fresh departure: the realized-travel reference starts here and now.
      worker->last_node = worker->base.location;
      worker->last_time = now;
    }
    worker->route = std::move(updated);
  }

  void HandleArrival(const Order& order) {
    Time now = order.release;
    auto candidates = worker_index_.KNearest(
        options_.worker_candidates,
        scenario_->city->graph.node_point(order.pickup));
    GdpWorker* best_worker = nullptr;
    InsertionCandidate best;
    for (int64_t id : candidates) {
      GdpWorker& worker = workers_[id - 1];
      InsertionCandidate candidate = FindBestInsertion(
          BuildQuery(worker, now), order, scenario_->oracle.get());
      if (candidate.added_cost < best.added_cost) {
        best = candidate;
        best_worker = &worker;
      }
    }
    if (best_worker == nullptr) {
      metrics_.RecordRejected(order);
      return;
    }
    assigned_.emplace(order.id, AssignedOrder{order, now, 0.0, false});
    ApplyInsertion(best_worker, order, best, now);
  }

  Scenario* scenario_;
  GdpOptions options_;
  MetricsCollector metrics_;
  GridIndex worker_index_;
  std::vector<GdpWorker> workers_;
  std::unordered_map<OrderId, AssignedOrder> assigned_;
};

}  // namespace

MetricsReport RunGdp(Scenario* scenario, const GdpOptions& options) {
  GdpSimulation simulation(scenario, options);
  return simulation.Run();
}

}  // namespace watter
