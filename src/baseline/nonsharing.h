// Non-sharing baseline: every order is served alone by the closest
// available worker, immediately on arrival (mode (1) of the paper's
// Example 1). The lower bound on pooling benefit: zero detours, zero
// grouping, maximal fleet consumption.
#ifndef WATTER_BASELINE_NONSHARING_H_
#define WATTER_BASELINE_NONSHARING_H_

#include "src/core/metrics.h"
#include "src/workload/scenario.h"

namespace watter {

/// Non-sharing configuration.
struct NonSharingOptions {
  MetricsOptions metrics;
  int grid_cells = 10;
  int worker_candidates = 8;
};

/// Runs the non-sharing baseline. Orders that find no idle worker wait in a
/// FIFO queue and are rejected once their latest dispatch time passes.
MetricsReport RunNonSharing(Scenario* scenario,
                            const NonSharingOptions& options = {});

}  // namespace watter

#endif  // WATTER_BASELINE_NONSHARING_H_
