// GDP baseline: online greedy insertion (paper reference [9]).
//
// Every arriving order is answered immediately: the platform probes nearby
// workers, computes the cheapest feasible insertion of the order's pickup
// and drop-off into each worker's current multi-stop route (preserving all
// previously promised deadlines and the capacity profile), and assigns the
// order to the worker with the smallest added travel cost. If no feasible
// insertion exists, the order is rejected on the spot.
//
// Unlike WATTER's one-group-at-a-time fleet, GDP workers continuously carry
// an evolving route; a worker is never "idle vs busy" but simply has an
// empty or non-empty stop queue. The committed next stop cannot be changed
// (no mid-leg rerouting), which is the standard insertion-operator model.
#ifndef WATTER_BASELINE_GDP_H_
#define WATTER_BASELINE_GDP_H_

#include "src/core/metrics.h"
#include "src/workload/scenario.h"

namespace watter {

/// GDP configuration.
struct GdpOptions {
  MetricsOptions metrics;
  /// Nearby workers probed per order (Euclidean prefilter on anchors).
  int worker_candidates = 16;
  /// Spatial grid for the worker index.
  int grid_cells = 10;
};

/// Runs the GDP baseline over a scenario and reports the paper's metrics.
/// Response time is the (immediate) notification wait; detour is the
/// realized riding detour (drop-off arrival - pickup arrival - shortest).
MetricsReport RunGdp(Scenario* scenario, const GdpOptions& options = {});

}  // namespace watter

#endif  // WATTER_BASELINE_GDP_H_
