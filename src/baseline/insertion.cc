#include "src/baseline/insertion.h"

namespace watter {
namespace {

/// Walks the suffix with (pickup_pos, dropoff_pos) spliced in; returns the
/// added travel cost or kInfCost when a constraint breaks. `base_cost` is
/// the unmodified suffix travel cost.
double WalkCandidate(const InsertionQuery& query, const Order& order,
                     int pickup_pos, int dropoff_pos, double base_cost,
                     TravelTimeOracle* oracle) {
  const int m = static_cast<int>(query.suffix.size());
  NodeId prev = query.anchor;
  Time t = query.anchor_time;
  int onboard = query.onboard_at_anchor;
  double cost = 0.0;
  bool feasible = true;
  auto drive_to = [&](NodeId next) {
    double leg = oracle->Cost(prev, next);
    if (leg == kInfCost) feasible = false;
    cost += leg;
    t += leg;
    prev = next;
  };
  for (int s = 0; s <= m && feasible; ++s) {
    if (s == pickup_pos) {
      drive_to(order.pickup);
      onboard += order.riders;
      if (onboard > query.capacity) feasible = false;
    }
    if (s == dropoff_pos && feasible) {
      drive_to(order.dropoff);
      onboard -= order.riders;
      if (t > order.deadline) feasible = false;
    }
    if (s == m || !feasible) break;
    drive_to(query.suffix[s].node);
    onboard += query.suffix[s].rider_delta;
    if (onboard > query.capacity) feasible = false;
    if (t > query.suffix[s].deadline) feasible = false;
  }
  if (!feasible) return kInfCost;
  return cost - base_cost;
}

double SuffixBaseCost(const InsertionQuery& query,
                      TravelTimeOracle* oracle) {
  double base = 0.0;
  NodeId prev = query.anchor;
  for (const InsertionStop& stop : query.suffix) {
    base += oracle->Cost(prev, stop.node);
    prev = stop.node;
  }
  return base;
}

}  // namespace

double EvaluateInsertion(const InsertionQuery& query, const Order& order,
                         int pickup_pos, int dropoff_pos,
                         TravelTimeOracle* oracle) {
  if (pickup_pos < 0 || dropoff_pos < pickup_pos ||
      dropoff_pos > static_cast<int>(query.suffix.size())) {
    return kInfCost;
  }
  return WalkCandidate(query, order, pickup_pos, dropoff_pos,
                       SuffixBaseCost(query, oracle), oracle);
}

InsertionCandidate FindBestInsertion(const InsertionQuery& query,
                                     const Order& order,
                                     TravelTimeOracle* oracle) {
  InsertionCandidate best;
  const int m = static_cast<int>(query.suffix.size());
  double base_cost = SuffixBaseCost(query, oracle);
  for (int i = 0; i <= m; ++i) {
    for (int j = i; j <= m; ++j) {
      double added = WalkCandidate(query, order, i, j, base_cost, oracle);
      if (added < best.added_cost) {
        best.pickup_pos = i;
        best.dropoff_pos = j;
        best.added_cost = added;
      }
    }
  }
  return best;
}

}  // namespace watter
