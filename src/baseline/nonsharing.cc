#include "src/baseline/nonsharing.h"

#include <deque>

#include "src/common/stopwatch.h"
#include "src/sim/fleet.h"

namespace watter {

MetricsReport RunNonSharing(Scenario* scenario,
                            const NonSharingOptions& options) {
  MetricsCollector metrics(options.metrics);
  Fleet fleet(scenario->workers, &scenario->city->graph, options.grid_cells);
  std::deque<Order> queue;

  Stopwatch algorithm_time;
  {
    ScopedTimer timer(&algorithm_time);
    auto drain_queue = [&](Time now) {
      fleet.ReleaseUntil(now);
      while (!queue.empty()) {
        const Order& order = queue.front();
        if (now > order.LatestDispatch()) {
          metrics.RecordRejected(order);
          queue.pop_front();
          continue;
        }
        WorkerId worker_id =
            fleet.FindClosestIdle(order.pickup, order.riders,
                                  scenario->oracle.get(),
                                  options.worker_candidates);
        if (worker_id == kInvalidWorker) break;  // FIFO: wait for a worker.
        const Worker& worker = fleet.worker(worker_id);
        double pickup_delay =
            scenario->oracle->Cost(worker.location, order.pickup);
        double response = now - order.release;
        metrics.RecordServed(order, response, /*detour=*/0.0,
                             /*group_size=*/1);
        metrics.AddWorkerTravel(pickup_delay + order.shortest_cost);
        fleet.Dispatch(worker_id,
                       now + pickup_delay + order.shortest_cost,
                       order.dropoff);
        queue.pop_front();
      }
    };

    size_t next_order = 0;
    const std::vector<Order>& orders = scenario->orders;
    // Event times: arrivals plus a coarse drain tick so queued orders are
    // retried as workers free up.
    Time tick = orders.empty() ? 0.0 : orders.front().release;
    while (next_order < orders.size() || !queue.empty()) {
      Time arrival =
          next_order < orders.size() ? orders[next_order].release : kInfCost;
      if (queue.empty() && arrival > tick) tick = arrival;
      if (arrival <= tick) {
        queue.push_back(orders[next_order]);
        ++next_order;
        drain_queue(arrival);
      } else {
        drain_queue(tick);
        tick += 5.0;
      }
    }
  }
  metrics.AddAlgorithmTime(algorithm_time.ElapsedSeconds());
  return metrics.Report();
}

}  // namespace watter
