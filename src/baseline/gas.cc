#include "src/baseline/gas.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/core/route_planner.h"
#include "src/geo/grid_index.h"
#include "src/sim/fleet.h"

namespace watter {
namespace {

class GasSimulation {
 public:
  GasSimulation(Scenario* scenario, const GasOptions& options)
      : scenario_(scenario),
        options_(options),
        metrics_(options.metrics),
        planner_(scenario->oracle.get()),
        fleet_(scenario->workers, &scenario->city->graph,
               options.grid_cells),
        waiting_index_(scenario->city->graph.MinCorner(),
                       scenario->city->graph.MaxCorner(),
                       options.grid_cells) {}

  MetricsReport Run() {
    Stopwatch algorithm_time;
    {
      ScopedTimer timer(&algorithm_time);
      const std::vector<Order>& orders = scenario_->orders;
      size_t next_order = 0;
      Time batch_time = orders.empty()
                            ? 0.0
                            : orders.front().release + options_.batch_period;
      while (next_order < orders.size() || !waiting_.empty()) {
        Time arrival = next_order < orders.size()
                           ? orders[next_order].release
                           : kInfCost;
        if (waiting_.empty() && arrival > batch_time) {
          batch_time = arrival + options_.batch_period;
        }
        if (arrival <= batch_time) {
          const Order& order = orders[next_order];
          waiting_.emplace(order.id, order);
          waiting_index_.Insert(
              order.id, scenario_->city->graph.node_point(order.pickup));
          ++next_order;
        } else {
          fleet_.ReleaseUntil(batch_time);
          RunBatch(batch_time);
          last_batch_ = batch_time;
          batch_time += options_.batch_period;
        }
      }
      if (!orders.empty()) {
        metrics_.SetFleetInfo(fleet_.size(),
                              last_batch_ - orders.front().release);
      }
    }
    metrics_.AddAlgorithmTime(algorithm_time.ElapsedSeconds());
    return metrics_.Report();
  }

 private:
  struct Group {
    std::vector<const Order*> members;
    GroupPlan plan;
    double utility = 0.0;  // Sum of member fares (shortest costs).
  };

  void RemoveWaiting(OrderId id) {
    waiting_.erase(id);
    // waiting_ and waiting_index_ are inserted into together, so the index
    // must still hold the id.
    WATTER_CHECK_OK(waiting_index_.Remove(id));
  }

  void RunBatch(Time now) {
    // Expire orders that can no longer be feasibly dispatched.
    std::vector<OrderId> expired;
    for (const auto& [id, order] : waiting_) {
      if (now > order.LatestDispatch()) expired.push_back(id);
    }
    std::sort(expired.begin(), expired.end());
    for (OrderId id : expired) {
      metrics_.RecordRejected(waiting_.at(id));
      RemoveWaiting(id);
    }
    if (waiting_.empty()) return;

    for (WorkerId worker_id : fleet_.IdleWorkerIds()) {
      if (waiting_.empty()) break;
      const Worker& worker = fleet_.worker(worker_id);
      Group best = BestGroupForWorker(worker, now);
      if (best.members.empty()) continue;
      DispatchGroup(worker_id, best, now);
    }
  }

  Group BestGroupForWorker(const Worker& worker, Time now) {
    // Candidate orders: nearest waiting pickups to the worker.
    auto candidate_ids = waiting_index_.KNearest(
        options_.candidate_orders,
        scenario_->city->graph.node_point(worker.location));
    std::vector<const Order*> candidates;
    candidates.reserve(candidate_ids.size());
    for (int64_t id : candidate_ids) {
      candidates.push_back(&waiting_.at(id));
    }

    Group best;
    int evaluated = 0;
    // Additive tree: frontier of feasible groups, extended one order at a
    // time. Candidate indices are strictly increasing within a group, so no
    // group is generated twice.
    struct TreeNode {
      std::vector<int> member_idx;
      int riders = 0;
    };
    std::vector<TreeNode> frontier;
    for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
      frontier.push_back({{i}, candidates[i]->riders});
    }
    while (!frontier.empty() && evaluated < options_.max_groups_per_worker) {
      TreeNode node = frontier.back();
      frontier.pop_back();
      if (node.riders > worker.capacity) continue;
      std::vector<const Order*> members;
      members.reserve(node.member_idx.size());
      double utility = 0.0;
      for (int idx : node.member_idx) {
        members.push_back(candidates[idx]);
        utility += candidates[idx]->shortest_cost;
      }
      ++evaluated;
      auto plan = planner_.PlanBest(members, now, worker.capacity);
      if (!plan.ok()) continue;  // Infeasible: additive property prunes.
      if (best.members.empty() || utility > best.utility ||
          (utility == best.utility &&
           plan->total_cost < best.plan.total_cost)) {
        best.members = members;
        best.plan = std::move(plan).value();
        best.utility = utility;
      }
      if (static_cast<int>(node.member_idx.size()) < kMaxGroupSize) {
        for (int next = node.member_idx.back() + 1;
             next < static_cast<int>(candidates.size()); ++next) {
          frontier.push_back({node.member_idx, node.riders});
          frontier.back().member_idx.push_back(next);
          frontier.back().riders += candidates[next]->riders;
        }
      }
    }
    return best;
  }

  void DispatchGroup(WorkerId worker_id, const Group& group, Time now) {
    const Worker& worker = fleet_.worker(worker_id);
    NodeId first_stop = group.plan.route.stops.front().node;
    double pickup_delay =
        scenario_->oracle->Cost(worker.location, first_stop);
    if (pickup_delay == kInfCost) return;
    for (size_t i = 0; i < group.members.size(); ++i) {
      const Order& member = *group.members[i];
      double response = now - member.release;
      double detour =
          std::max(0.0, group.plan.completion[i] - member.shortest_cost);
      metrics_.RecordServed(member, response, detour,
                            static_cast<int>(group.members.size()));
    }
    metrics_.AddWorkerTravel(pickup_delay + group.plan.total_cost);
    fleet_.Dispatch(worker_id,
                    now + pickup_delay + group.plan.total_cost,
                    group.plan.route.stops.back().node);
    for (const Order* member : group.members) RemoveWaiting(member->id);
  }

  Scenario* scenario_;
  GasOptions options_;
  MetricsCollector metrics_;
  RoutePlanner planner_;
  Fleet fleet_;
  GridIndex waiting_index_;
  std::unordered_map<OrderId, Order> waiting_;
  Time last_batch_ = 0.0;
};

}  // namespace

MetricsReport RunGas(Scenario* scenario, const GasOptions& options) {
  GasSimulation simulation(scenario, options);
  return simulation.Run();
}

}  // namespace watter
