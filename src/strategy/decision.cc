#include "src/strategy/decision.h"

#include <algorithm>
#include <limits>

namespace watter {

bool DecideGroupDispatch(const BestGroup& group,
                         const std::vector<const Order*>& members, Time now,
                         const ExtraTimeWeights& weights,
                         ThresholdProvider* provider,
                         const PoolContext& context) {
  DecisionInputs inputs;
  inputs.now = now;
  inputs.average_extra_time = group.AverageExtraTime(now, weights);
  inputs.earliest_wait_deadline = std::numeric_limits<double>::infinity();
  double threshold_sum = 0.0;
  for (const Order* order : members) {
    inputs.earliest_wait_deadline =
        std::min(inputs.earliest_wait_deadline, order->WaitDeadline());
    threshold_sum += provider->ThresholdFor(*order, now, context);
  }
  inputs.average_threshold =
      threshold_sum / static_cast<double>(members.size());
  return MakeDispatchDecision(inputs);
}

}  // namespace watter
