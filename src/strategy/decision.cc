#include "src/strategy/decision.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace watter {

bool DecideGroupDispatch(const BestGroup& group,
                         const std::vector<const Order*>& members, Time now,
                         const ExtraTimeWeights& weights,
                         ThresholdProvider* provider,
                         const PoolContext& context) {
  DecisionInputs inputs;
  inputs.now = now;
  inputs.average_extra_time = group.AverageExtraTime(now, weights);
  inputs.earliest_wait_deadline = std::numeric_limits<double>::infinity();
  double threshold_sum = 0.0;
  for (const Order* order : members) {
    inputs.earliest_wait_deadline =
        std::min(inputs.earliest_wait_deadline, order->WaitDeadline());
    threshold_sum += provider->ThresholdFor(*order, now, context);
  }
  inputs.average_threshold =
      threshold_sum / static_cast<double>(members.size());
  return MakeDispatchDecision(inputs);
}

bool DecideGroupDispatchPrecomputed(const BestGroup& group,
                                    const std::vector<const Order*>& members,
                                    const std::vector<double>& thresholds,
                                    Time now,
                                    const ExtraTimeWeights& weights) {
  DecisionInputs inputs;
  inputs.now = now;
  inputs.average_extra_time = group.AverageExtraTime(now, weights);
  inputs.earliest_wait_deadline = std::numeric_limits<double>::infinity();
  double threshold_sum = 0.0;
  for (size_t i = 0; i < members.size(); ++i) {
    inputs.earliest_wait_deadline =
        std::min(inputs.earliest_wait_deadline, members[i]->WaitDeadline());
    threshold_sum += thresholds[i];
  }
  inputs.average_threshold =
      threshold_sum / static_cast<double>(members.size());
  return MakeDispatchDecision(inputs);
}

bool OfferBefore(const DispatchOffer& a, const DispatchOffer& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.anchor != b.anchor) return a.anchor < b.anchor;
  return a.worker < b.worker;
}

std::vector<OfferOutcome> ResolveOffers(std::vector<DispatchOffer>* offers) {
  std::sort(offers->begin(), offers->end(), OfferBefore);
  std::vector<OfferOutcome> outcomes;
  outcomes.reserve(offers->size());
  std::unordered_set<WorkerId> claimed_workers;
  std::unordered_set<OrderId> dispatched_orders;
  for (const DispatchOffer& offer : *offers) {
    // Order overlap beats worker contention in the classification: an offer
    // whose riders already left the pool has nothing to dispatch, whoever
    // holds the worker.
    bool member_gone = false;
    for (OrderId member : offer.members) {
      if (dispatched_orders.count(member) > 0) {
        member_gone = true;
        break;
      }
    }
    if (member_gone) {
      outcomes.push_back(OfferOutcome::kOrderConflict);
      continue;
    }
    if (claimed_workers.count(offer.worker) > 0) {
      outcomes.push_back(OfferOutcome::kWorkerConflict);
      continue;
    }
    claimed_workers.insert(offer.worker);
    dispatched_orders.insert(offer.members.begin(), offer.members.end());
    outcomes.push_back(OfferOutcome::kCommitted);
  }
  return outcomes;
}

}  // namespace watter
