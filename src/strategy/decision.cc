#include "src/strategy/decision.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace watter {

bool DecideGroupDispatch(const BestGroup& group,
                         const std::vector<const Order*>& members, Time now,
                         const ExtraTimeWeights& weights,
                         ThresholdProvider* provider,
                         const PoolContext& context) {
  DecisionInputs inputs;
  inputs.now = now;
  inputs.average_extra_time = group.AverageExtraTime(now, weights);
  inputs.earliest_wait_deadline = std::numeric_limits<double>::infinity();
  double threshold_sum = 0.0;
  for (const Order* order : members) {
    inputs.earliest_wait_deadline =
        std::min(inputs.earliest_wait_deadline, order->WaitDeadline());
    threshold_sum += provider->ThresholdFor(*order, now, context);
  }
  inputs.average_threshold =
      threshold_sum / static_cast<double>(members.size());
  return MakeDispatchDecision(inputs);
}

bool DecideGroupDispatchPrecomputed(const BestGroup& group,
                                    const std::vector<const Order*>& members,
                                    const std::vector<double>& thresholds,
                                    Time now,
                                    const ExtraTimeWeights& weights) {
  DecisionInputs inputs;
  inputs.now = now;
  inputs.average_extra_time = group.AverageExtraTime(now, weights);
  inputs.earliest_wait_deadline = std::numeric_limits<double>::infinity();
  double threshold_sum = 0.0;
  for (size_t i = 0; i < members.size(); ++i) {
    inputs.earliest_wait_deadline =
        std::min(inputs.earliest_wait_deadline, members[i]->WaitDeadline());
    threshold_sum += thresholds[i];
  }
  inputs.average_threshold =
      threshold_sum / static_cast<double>(members.size());
  return MakeDispatchDecision(inputs);
}

bool OfferBefore(const DispatchOffer& a, const DispatchOffer& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.anchor != b.anchor) return a.anchor < b.anchor;
  return a.worker < b.worker;
}

namespace {

// The greedy accept scan over a subsequence of sorted offers, writing one
// outcome slot per visited index. Shared by the global scan (all indices)
// and the sharded per-shard/reconciliation scans (component-closed index
// subsets) — running the same loop is what makes the sharded outcomes
// bitwise-equal to the global ones.
void GreedyResolve(const std::vector<DispatchOffer>& offers,
                   const std::vector<size_t>& indices,
                   std::vector<OfferOutcome>* outcomes) {
  std::unordered_set<WorkerId> claimed_workers;
  std::unordered_set<OrderId> dispatched_orders;
  for (size_t index : indices) {
    const DispatchOffer& offer = offers[index];
    // Order overlap beats worker contention in the classification: an offer
    // whose riders already left the pool has nothing to dispatch, whoever
    // holds the worker.
    bool member_gone = false;
    for (OrderId member : offer.members) {
      if (dispatched_orders.count(member) > 0) {
        member_gone = true;
        break;
      }
    }
    if (member_gone) {
      (*outcomes)[index] = OfferOutcome::kOrderConflict;
      continue;
    }
    if (claimed_workers.count(offer.worker) > 0) {
      (*outcomes)[index] = OfferOutcome::kWorkerConflict;
      continue;
    }
    claimed_workers.insert(offer.worker);
    dispatched_orders.insert(offer.members.begin(), offer.members.end());
    (*outcomes)[index] = OfferOutcome::kCommitted;
  }
}

// Union-find over sorted-offer indices (path halving; union by smaller
// root). Component membership is a pure function of the offer set, so the
// sharded partition below never depends on iteration internals.
size_t Find(std::vector<size_t>* parent, size_t i) {
  while ((*parent)[i] != i) {
    (*parent)[i] = (*parent)[(*parent)[i]];
    i = (*parent)[i];
  }
  return i;
}

void Union(std::vector<size_t>* parent, size_t a, size_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a == b) return;
  if (b < a) std::swap(a, b);
  (*parent)[b] = a;
}

}  // namespace

std::vector<OfferOutcome> ResolveOffers(std::vector<DispatchOffer>* offers) {
  std::sort(offers->begin(), offers->end(), OfferBefore);
  std::vector<size_t> all(offers->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<OfferOutcome> outcomes(offers->size());
  GreedyResolve(*offers, all, &outcomes);
  return outcomes;
}

ShardedResolution ResolveOffersSharded(std::vector<DispatchOffer>* offers,
                                       const OfferShardMap& shards,
                                       ThreadPool* executor) {
  std::sort(offers->begin(), offers->end(), OfferBefore);
  const size_t n = offers->size();
  const int num_shards = std::max(1, shards.num_shards);

  ShardedResolution result;
  result.outcomes.resize(n);
  result.scopes.assign(n, OfferScope::kInterior);
  result.home_shards.assign(n, 0);
  if (n == 0) return result;

  if (num_shards == 1) {
    // One shard is the global scan; every offer is trivially interior.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    GreedyResolve(*offers, all, &result.outcomes);
    result.interior_offers = static_cast<int64_t>(n);
    return result;
  }

  // Classify: home shard = worker shard; an offer straddles the boundary
  // when any member's pickup region differs from the home shard.
  std::vector<bool> straddles(n, false);
  for (size_t i = 0; i < n; ++i) {
    const DispatchOffer& offer = (*offers)[i];
    int home = shards.worker_shard(offer.worker);
    result.home_shards[i] = home;
    for (OrderId member : offer.members) {
      if (shards.order_shard(member) != home) {
        straddles[i] = true;
        break;
      }
    }
  }

  // Conflict components: offers sharing a worker or a member interact in
  // the greedy scan; nothing else does.
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::unordered_map<WorkerId, size_t> first_with_worker;
  std::unordered_map<OrderId, size_t> first_with_member;
  first_with_worker.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const DispatchOffer& offer = (*offers)[i];
    auto [worker_it, worker_new] = first_with_worker.try_emplace(offer.worker, i);
    if (!worker_new) Union(&parent, worker_it->second, i);
    for (OrderId member : offer.members) {
      auto [member_it, member_new] = first_with_member.try_emplace(member, i);
      if (!member_new) Union(&parent, member_it->second, i);
    }
  }

  // A component containing any straddling offer is resolved by the serial
  // reconciliation pass; everything else stays in its home shard's scan.
  std::vector<bool> component_border(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (straddles[i]) component_border[Find(&parent, i)] = true;
  }
  std::vector<std::vector<size_t>> shard_scans(num_shards);
  std::vector<size_t> reconciliation;
  for (size_t i = 0; i < n; ++i) {
    if (component_border[Find(&parent, i)]) {
      if (straddles[i]) {
        result.scopes[i] = OfferScope::kBorder;
        ++result.border_offers;
      } else {
        result.scopes[i] = OfferScope::kBorderAffected;
        ++result.border_affected;
      }
      reconciliation.push_back(i);
    } else {
      ++result.interior_offers;
      shard_scans[result.home_shards[i]].push_back(i);
    }
  }

  // Per-shard scans: each writes only its own offers' outcome slots, so the
  // result is identical whether they run serially or across the pool.
  if (executor != nullptr && executor->num_threads() > 1) {
    executor->ParallelFor(
        static_cast<size_t>(num_shards), 1, [&](size_t begin, size_t end) {
          for (size_t s = begin; s < end; ++s) {
            GreedyResolve(*offers, shard_scans[s], &result.outcomes);
          }
        });
  } else {
    for (int s = 0; s < num_shards; ++s) {
      GreedyResolve(*offers, shard_scans[s], &result.outcomes);
    }
  }

  // Serial cross-shard reconciliation over the border components, in the
  // same sorted total order. Its claim sets start empty because border
  // components share no worker or member with any shard scan.
  GreedyResolve(*offers, reconciliation, &result.outcomes);
  return result;
}

}  // namespace watter
