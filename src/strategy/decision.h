// Algorithm 2 (the average extra-time threshold-based grouping strategy)
// and the batched dispatch offer machinery (docs/DISPATCH.md): offer
// generation is split from the commit so a check round can propose offers
// in parallel and resolve conflicts in one deterministic sorted pass — the
// KIT sorted-offers scheme.
#ifndef WATTER_STRATEGY_DECISION_H_
#define WATTER_STRATEGY_DECISION_H_

#include <functional>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/route_planner.h"
#include "src/core/types.h"
#include "src/pool/best_group_map.h"
#include "src/strategy/threshold_provider.h"

namespace watter {

/// Inputs of one hold/dispatch decision for a candidate group.
struct DecisionInputs {
  double average_extra_time = 0.0;        ///< \bar{te} (Algorithm 2 line 4).
  double average_threshold = 0.0;         ///< \bar{theta} (line 5).
  Time earliest_wait_deadline = 0.0;      ///< min_i (t(i) + eta(i)) (line 1).
  Time now = 0.0;                         ///< System timestamp ts.
};

/// Algorithm 2: dispatch when the earliest member's waiting window has
/// elapsed, or when the group's average extra time is within the average
/// expected threshold.
inline bool MakeDispatchDecision(const DecisionInputs& inputs) {
  if (inputs.now > inputs.earliest_wait_deadline) return true;  // Lines 2-3.
  return inputs.average_extra_time <= inputs.average_threshold;  // Line 6.
}

/// Convenience: evaluates Algorithm 2 for a concrete best group by querying
/// each member's threshold from `provider`. `orders` resolves member ids.
bool DecideGroupDispatch(const BestGroup& group,
                         const std::vector<const Order*>& members, Time now,
                         const ExtraTimeWeights& weights,
                         ThresholdProvider* provider,
                         const PoolContext& context);

/// Algorithm 2 with member thresholds precomputed by the caller. The
/// batched engine queries the (stateful, non-thread-safe) provider once per
/// member in the serial prologue, then evaluates decisions in the parallel
/// propose phase through this pure variant. `thresholds[i]` is theta for
/// `members[i]`.
bool DecideGroupDispatchPrecomputed(const BestGroup& group,
                                    const std::vector<const Order*>& members,
                                    const std::vector<double>& thresholds,
                                    Time now,
                                    const ExtraTimeWeights& weights);

/// One candidate dispatch of a check round: a group (or solo order) bound
/// to a concrete worker, with the cost that ranks it in the commit pass.
/// Offers are produced in parallel against frozen pool and fleet state;
/// `anchor` (the proposing pooled order) is unique per offer and is what
/// makes the sort below a total order.
struct DispatchOffer {
  OrderId anchor = kInvalidOrder;
  std::vector<OrderId> members;     ///< Sorted; includes the anchor.
  WorkerId worker = kInvalidWorker;
  double pickup_delay = 0.0;        ///< Worker location -> first stop.
  double cost = 0.0;                ///< Ranking key: pickup delay + route.
  bool solo = false;                ///< Timeout solo fallback, not a group.
  GroupPlan plan;                   ///< Copied: survives pool mutation.
};

/// The sorted-offers total order: cheapest first; ties broken by anchor id
/// then worker id. Anchor ids are unique within a round, so the order is
/// total and the sorted sequence — hence the whole commit pass — is
/// independent of the (thread-count-dependent) propose completion order.
bool OfferBefore(const DispatchOffer& a, const DispatchOffer& b);

/// Outcome of conflict resolution for one offer.
enum class OfferOutcome {
  kCommitted,       ///< Won its worker and all its members.
  kWorkerConflict,  ///< Worker already claimed by a cheaper offer.
  kOrderConflict,   ///< Some member already dispatched by a cheaper offer.
};

/// The deterministic commit-pass core: sorts `offers` in place by
/// OfferBefore, then greedily accepts each offer whose worker is still
/// unclaimed and whose members are all still undispatched. Returns one
/// outcome per offer, aligned with the *sorted* order. Pure — the platform
/// applies kCommitted outcomes to the real fleet/pool, and the table-driven
/// conflict tests exercise this function directly.
std::vector<OfferOutcome> ResolveOffers(std::vector<DispatchOffer>* offers);

/// Shard assignment of the frozen round state, for the region-sharded
/// commit pass (docs/DISPATCH.md, "Region-sharded reconciliation"). Both
/// callbacks must be pure over the round's frozen state: a worker's shard
/// is the grid region of its current (idle) location, an order's shard the
/// region of its pickup. Called only for ids that appear in some offer.
struct OfferShardMap {
  int num_shards = 1;
  std::function<int(WorkerId)> worker_shard;
  std::function<int(OrderId)> order_shard;
};

/// Geographic scope of one offer in the sharded commit pass. The *home
/// shard* of an offer is its worker's shard, so worker contention is always
/// intra-shard; only member overlap can cross a shard boundary.
enum class OfferScope {
  /// Worker and every member in the home shard, and the offer's conflict
  /// component contains no border offer: resolved by the home shard's
  /// parallel scan.
  kInterior,
  /// The offer itself straddles a boundary (some member's shard differs
  /// from the home shard): resolved by the serial reconciliation pass.
  kBorder,
  /// Interior-shaped, but conflict-linked (transitively, via shared workers
  /// or members) to a border offer: pulled into the reconciliation pass so
  /// its outcome cannot depend on the shard layout.
  kBorderAffected,
};

/// Result of the sharded commit pass, aligned with the *sorted* offers.
struct ShardedResolution {
  std::vector<OfferOutcome> outcomes;
  std::vector<OfferScope> scopes;
  /// Home shard (worker shard) per sorted offer; border-scoped offers keep
  /// their home shard here, the caller routes them to the border arena.
  std::vector<int> home_shards;
  int64_t interior_offers = 0;
  int64_t border_offers = 0;
  int64_t border_affected = 0;
};

/// The region-sharded commit pass: sorts `offers` by OfferBefore exactly
/// like ResolveOffers, then resolves interior offers per shard (in parallel
/// on `executor` when provided) and border-component offers in one serial
/// reconciliation scan, both in the same sorted total order.
///
/// Bitwise-equality guarantee: the greedy scan of ResolveOffers touches an
/// offer's outcome only through offers sharing its worker or a member, so
/// it decomposes exactly over connected components of that conflict graph.
/// Every component lies entirely in one shard's scan or entirely in the
/// reconciliation pass (a worker's offers share a home shard; member
/// sharing across home shards implies a border offer, which drags the whole
/// component into reconciliation), and the two scan kinds never share a
/// worker or member — so the outcomes equal ResolveOffers on the same
/// offers, for any shard count, any shard labeling, and any thread count
/// (strategy_dispatch_conflict_test fuzzes all three).
ShardedResolution ResolveOffersSharded(std::vector<DispatchOffer>* offers,
                                       const OfferShardMap& shards,
                                       ThreadPool* executor = nullptr);

}  // namespace watter

#endif  // WATTER_STRATEGY_DECISION_H_
