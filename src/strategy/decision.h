// Algorithm 2: the average extra-time threshold-based grouping strategy.
#ifndef WATTER_STRATEGY_DECISION_H_
#define WATTER_STRATEGY_DECISION_H_

#include <vector>

#include "src/core/types.h"
#include "src/pool/best_group_map.h"
#include "src/strategy/threshold_provider.h"

namespace watter {

/// Inputs of one hold/dispatch decision for a candidate group.
struct DecisionInputs {
  double average_extra_time = 0.0;        ///< \bar{te} (Algorithm 2 line 4).
  double average_threshold = 0.0;         ///< \bar{theta} (line 5).
  Time earliest_wait_deadline = 0.0;      ///< min_i (t(i) + eta(i)) (line 1).
  Time now = 0.0;                         ///< System timestamp ts.
};

/// Algorithm 2: dispatch when the earliest member's waiting window has
/// elapsed, or when the group's average extra time is within the average
/// expected threshold.
inline bool MakeDispatchDecision(const DecisionInputs& inputs) {
  if (inputs.now > inputs.earliest_wait_deadline) return true;  // Lines 2-3.
  return inputs.average_extra_time <= inputs.average_threshold;  // Line 6.
}

/// Convenience: evaluates Algorithm 2 for a concrete best group by querying
/// each member's threshold from `provider`. `orders` resolves member ids.
bool DecideGroupDispatch(const BestGroup& group,
                         const std::vector<const Order*>& members, Time now,
                         const ExtraTimeWeights& weights,
                         ThresholdProvider* provider,
                         const PoolContext& context);

}  // namespace watter

#endif  // WATTER_STRATEGY_DECISION_H_
