// Algorithm 2 (the average extra-time threshold-based grouping strategy)
// and the batched dispatch offer machinery (docs/DISPATCH.md): offer
// generation is split from the commit so a check round can propose offers
// in parallel and resolve conflicts in one deterministic sorted pass — the
// KIT sorted-offers scheme.
#ifndef WATTER_STRATEGY_DECISION_H_
#define WATTER_STRATEGY_DECISION_H_

#include <vector>

#include "src/core/route_planner.h"
#include "src/core/types.h"
#include "src/pool/best_group_map.h"
#include "src/strategy/threshold_provider.h"

namespace watter {

/// Inputs of one hold/dispatch decision for a candidate group.
struct DecisionInputs {
  double average_extra_time = 0.0;        ///< \bar{te} (Algorithm 2 line 4).
  double average_threshold = 0.0;         ///< \bar{theta} (line 5).
  Time earliest_wait_deadline = 0.0;      ///< min_i (t(i) + eta(i)) (line 1).
  Time now = 0.0;                         ///< System timestamp ts.
};

/// Algorithm 2: dispatch when the earliest member's waiting window has
/// elapsed, or when the group's average extra time is within the average
/// expected threshold.
inline bool MakeDispatchDecision(const DecisionInputs& inputs) {
  if (inputs.now > inputs.earliest_wait_deadline) return true;  // Lines 2-3.
  return inputs.average_extra_time <= inputs.average_threshold;  // Line 6.
}

/// Convenience: evaluates Algorithm 2 for a concrete best group by querying
/// each member's threshold from `provider`. `orders` resolves member ids.
bool DecideGroupDispatch(const BestGroup& group,
                         const std::vector<const Order*>& members, Time now,
                         const ExtraTimeWeights& weights,
                         ThresholdProvider* provider,
                         const PoolContext& context);

/// Algorithm 2 with member thresholds precomputed by the caller. The
/// batched engine queries the (stateful, non-thread-safe) provider once per
/// member in the serial prologue, then evaluates decisions in the parallel
/// propose phase through this pure variant. `thresholds[i]` is theta for
/// `members[i]`.
bool DecideGroupDispatchPrecomputed(const BestGroup& group,
                                    const std::vector<const Order*>& members,
                                    const std::vector<double>& thresholds,
                                    Time now,
                                    const ExtraTimeWeights& weights);

/// One candidate dispatch of a check round: a group (or solo order) bound
/// to a concrete worker, with the cost that ranks it in the commit pass.
/// Offers are produced in parallel against frozen pool and fleet state;
/// `anchor` (the proposing pooled order) is unique per offer and is what
/// makes the sort below a total order.
struct DispatchOffer {
  OrderId anchor = kInvalidOrder;
  std::vector<OrderId> members;     ///< Sorted; includes the anchor.
  WorkerId worker = kInvalidWorker;
  double pickup_delay = 0.0;        ///< Worker location -> first stop.
  double cost = 0.0;                ///< Ranking key: pickup delay + route.
  bool solo = false;                ///< Timeout solo fallback, not a group.
  GroupPlan plan;                   ///< Copied: survives pool mutation.
};

/// The sorted-offers total order: cheapest first; ties broken by anchor id
/// then worker id. Anchor ids are unique within a round, so the order is
/// total and the sorted sequence — hence the whole commit pass — is
/// independent of the (thread-count-dependent) propose completion order.
bool OfferBefore(const DispatchOffer& a, const DispatchOffer& b);

/// Outcome of conflict resolution for one offer.
enum class OfferOutcome {
  kCommitted,       ///< Won its worker and all its members.
  kWorkerConflict,  ///< Worker already claimed by a cheaper offer.
  kOrderConflict,   ///< Some member already dispatched by a cheaper offer.
};

/// The deterministic commit-pass core: sorts `offers` in place by
/// OfferBefore, then greedily accepts each offer whose worker is still
/// unclaimed and whose members are all still undispatched. Returns one
/// outcome per offer, aligned with the *sorted* order. Pure — the platform
/// applies kCommitted outcomes to the real fleet/pool, and the table-driven
/// conflict tests exercise this function directly.
std::vector<OfferOutcome> ResolveOffers(std::vector<DispatchOffer>* offers);

}  // namespace watter

#endif  // WATTER_STRATEGY_DECISION_H_
