// ThresholdProvider: the pluggable heart of the WATTER strategy family.
//
// Algorithm 2 compares a group's average extra time against the average of
// its members' expected thresholds theta(i). Where the thresholds come from
// is what distinguishes the paper's variants:
//   - WATTER-online:  theta = +inf  (dispatch as early as possible),
//   - WATTER-timeout: theta = -inf  (hold until the wait limit),
//   - GMM strategy:   theta = argmax (p - theta) F(theta) from the fitted
//                     extra-time distribution (Section V),
//   - WATTER-expect:  theta = p - V(s) from the learned value function
//                     (Section VI; implemented in src/rl).
#ifndef WATTER_STRATEGY_THRESHOLD_PROVIDER_H_
#define WATTER_STRATEGY_THRESHOLD_PROVIDER_H_

#include <limits>
#include <memory>
#include <vector>

#include "src/core/types.h"
#include "src/stats/threshold_optimizer.h"

namespace watter {

/// Snapshot of the spatio-temporal environment available to providers.
/// Pointers may be null when a provider does not need them.
struct PoolContext {
  /// Waiting-order pickup counts per grid cell (demand distribution sO).
  const std::vector<int>* demand_pickup = nullptr;
  /// Waiting-order drop-off counts per grid cell.
  const std::vector<int>* demand_dropoff = nullptr;
  /// Idle-worker counts per grid cell (supply distribution sW).
  const std::vector<int>* supply = nullptr;
};

/// Supplies the expected extra-time threshold theta(i) per order.
class ThresholdProvider {
 public:
  virtual ~ThresholdProvider() = default;

  /// theta(i) for `order` at decision time `now` in environment `context`.
  virtual double ThresholdFor(const Order& order, Time now,
                              const PoolContext& context) = 0;

  /// Human-readable name used in bench tables.
  virtual const char* name() const = 0;
};

/// WATTER-online: any feasible group is good enough; dispatch immediately.
class OnlineThresholdProvider : public ThresholdProvider {
 public:
  double ThresholdFor(const Order&, Time, const PoolContext&) override {
    return std::numeric_limits<double>::infinity();
  }
  const char* name() const override { return "WATTER-online"; }
};

/// WATTER-timeout: never dispatch by threshold; only the wait-limit rule of
/// Algorithm 2 (line 2) fires.
class TimeoutThresholdProvider : public ThresholdProvider {
 public:
  double ThresholdFor(const Order&, Time, const PoolContext&) override {
    return -std::numeric_limits<double>::infinity();
  }
  const char* name() const override { return "WATTER-timeout"; }
};

/// Fixed threshold in seconds (baseline for ablations).
class FixedThresholdProvider : public ThresholdProvider {
 public:
  explicit FixedThresholdProvider(double theta) : theta_(theta) {}
  double ThresholdFor(const Order&, Time, const PoolContext&) override {
    return theta_;
  }
  const char* name() const override { return "fixed-threshold"; }

 private:
  double theta_;
};

/// Section V strategy: per-order theta* from the fitted GMM of historical
/// extra times, memoized per penalty (Algorithm 3).
class GmmThresholdProvider : public ThresholdProvider {
 public:
  explicit GmmThresholdProvider(GaussianMixture mixture,
                                double penalty_resolution = 1.0)
      : table_(std::move(mixture), penalty_resolution) {}

  double ThresholdFor(const Order& order, Time, const PoolContext&) override {
    return table_.ThresholdFor(order.Penalty());
  }
  const char* name() const override { return "WATTER-gmm"; }

  ThresholdTable& table() { return table_; }

 private:
  ThresholdTable table_;
};

}  // namespace watter

#endif  // WATTER_STRATEGY_THRESHOLD_PROVIDER_H_
