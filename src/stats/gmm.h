// Gaussian Mixture Model used to fit the distribution of historical extra
// times (Section V-C, "Distribution Fitting").
#ifndef WATTER_STATS_GMM_H_
#define WATTER_STATS_GMM_H_

#include <vector>

#include "src/common/result.h"

namespace watter {

/// One mixture component.
struct GaussianComponent {
  double weight = 1.0;
  double mean = 0.0;
  double variance = 1.0;
};

/// A fixed (fitted) mixture of Gaussians over a scalar variable.
class GaussianMixture {
 public:
  /// Components must have positive weights summing to ~1 and positive
  /// variances; weights are renormalized defensively.
  static Result<GaussianMixture> Create(
      std::vector<GaussianComponent> components);

  double Pdf(double x) const;
  double Cdf(double x) const;

  /// Mixture mean and variance (law of total variance).
  double Mean() const;
  double Variance() const;

  int num_components() const { return static_cast<int>(components_.size()); }
  const std::vector<GaussianComponent>& components() const {
    return components_;
  }

  /// Standard normal CDF via erfc (double precision accurate).
  static double StandardNormalCdf(double z);

 private:
  explicit GaussianMixture(std::vector<GaussianComponent> components)
      : components_(std::move(components)) {}

  std::vector<GaussianComponent> components_;
};

}  // namespace watter

#endif  // WATTER_STATS_GMM_H_
