#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace watter {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi > lo ? hi : lo + 1.0),
      width_((hi_ - lo_) / std::max(1, bins)),
      counts_(static_cast<size_t>(std::max(1, bins)), 0) {}

void Histogram::Add(double x) {
  int bin = static_cast<int>((x - lo_) / width_);
  bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[bin];
  if (count_ == 0) {
    min_seen_ = max_seen_ = x;
  } else {
    min_seen_ = std::min(min_seen_, x);
    max_seen_ = std::max(max_seen_, x);
  }
  ++count_;
  sum_ += x;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t bin = 0; bin < counts_.size(); ++bin) {
    if (cumulative + counts_[bin] >= target) {
      double within =
          counts_[bin] > 0
              ? (target - cumulative) / static_cast<double>(counts_[bin])
              : 0.0;
      return lo_ + (static_cast<double>(bin) + within) * width_;
    }
    cumulative += counts_[bin];
  }
  return hi_;
}

}  // namespace watter
