// Fixed-bin histogram with quantile queries; used to characterize extra-time
// distributions in benches and the RL feature diagnostics.
#ifndef WATTER_STATS_HISTOGRAM_H_
#define WATTER_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace watter {

/// Equal-width histogram over [lo, hi); out-of-range samples clamp into the
/// boundary bins so mass is never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min_seen() const { return min_seen_; }
  double max_seen() const { return max_seen_; }

  /// Approximate q-quantile (0 <= q <= 1) by linear interpolation within
  /// the containing bin. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  const std::vector<int64_t>& bin_counts() const { return counts_; }
  double bin_width() const { return width_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace watter

#endif  // WATTER_STATS_HISTOGRAM_H_
