// Kolmogorov-Smirnov goodness-of-fit statistic.
//
// Used to quantify how well the fitted Gaussian mixture matches the
// empirical extra-time distribution (Section V-C assumes the fit is usable;
// this makes "usable" measurable in tests and benches).
#ifndef WATTER_STATS_KS_TEST_H_
#define WATTER_STATS_KS_TEST_H_

#include <functional>
#include <vector>

namespace watter {

/// One-sample KS result.
struct KsResult {
  double statistic = 0.0;  ///< sup_x |F_empirical(x) - F_model(x)|.
  double p_value = 0.0;    ///< Asymptotic Kolmogorov p-value.
};

/// Computes the one-sample KS statistic of `samples` against `model_cdf`.
/// Samples need not be sorted. Empty input yields statistic 0 / p-value 1.
KsResult KolmogorovSmirnovTest(std::vector<double> samples,
                               const std::function<double(double)>& model_cdf);

/// The asymptotic Kolmogorov distribution complement Q(lambda) =
/// 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2); p-value of a KS statistic
/// d with n samples is Q((sqrt(n) + 0.12 + 0.11/sqrt(n)) * d).
double KolmogorovPValue(double statistic, size_t num_samples);

}  // namespace watter

#endif  // WATTER_STATS_KS_TEST_H_
