// Expectation-Maximization fitting of a Gaussian Mixture Model to scalar
// samples (Algorithm 3 line 1: "M <- the GMM fitting result on H").
#ifndef WATTER_STATS_EM_FITTER_H_
#define WATTER_STATS_EM_FITTER_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/stats/gmm.h"

namespace watter {

/// EM configuration.
struct EmOptions {
  int num_components = 3;
  int max_iterations = 200;
  /// Stop when the average log-likelihood improves by less than this.
  double tolerance = 1e-7;
  /// Variance floor guarding against collapse onto a single point.
  double min_variance = 1e-6;
  uint64_t seed = 1;
};

/// Fits a GMM with k-means++-style seeding followed by EM.
///
/// Errors: InvalidArgument for empty data or non-positive component counts.
/// If the data has fewer distinct values than components, the fit degrades
/// gracefully (components share locations; variances hit the floor).
Result<GaussianMixture> FitGmm(const std::vector<double>& data,
                               const EmOptions& options = {});

/// Average log-likelihood of `data` under `mixture` (fit-quality metric).
double AverageLogLikelihood(const GaussianMixture& mixture,
                            const std::vector<double>& data);

}  // namespace watter

#endif  // WATTER_STATS_EM_FITTER_H_
