#include "src/stats/em_fitter.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/rng.h"

namespace watter {
namespace {

/// k-means++ style seeding for 1-D: spread initial means by sampling
/// proportional to squared distance from the closest chosen mean.
std::vector<double> SeedMeans(const std::vector<double>& data, int k,
                              Rng* rng) {
  std::vector<double> means;
  means.push_back(data[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(data.size()) - 1))]);
  std::vector<double> dist_sq(data.size());
  while (static_cast<int>(means.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double m : means) best = std::min(best, (data[i] - m) * (data[i] - m));
      dist_sq[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing means; duplicate one.
      means.push_back(means.back());
      continue;
    }
    double target = rng->Uniform() * total;
    double cumulative = 0.0;
    size_t chosen = data.size() - 1;
    for (size_t i = 0; i < data.size(); ++i) {
      cumulative += dist_sq[i];
      if (target < cumulative) {
        chosen = i;
        break;
      }
    }
    means.push_back(data[chosen]);
  }
  return means;
}

}  // namespace

Result<GaussianMixture> FitGmm(const std::vector<double>& data,
                               const EmOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit a mixture to empty data");
  }
  if (options.num_components <= 0) {
    return Status::InvalidArgument("num_components must be positive");
  }
  const int n = static_cast<int>(data.size());
  const int k = std::min(options.num_components, n);

  // Global variance as initialization and as a floor reference.
  double mean = 0.0;
  for (double x : data) mean += x;
  mean /= n;
  double variance = 0.0;
  for (double x : data) variance += (x - mean) * (x - mean);
  variance = n > 1 ? variance / (n - 1) : options.min_variance;
  variance = std::max(variance, options.min_variance);

  Rng rng(options.seed);
  std::vector<GaussianComponent> comps(k);
  std::vector<double> means = SeedMeans(data, k, &rng);
  for (int c = 0; c < k; ++c) {
    comps[c] = {1.0 / k, means[c], variance};
  }

  std::vector<double> resp(static_cast<size_t>(n) * k);
  double previous_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // E step: responsibilities (log-sum-exp stabilized).
    double log_likelihood = 0.0;
    for (int i = 0; i < n; ++i) {
      double max_log = -std::numeric_limits<double>::infinity();
      std::vector<double> logp(k);
      for (int c = 0; c < k; ++c) {
        double z = data[i] - comps[c].mean;
        logp[c] = std::log(comps[c].weight) -
                  0.5 * std::log(2.0 * M_PI * comps[c].variance) -
                  z * z / (2.0 * comps[c].variance);
        max_log = std::max(max_log, logp[c]);
      }
      double sum = 0.0;
      for (int c = 0; c < k; ++c) sum += std::exp(logp[c] - max_log);
      double log_norm = max_log + std::log(sum);
      log_likelihood += log_norm;
      for (int c = 0; c < k; ++c) {
        resp[static_cast<size_t>(i) * k + c] = std::exp(logp[c] - log_norm);
      }
    }
    // M step.
    for (int c = 0; c < k; ++c) {
      double weight_sum = 0.0, mean_sum = 0.0;
      for (int i = 0; i < n; ++i) {
        double r = resp[static_cast<size_t>(i) * k + c];
        weight_sum += r;
        mean_sum += r * data[i];
      }
      if (weight_sum < 1e-12) {
        // Dead component: re-seed on a random sample.
        comps[c].mean = data[static_cast<size_t>(
            rng.UniformInt(0, n - 1))];
        comps[c].variance = variance;
        comps[c].weight = 1.0 / n;
        continue;
      }
      double new_mean = mean_sum / weight_sum;
      double var_sum = 0.0;
      for (int i = 0; i < n; ++i) {
        double r = resp[static_cast<size_t>(i) * k + c];
        var_sum += r * (data[i] - new_mean) * (data[i] - new_mean);
      }
      comps[c].mean = new_mean;
      comps[c].variance =
          std::max(var_sum / weight_sum, options.min_variance);
      comps[c].weight = weight_sum / n;
    }
    // Renormalize weights (dead-component re-seeding can unbalance them).
    double total_weight = 0.0;
    for (const auto& c : comps) total_weight += c.weight;
    for (auto& c : comps) c.weight /= total_weight;

    double avg_ll = log_likelihood / n;
    if (avg_ll - previous_ll < options.tolerance && iter > 0) break;
    previous_ll = avg_ll;
  }
  return GaussianMixture::Create(std::move(comps));
}

double AverageLogLikelihood(const GaussianMixture& mixture,
                            const std::vector<double>& data) {
  if (data.empty()) return 0.0;
  double total = 0.0;
  for (double x : data) {
    total += std::log(std::max(mixture.Pdf(x), 1e-300));
  }
  return total / static_cast<double>(data.size());
}

}  // namespace watter
