#include "src/stats/threshold_optimizer.h"

#include <algorithm>
#include <cmath>

namespace watter {

double ReducedObjective(double penalty, double theta, const CdfFn& cdf) {
  return (penalty - theta) * cdf(theta);
}

double OptimalThreshold(double penalty, const CdfFn& cdf, int iterations) {
  if (penalty <= 0.0) return 0.0;
  constexpr double kInvPhi = 0.6180339887498949;  // 1/golden ratio.
  double lo = 0.0, hi = penalty;
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = ReducedObjective(penalty, x1, cdf);
  double f2 = ReducedObjective(penalty, x2, cdf);
  for (int i = 0; i < iterations && hi - lo > 1e-10 * penalty; ++i) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = ReducedObjective(penalty, x2, cdf);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = ReducedObjective(penalty, x1, cdf);
    }
  }
  return 0.5 * (lo + hi);
}

double OptimalThresholdGradient(double penalty, const CdfFn& cdf,
                                int max_steps, double learning_rate) {
  if (penalty <= 0.0) return 0.0;
  double eps = 1e-6 * penalty + 1e-9;
  // Multi-start ascent: mixture CDFs can make G(theta) multi-modal in
  // practice even though the paper argues unimodality, so restart from a
  // few spread points and keep the best.
  double best_theta = 0.0;
  double best_value = ReducedObjective(penalty, 0.0, cdf);
  for (double start : {0.2, 0.5, 0.8}) {
    double theta = start * penalty;
    for (int i = 0; i < max_steps; ++i) {
      double grad = (ReducedObjective(penalty, theta + eps, cdf) -
                     ReducedObjective(penalty, theta - eps, cdf)) /
                    (2.0 * eps);
      // Fresh step each iteration with backtracking line search.
      double step = learning_rate * penalty;
      double next = std::clamp(theta + step * grad, 0.0, penalty);
      while (ReducedObjective(penalty, next, cdf) + 1e-15 <
                 ReducedObjective(penalty, theta, cdf) &&
             step > 1e-12 * penalty) {
        step *= 0.5;
        next = std::clamp(theta + step * grad, 0.0, penalty);
      }
      if (std::abs(next - theta) < 1e-10 * penalty) break;
      theta = next;
    }
    double value = ReducedObjective(penalty, theta, cdf);
    if (value > best_value) {
      best_value = value;
      best_theta = theta;
    }
  }
  return best_theta;
}

double ThresholdTable::ThresholdFor(double penalty) {
  if (penalty <= 0.0) return 0.0;
  int64_t key = static_cast<int64_t>(std::llround(penalty / resolution_));
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  double quantized_penalty = static_cast<double>(key) * resolution_;
  if (quantized_penalty <= 0.0) quantized_penalty = penalty;
  double theta = OptimalThreshold(
      quantized_penalty, [this](double x) { return mixture_.Cdf(x); });
  cache_.emplace(key, theta);
  return theta;
}

}  // namespace watter
