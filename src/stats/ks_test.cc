#include "src/stats/ks_test.h"

#include <algorithm>
#include <cmath>

namespace watter {

double KolmogorovPValue(double statistic, size_t num_samples) {
  if (num_samples == 0 || statistic <= 0.0) return 1.0;
  double sqrt_n = std::sqrt(static_cast<double>(num_samples));
  double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic;
  // Alternating series; converges in a handful of terms for lambda > 0.3.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    double term = 2.0 * std::exp(-2.0 * k * k * lambda * lambda);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-12) break;
  }
  return std::clamp(sum, 0.0, 1.0);
}

KsResult KolmogorovSmirnovTest(
    std::vector<double> samples,
    const std::function<double(double)>& model_cdf) {
  KsResult result;
  if (samples.empty()) {
    result.p_value = 1.0;
    return result;
  }
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    double model = model_cdf(samples[i]);
    // Both one-sided gaps around the step at samples[i].
    double upper = (static_cast<double>(i) + 1.0) / n - model;
    double lower = model - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }
  result.statistic = d;
  result.p_value = KolmogorovPValue(d, samples.size());
  return result;
}

}  // namespace watter
