#include "src/stats/gmm.h"

#include <cmath>

namespace watter {

Result<GaussianMixture> GaussianMixture::Create(
    std::vector<GaussianComponent> components) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  double total_weight = 0.0;
  for (const GaussianComponent& c : components) {
    if (!(c.weight > 0.0)) {
      return Status::InvalidArgument("component weights must be positive");
    }
    if (!(c.variance > 0.0)) {
      return Status::InvalidArgument("component variances must be positive");
    }
    total_weight += c.weight;
  }
  for (GaussianComponent& c : components) c.weight /= total_weight;
  return GaussianMixture(std::move(components));
}

double GaussianMixture::StandardNormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double GaussianMixture::Pdf(double x) const {
  double density = 0.0;
  for (const GaussianComponent& c : components_) {
    double z = (x - c.mean);
    density += c.weight *
               std::exp(-z * z / (2.0 * c.variance)) /
               std::sqrt(2.0 * M_PI * c.variance);
  }
  return density;
}

double GaussianMixture::Cdf(double x) const {
  double cumulative = 0.0;
  for (const GaussianComponent& c : components_) {
    cumulative +=
        c.weight * StandardNormalCdf((x - c.mean) / std::sqrt(c.variance));
  }
  return cumulative;
}

double GaussianMixture::Mean() const {
  double mean = 0.0;
  for (const GaussianComponent& c : components_) mean += c.weight * c.mean;
  return mean;
}

double GaussianMixture::Variance() const {
  double mean = Mean();
  double variance = 0.0;
  for (const GaussianComponent& c : components_) {
    variance += c.weight * (c.variance + (c.mean - mean) * (c.mean - mean));
  }
  return variance;
}

}  // namespace watter
