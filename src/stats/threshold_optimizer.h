// Optimization of the reduced METRS objective (Section V-B/V-C).
//
// The paper reduces METRS to maximizing G(theta) = (p - theta) * F(theta)
// per order, where p is the rejection penalty and F the CDF of the extra-
// time distribution. G is the product of a decreasing linear term and an
// increasing CDF, hence unimodal on [0, p]; golden-section search finds the
// maximizer without derivative assumptions, and an optional gradient-descent
// polish mirrors Algorithm 3's "existing optimization methods".
#ifndef WATTER_STATS_THRESHOLD_OPTIMIZER_H_
#define WATTER_STATS_THRESHOLD_OPTIMIZER_H_

#include <functional>
#include <unordered_map>

#include "src/stats/gmm.h"

namespace watter {

/// Scalar CDF abstraction: monotone non-decreasing into [0, 1].
using CdfFn = std::function<double(double)>;

/// Returns argmax over theta in [0, penalty] of (penalty - theta)*F(theta).
/// `iterations` golden-section steps give ~1e-10 relative bracketing.
double OptimalThreshold(double penalty, const CdfFn& cdf,
                        int iterations = 80);

/// The objective value G(theta) itself (exposed for tests/benches).
double ReducedObjective(double penalty, double theta, const CdfFn& cdf);

/// Gradient-descent variant (the paper names gradient descent explicitly).
/// Uses a numerical derivative; converges to the same optimum on unimodal
/// objectives, provided step control; exposed mainly for the ablation bench.
double OptimalThresholdGradient(double penalty, const CdfFn& cdf,
                                int max_steps = 400,
                                double learning_rate = 0.05);

/// Memoized per-penalty optimal thresholds against a fixed mixture.
///
/// All orders with (approximately) equal penalties share one optimization,
/// which is what makes the GMM strategy O(1) per decision in practice.
class ThresholdTable {
 public:
  ThresholdTable(GaussianMixture mixture, double penalty_resolution = 1.0)
      : mixture_(std::move(mixture)),
        resolution_(penalty_resolution > 0 ? penalty_resolution : 1.0) {}

  /// theta*(penalty), cached on a penalty grid of `resolution` seconds.
  double ThresholdFor(double penalty);

  const GaussianMixture& mixture() const { return mixture_; }
  size_t cache_size() const { return cache_.size(); }

 private:
  GaussianMixture mixture_;
  double resolution_;
  std::unordered_map<int64_t, double> cache_;
};

}  // namespace watter

#endif  // WATTER_STATS_THRESHOLD_OPTIMIZER_H_
