// Route representation (Definition 3): an ordered sequence of pickup and
// drop-off stops, with cached leg costs.
#ifndef WATTER_CORE_ROUTE_H_
#define WATTER_CORE_ROUTE_H_

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// One stop of a route: a pickup or drop-off of a specific order.
struct Stop {
  NodeId node = kInvalidNode;
  OrderId order = kInvalidOrder;
  bool is_pickup = false;

  bool operator==(const Stop& other) const {
    return node == other.node && order == other.order &&
           is_pickup == other.is_pickup;
  }
};

/// An ordered stop sequence with per-leg travel costs.
///
/// `offsets[s]` is the travel cost from the first stop to stop s (so
/// offsets[0] == 0 and offsets.back() == T(L), the total route cost).
struct Route {
  std::vector<Stop> stops;
  std::vector<double> offsets;

  /// Total travel cost T(L); zero for an empty route.
  double TotalCost() const { return offsets.empty() ? 0.0 : offsets.back(); }

  /// Travel cost from the first stop up to the drop-off of `order`
  /// (T(L^(i)) in Definition 5); kInfCost if the order is not dropped here.
  double CompletionOffset(OrderId order) const;

  /// Validates the sequential constraint (every pickup precedes its drop-off
  /// and stops pair up) and that `capacity` is never exceeded assuming
  /// `riders_of(order)` riders board at each pickup.
  bool SatisfiesPrecedenceAndCapacity(
      const std::vector<const Order*>& orders, int capacity) const;

  /// Human-readable "p3 -> p5 -> d3 -> d5" string for debugging.
  std::string ToString() const;
};

/// Recomputes leg offsets of `route` from `oracle` (e.g. after editing
/// stops). Returns kInfCost total if any leg is unreachable.
double RecomputeOffsets(Route* route, TravelTimeOracle* oracle);

}  // namespace watter

#endif  // WATTER_CORE_ROUTE_H_
