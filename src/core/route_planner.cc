#include "src/core/route_planner.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <string>

#include "src/obs/histogram_registry.h"

namespace watter {
namespace {

// Feeds the "planner.plan_s" latency histogram when the registry is armed;
// disarmed it is a single relaxed load (PlanBest is too hot for more).
struct PlanLatencyScope {
  bool armed = obs::HistogramRegistry::enabled();
  std::chrono::steady_clock::time_point start;
  PlanLatencyScope() {
    if (armed) start = std::chrono::steady_clock::now();
  }
  ~PlanLatencyScope() {
    if (!armed) return;
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    obs::RecordLatency("planner.plan_s", seconds, /*hi_seconds=*/0.01);
  }
};

// State encoding: (picked mask, dropped mask, last stop index). Stop index
// s in [0, k) is pickup of order s; s in [k, 2k) is drop-off of order s - k.
constexpr int kMaxStops = 2 * kMaxGroupSize;

struct DpCell {
  double cost = kInfCost;
  int8_t prev_last = -1;  // Last stop of the predecessor state.
};

inline int StateIndex(int picked, int dropped, int last, int k) {
  return (picked << k | dropped) * (2 * k) + last;
}

}  // namespace

Result<GroupPlan> RoutePlanner::PlanBest(
    const std::vector<const Order*>& orders, Time depart_time, int capacity) {
  plan_count_.fetch_add(1, std::memory_order_relaxed);
  PlanLatencyScope latency_scope;
  const int k = static_cast<int>(orders.size());
  if (k == 0) return Status::InvalidArgument("cannot plan an empty group");
  if (k > kMaxGroupSize) {
    return Status::InvalidArgument("group size " + std::to_string(k) +
                                   " exceeds kMaxGroupSize");
  }

  // Stop locations and rider deltas.
  std::array<NodeId, kMaxStops> stop_node{};
  for (int i = 0; i < k; ++i) {
    stop_node[i] = orders[i]->pickup;
    stop_node[k + i] = orders[i]->dropoff;
  }
  // Pairwise leg costs between stops (up to 10x10).
  std::array<std::array<double, kMaxStops>, kMaxStops> leg{};
  for (int a = 0; a < 2 * k; ++a) {
    for (int b = 0; b < 2 * k; ++b) {
      leg[a][b] = a == b ? 0.0 : oracle_->Cost(stop_node[a], stop_node[b]);
    }
  }

  const int full = (1 << k) - 1;
  std::vector<DpCell> dp(static_cast<size_t>(1 << k) * (1 << k) * (2 * k));

  // Seed: start at any pickup (the route's first stop costs nothing;
  // T(L) is measured from l1 per Definition 3).
  for (int i = 0; i < k; ++i) {
    if (orders[i]->riders > capacity) {
      return Status::Infeasible("order exceeds vehicle capacity alone");
    }
    dp[StateIndex(1 << i, 0, i, k)].cost = 0.0;
  }

  // Relax in lexicographic (picked, dropped) order: every transition
  // strictly grows one of the two masks, so this is a topological sweep.
  for (int picked = 1; picked <= full; ++picked) {
    for (int dropped = picked;; dropped = (dropped - 1) & picked) {
      // Iterate submasks of `picked` from `picked` down to 0; process in
      // increasing order via the complement trick below.
      int d = picked & ~dropped;  // Visit small dropped masks first.
      int onboard = 0;
      for (int i = 0; i < k; ++i) {
        if ((picked >> i & 1) && !(d >> i & 1)) onboard += orders[i]->riders;
      }
      for (int last = 0; last < 2 * k; ++last) {
        const DpCell& cell = dp[StateIndex(picked, d, last, k)];
        if (cell.cost == kInfCost) continue;
        // Transition 1: pick up order j.
        for (int j = 0; j < k; ++j) {
          if (picked >> j & 1) continue;
          if (onboard + orders[j]->riders > capacity) continue;
          double cost = cell.cost + leg[last][j];
          if (cost == kInfCost) continue;
          // Prune: even the direct leg to j's drop-off cannot make the
          // deadline any more.
          if (depart_time + cost + leg[j][k + j] > orders[j]->deadline) {
            continue;
          }
          DpCell& next = dp[StateIndex(picked | 1 << j, d, j, k)];
          if (cost < next.cost) {
            next.cost = cost;
            next.prev_last = static_cast<int8_t>(last);
          }
        }
        // Transition 2: drop off order j (must be on board).
        for (int j = 0; j < k; ++j) {
          if (!(picked >> j & 1) || (d >> j & 1)) continue;
          double cost = cell.cost + leg[last][k + j];
          if (cost == kInfCost) continue;
          if (depart_time + cost > orders[j]->deadline) continue;
          DpCell& next = dp[StateIndex(picked, d | 1 << j, k + j, k)];
          if (cost < next.cost) {
            next.cost = cost;
            next.prev_last = static_cast<int8_t>(last);
          }
        }
      }
      if (dropped == 0) break;
    }
  }

  // Best final state: everything picked and dropped.
  double best_cost = kInfCost;
  int best_last = -1;
  for (int last = k; last < 2 * k; ++last) {
    const DpCell& cell = dp[StateIndex(full, full, last, k)];
    if (cell.cost < best_cost) {
      best_cost = cell.cost;
      best_last = last;
    }
  }
  if (best_last < 0) {
    return Status::Infeasible("no route meets the deadline constraints");
  }

  // Reconstruct the stop sequence by walking predecessors.
  std::vector<int> sequence;
  sequence.reserve(2 * k);
  int picked = full, dropped = full, last = best_last;
  while (last >= 0) {
    sequence.push_back(last);
    int prev = dp[StateIndex(picked, dropped, last, k)].prev_last;
    if (last >= k) {
      dropped &= ~(1 << (last - k));
    } else {
      picked &= ~(1 << last);
    }
    last = prev;
  }
  std::reverse(sequence.begin(), sequence.end());

  GroupPlan plan;
  plan.total_cost = best_cost;
  plan.route.stops.reserve(sequence.size());
  plan.route.offsets.reserve(sequence.size());
  double cumulative = 0.0;
  int prev_stop = -1;
  for (int stop : sequence) {
    if (prev_stop >= 0) cumulative += leg[prev_stop][stop];
    plan.route.stops.push_back(Stop{stop_node[stop],
                                    orders[stop % k]->id, stop < k});
    plan.route.offsets.push_back(cumulative);
    prev_stop = stop;
  }
  plan.completion.assign(k, kInfCost);
  for (size_t s = 0; s < plan.route.stops.size(); ++s) {
    if (!plan.route.stops[s].is_pickup) {
      plan.completion[sequence[s] - k] = plan.route.offsets[s];
    }
  }
  plan.latest_departure = kInfCost;
  for (int i = 0; i < k; ++i) {
    plan.latest_departure =
        std::min(plan.latest_departure,
                 orders[i]->deadline - plan.completion[i]);
  }
  return plan;
}

bool RoutePlanner::PairShareable(const Order& a, const Order& b,
                                 Time depart_time, int capacity) {
  std::vector<const Order*> pair = {&a, &b};
  return PlanBest(pair, depart_time, capacity).ok();
}

}  // namespace watter
