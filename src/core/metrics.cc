#include "src/core/metrics.h"

#include <sstream>

namespace watter {

void MetricsCollector::RecordServed(const Order& order, double response,
                                    double detour, int group_size) {
  double extra =
      options_.weights.alpha * detour + options_.weights.beta * response;
  ++served_;
  total_extra_ += extra;
  total_response_ += response;
  total_detour_ += detour;
  total_group_size_ += group_size;
  served_extras_.push_back(extra);
  served_records_.push_back(
      ServedRecord{order.id, response, detour, extra, group_size});
}

void MetricsCollector::RecordRejected(const Order& order) {
  ++rejected_;
  total_metrs_penalty_ += order.Penalty();
  total_uc_penalty_ += options_.uc_penalty_factor * order.shortest_cost;
}

MetricsReport MetricsCollector::Report() const {
  MetricsReport report;
  report.served = served_;
  report.rejected = rejected_;
  report.total_extra_time = total_extra_;
  report.total_metrs_penalty = total_metrs_penalty_;
  report.metrs_objective = total_extra_ + total_metrs_penalty_;
  report.worker_travel = worker_travel_;
  report.unified_cost = worker_travel_ + total_uc_penalty_;
  int64_t total = served_ + rejected_;
  report.service_rate = total > 0 ? static_cast<double>(served_) / total : 0.0;
  report.avg_extra = served_ > 0 ? total_extra_ / served_ : 0.0;
  report.avg_response = served_ > 0 ? total_response_ / served_ : 0.0;
  report.avg_detour = served_ > 0 ? total_detour_ / served_ : 0.0;
  report.avg_group_size = served_ > 0 ? total_group_size_ / served_ : 0.0;
  report.algorithm_seconds = algorithm_seconds_;
  report.running_time_per_order =
      total > 0 ? algorithm_seconds_ / total : 0.0;
  if (fleet_size_ > 0 && horizon_seconds_ > 0.0) {
    report.fleet_utilization =
        worker_travel_ / (fleet_size_ * horizon_seconds_);
  }
  return report;
}

std::string MetricsReport::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "served=" << served << " rejected=" << rejected
     << " service_rate=" << service_rate * 100.0 << "%"
     << " extra_time=" << total_extra_time
     << " unified_cost=" << unified_cost
     << " metrs=" << metrs_objective
     << " avg_extra=" << avg_extra
     << " rt/order=" << running_time_per_order * 1e6 << "us";
  return os.str();
}

}  // namespace watter
