#include "src/core/metrics.h"

#include <sstream>

namespace watter {

void MetricsCollector::RecordServed(const Order& order, double response,
                                    double detour, int group_size) {
  double extra =
      options_.weights.alpha * detour + options_.weights.beta * response;
  ++served_;
  total_extra_ += extra;
  total_response_ += response;
  total_detour_ += detour;
  total_group_size_ += group_size;
  served_extras_.push_back(extra);
  served_records_.push_back(
      ServedRecord{order.id, response, detour, extra, group_size});
}

void MetricsCollector::RecordRejected(const Order& order) {
  ++rejected_;
  total_metrs_penalty_ += order.Penalty();
  total_uc_penalty_ += options_.uc_penalty_factor * order.shortest_cost;
}

void MetricsCollector::RecordCancelled(const Order& order) {
  // Cancellations are rejections with a break-out counter: the aggregate
  // penalties stay bitwise identical whether or not the break-out exists.
  RecordRejected(order);
  ++cancelled_;
}

void MetricsCollector::RecordFailedService(const Order& order) {
  ++failed_;
  total_metrs_penalty_ += order.Penalty();
  total_uc_penalty_ += options_.uc_penalty_factor * order.shortest_cost;
}

void MetricsCollector::ReverseServed(const Order& order, double response,
                                     double detour, int group_size) {
  (void)order;
  // Recompute the identical extra value RecordServed derived and subtract
  // the same stored floats. The sums need not bit-restore (float add is not
  // reversible in general) — determinism comes from the reversal itself
  // being a fixed step in the serial fault phase.
  double extra =
      options_.weights.alpha * detour + options_.weights.beta * response;
  --served_;
  total_extra_ -= extra;
  total_response_ -= response;
  total_detour_ -= detour;
  total_group_size_ -= group_size;
}

MetricsReport MetricsCollector::Report() const {
  MetricsReport report;
  report.served = served_;
  report.rejected = rejected_;
  report.cancelled = cancelled_;
  report.failed_services = failed_;
  report.total_extra_time = total_extra_;
  report.total_metrs_penalty = total_metrs_penalty_;
  report.metrs_objective = total_extra_ + total_metrs_penalty_;
  report.worker_travel = worker_travel_;
  report.unified_cost = worker_travel_ + total_uc_penalty_;
  // Failed services are terminal outcomes: they join the denominator (with
  // failed_ == 0 the arithmetic is untouched).
  int64_t total = served_ + rejected_ + failed_;
  report.service_rate = total > 0 ? static_cast<double>(served_) / total : 0.0;
  report.avg_extra = served_ > 0 ? total_extra_ / served_ : 0.0;
  report.avg_response = served_ > 0 ? total_response_ / served_ : 0.0;
  report.avg_detour = served_ > 0 ? total_detour_ / served_ : 0.0;
  report.avg_group_size = served_ > 0 ? total_group_size_ / served_ : 0.0;
  report.algorithm_seconds = algorithm_seconds_;
  report.running_time_per_order =
      total > 0 ? algorithm_seconds_ / total : 0.0;
  if (fleet_size_ > 0 && horizon_seconds_ > 0.0) {
    report.fleet_utilization =
        worker_travel_ / (fleet_size_ * horizon_seconds_);
  }
  return report;
}

std::string MetricsReportJson(const MetricsReport& report) {
  std::ostringstream os;
  os.precision(9);
  auto i64 = [&os](const char* name, int64_t value, const char* sep = ", ") {
    os << "\"" << name << "\": " << value << sep;
  };
  auto f64 = [&os](const char* name, double value, const char* sep = ", ") {
    os << "\"" << name << "\": " << value << sep;
  };
  os << "{";
  // The bench_util record subset, same names and units.
  i64("served", report.served);
  i64("rejected", report.rejected);
  f64("metrs_objective", report.metrs_objective);
  f64("unified_cost", report.unified_cost);
  f64("service_rate", report.service_rate);
  f64("running_time_per_order_us", report.running_time_per_order * 1e6);
  i64("planner_plans", report.pool.planner_plans);
  i64("pair_tests", report.pool.pair_tests);
  i64("recomputes", report.pool.best_group_recomputes);
  i64("groups_evaluated", report.pool.groups_evaluated);
  i64("plan_cache_hits", report.pool.plan_cache_hits);
  i64("plan_cache_misses", report.pool.plan_cache_misses);
  i64("plan_cache_replans", report.pool.plan_cache_replans);
  i64("plan_cache_seeds", report.pool.plan_cache_seeds);
  i64("oracle_queries", report.geo.queries);
  i64("oracle_batches", report.geo.batches);
  i64("oracle_batch_points", report.geo.batch_points);
  // The rest of the report, under the MetricsReport field names.
  f64("total_extra_time", report.total_extra_time);
  f64("total_metrs_penalty", report.total_metrs_penalty);
  f64("worker_travel", report.worker_travel);
  f64("avg_extra", report.avg_extra);
  f64("avg_response", report.avg_response);
  f64("avg_detour", report.avg_detour);
  f64("avg_group_size", report.avg_group_size);
  f64("algorithm_seconds", report.algorithm_seconds);
  f64("fleet_utilization", report.fleet_utilization);
  i64("plan_cache_evictions", report.pool.plan_cache_evictions);
  i64("reverse_index_fanout", report.pool.reverse_index_fanout);
  f64("bucket_build_seconds", report.geo.bucket_build_seconds);
  i64("offers", report.dispatch.offers);
  i64("committed", report.dispatch.committed);
  i64("worker_conflicts", report.dispatch.worker_conflicts);
  i64("order_conflicts", report.dispatch.order_conflicts);
  i64("border_offers", report.dispatch.border_offers);
  i64("border_affected", report.dispatch.border_affected);
  i64("cancelled", report.cancelled);
  i64("failed_services", report.failed_services);
  i64("fault_dropouts", report.faults.dropouts);
  i64("fault_midroute_dropouts", report.faults.midroute_dropouts);
  i64("fault_late_dropouts", report.faults.late_dropouts);
  i64("fault_returns", report.faults.returns);
  i64("fault_brownout_rounds", report.faults.brownout_rounds);
  i64("fault_stalls", report.faults.stalls);
  i64("fault_recovered_orders", report.faults.recovered_orders);
  i64("fault_aborted_commits", report.faults.aborted_commits);
  i64("shed_orders", report.faults.shed_orders);
  i64("degraded_rounds", report.faults.degraded_rounds);
  i64("work_units", report.faults.work_units);
  i64("watchdog_trips", report.faults.watchdog_trips, "}");
  return os.str();
}

std::string MetricsReport::ToString() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "served=" << served << " rejected=" << rejected
     << " service_rate=" << service_rate * 100.0 << "%"
     << " extra_time=" << total_extra_time
     << " unified_cost=" << unified_cost
     << " metrs=" << metrs_objective
     << " avg_extra=" << avg_extra
     << " rt/order=" << running_time_per_order * 1e6 << "us";
  return os.str();
}

}  // namespace watter
