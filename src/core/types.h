// Core domain types of the METRS problem (paper Section II).
#ifndef WATTER_CORE_TYPES_H_
#define WATTER_CORE_TYPES_H_

#include <cstdint>

#include "src/geo/graph.h"

namespace watter {

/// Simulation timestamps and durations, in seconds.
using Time = double;

/// Identifier of a rider order.
using OrderId = int64_t;

/// Identifier of a worker (driver/vehicle).
using WorkerId = int32_t;

inline constexpr OrderId kInvalidOrder = -1;
inline constexpr WorkerId kInvalidWorker = -1;

/// Largest group size the pool will ever form; the paper evaluates vehicle
/// capacities Kw in {2,3,4,5}.
inline constexpr int kMaxGroupSize = 5;

/// Trade-off weights of Definition 6: te = alpha * detour + beta * response.
struct ExtraTimeWeights {
  double alpha = 1.0;
  double beta = 1.0;
};

/// A rider request o(i) = <lp, ld, c, t, tau, eta> (Definition 1).
struct Order {
  OrderId id = kInvalidOrder;
  NodeId pickup = kInvalidNode;   ///< l(i)_p
  NodeId dropoff = kInvalidNode;  ///< l(i)_d
  int riders = 1;                 ///< c(i)
  Time release = 0.0;             ///< t(i)
  Time deadline = 0.0;            ///< tau(i): absolute drop-off deadline.
  Time wait_limit = 0.0;          ///< eta(i): preferred max waiting duration.
  double shortest_cost = 0.0;     ///< cost(lp, ld), cached at creation.

  /// Maximum feasible response time: waiting longer necessarily violates the
  /// deadline. Also the METRS rejection penalty p(i) (Section II-B).
  double MaxResponse() const { return deadline - release - shortest_cost; }

  /// METRS rejection penalty p(i) = max response time.
  double Penalty() const { return MaxResponse(); }

  /// Latest timestamp at which a dispatch could still meet the deadline.
  Time LatestDispatch() const { return release + MaxResponse(); }

  /// Timestamp at which the preferred waiting window elapses.
  Time WaitDeadline() const { return release + wait_limit; }
};

/// A worker w(j) = <l, k, a> (Definition 2).
struct Worker {
  WorkerId id = kInvalidWorker;
  NodeId location = kInvalidNode;  ///< Current/idle location l(j).
  int capacity = 4;                ///< Vehicle capacity k(j).
  bool busy = false;               ///< Availability a(j).
  Time available_at = 0.0;         ///< When the current delivery finishes.
  bool offline = false;            ///< Dropped out (fault injection).
};

}  // namespace watter

#endif  // WATTER_CORE_TYPES_H_
