// METRS objective accounting and the paper's four evaluation metrics:
// Extra Time, Unified Cost, Service Rate and Running Time (Section VII-A,
// "Measurements").
#ifndef WATTER_CORE_METRICS_H_
#define WATTER_CORE_METRICS_H_

#include <string>
#include <vector>

#include "src/core/types.h"

namespace watter {

/// Configuration of the metric pipeline.
struct MetricsOptions {
  /// Definition 6 trade-off weights (paper default: alpha = beta = 1).
  ExtraTimeWeights weights;
  /// Unified-cost rejection penalty factor: penalty = factor * cost(lp, ld)
  /// (the paper follows [9] and uses 10x the shortest cost).
  double uc_penalty_factor = 10.0;
};

/// Per-served-order record kept for distribution fitting and debugging.
struct ServedRecord {
  OrderId id = kInvalidOrder;
  double response = 0.0;  ///< t_r
  double detour = 0.0;    ///< t_d
  double extra = 0.0;     ///< te = alpha*t_d + beta*t_r
  int group_size = 1;
};

/// Pool-side work counters of one run (all zero for the non-pooling
/// baselines, which have no order pool). These are deterministic — bitwise
/// identical across thread counts and dispatch engines for a fixed scenario
/// — so committed baselines diff them directly to catch cache regressions
/// (docs/PERFORMANCE.md, `BENCH_pool.json`).
struct PoolStats {
  int64_t best_group_recomputes = 0;  ///< Best-group searches committed.
  int64_t groups_evaluated = 0;       ///< Candidate groups rated by searches.
  int64_t planner_plans = 0;          ///< RoutePlanner::PlanBest invocations.
  int64_t pair_tests = 0;             ///< Shareability pair feasibility tests.
  int64_t plan_cache_hits = 0;        ///< Group-plan cache lookups served.
  int64_t plan_cache_misses = 0;      ///< Lookups that had to plan fresh.
  int64_t plan_cache_replans = 0;     ///< Expired entries re-planned later.
  int64_t plan_cache_seeds = 0;       ///< Pair plans adopted from edge tests.
  int64_t plan_cache_evictions = 0;   ///< Entries dropped on member departure.
  int64_t reverse_index_fanout = 0;   ///< Owners dirtied via member->owners.
};

/// Travel-time-oracle work counters of one run (filled by WatterPlatform
/// from the scenario's oracle; zero elsewhere). Unlike PoolStats these are
/// *diagnostic, not deterministic*: the three counter increments are
/// deliberately racy (travel_time_oracle.h), so multi-threaded runs may
/// drop a few counts, and the two geo backends intentionally issue
/// different query totals. Determinism comparisons exclude them, like
/// wall-clock fields. bucket_build_seconds is the exception: it accumulates
/// once per memoized search-space build under the oracle mutex, so it is
/// exact — but it is wall-clock, hence still excluded from determinism.
struct GeoStats {
  int64_t queries = 0;        ///< Point results answered (batched or not).
  int64_t batches = 0;        ///< Batch calls (ManyToOne/OneToMany/ManyToMany).
  int64_t batch_points = 0;   ///< Batched endpoints; /batches = mean width.
  double bucket_build_seconds = 0.0;  ///< Search-space build time (0 if unused).
};

/// Batched-dispatch work counters of one run (zero for the serial engine
/// and the baselines). The offer and outcome totals are deterministic —
/// identical across thread AND shard counts, because the sharded
/// reconciliation is bitwise-equal to the global commit scan
/// (docs/DISPATCH.md). The border splits measure the shard layout itself
/// and legitimately vary with `--shards` (at 1 shard everything is
/// interior); determinism comparisons across shard counts exclude them.
struct DispatchStats {
  int64_t offers = 0;             ///< Bids that reached conflict resolution.
  int64_t committed = 0;          ///< Offers that dispatched.
  int64_t worker_conflicts = 0;   ///< Lost the worker to a cheaper offer.
  int64_t order_conflicts = 0;    ///< Lost a member to a cheaper offer.
  int64_t border_offers = 0;      ///< Offers straddling a shard boundary.
  int64_t border_affected = 0;    ///< Interior offers pulled into the
                                  ///< reconciliation pass by a border link.
};

/// Fault-injection and overload-degradation counters of one run (zero when
/// `--faults` and the round work budget are off; docs/ROBUSTNESS.md). All
/// deterministic: faults fire from a precomputed schedule and shedding is
/// decided from frozen state, so these diff bitwise across thread and shard
/// counts like PoolStats — except watchdog_trips, which is wall-clock
/// driven (CLI opt-in) and excluded from determinism comparisons.
struct FaultStats {
  int64_t dropouts = 0;           ///< Workers taken offline at round starts.
  int64_t midroute_dropouts = 0;  ///< Of those, mid-route with riders aboard.
  int64_t late_dropouts = 0;      ///< Dropouts between resolve and commit.
  int64_t returns = 0;            ///< Workers brought back online.
  int64_t brownout_rounds = 0;    ///< Rounds run under a degraded oracle.
  int64_t stalls = 0;             ///< Pipeline stall events injected.
  int64_t recovered_orders = 0;   ///< Aboard orders re-pooled after a dropout.
  int64_t failed_services = 0;    ///< Aboard orders past deadline at dropout.
  int64_t aborted_commits = 0;    ///< Winning offers undone by a lost worker.
  int64_t shed_orders = 0;        ///< Propose work deferred by the budget.
  int64_t degraded_rounds = 0;    ///< Rounds that shed at least one order.
  int64_t work_units = 0;         ///< Propose work units spent (budgeted runs).
  int64_t watchdog_trips = 0;     ///< Wall-clock watchdog activations.
};

/// Aggregated results of one simulation run.
struct MetricsReport {
  int64_t served = 0;
  int64_t rejected = 0;
  /// Orders cancelled by the rider hazard — a subset of `rejected` (they
  /// carry the same penalties), broken out for fault/chaos accounting.
  int64_t cancelled = 0;
  /// Orders that boarded but could not be served within their (grace-
  /// extended) deadline after a worker dropout. Terminal, like rejection.
  int64_t failed_services = 0;
  double total_extra_time = 0.0;    ///< Sum of te over served orders.
  double total_metrs_penalty = 0.0; ///< Sum of p(i) over rejected orders.
  double metrs_objective = 0.0;     ///< Equation 2.
  double worker_travel = 0.0;       ///< Total driver travel seconds.
  double unified_cost = 0.0;        ///< worker_travel + UC rejection penalty.
  double service_rate = 0.0;        ///< |O+| / |O|.
  double avg_extra = 0.0;
  double avg_response = 0.0;
  double avg_detour = 0.0;
  double avg_group_size = 0.0;
  double algorithm_seconds = 0.0;   ///< Total decision-making wall time.
  double running_time_per_order = 0.0;  ///< algorithm_seconds / |O|.
  /// Fraction of fleet time spent driving: worker_travel / (fleet size *
  /// simulated horizon); 0 when fleet info was not supplied.
  double fleet_utilization = 0.0;
  /// Pool/planner work counters (filled by WatterPlatform; zero elsewhere).
  PoolStats pool;
  /// Travel-time-oracle work counters (filled by WatterPlatform; zero
  /// elsewhere). Cumulative over the oracle's lifetime, which includes
  /// scenario generation's shortest-cost sampling.
  GeoStats geo;
  /// Batched-dispatch work counters (filled by WatterPlatform's batched
  /// engine; zero under kSerial and in the baselines).
  DispatchStats dispatch;
  /// Fault-injection / degradation counters (filled by WatterPlatform; all
  /// zero when faults and the work budget are off).
  FaultStats faults;

  /// One-line summary for logs.
  std::string ToString() const;
};

/// Serializes a full report as one JSON object. Overlapping fields use the
/// exact bench_util record names (served, metrs_objective, oracle_queries,
/// running_time_per_order_us, ...) so `watter_cli --metrics-json` output
/// and BENCH_*.json records diff with the same tooling; the remaining
/// MetricsReport fields ride along under their struct names.
std::string MetricsReportJson(const MetricsReport& report);

/// Streams served/rejected order outcomes and produces a MetricsReport.
class MetricsCollector {
 public:
  explicit MetricsCollector(MetricsOptions options = {})
      : options_(options) {}

  /// Records a served order with its realized response and detour times.
  void RecordServed(const Order& order, double response, double detour,
                    int group_size);

  /// Records a rejected order (adds its METRS and unified-cost penalties).
  void RecordRejected(const Order& order);

  /// Records a rider-cancelled order: same penalties as a rejection (the
  /// cancelled_ count is a subset of rejected_, so faults-off aggregates
  /// are unchanged), plus the cancellation break-out.
  void RecordCancelled(const Order& order);

  /// Records an order that boarded but could not be served within its
  /// deadline after its worker dropped out (docs/ROBUSTNESS.md). Carries
  /// rejection-style penalties; terminal, so it joins the service-rate
  /// denominator.
  void RecordFailedService(const Order& order);

  /// Exactly undoes an earlier RecordServed for an aboard-but-undelivered
  /// order whose worker dropped out: the same float contributions are
  /// subtracted, so a recovered order that later serves again accumulates
  /// from a clean slate. The historical served_extra_times() sample keeps
  /// the original entry (it is a fitting corpus, not an invariant).
  void ReverseServed(const Order& order, double response, double detour,
                     int group_size);

  /// Adds driver travel seconds (pickup legs + route legs).
  void AddWorkerTravel(double seconds) { worker_travel_ += seconds; }

  /// Adds algorithm (decision-making) wall time.
  void AddAlgorithmTime(double seconds) { algorithm_seconds_ += seconds; }

  /// Supplies fleet size and simulated horizon for utilization reporting.
  void SetFleetInfo(int fleet_size, double horizon_seconds) {
    fleet_size_ = fleet_size;
    horizon_seconds_ = horizon_seconds;
  }

  /// Extra times of served orders so far — the "historical data H" that
  /// Algorithm 3 fits the Gaussian Mixture Model to.
  const std::vector<double>& served_extra_times() const {
    return served_extras_;
  }

  const std::vector<ServedRecord>& served_records() const {
    return served_records_;
  }

  const MetricsOptions& options() const { return options_; }
  int64_t total_orders() const { return served_ + rejected_ + failed_; }
  int64_t served_count() const { return served_; }
  int64_t rejected_count() const { return rejected_; }
  int64_t cancelled_count() const { return cancelled_; }
  int64_t failed_count() const { return failed_; }

  /// Finalizes averages and rates into a report.
  MetricsReport Report() const;

 private:
  MetricsOptions options_;
  int64_t served_ = 0;
  int64_t rejected_ = 0;
  int64_t cancelled_ = 0;  // Subset of rejected_.
  int64_t failed_ = 0;     // Failed services (not part of rejected_).
  double total_extra_ = 0.0;
  double total_response_ = 0.0;
  double total_detour_ = 0.0;
  double total_group_size_ = 0.0;
  double total_metrs_penalty_ = 0.0;
  double total_uc_penalty_ = 0.0;
  double worker_travel_ = 0.0;
  double algorithm_seconds_ = 0.0;
  int fleet_size_ = 0;
  double horizon_seconds_ = 0.0;
  std::vector<double> served_extras_;
  std::vector<ServedRecord> served_records_;
};

}  // namespace watter

#endif  // WATTER_CORE_METRICS_H_
