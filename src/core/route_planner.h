// Exact small-k dial-a-ride route planner.
//
// Given up to kMaxGroupSize orders, finds the minimum-total-cost stop
// sequence that picks every rider up before dropping them off, never exceeds
// the vehicle capacity, and — for a given departure time — meets every
// order's drop-off deadline. Exactness matters: the paper's shareability
// edges, group expiries (Eq. 3) and extra-time accounting all reference the
// *minimal travel cost* feasible route.
//
// Algorithm: dynamic programming over states (picked-set, dropped-set,
// last-stop). With k <= 5 there are at most 3^k * 2k reachable states, so a
// plan costs microseconds.
#ifndef WATTER_CORE_ROUTE_PLANNER_H_
#define WATTER_CORE_ROUTE_PLANNER_H_

#include <atomic>
#include <vector>

#include "src/common/result.h"
#include "src/core/route.h"
#include "src/core/types.h"
#include "src/geo/travel_time_oracle.h"

namespace watter {

/// The outcome of planning a group's route.
struct GroupPlan {
  Route route;

  /// T(L): total travel cost of the route.
  double total_cost = 0.0;

  /// completion[i] = T(L^(i)) for input order i: travel cost from the first
  /// stop through order i's drop-off.
  std::vector<double> completion;

  /// Latest departure timestamp from the first stop such that every order
  /// still meets its deadline: min_i (deadline_i - completion_i). The pool
  /// uses this as the group/edge expiry (Eq. 3).
  Time latest_departure = 0.0;
};

/// Plans minimum-cost feasible routes for small order groups.
///
/// Thread safety: PlanBest/PairShareable keep all working state on the
/// stack, so concurrent calls are safe as long as the bound oracle is (all
/// oracles are; see travel_time_oracle.h).
class RoutePlanner {
 public:
  /// Binds to a travel-time oracle (not owned).
  explicit RoutePlanner(TravelTimeOracle* oracle) : oracle_(oracle) {}

  /// Returns the cheapest feasible route for `orders` departing the first
  /// stop at `depart_time` with the given vehicle `capacity`.
  ///
  /// Errors: InvalidArgument for empty/oversized groups, Infeasible when no
  /// route satisfies the deadline + capacity constraints.
  Result<GroupPlan> PlanBest(const std::vector<const Order*>& orders,
                             Time depart_time, int capacity);

  /// True if the two orders admit a feasible shared route at `depart_time`.
  bool PairShareable(const Order& a, const Order& b, Time depart_time,
                     int capacity);

  /// The bound oracle (not owned). Exposed so callers about to issue a burst
  /// of plans over a known endpoint set can prime batch-capable oracles
  /// (see ShareabilityGraph::Insert).
  TravelTimeOracle* oracle() const { return oracle_; }

  /// Number of PlanBest calls (diagnostics for the benches).
  int64_t plan_count() const {
    return plan_count_.load(std::memory_order_relaxed);
  }

 private:
  TravelTimeOracle* oracle_;
  std::atomic<int64_t> plan_count_{0};
};

}  // namespace watter

#endif  // WATTER_CORE_ROUTE_PLANNER_H_
