#include "src/core/route.h"

#include <unordered_map>

namespace watter {

double Route::CompletionOffset(OrderId order) const {
  for (size_t s = 0; s < stops.size(); ++s) {
    if (stops[s].order == order && !stops[s].is_pickup) return offsets[s];
  }
  return kInfCost;
}

bool Route::SatisfiesPrecedenceAndCapacity(
    const std::vector<const Order*>& orders, int capacity) const {
  std::unordered_map<OrderId, int> riders_of;
  riders_of.reserve(orders.size());
  for (const Order* order : orders) riders_of[order->id] = order->riders;

  std::unordered_map<OrderId, int> state;  // 0 absent, 1 picked, 2 dropped.
  int onboard = 0;
  for (const Stop& stop : stops) {
    auto riders_it = riders_of.find(stop.order);
    if (riders_it == riders_of.end()) return false;  // Unknown order.
    int& phase = state[stop.order];
    if (stop.is_pickup) {
      if (phase != 0) return false;  // Double pickup.
      phase = 1;
      onboard += riders_it->second;
      if (onboard > capacity) return false;
    } else {
      if (phase != 1) return false;  // Drop before pickup or double drop.
      phase = 2;
      onboard -= riders_it->second;
    }
  }
  for (const Order* order : orders) {
    auto it = state.find(order->id);
    if (it == state.end() || it->second != 2) return false;  // Unfinished.
  }
  return true;
}

std::string Route::ToString() const {
  std::string out;
  for (size_t s = 0; s < stops.size(); ++s) {
    if (s > 0) out += " -> ";
    out += stops[s].is_pickup ? "p" : "d";
    out += std::to_string(stops[s].order);
    out += "@";
    out += std::to_string(stops[s].node);
  }
  return out;
}

double RecomputeOffsets(Route* route, TravelTimeOracle* oracle) {
  route->offsets.assign(route->stops.size(), 0.0);
  double cumulative = 0.0;
  for (size_t s = 1; s < route->stops.size(); ++s) {
    double leg = oracle->Cost(route->stops[s - 1].node, route->stops[s].node);
    if (leg == kInfCost) {
      route->offsets.assign(route->stops.size(), kInfCost);
      return kInfCost;
    }
    cumulative += leg;
    route->offsets[s] = cumulative;
  }
  return cumulative;
}

}  // namespace watter
