#include "src/common/status.h"

namespace watter {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace watter
