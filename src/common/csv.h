// Minimal CSV reading/writing used for dataset persistence and for dumping
// bench series that can be re-plotted against the paper figures.
#ifndef WATTER_COMMON_CSV_H_
#define WATTER_COMMON_CSV_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace watter {

/// In-memory CSV document: a header row plus data rows of equal arity.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Returns the column index of `name` or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Serializes `doc` to `path`. Fields containing commas/quotes are quoted.
Status WriteCsv(const std::string& path, const CsvDocument& doc);

/// Parses the file at `path`. The first row is treated as the header.
Result<CsvDocument> ReadCsv(const std::string& path);

/// Splits one CSV line honoring double-quote escaping.
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace watter

#endif  // WATTER_COMMON_CSV_H_
