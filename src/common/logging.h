// Minimal leveled logging to stderr with a global verbosity switch.
#ifndef WATTER_COMMON_LOGGING_H_
#define WATTER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace watter {

/// Severity levels, ordered by verbosity.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits its buffer on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// No-op sink used when a level is compiled out / filtered.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace watter

#define WATTER_LOG(level)                                            \
  (static_cast<int>(::watter::LogLevel::k##level) <                  \
   static_cast<int>(::watter::GetLogLevel()))                        \
      ? (void)0                                                      \
      : (void)::watter::internal::LogMessage(                        \
            ::watter::LogLevel::k##level, __FILE__, __LINE__)

#define WATTER_LOG_DEBUG                                      \
  ::watter::internal::LogMessage(::watter::LogLevel::kDebug,  \
                                 __FILE__, __LINE__)
#define WATTER_LOG_INFO                                      \
  ::watter::internal::LogMessage(::watter::LogLevel::kInfo,  \
                                 __FILE__, __LINE__)
#define WATTER_LOG_WARNING                                      \
  ::watter::internal::LogMessage(::watter::LogLevel::kWarning,  \
                                 __FILE__, __LINE__)
#define WATTER_LOG_ERROR                                      \
  ::watter::internal::LogMessage(::watter::LogLevel::kError,  \
                                 __FILE__, __LINE__)

#endif  // WATTER_COMMON_LOGGING_H_
