#include "src/common/csv.h"

#include <fstream>
#include <sstream>

namespace watter {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

int CsvDocument::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status WriteCsv(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << QuoteField(row[i]);
    }
    out << '\n';
  };
  emit_row(doc.header);
  for (const auto& row : doc.rows) emit_row(row);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<CsvDocument> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && in.eof()) break;
    auto fields = SplitCsvLine(line);
    if (first) {
      doc.header = std::move(fields);
      first = false;
    } else {
      doc.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::IoError("empty csv file: " + path);
  return doc;
}

}  // namespace watter
