// Wall-clock stopwatch used to report per-order algorithm running time,
// matching the "Running Time(s)" metric of the paper's evaluation.
#ifndef WATTER_COMMON_STOPWATCH_H_
#define WATTER_COMMON_STOPWATCH_H_

#include <chrono>

namespace watter {

/// Accumulating stopwatch. Start/Stop may be called repeatedly; ElapsedSeconds
/// returns the running total (including the active interval, if any).
class Stopwatch {
 public:
  Stopwatch() = default;

  void Start() {
    if (running_) return;
    started_at_ = Clock::now();
    running_ = true;
  }

  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - started_at_;
    running_ = false;
  }

  void Reset() {
    accumulated_ = Duration::zero();
    running_ = false;
  }

  double ElapsedSeconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - started_at_;
    return std::chrono::duration<double>(total).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  Duration accumulated_ = Duration::zero();
  Clock::time_point started_at_;
  bool running_ = false;
};

/// RAII helper accumulating into a Stopwatch for the current scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch* watch) : watch_(watch) { watch_->Start(); }
  ~ScopedTimer() { watch_->Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch* watch_;
};

}  // namespace watter

#endif  // WATTER_COMMON_STOPWATCH_H_
