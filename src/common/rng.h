// Deterministic random number generation for simulations and benches.
//
// All randomness in the library flows through Rng so that every experiment is
// exactly reproducible from its seed. The engine is xoshiro256++ seeded via
// SplitMix64, which is fast, high quality, and has a tiny state.
#ifndef WATTER_COMMON_RNG_H_
#define WATTER_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace watter {

/// Deterministic pseudo-random generator (xoshiro256++).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int Poisson(double mean);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  int SampleIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// simulation component its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace watter

#endif  // WATTER_COMMON_RNG_H_
