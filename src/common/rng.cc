#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace watter {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    double draw = Normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
  }
  double threshold = std::exp(-mean);
  double product = 1.0;
  int count = -1;
  do {
    ++count;
    product *= Uniform();
  } while (product > threshold);
  return count;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::SampleIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  assert(total > 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace watter
