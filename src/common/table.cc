#include "src/common/table.h"

#include <cstdio>
#include <sstream>

namespace watter {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::ToString() const {
  size_t columns = headers_.size();
  for (const auto& row : rows_) {
    if (row.size() > columns) columns = row.size();
  }
  std::vector<size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < columns) os << "  ";
    }
    os << "\n";
  };
  emit(headers_);
  size_t rule = 0;
  for (size_t i = 0; i < columns; ++i) rule += widths[i] + (i + 1 < columns ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace watter
