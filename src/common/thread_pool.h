// ThreadPool: a small chunked fork-join executor for the hot loops.
//
// The platform's per-epoch check loop and the pool maintenance passes are
// data-parallel over disjoint slices of state (one pooled order, one graph
// entry, one worker candidate). This pool runs such loops across a fixed set
// of worker threads with dynamic chunk claiming: callers hand ParallelFor a
// half-open index range and a body; threads grab contiguous chunks off a
// shared atomic cursor until the range is drained. The caller thread
// participates, so a 1-thread pool degenerates to a plain serial loop with
// no synchronization.
//
// Determinism contract: the pool schedules *where* work runs, never *what*
// the result is. Callers that need thread-count-independent results must
// (a) write each item's result to its own slot (ParallelMap does this) and
// (b) fold the slots in index order on the calling thread afterwards — the
// "ordered reduction" used throughout src/pool/ and src/sim/. Under that
// pattern the output is a pure function of the input range, bitwise
// identical for any thread count.
//
// Nested ParallelFor calls — from inside a worker, or from a body running
// on the driving thread — run inline (serially); the pool never deadlocks
// on re-entry. One thread drives the pool at a time.
//
// Completion is chunk-claim based: a job is done when its index range is
// drained and every thread that *entered* the job has left it. Workers that
// wake too late to claim a chunk never join the job at all — they observe
// `job_active_ == false` under the mutex and go back to sleep without
// touching the (by then possibly destroyed) body. Small fan-outs therefore
// pay only the wake-up latency of the threads that actually participate,
// not a full-pool acknowledgement barrier per job.
#ifndef WATTER_COMMON_THREAD_POOL_H_
#define WATTER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace watter {

/// Fixed-size fork-join thread pool with chunked dynamic scheduling.
class ThreadPool {
 public:
  /// Creates a pool running loops on `num_threads` threads total (the
  /// caller counts as one, so `num_threads - 1` workers are spawned).
  /// `num_threads <= 0` resolves to the hardware concurrency.
  explicit ThreadPool(int num_threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in loops (always >= 1).
  int num_threads() const { return num_threads_; }

  /// Runs `body(begin, end)` over contiguous chunks covering [0, n), each
  /// chunk at most `grain` long, across the pool. Blocks until every index
  /// is processed. The body must not touch shared mutable state unless that
  /// state is sharded by index. The first exception thrown by any chunk is
  /// rethrown here after the loop drains.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Ordered-reduction helper: out[i] = fn(i) for i in [0, n). Each item
  /// writes only its own slot, so `out` is deterministic regardless of
  /// thread count; fold it in index order for a deterministic reduction.
  template <typename T, typename Fn>
  void ParallelMap(size_t n, size_t grain, std::vector<T>* out, Fn&& fn) {
    out->resize(n);
    ParallelFor(n, grain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) (*out)[i] = fn(i);
    });
  }

  /// The machine's hardware concurrency (>= 1).
  static int DefaultThreads();

 private:
  void WorkerLoop();
  /// Claims and runs chunks of the current job until the range drains.
  void RunChunks();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals a new job (or shutdown).
  std::condition_variable done_cv_;   // Signals the last participant leaving.
  bool stop_ = false;
  uint64_t job_id_ = 0;               // Bumped per ParallelFor; wakes workers.
  int participants_ = 0;              // Threads currently inside the job.
  // True while the driving thread has a job in flight; a ParallelFor called
  // from inside a body on that thread then runs inline, and late-waking
  // workers use it to tell a live job from one that already completed. The
  // pool supports one driving thread at a time (the simulation main loop).
  bool job_active_ = false;

  // Current job (valid while a ParallelFor is in flight).
  const std::function<void(size_t, size_t)>* body_ = nullptr;
  size_t n_ = 0;
  size_t grain_ = 1;
  std::atomic<size_t> next_{0};
  std::exception_ptr first_error_;
};

}  // namespace watter

#endif  // WATTER_COMMON_THREAD_POOL_H_
