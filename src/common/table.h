// Fixed-width ASCII table printer used by the bench harness to emit the
// rows/series corresponding to the paper's figures.
#ifndef WATTER_COMMON_TABLE_H_
#define WATTER_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace watter {

/// Collects rows of string cells and renders them with aligned columns.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double value, int precision = 3);

  /// Renders the table (header, separator, rows) as a string.
  std::string ToString() const;

  /// Prints the rendered table to stdout.
  void Print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace watter

#endif  // WATTER_COMMON_TABLE_H_
