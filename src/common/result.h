// Result<T>: a value-or-Status union, the exception-free analogue of
// StatusOr/arrow::Result used throughout the WATTER library.
#ifndef WATTER_COMMON_RESULT_H_
#define WATTER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace watter {

/// Holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds. Typical usage:
///
///   Result<Route> r = planner.PlanBest(orders);
///   if (!r.ok()) return r.status();
///   Use(*r);
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// Returns the carried status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Accessors for the stored value; require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is engaged.
};

}  // namespace watter

/// Evaluates an expression yielding Result<T>, assigns to `lhs` on success and
/// propagates the error Status otherwise.
#define WATTER_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto WATTER_CONCAT_(_watter_result, __LINE__) = (expr);   \
  if (!WATTER_CONCAT_(_watter_result, __LINE__).ok())       \
    return WATTER_CONCAT_(_watter_result, __LINE__).status(); \
  lhs = std::move(WATTER_CONCAT_(_watter_result, __LINE__)).value()

#define WATTER_CONCAT_IMPL_(a, b) a##b
#define WATTER_CONCAT_(a, b) WATTER_CONCAT_IMPL_(a, b)

#endif  // WATTER_COMMON_RESULT_H_
