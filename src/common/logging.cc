#include "src/common/logging.h"

#include <cstdio>

namespace watter {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to stay terse.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_min_level)) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace watter
