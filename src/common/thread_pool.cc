#include "src/common/thread_pool.h"

#include <algorithm>
#include <string>

#include "src/obs/trace.h"

namespace watter {
namespace {

// True on threads owned by some ThreadPool; nested loops run inline there.
thread_local bool t_inside_worker = false;

}  // namespace

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? DefaultThreads()
                                    : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] {
      obs::TraceRecorder::Global().SetCurrentThreadName(
          "pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  // Serial fast path: nothing to fan out to, a re-entrant call from a worker
  // or from a body on the calling thread (fanning out again would clobber
  // the single in-flight job), or a range too small to split.
  if (workers_.empty() || t_inside_worker || job_active_ || n <= grain) {
    body(0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    grain_ = grain;
    next_.store(0, std::memory_order_relaxed);
    participants_ = 1;  // The driving thread joins its own job.
    first_error_ = nullptr;
    ++job_id_;
    job_active_ = true;
  }
  work_cv_.notify_all();
  {
    WATTER_TRACE_SPAN_HOT("threadpool.job");
    RunChunks();  // The caller is a full participant.
  }
  // Chunk-claim completion: the job ends when the range is drained (the
  // caller's RunChunks return guarantees that) and every thread that joined
  // has left. Workers that never woke simply never joined — the job does
  // not wait for them.
  std::unique_lock<std::mutex> lock(mu_);
  --participants_;
  done_cv_.wait(lock, [this] { return participants_ == 0; });
  body_ = nullptr;
  job_active_ = false;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::RunChunks() {
  for (;;) {
    size_t begin = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (begin >= n_) return;
    size_t end = std::min(n_, begin + grain_);
    try {
      (*body_)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Drain the rest of the range without running it.
      next_.store(n_, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_worker = true;
  uint64_t seen_job = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
      if (stop_) return;
      seen_job = job_id_;
      // A worker waking after the job already completed must not join it:
      // the body reference may be gone. job_active_ flips false under this
      // mutex exactly when the last participant leaves.
      if (!job_active_) continue;
      ++participants_;
    }
    {
      WATTER_TRACE_SPAN_HOT("threadpool.job");
      RunChunks();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --participants_;
      if (participants_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace watter
