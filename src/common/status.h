// Status: exception-free error handling for the WATTER library.
//
// Library code never throws; fallible operations return a Status (or a
// Result<T>, see result.h). This mirrors the convention of production
// database engines (Arrow, RocksDB) where error propagation must be explicit
// and cheap.
#ifndef WATTER_COMMON_STATUS_H_
#define WATTER_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace watter {

/// Coarse error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInfeasible = 6,  ///< A planning request has no feasible solution.
  kIoError = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,  ///< A bounded wait ran out of time.
};

/// Returns a short human-readable name for a status code ("Ok", "NotFound"...).
const char* StatusCodeName(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy (two words + shared string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace watter

/// Propagates an error Status from the current function.
#define WATTER_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::watter::Status _watter_status = (expr);        \
    if (!_watter_status.ok()) return _watter_status; \
  } while (false)

/// Aborts if `expr` is not OK. For call sites where failure means a broken
/// invariant (not a recoverable condition) and the status would otherwise be
/// silently discarded.
#define WATTER_CHECK_OK(expr)                                           \
  do {                                                                  \
    ::watter::Status _watter_status = (expr);                           \
    if (!_watter_status.ok()) {                                         \
      ::std::fprintf(stderr, "WATTER_CHECK_OK failed at %s:%d: %s\n",   \
                     __FILE__, __LINE__,                                \
                     _watter_status.ToString().c_str());                \
      ::std::abort();                                                   \
    }                                                                   \
  } while (false)

/// Aborts with `message` if `cond` is false. The boolean sibling of
/// WATTER_CHECK_OK, for invariants that are not Status-valued.
#define WATTER_CHECK(cond, message)                                  \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::std::fprintf(stderr, "WATTER_CHECK failed at %s:%d: %s\n",   \
                     __FILE__, __LINE__, (message));                 \
      ::std::abort();                                                \
    }                                                                \
  } while (false)

#endif  // WATTER_COMMON_STATUS_H_
