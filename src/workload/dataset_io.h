// CSV persistence for generated datasets, so examples and benches can
// re-run the exact same workload across processes.
#ifndef WATTER_WORKLOAD_DATASET_IO_H_
#define WATTER_WORKLOAD_DATASET_IO_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/types.h"

namespace watter {

/// Writes orders as CSV (id,pickup,dropoff,riders,release,deadline,
/// wait_limit,shortest_cost).
Status SaveOrdersCsv(const std::string& path,
                     const std::vector<Order>& orders);

/// Reads orders back; validates column presence and numeric fields.
Result<std::vector<Order>> LoadOrdersCsv(const std::string& path);

/// Writes workers as CSV (id,location,capacity).
Status SaveWorkersCsv(const std::string& path,
                      const std::vector<Worker>& workers);

/// Reads workers back.
Result<std::vector<Worker>> LoadWorkersCsv(const std::string& path);

}  // namespace watter

#endif  // WATTER_WORKLOAD_DATASET_IO_H_
