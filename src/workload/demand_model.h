// Demand models approximating the *shape* of the paper's three datasets.
//
// The real datasets (NYC yellow taxi, Didi GAIA Chengdu/Xi'an) are not
// shipped; what the algorithms actually consume is the joint distribution of
// (pickup, dropoff, release time). The paper's own analysis attributes the
// behavioural differences between datasets to demand concentration: "orders
// in these two datasets [CDC, XIA] have more dispersed pick-up and drop-off
// locations compared to the NYC dataset, where most orders are concentrated
// in the Manhattan area". The presets below encode exactly that axis, plus
// morning/evening rush-hour arrival curves.
#ifndef WATTER_WORKLOAD_DEMAND_MODEL_H_
#define WATTER_WORKLOAD_DEMAND_MODEL_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/geo/point.h"

namespace watter {

/// A Gaussian demand hotspot in city coordinates (fractions of city size).
struct Hotspot {
  Point center;        ///< In [0,1]^2, scaled to the city at sampling time.
  double sigma = 0.1;  ///< Std-dev as a fraction of the city diagonal.
  double weight = 1.0;
};

/// Spatio-temporal demand description.
struct DemandModel {
  std::string name;
  std::vector<Hotspot> pickup_spots;
  std::vector<Hotspot> dropoff_spots;
  /// 24 relative arrival-rate multipliers (one per hour of day).
  std::vector<double> hourly_rate;
  /// Minimum trip length in grid cells (Euclidean) to avoid degenerate
  /// zero-length orders.
  double min_trip_cells = 3.0;
};

/// Dataset presets mirroring the paper's evaluation cities.
enum class DatasetKind {
  kNyc,  ///< Concentrated core (Manhattan-like), largest scale.
  kCdc,  ///< Dispersed multi-center demand (Chengdu-like).
  kXia,  ///< Dispersed, smaller scale (Xi'an-like).
};

/// Human-readable dataset name ("NYC", "CDC", "XIA").
const char* DatasetName(DatasetKind kind);

/// Returns the preset demand model of a dataset.
DemandModel MakeDemandModel(DatasetKind kind);

/// Samples a point from a hotspot mixture, clamped into [0,w-1]x[0,h-1].
Point SampleFromHotspots(const std::vector<Hotspot>& spots, int width,
                         int height, Rng* rng);

/// Samples a time-of-day (seconds in [0, 86400)) from the hourly curve.
double SampleTimeOfDay(const std::vector<double>& hourly_rate, Rng* rng);

}  // namespace watter

#endif  // WATTER_WORKLOAD_DEMAND_MODEL_H_
