#include "src/workload/dataset_io.h"

#include <cstdlib>

#include "src/common/csv.h"

namespace watter {
namespace {

Result<double> ParseDouble(const std::string& field) {
  char* end = nullptr;
  double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + field + "'");
  }
  return value;
}

}  // namespace

Status SaveOrdersCsv(const std::string& path,
                     const std::vector<Order>& orders) {
  CsvDocument doc;
  doc.header = {"id",       "pickup",    "dropoff",     "riders",
                "release",  "deadline",  "wait_limit",  "shortest_cost"};
  doc.rows.reserve(orders.size());
  for (const Order& o : orders) {
    doc.rows.push_back({std::to_string(o.id), std::to_string(o.pickup),
                        std::to_string(o.dropoff), std::to_string(o.riders),
                        std::to_string(o.release), std::to_string(o.deadline),
                        std::to_string(o.wait_limit),
                        std::to_string(o.shortest_cost)});
  }
  return WriteCsv(path, doc);
}

Result<std::vector<Order>> LoadOrdersCsv(const std::string& path) {
  auto doc = ReadCsv(path);
  if (!doc.ok()) return doc.status();
  const char* columns[] = {"id",      "pickup",   "dropoff",
                           "riders",  "release",  "deadline",
                           "wait_limit", "shortest_cost"};
  int index[8];
  for (int c = 0; c < 8; ++c) {
    index[c] = doc->ColumnIndex(columns[c]);
    if (index[c] < 0) {
      return Status::InvalidArgument(std::string("missing column: ") +
                                     columns[c]);
    }
  }
  std::vector<Order> orders;
  orders.reserve(doc->rows.size());
  for (const auto& row : doc->rows) {
    if (row.size() < 8) {
      return Status::InvalidArgument("short row in " + path);
    }
    double fields[8];
    for (int c = 0; c < 8; ++c) {
      auto value = ParseDouble(row[index[c]]);
      if (!value.ok()) return value.status();
      fields[c] = *value;
    }
    Order order;
    order.id = static_cast<OrderId>(fields[0]);
    order.pickup = static_cast<NodeId>(fields[1]);
    order.dropoff = static_cast<NodeId>(fields[2]);
    order.riders = static_cast<int>(fields[3]);
    order.release = fields[4];
    order.deadline = fields[5];
    order.wait_limit = fields[6];
    order.shortest_cost = fields[7];
    orders.push_back(order);
  }
  return orders;
}

Status SaveWorkersCsv(const std::string& path,
                      const std::vector<Worker>& workers) {
  CsvDocument doc;
  doc.header = {"id", "location", "capacity"};
  doc.rows.reserve(workers.size());
  for (const Worker& w : workers) {
    doc.rows.push_back({std::to_string(w.id), std::to_string(w.location),
                        std::to_string(w.capacity)});
  }
  return WriteCsv(path, doc);
}

Result<std::vector<Worker>> LoadWorkersCsv(const std::string& path) {
  auto doc = ReadCsv(path);
  if (!doc.ok()) return doc.status();
  int id_col = doc->ColumnIndex("id");
  int loc_col = doc->ColumnIndex("location");
  int cap_col = doc->ColumnIndex("capacity");
  if (id_col < 0 || loc_col < 0 || cap_col < 0) {
    return Status::InvalidArgument("missing worker columns in " + path);
  }
  std::vector<Worker> workers;
  workers.reserve(doc->rows.size());
  for (const auto& row : doc->rows) {
    if (row.size() < 3) return Status::InvalidArgument("short row in " + path);
    auto id = ParseDouble(row[id_col]);
    auto loc = ParseDouble(row[loc_col]);
    auto cap = ParseDouble(row[cap_col]);
    if (!id.ok()) return id.status();
    if (!loc.ok()) return loc.status();
    if (!cap.ok()) return cap.status();
    Worker worker;
    worker.id = static_cast<WorkerId>(*id);
    worker.location = static_cast<NodeId>(*loc);
    worker.capacity = static_cast<int>(*cap);
    workers.push_back(worker);
  }
  return workers;
}

}  // namespace watter
