#include "src/workload/scenario.h"

#include <algorithm>
#include <cmath>

namespace watter {
namespace {

/// Snaps a continuous city point to the nearest road node.
NodeId SnapToNode(const City& city, Point p) {
  int col = static_cast<int>(std::lround(p.x));
  int row = static_cast<int>(std::lround(p.y));
  col = std::clamp(col, 0, city.width - 1);
  row = std::clamp(row, 0, city.height - 1);
  return city.NodeAt(row, col);
}

}  // namespace

Result<Scenario> GenerateScenario(const WorkloadOptions& options) {
  if (options.num_orders <= 0 || options.num_workers <= 0) {
    return Status::InvalidArgument("need positive order and worker counts");
  }
  if (options.tau <= 1.0) {
    return Status::InvalidArgument(
        "tau must exceed 1 (deadline below the direct ride time)");
  }
  if (options.eta <= 0.0) {
    return Status::InvalidArgument("eta must be positive");
  }
  if (options.max_riders < 1 || options.max_riders > options.max_capacity) {
    return Status::InvalidArgument(
        "max_riders must be in [1, max_capacity]");
  }

  Scenario scenario;
  scenario.options = options;

  CityOptions city_options;
  city_options.width = options.city_width;
  city_options.height = options.city_height;
  city_options.cell_seconds = options.cell_seconds;
  city_options.seed =
      options.city_seed != 0 ? options.city_seed : options.seed * 7919 + 13;
  auto city = GenerateCity(city_options);
  if (!city.ok()) return city.status();
  scenario.city = std::make_shared<City>(std::move(city).value());

  auto oracle = BuildOracle(scenario.city->graph, options.oracle, options.geo);
  if (!oracle.ok()) return oracle.status();
  scenario.oracle = std::move(oracle).value();

  DemandModel model = MakeDemandModel(options.dataset);
  Rng rng(options.seed);

  // Restrict the hourly curve to the simulated window by rejection.
  double window_start = options.start_hour * 3600.0;
  double window_end = window_start + options.duration;

  scenario.orders.reserve(options.num_orders);
  for (int i = 0; i < options.num_orders; ++i) {
    Order order;
    order.id = i + 1;
    // Paper default: each record is a single-passenger order.
    order.riders = options.max_riders <= 1
                       ? 1
                       : static_cast<int>(
                             rng.UniformInt(1, options.max_riders));
    // Release time: time-of-day sample conditioned into the window.
    double tod;
    int guard = 0;
    do {
      tod = SampleTimeOfDay(model.hourly_rate, &rng);
      if (++guard > 512) {
        tod = window_start +
              rng.Uniform() * (window_end - window_start);
        break;
      }
    } while (tod < window_start || tod >= window_end);
    order.release = tod;

    // Origin-destination pair with a minimum trip length.
    for (int attempt = 0; attempt < 256; ++attempt) {
      Point pickup = SampleFromHotspots(model.pickup_spots,
                                        scenario.city->width,
                                        scenario.city->height, &rng);
      Point dropoff = SampleFromHotspots(model.dropoff_spots,
                                         scenario.city->width,
                                         scenario.city->height, &rng);
      if (EuclideanDistance(pickup, dropoff) < model.min_trip_cells) {
        continue;
      }
      order.pickup = SnapToNode(*scenario.city, pickup);
      order.dropoff = SnapToNode(*scenario.city, dropoff);
      if (order.pickup == order.dropoff) continue;
      double cost = scenario.oracle->Cost(order.pickup, order.dropoff);
      if (cost == kInfCost || cost <= 0.0) continue;
      order.shortest_cost = cost;
      break;
    }
    if (order.shortest_cost <= 0.0) {
      return Status::Internal("failed to sample a valid trip");
    }
    order.deadline = order.release + options.tau * order.shortest_cost;
    order.wait_limit = options.eta * order.shortest_cost;
    scenario.orders.push_back(order);
  }
  std::sort(scenario.orders.begin(), scenario.orders.end(),
            [](const Order& a, const Order& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.id < b.id;
            });

  scenario.workers.reserve(options.num_workers);
  for (int j = 0; j < options.num_workers; ++j) {
    Worker worker;
    worker.id = j + 1;
    Point start = SampleFromHotspots(model.pickup_spots,
                                     scenario.city->width,
                                     scenario.city->height, &rng);
    worker.location = SnapToNode(*scenario.city, start);
    worker.capacity =
        static_cast<int>(rng.UniformInt(2, std::max(2, options.max_capacity)));
    worker.busy = false;
    worker.available_at = 0.0;
    scenario.workers.push_back(worker);
  }
  return scenario;
}

}  // namespace watter
