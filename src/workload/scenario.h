// Scenario: a fully materialized simulation input — city, oracle, orders and
// workers — generated per the paper's experimental setup (Section VII-A).
#ifndef WATTER_WORKLOAD_SCENARIO_H_
#define WATTER_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/types.h"
#include "src/geo/city_generator.h"
#include "src/workload/demand_model.h"

namespace watter {

/// Knobs mirroring Table III (defaults in italics there: n base, m=5000,
/// tau=1.6, Kw=4, alpha=beta=1) plus the scale-down factor documented in
/// DESIGN.md substitution 3.
struct WorkloadOptions {
  DatasetKind dataset = DatasetKind::kCdc;
  int num_orders = 4000;   ///< n (scaled down from the paper's 30k-125k).
  int num_workers = 400;   ///< m (scaled from 3k-6k, keeping n/m ratios).
  double tau = 1.6;        ///< Deadline scale: deadline = t + tau * shortest.
  double eta = 0.8;        ///< Watching window: wait_limit = eta * shortest.
  int max_capacity = 4;    ///< Kw; vehicle capacity ~ U[2, Kw].
  /// Riders per order are sampled uniformly from [1, max_riders]. The paper
  /// treats each record as one passenger (max_riders = 1); larger values
  /// exercise the planner's capacity constraints with party bookings.
  int max_riders = 1;
  double duration = 4.0 * 3600.0;  ///< Arrival window (seconds).
  /// Hour of day at which the window starts (captures rush-hour effects).
  double start_hour = 16.0;
  /// City geometry.
  int city_width = 32;
  int city_height = 32;
  double cell_seconds = 60.0;
  OracleKind oracle = OracleKind::kMatrix;
  /// Batch backend for CH oracles (ignored by kMatrix/kDijkstra). Bucket and
  /// per-query backends return bitwise-identical costs, so this only moves
  /// runtime, never metrics.
  GeoBackend geo = GeoBackend::kBucket;
  /// Threads the platform's check loop and pool maintenance run on when
  /// simulating this scenario (results are thread-count-independent).
  /// 1 = serial; 0 = use all hardware threads. SimOptions can override.
  int num_threads = 1;
  /// Geographic shards for the batched commit pass when simulating this
  /// scenario (results are shard-count-independent; see
  /// SimOptions::num_shards). 1 = unsharded. SimOptions can override.
  int num_shards = 1;
  uint64_t seed = 42;
  /// Road-network seed; 0 derives it from `seed`. Fix it to share one city
  /// across several demand "days" (e.g. RL training vs evaluation runs).
  uint64_t city_seed = 0;
  /// Chrome trace-event JSON output (CLI `--trace`): when non-empty, the
  /// platform arms the global TraceRecorder for this run and exports the
  /// accumulated spans here at the end (docs/OBSERVABILITY.md). Empty
  /// disables tracing entirely. Purely observational: metrics are bitwise
  /// identical either way. SimOptions can override.
  std::string trace_path;
  /// Per-round timeline output (CLI `--timeline`): one RoundSample per
  /// check round, written here as JSON (or CSV when the path ends in
  /// `.csv`). Same no-perturbation contract as trace_path. SimOptions can
  /// override.
  std::string timeline_path;
  /// Deterministic fault-injection spec (CLI `--faults`;
  /// docs/ROBUSTNESS.md grammar, e.g. "dropouts=5;brownouts=2;seed=7").
  /// Empty disables fault injection entirely — the platform then runs
  /// byte-for-byte as before the robustness subsystem existed. SimOptions
  /// can override.
  std::string faults;
  /// Per-round propose work budget in deterministic work units (candidate
  /// probes + planner plans; CLI `--budget`). When a round's pooled orders
  /// would exceed it, the least-urgent tail (latest-dispatch-then-id order)
  /// is shed to the next round. 0 = unlimited. SimOptions can override.
  int64_t round_work_budget = 0;
};

/// A ready-to-run simulation input. The city is heap-pinned so oracles that
/// reference the graph stay valid across moves.
struct Scenario {
  std::shared_ptr<City> city;
  std::unique_ptr<TravelTimeOracle> oracle;
  std::vector<Order> orders;    ///< Sorted by release time.
  std::vector<Worker> workers;
  WorkloadOptions options;
};

/// Generates a deterministic scenario from `options` (same seed, same
/// scenario). Orders follow the dataset's hotspot + rush-hour model; worker
/// start locations are sampled from the pickup distribution and capacities
/// uniformly from [2, Kw], as in the paper.
Result<Scenario> GenerateScenario(const WorkloadOptions& options);

}  // namespace watter

#endif  // WATTER_WORKLOAD_SCENARIO_H_
