#include "src/workload/demand_model.h"

#include <algorithm>
#include <cmath>

namespace watter {
namespace {

/// Double-peaked rush-hour curve: low at night, peaks ~8h and ~18h.
std::vector<double> RushHourCurve(double peak_sharpness) {
  std::vector<double> curve(24);
  for (int hour = 0; hour < 24; ++hour) {
    double morning = std::exp(-(hour - 8.0) * (hour - 8.0) /
                              (2.0 * peak_sharpness * peak_sharpness));
    double evening = std::exp(-(hour - 18.0) * (hour - 18.0) /
                              (2.0 * peak_sharpness * peak_sharpness));
    curve[hour] = 0.15 + morning + 0.9 * evening;
  }
  return curve;
}

}  // namespace

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kNyc:
      return "NYC";
    case DatasetKind::kCdc:
      return "CDC";
    case DatasetKind::kXia:
      return "XIA";
  }
  return "?";
}

DemandModel MakeDemandModel(DatasetKind kind) {
  DemandModel model;
  model.name = DatasetName(kind);
  switch (kind) {
    case DatasetKind::kNyc:
      // Manhattan-like: one dominant dense core plus two satellites; trips
      // overwhelmingly start and end near the core.
      model.pickup_spots = {
          {{0.5, 0.45}, 0.07, 0.70},
          {{0.35, 0.7}, 0.06, 0.18},
          {{0.7, 0.25}, 0.08, 0.12},
      };
      model.dropoff_spots = {
          {{0.5, 0.5}, 0.09, 0.62},
          {{0.3, 0.75}, 0.07, 0.20},
          {{0.75, 0.2}, 0.09, 0.18},
      };
      model.hourly_rate = RushHourCurve(2.0);
      break;
    case DatasetKind::kCdc:
      // Chengdu-like: several comparable centers spread across the city.
      model.pickup_spots = {
          {{0.25, 0.25}, 0.12, 0.3},
          {{0.75, 0.3}, 0.12, 0.25},
          {{0.3, 0.75}, 0.13, 0.25},
          {{0.7, 0.7}, 0.12, 0.2},
      };
      model.dropoff_spots = {
          {{0.5, 0.5}, 0.16, 0.34},
          {{0.2, 0.7}, 0.13, 0.22},
          {{0.8, 0.65}, 0.14, 0.22},
          {{0.7, 0.2}, 0.13, 0.22},
      };
      model.hourly_rate = RushHourCurve(2.5);
      break;
    case DatasetKind::kXia:
      // Xi'an-like: dispersed demand with a faint old-town center.
      model.pickup_spots = {
          {{0.5, 0.5}, 0.2, 0.4},
          {{0.2, 0.3}, 0.15, 0.2},
          {{0.8, 0.4}, 0.15, 0.2},
          {{0.45, 0.8}, 0.16, 0.2},
      };
      model.dropoff_spots = {
          {{0.5, 0.45}, 0.22, 0.4},
          {{0.25, 0.75}, 0.16, 0.3},
          {{0.75, 0.75}, 0.16, 0.3},
      };
      model.hourly_rate = RushHourCurve(3.0);
      break;
  }
  return model;
}

Point SampleFromHotspots(const std::vector<Hotspot>& spots, int width,
                         int height, Rng* rng) {
  std::vector<double> weights;
  weights.reserve(spots.size());
  for (const Hotspot& spot : spots) weights.push_back(spot.weight);
  const Hotspot& spot = spots[rng->SampleIndex(weights)];
  double diagonal = std::sqrt(static_cast<double>(width) * width +
                              static_cast<double>(height) * height);
  double x = rng->Normal(spot.center.x * (width - 1),
                         spot.sigma * diagonal);
  double y = rng->Normal(spot.center.y * (height - 1),
                         spot.sigma * diagonal);
  return Point{std::clamp(x, 0.0, static_cast<double>(width - 1)),
               std::clamp(y, 0.0, static_cast<double>(height - 1))};
}

double SampleTimeOfDay(const std::vector<double>& hourly_rate, Rng* rng) {
  int hour = rng->SampleIndex(hourly_rate);
  return 3600.0 * (hour + rng->Uniform());
}

}  // namespace watter
