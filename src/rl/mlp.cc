#include "src/rl/mlp.h"

#include <cassert>
#include <cmath>

#include "src/common/rng.h"

namespace watter {

Mlp::Mlp(std::vector<int> layer_sizes, uint64_t seed)
    : sizes_(std::move(layer_sizes)) {
  assert(sizes_.size() >= 2 && sizes_.back() == 1);
  size_t total = 0;
  for (size_t layer = 0; layer + 1 < sizes_.size(); ++layer) {
    total += static_cast<size_t>(sizes_[layer]) * sizes_[layer + 1] +
             sizes_[layer + 1];
  }
  params_.resize(total);
  Rng rng(seed);
  size_t cursor = 0;
  for (size_t layer = 0; layer + 1 < sizes_.size(); ++layer) {
    int fan_in = sizes_[layer];
    int fan_out = sizes_[layer + 1];
    double scale = std::sqrt(2.0 / fan_in);  // He initialization.
    for (int i = 0; i < fan_in * fan_out; ++i) {
      params_[cursor++] = static_cast<float>(rng.Normal(0.0, scale));
    }
    for (int i = 0; i < fan_out; ++i) params_[cursor++] = 0.0f;
  }
  activations_.resize(sizes_.size());
  for (size_t layer = 0; layer < sizes_.size(); ++layer) {
    activations_[layer].resize(static_cast<size_t>(sizes_[layer]));
  }
}

double Mlp::ForwardInternal(std::span<const float> input) const {
  assert(static_cast<int>(input.size()) == sizes_.front());
  std::copy(input.begin(), input.end(), activations_[0].begin());
  size_t cursor = 0;
  for (size_t layer = 0; layer + 1 < sizes_.size(); ++layer) {
    int fan_in = sizes_[layer];
    int fan_out = sizes_[layer + 1];
    const float* weights = &params_[cursor];
    const float* bias = &params_[cursor + static_cast<size_t>(fan_in) *
                                              fan_out];
    const std::vector<float>& in = activations_[layer];
    std::vector<float>& out = activations_[layer + 1];
    bool is_output = layer + 2 == sizes_.size();
    for (int o = 0; o < fan_out; ++o) {
      double sum = bias[o];
      const float* row = &weights[static_cast<size_t>(o) * fan_in];
      for (int i = 0; i < fan_in; ++i) sum += row[i] * in[i];
      out[o] = is_output ? static_cast<float>(sum)
                         : static_cast<float>(sum > 0.0 ? sum : 0.0);
    }
    cursor += static_cast<size_t>(fan_in) * fan_out + fan_out;
  }
  return activations_.back()[0];
}

double Mlp::Forward(std::span<const float> input) const {
  return ForwardInternal(input);
}

double Mlp::ForwardBackward(std::span<const float> input, double dloss_dout,
                            std::vector<float>* grads) const {
  assert(grads->size() == params_.size());
  double output = ForwardInternal(input);

  // Backward pass: delta for the top layer is dLoss/dOutput.
  std::vector<float> delta = {static_cast<float>(dloss_dout)};
  // Parameter offsets per layer (recomputed going backwards).
  std::vector<size_t> offsets(sizes_.size() - 1);
  size_t cursor = 0;
  for (size_t layer = 0; layer + 1 < sizes_.size(); ++layer) {
    offsets[layer] = cursor;
    cursor += static_cast<size_t>(sizes_[layer]) * sizes_[layer + 1] +
              sizes_[layer + 1];
  }
  for (int layer = static_cast<int>(sizes_.size()) - 2; layer >= 0; --layer) {
    int fan_in = sizes_[layer];
    int fan_out = sizes_[layer + 1];
    const float* weights = &params_[offsets[layer]];
    float* weight_grads = &(*grads)[offsets[layer]];
    float* bias_grads =
        &(*grads)[offsets[layer] + static_cast<size_t>(fan_in) * fan_out];
    const std::vector<float>& in = activations_[layer];
    std::vector<float> next_delta(fan_in, 0.0f);
    for (int o = 0; o < fan_out; ++o) {
      float d = delta[o];
      if (d == 0.0f) continue;
      const float* row = &weights[static_cast<size_t>(o) * fan_in];
      float* grad_row = &weight_grads[static_cast<size_t>(o) * fan_in];
      for (int i = 0; i < fan_in; ++i) {
        grad_row[i] += d * in[i];
        next_delta[i] += d * row[i];
      }
      bias_grads[o] += d;
    }
    if (layer > 0) {
      // ReLU derivative at the previous layer's post-activation.
      const std::vector<float>& activation = activations_[layer];
      for (int i = 0; i < fan_in; ++i) {
        if (activation[i] <= 0.0f) next_delta[i] = 0.0f;
      }
    }
    delta = std::move(next_delta);
  }
  return output;
}

}  // namespace watter
