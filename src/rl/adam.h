// Adam optimizer over a flat parameter vector.
#ifndef WATTER_RL_ADAM_H_
#define WATTER_RL_ADAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace watter {

/// Standard Adam (Kingma & Ba, 2015) with bias correction.
class AdamOptimizer {
 public:
  AdamOptimizer(size_t dimension, double learning_rate = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8)
      : learning_rate_(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon),
        first_moment_(dimension, 0.0f),
        second_moment_(dimension, 0.0f) {}

  /// Applies one update; `params` and `grads` must have the constructed
  /// dimension. Gradients are not modified.
  void Step(std::vector<float>* params, const std::vector<float>& grads);

  int64_t step_count() const { return step_; }
  double learning_rate() const { return learning_rate_; }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t step_ = 0;
  std::vector<float> first_moment_;
  std::vector<float> second_moment_;
};

}  // namespace watter

#endif  // WATTER_RL_ADAM_H_
