#include "src/rl/model_io.h"

#include <fstream>
#include <sstream>

namespace watter {
namespace {

constexpr char kMagic[] = "watter-expect-model";
constexpr int kVersion = 1;

}  // namespace

Status SaveExpectModel(const std::string& path, const ExpectModel& model) {
  if (model.value == nullptr || model.mixture == nullptr ||
      model.featurizer == nullptr) {
    return Status::InvalidArgument("model is incomplete; train it first");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.precision(17);
  out << kMagic << " " << kVersion << "\n";
  out << "grid_cells " << model.featurizer->grid_cells() << "\n";
  out << "extra_time_mean " << model.extra_time_mean << "\n";
  out << "experiences " << model.experiences << "\n";

  out << "mixture " << model.mixture->num_components() << "\n";
  for (const GaussianComponent& c : model.mixture->components()) {
    out << c.weight << " " << c.mean << " " << c.variance << "\n";
  }

  const auto& sizes = model.value->layer_sizes();
  out << "layers " << sizes.size();
  for (int size : sizes) out << " " << size;
  out << "\n";
  out << "params " << model.value->param_count() << "\n";
  const auto& params = model.value->params();
  for (size_t i = 0; i < params.size(); ++i) {
    out << params[i] << (i % 8 == 7 ? "\n" : " ");
  }
  out << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<ExpectModel> LoadExpectModel(const std::string& path,
                                    std::shared_ptr<City> city) {
  if (city == nullptr) {
    return Status::InvalidArgument("a city is required to bind the model");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != kMagic) {
    return Status::InvalidArgument("not a watter-expect model: " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model version " +
                                   std::to_string(version));
  }

  ExpectModel model;
  model.city = std::move(city);

  std::string key;
  int grid_cells = 0;
  in >> key >> grid_cells;
  if (key != "grid_cells" || grid_cells <= 0) {
    return Status::InvalidArgument("malformed grid_cells field");
  }
  in >> key >> model.extra_time_mean;
  if (key != "extra_time_mean") {
    return Status::InvalidArgument("malformed extra_time_mean field");
  }
  in >> key >> model.experiences;
  if (key != "experiences") {
    return Status::InvalidArgument("malformed experiences field");
  }

  int components = 0;
  in >> key >> components;
  if (key != "mixture" || components <= 0) {
    return Status::InvalidArgument("malformed mixture header");
  }
  std::vector<GaussianComponent> comps(components);
  for (GaussianComponent& c : comps) {
    in >> c.weight >> c.mean >> c.variance;
  }
  if (!in) return Status::InvalidArgument("truncated mixture block");
  auto mixture = GaussianMixture::Create(std::move(comps));
  if (!mixture.ok()) return mixture.status();
  model.mixture =
      std::make_unique<GaussianMixture>(std::move(mixture).value());

  size_t layer_count = 0;
  in >> key >> layer_count;
  if (key != "layers" || layer_count < 2) {
    return Status::InvalidArgument("malformed layers header");
  }
  std::vector<int> sizes(layer_count);
  for (int& size : sizes) in >> size;
  int param_count = 0;
  in >> key >> param_count;
  if (key != "params" || param_count <= 0) {
    return Status::InvalidArgument("malformed params header");
  }

  model.featurizer =
      std::make_unique<Featurizer>(&model.city->graph, grid_cells);
  if (sizes.front() != model.featurizer->feature_size()) {
    return Status::InvalidArgument(
        "model input size does not match the featurizer geometry");
  }
  model.value = std::make_unique<Mlp>(sizes, /*seed=*/0);
  if (model.value->param_count() != param_count) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (float& p : model.value->params()) in >> p;
  if (!in) return Status::InvalidArgument("truncated parameter block");
  return model;
}

}  // namespace watter
