// ValueLearner: DQN-style estimation of the state-value function (VI-B).
//
// Two networks (main V and a delayed target V-hat), replay memory, and the
// combined loss of the paper:
//   loss = omega * loss_td + (1 - omega) * loss_tg,
//   loss_td = (r + gamma^dt * V_hat(s') - V(s))^2   [wait transitions]
//           = (r - V(s))^2                          [terminal transitions]
//   loss_tg = (p - theta* - V(s))^2                 [align with Section V]
#ifndef WATTER_RL_VALUE_LEARNER_H_
#define WATTER_RL_VALUE_LEARNER_H_

#include <memory>
#include <vector>

#include "src/rl/adam.h"
#include "src/rl/featurizer.h"
#include "src/rl/mlp.h"
#include "src/rl/replay_memory.h"

namespace watter {

/// Learner hyperparameters.
struct LearnerOptions {
  std::vector<int> hidden_layers = {64, 32};
  double learning_rate = 1e-3;
  double gamma = 0.99;        ///< Discount per time slot.
  double omega = 0.5;         ///< TD-vs-target loss mix.
  double time_slot = 10.0;    ///< dt (seconds per slot).
  int batch_size = 64;
  int target_sync_interval = 200;  ///< Steps between target-network copies.
  size_t replay_capacity = 1 << 18;
  uint64_t seed = 1;
};

/// Owns the networks and training loop.
class ValueLearner {
 public:
  ValueLearner(const Featurizer* featurizer, LearnerOptions options);

  ReplayMemory& replay() { return replay_; }

  /// Runs one minibatch SGD step; returns the mean combined loss (0 when
  /// the replay memory is empty).
  double TrainStep();

  /// Runs `epochs` passes of size replay.size()/batch_size each.
  void Train(int epochs);

  /// V(s) under the main network.
  double Value(const CompactState& state) const;

  const Mlp& network() const { return main_; }
  Mlp& mutable_network() { return main_; }
  int64_t steps() const { return steps_; }

 private:
  const Featurizer* featurizer_;
  LearnerOptions options_;
  Mlp main_;
  Mlp target_;
  AdamOptimizer adam_;
  ReplayMemory replay_;
  Rng rng_;
  int64_t steps_ = 0;
  // Scratch buffers.
  mutable std::vector<float> features_;
  std::vector<float> grads_;
};

}  // namespace watter

#endif  // WATTER_RL_VALUE_LEARNER_H_
