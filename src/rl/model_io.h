// Persistence for trained WATTER-expect models.
//
// A deployed dispatch platform trains offline (Section VI) and serves
// online; the artifact crossing that boundary is the value network plus the
// fitted mixture and the featurizer geometry. The format is a small
// versioned text file: human-inspectable, portable, and independent of
// float endianness.
#ifndef WATTER_RL_MODEL_IO_H_
#define WATTER_RL_MODEL_IO_H_

#include <string>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/rl/trainer.h"

namespace watter {

/// Serializes `model` (network architecture + parameters, GMM components,
/// featurizer grid/time-slot) to `path`.
Status SaveExpectModel(const std::string& path, const ExpectModel& model);

/// Restores a model saved by SaveExpectModel. The caller supplies the city
/// the model will run against (node geometry must match what it was trained
/// on; for generated cities this means the same city_seed and dimensions).
Result<ExpectModel> LoadExpectModel(const std::string& path,
                                    std::shared_ptr<City> city);

}  // namespace watter

#endif  // WATTER_RL_MODEL_IO_H_
