#include "src/rl/adam.h"

#include <cassert>
#include <cmath>

namespace watter {

void AdamOptimizer::Step(std::vector<float>* params,
                         const std::vector<float>& grads) {
  assert(params->size() == first_moment_.size());
  assert(grads.size() == first_moment_.size());
  ++step_;
  double correction1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  double correction2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (size_t i = 0; i < params->size(); ++i) {
    double g = grads[i];
    first_moment_[i] =
        static_cast<float>(beta1_ * first_moment_[i] + (1.0 - beta1_) * g);
    second_moment_[i] = static_cast<float>(
        beta2_ * second_moment_[i] + (1.0 - beta2_) * g * g);
    double m_hat = first_moment_[i] / correction1;
    double v_hat = second_moment_[i] / correction2;
    (*params)[i] -= static_cast<float>(
        learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_));
  }
}

}  // namespace watter
