// Replay memory of MDP transitions (Section VI-B).
//
// Each waiting order is an agent; its decision phases yield wait transitions
// (reward -dt, discounted future) and a terminal dispatch (reward p - t_d)
// or expiry (future value 0). Experiences store compact states; the full
// feature vectors are materialized at training time.
#ifndef WATTER_RL_REPLAY_MEMORY_H_
#define WATTER_RL_REPLAY_MEMORY_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/rl/featurizer.h"

namespace watter {

/// One MDP transition.
struct Experience {
  CompactState state;
  int action = 0;            ///< 1 = dispatch, 0 = wait.
  double reward = 0.0;       ///< p - t_d for dispatch; -(elapsed) for wait.
  double elapsed = 0.0;      ///< Seconds between decisions (discounting).
  bool terminal = false;     ///< No successor (dispatch or expiry).
  CompactState next_state;   ///< Valid when !terminal.
  double penalty = 0.0;      ///< p(i) of the order.
  double theta_star = 0.0;   ///< GMM-optimal threshold for the target loss.
};

/// Bounded ring buffer with uniform sampling.
class ReplayMemory {
 public:
  explicit ReplayMemory(size_t capacity) : capacity_(capacity) {}

  void Add(Experience experience) {
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(experience));
    } else {
      buffer_[write_cursor_ % capacity_] = std::move(experience);
    }
    ++write_cursor_;
  }

  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  size_t capacity() const { return capacity_; }

  /// Uniformly samples `count` experiences (with replacement).
  std::vector<const Experience*> Sample(size_t count, Rng* rng) const {
    std::vector<const Experience*> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count && !buffer_.empty(); ++i) {
      batch.push_back(&buffer_[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(buffer_.size()) - 1))]);
    }
    return batch;
  }

  const Experience& at(size_t index) const { return buffer_[index]; }

 private:
  size_t capacity_;
  size_t write_cursor_ = 0;
  std::vector<Experience> buffer_;
};

}  // namespace watter

#endif  // WATTER_RL_REPLAY_MEMORY_H_
