// Minimal multi-layer perceptron used as the value function V(s) of the
// paper's MDP (Section VI-B). Fully-connected ReLU layers with a linear
// scalar head; flat parameter storage so the Adam optimizer and the target-
// network copy are trivial.
#ifndef WATTER_RL_MLP_H_
#define WATTER_RL_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

namespace watter {

/// A feed-forward ReLU network with a scalar linear output.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., 1}. He-initialized from `seed`.
  Mlp(std::vector<int> layer_sizes, uint64_t seed);

  int input_size() const { return sizes_.front(); }
  int param_count() const { return static_cast<int>(params_.size()); }

  /// Evaluates V(input). `input` must have input_size() entries.
  double Forward(std::span<const float> input) const;

  /// Forward pass plus backpropagation of dLoss/dOutput, *accumulating*
  /// parameter gradients into `grads` (sized param_count()). Returns the
  /// forward output.
  double ForwardBackward(std::span<const float> input, double dloss_dout,
                         std::vector<float>* grads) const;

  std::vector<float>& params() { return params_; }
  const std::vector<float>& params() const { return params_; }

  /// Target-network style hard copy; architectures must match.
  void CopyParamsFrom(const Mlp& other) { params_ = other.params_; }

  const std::vector<int>& layer_sizes() const { return sizes_; }

 private:
  /// Runs the forward pass, filling per-layer activations into scratch
  /// buffers; returns the scalar output.
  double ForwardInternal(std::span<const float> input) const;

  std::vector<int> sizes_;
  std::vector<float> params_;
  // Scratch activations (pre- and post-ReLU) reused across calls.
  mutable std::vector<std::vector<float>> activations_;
};

}  // namespace watter

#endif  // WATTER_RL_MLP_H_
