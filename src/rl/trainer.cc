#include "src/rl/trainer.h"

#include <utility>

#include "src/stats/em_fitter.h"

namespace watter {

std::shared_ptr<const EnvSnapshot> ExperienceCollector::SnapshotFor(
    const DecisionObservation& observation) {
  if (cached_snapshot_ != nullptr && cached_at_ == observation.now) {
    return cached_snapshot_;
  }
  static const std::vector<int> kEmpty;
  cached_snapshot_ = featurizer_->MakeSnapshot(
      observation.demand_pickup != nullptr ? *observation.demand_pickup
                                           : kEmpty,
      observation.demand_dropoff != nullptr ? *observation.demand_dropoff
                                            : kEmpty,
      observation.supply != nullptr ? *observation.supply : kEmpty);
  cached_at_ = observation.now;
  return cached_snapshot_;
}

void ExperienceCollector::OnObservation(
    const DecisionObservation& observation) {
  const Order& order = *observation.order_ref;
  CompactState state = featurizer_->MakeState(order, observation.now,
                                              SnapshotFor(observation));
  double penalty = order.Penalty();
  double theta_star = thetas_->ThresholdFor(penalty);

  auto pending_it = pending_.find(observation.order);
  if (observation.action == 1) {
    // Wait transition into the dispatch state, then the terminal dispatch
    // reward p - t_d (Bellman update for a = 1).
    if (pending_it != pending_.end()) {
      Experience wait;
      wait.state = pending_it->second.state;
      wait.action = 0;
      wait.elapsed = observation.now - pending_it->second.time;
      wait.reward = -wait.elapsed;
      wait.terminal = false;
      wait.next_state = state;
      wait.penalty = penalty;
      wait.theta_star = theta_star;
      replay_->Add(std::move(wait));
      ++transitions_;
      pending_.erase(pending_it);
    }
    Experience dispatch;
    dispatch.state = state;
    dispatch.action = 1;
    dispatch.reward = penalty - observation.detour;
    dispatch.terminal = true;
    dispatch.penalty = penalty;
    dispatch.theta_star = theta_star;
    replay_->Add(std::move(dispatch));
    ++transitions_;
    return;
  }
  if (observation.expired) {
    // Expiry: the pending wait becomes terminal with no future value
    // (I(expired) = 1 in the Bellman update).
    if (pending_it != pending_.end()) {
      Experience wait;
      wait.state = pending_it->second.state;
      wait.action = 0;
      wait.elapsed = observation.now - pending_it->second.time;
      wait.reward = -wait.elapsed;
      wait.terminal = true;
      wait.penalty = penalty;
      wait.theta_star = theta_star;
      replay_->Add(std::move(wait));
      ++transitions_;
      pending_.erase(pending_it);
    }
    return;
  }
  // Plain wait: link from the previous decision state if any, then wait on.
  if (pending_it != pending_.end()) {
    Experience wait;
    wait.state = pending_it->second.state;
    wait.action = 0;
    wait.elapsed = observation.now - pending_it->second.time;
    wait.reward = -wait.elapsed;
    wait.terminal = false;
    wait.next_state = state;
    wait.penalty = penalty;
    wait.theta_star = theta_star;
    replay_->Add(std::move(wait));
    ++transitions_;
    pending_it->second = {state, observation.now};
  } else {
    pending_.emplace(observation.order,
                     Pending{state, observation.now});
  }
}

Result<ExpectModel> TrainExpectModel(WorkloadOptions base,
                                     const ExpectTrainOptions& options) {
  // All training days (and, by contract, the evaluation day) share a city.
  if (base.city_seed == 0) base.city_seed = base.seed * 7919 + 13;

  ExpectModel model;

  // Stage 1: bootstrap days under the timeout strategy to harvest a broad
  // extra-time sample (long waits explore the grouping space).
  std::vector<double> extras;
  for (int day = 0; day < options.bootstrap_days; ++day) {
    WorkloadOptions day_options = base;
    day_options.seed = options.seed_base + static_cast<uint64_t>(day);
    auto scenario = GenerateScenario(day_options);
    if (!scenario.ok()) return scenario.status();
    if (model.city == nullptr) model.city = scenario->city;
    TimeoutThresholdProvider timeout;
    WatterPlatform platform(&*scenario, &timeout, options.sim);
    (void)platform.Run();
    const auto& day_extras = platform.metrics().served_extra_times();
    extras.insert(extras.end(), day_extras.begin(), day_extras.end());
  }
  if (extras.empty()) {
    return Status::FailedPrecondition(
        "bootstrap produced no served orders to fit");
  }
  double mean = 0.0;
  for (double x : extras) mean += x;
  model.extra_time_mean = mean / static_cast<double>(extras.size());

  // Stage 2: fit the GMM and build the theta* table (Algorithm 3).
  EmOptions em;
  em.num_components = options.gmm_components;
  em.seed = options.seed_base;
  auto mixture = FitGmm(extras, em);
  if (!mixture.ok()) return mixture.status();
  model.mixture =
      std::make_unique<GaussianMixture>(std::move(mixture).value());
  ThresholdTable theta_table(*model.mixture);

  // Stage 3: behavior days under the GMM threshold policy with experience
  // collection, then train the value network.
  model.featurizer = std::make_unique<Featurizer>(
      &model.city->graph, options.sim.grid_cells,
      options.learner.time_slot);
  ValueLearner learner(model.featurizer.get(), options.learner);
  ExperienceCollector collector(model.featurizer.get(), &theta_table,
                                &learner.replay());
  for (int day = 0; day < options.behavior_days; ++day) {
    WorkloadOptions day_options = base;
    day_options.seed =
        options.seed_base + 100 + static_cast<uint64_t>(day);
    auto scenario = GenerateScenario(day_options);
    if (!scenario.ok()) return scenario.status();
    GmmThresholdProvider behavior(*model.mixture);
    WatterPlatform platform(&*scenario, &behavior, options.sim);
    platform.set_observer([&collector](const DecisionObservation& obs) {
      collector.OnObservation(obs);
    });
    (void)platform.Run();
    collector.Reset();
  }
  model.experiences = learner.replay().size();
  learner.Train(options.epochs);

  model.value = std::make_unique<Mlp>(learner.network());
  return model;
}

}  // namespace watter
