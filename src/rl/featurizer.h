// Spatio-temporal state featurization st = [sL, sT, sO, sW] (Section VI-A).
//
// sL: one-hot grid cells of the order's pickup and drop-off locations,
// sT: the order's release time slot and waited slots (2 scalars),
// sO: demand distributions (waiting pickups and drop-offs per cell),
// sW: idle-worker supply distribution per cell,
// plus three magnitude scalars (total demand/supply) that the pure
// distributions lose.
//
// Environment snapshots are shared between the many orders observed in one
// check round, so replayed experiences store a shared_ptr instead of copying
// hundreds of floats per transition.
#ifndef WATTER_RL_FEATURIZER_H_
#define WATTER_RL_FEATURIZER_H_

#include <memory>
#include <vector>

#include "src/core/types.h"
#include "src/geo/graph.h"
#include "src/geo/grid_index.h"

namespace watter {

/// Normalized environment block: [demand_pickup | demand_dropoff | supply]
/// distributions plus their three totals.
struct EnvSnapshot {
  std::vector<float> distributions;  ///< 3 * cells entries.
  float demand_pickup_total = 0.0f;
  float demand_dropoff_total = 0.0f;
  float supply_total = 0.0f;
};

/// Compact state: everything needed to materialize the feature vector.
struct CompactState {
  int pickup_cell = 0;
  int dropoff_cell = 0;
  float release_slot = 0.0f;  ///< Time-of-day fraction in [0, 1).
  float waited_slots = 0.0f;  ///< Waited time / time_slot, capped.
  std::shared_ptr<const EnvSnapshot> env;
};

/// Builds state feature vectors for the value network.
class Featurizer {
 public:
  /// `graph` supplies node locations (not owned); `grid_cells` must match
  /// the platform's feature grid; `time_slot` is the paper's dt (10 s).
  Featurizer(const Graph* graph, int grid_cells, double time_slot = 10.0,
             double waited_cap_slots = 90.0);

  int grid_cells() const { return grid_.cells_per_side(); }
  int cell_count() const { return grid_cells() * grid_cells(); }

  /// Feature dimensionality: 2*cells (sL) + 2 (sT) + 3*cells (sO, sW) + 3.
  int feature_size() const { return 5 * cell_count() + 5; }

  /// Normalizes raw per-cell counts into a shareable snapshot.
  std::shared_ptr<const EnvSnapshot> MakeSnapshot(
      const std::vector<int>& demand_pickup,
      const std::vector<int>& demand_dropoff,
      const std::vector<int>& supply) const;

  /// Builds the compact state of `order` at `now` within `env`.
  CompactState MakeState(const Order& order, Time now,
                         std::shared_ptr<const EnvSnapshot> env) const;

  /// Materializes the full feature vector (resizes `out`).
  void Write(const CompactState& state, std::vector<float>* out) const;

 private:
  const Graph* graph_;
  GridIndex grid_;  // Geometry only (never populated).
  double time_slot_;
  double waited_cap_slots_;
};

}  // namespace watter

#endif  // WATTER_RL_FEATURIZER_H_
