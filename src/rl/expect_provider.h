// WATTER-expect: threshold provider backed by the learned value function.
//
// theta(i) = p(i) - V(s_t^(i)) (Section VI-A), clamped into [0, p(i)]. The
// environment snapshot is rebuilt once per check round (all decisions in a
// round share the same timestamp) and cached.
#ifndef WATTER_RL_EXPECT_PROVIDER_H_
#define WATTER_RL_EXPECT_PROVIDER_H_

#include <algorithm>
#include <memory>

#include "src/rl/featurizer.h"
#include "src/rl/mlp.h"
#include "src/strategy/threshold_provider.h"

namespace watter {

/// Threshold provider of the WATTER-expect strategy.
class ExpectThresholdProvider : public ThresholdProvider {
 public:
  /// `featurizer` and `value` are borrowed and must outlive the provider.
  ExpectThresholdProvider(const Featurizer* featurizer, const Mlp* value)
      : featurizer_(featurizer), value_(value) {}

  double ThresholdFor(const Order& order, Time now,
                      const PoolContext& context) override {
    double penalty = order.Penalty();
    if (penalty <= 0.0) return 0.0;
    CompactState state =
        featurizer_->MakeState(order, now, SnapshotFor(now, context));
    featurizer_->Write(state, &features_);
    double value = value_->Forward(features_);
    return std::clamp(penalty - value, 0.0, penalty);
  }

  const char* name() const override { return "WATTER-expect"; }

 private:
  std::shared_ptr<const EnvSnapshot> SnapshotFor(Time now,
                                                 const PoolContext& context) {
    if (cached_snapshot_ != nullptr && cached_at_ == now) {
      return cached_snapshot_;
    }
    static const std::vector<int> kEmpty;
    cached_snapshot_ = featurizer_->MakeSnapshot(
        context.demand_pickup != nullptr ? *context.demand_pickup : kEmpty,
        context.demand_dropoff != nullptr ? *context.demand_dropoff : kEmpty,
        context.supply != nullptr ? *context.supply : kEmpty);
    cached_at_ = now;
    return cached_snapshot_;
  }

  const Featurizer* featurizer_;
  const Mlp* value_;
  std::shared_ptr<const EnvSnapshot> cached_snapshot_;
  Time cached_at_ = -1.0;
  std::vector<float> features_;
};

}  // namespace watter

#endif  // WATTER_RL_EXPECT_PROVIDER_H_
