#include "src/rl/value_learner.h"

#include <algorithm>
#include <cmath>

namespace watter {
namespace {

std::vector<int> FullArchitecture(int input, const std::vector<int>& hidden) {
  std::vector<int> sizes = {input};
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(1);
  return sizes;
}

}  // namespace

ValueLearner::ValueLearner(const Featurizer* featurizer,
                           LearnerOptions options)
    : featurizer_(featurizer),
      options_(options),
      main_(FullArchitecture(featurizer->feature_size(),
                             options.hidden_layers),
            options.seed),
      target_(FullArchitecture(featurizer->feature_size(),
                               options.hidden_layers),
              options.seed),
      adam_(static_cast<size_t>(main_.param_count()), options.learning_rate),
      replay_(options.replay_capacity),
      rng_(options.seed * 77 + 3) {
  target_.CopyParamsFrom(main_);
  grads_.resize(static_cast<size_t>(main_.param_count()), 0.0f);
}

double ValueLearner::Value(const CompactState& state) const {
  featurizer_->Write(state, &features_);
  return main_.Forward(features_);
}

double ValueLearner::TrainStep() {
  if (replay_.empty()) return 0.0;
  auto batch = replay_.Sample(static_cast<size_t>(options_.batch_size),
                              &rng_);
  std::fill(grads_.begin(), grads_.end(), 0.0f);
  double total_loss = 0.0;
  for (const Experience* exp : batch) {
    // TD target.
    double td_target;
    if (exp->terminal || exp->action == 1) {
      td_target = exp->reward;
    } else {
      featurizer_->Write(exp->next_state, &features_);
      double next_value = target_.Forward(features_);
      double discount =
          std::pow(options_.gamma, exp->elapsed / options_.time_slot);
      td_target = exp->reward + discount * next_value;
    }
    double tg_target = exp->penalty - exp->theta_star;

    featurizer_->Write(exp->state, &features_);
    // dLoss/dV = 2*omega*(V - td) + 2*(1-omega)*(V - tg); fold the batch
    // mean into the factor.
    double value = main_.Forward(features_);
    double td_err = value - td_target;
    double tg_err = value - tg_target;
    double dloss = (2.0 * options_.omega * td_err +
                    2.0 * (1.0 - options_.omega) * tg_err) /
                   static_cast<double>(batch.size());
    main_.ForwardBackward(features_, dloss, &grads_);
    total_loss += options_.omega * td_err * td_err +
                  (1.0 - options_.omega) * tg_err * tg_err;
  }
  adam_.Step(&main_.params(), grads_);
  ++steps_;
  if (steps_ % options_.target_sync_interval == 0) {
    target_.CopyParamsFrom(main_);
  }
  return total_loss / static_cast<double>(batch.size());
}

void ValueLearner::Train(int epochs) {
  if (replay_.empty()) return;
  int64_t steps_per_epoch = std::max<int64_t>(
      1, static_cast<int64_t>(replay_.size()) / options_.batch_size);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int64_t step = 0; step < steps_per_epoch; ++step) TrainStep();
  }
}

}  // namespace watter
