#include "src/rl/featurizer.h"

#include <algorithm>
#include <cmath>

namespace watter {
namespace {

constexpr double kSecondsPerDay = 86400.0;

void AppendDistribution(const std::vector<int>& counts, int cells,
                        std::vector<float>* out, float* total_out) {
  double total = 0.0;
  for (int c : counts) total += c;
  *total_out = static_cast<float>(total);
  for (int cell = 0; cell < cells; ++cell) {
    int count = cell < static_cast<int>(counts.size()) ? counts[cell] : 0;
    out->push_back(total > 0.0 ? static_cast<float>(count / total) : 0.0f);
  }
}

}  // namespace

Featurizer::Featurizer(const Graph* graph, int grid_cells, double time_slot,
                       double waited_cap_slots)
    : graph_(graph),
      grid_(graph->MinCorner(), graph->MaxCorner(), grid_cells),
      time_slot_(time_slot),
      waited_cap_slots_(waited_cap_slots) {}

std::shared_ptr<const EnvSnapshot> Featurizer::MakeSnapshot(
    const std::vector<int>& demand_pickup,
    const std::vector<int>& demand_dropoff,
    const std::vector<int>& supply) const {
  auto snapshot = std::make_shared<EnvSnapshot>();
  snapshot->distributions.reserve(3 * cell_count());
  AppendDistribution(demand_pickup, cell_count(), &snapshot->distributions,
                     &snapshot->demand_pickup_total);
  AppendDistribution(demand_dropoff, cell_count(), &snapshot->distributions,
                     &snapshot->demand_dropoff_total);
  AppendDistribution(supply, cell_count(), &snapshot->distributions,
                     &snapshot->supply_total);
  return snapshot;
}

CompactState Featurizer::MakeState(
    const Order& order, Time now,
    std::shared_ptr<const EnvSnapshot> env) const {
  CompactState state;
  state.pickup_cell = grid_.CellOf(graph_->node_point(order.pickup));
  state.dropoff_cell = grid_.CellOf(graph_->node_point(order.dropoff));
  double time_of_day = std::fmod(order.release, kSecondsPerDay);
  if (time_of_day < 0.0) time_of_day += kSecondsPerDay;
  state.release_slot = static_cast<float>(time_of_day / kSecondsPerDay);
  double waited = std::max(0.0, now - order.release) / time_slot_;
  state.waited_slots =
      static_cast<float>(std::min(waited, waited_cap_slots_) /
                         waited_cap_slots_);
  state.env = std::move(env);
  return state;
}

void Featurizer::Write(const CompactState& state,
                       std::vector<float>* out) const {
  const int cells = cell_count();
  out->assign(static_cast<size_t>(feature_size()), 0.0f);
  // sL: pickup and dropoff one-hots.
  (*out)[state.pickup_cell] = 1.0f;
  (*out)[cells + state.dropoff_cell] = 1.0f;
  // sT.
  (*out)[2 * cells] = state.release_slot;
  (*out)[2 * cells + 1] = state.waited_slots;
  // sO and sW distributions.
  size_t base = static_cast<size_t>(2 * cells) + 2;
  if (state.env != nullptr) {
    const auto& dist = state.env->distributions;
    std::copy(dist.begin(), dist.end(), out->begin() + base);
    // Magnitude scalars, squashed into a stable range.
    (*out)[base + 3 * cells] =
        std::log1p(state.env->demand_pickup_total) * 0.2f;
    (*out)[base + 3 * cells + 1] =
        std::log1p(state.env->demand_dropoff_total) * 0.2f;
    (*out)[base + 3 * cells + 2] = std::log1p(state.env->supply_total) * 0.2f;
  }
}

}  // namespace watter
