// Offline training pipeline for WATTER-expect (Section VI).
//
// Mirrors the paper's three-stage procedure:
//   1. Bootstrap: simulate the platform on historical "days" to harvest
//      extra-time samples H.
//   2. Fit a GMM to H (Algorithm 3) and derive the optimal thresholds
//      theta*(p), which both drive the behavior policy and anchor the
//      target loss.
//   3. Simulate more days under the GMM threshold policy, recording every
//      per-order decision as an MDP transition, and train the value network
//      on the replayed experience with the combined TD + target loss.
#ifndef WATTER_RL_TRAINER_H_
#define WATTER_RL_TRAINER_H_

#include <memory>

#include "src/common/result.h"
#include "src/rl/expect_provider.h"
#include "src/rl/featurizer.h"
#include "src/rl/value_learner.h"
#include "src/sim/platform.h"
#include "src/stats/gmm.h"
#include "src/workload/scenario.h"

namespace watter {

/// Pipeline configuration.
struct ExpectTrainOptions {
  int bootstrap_days = 1;   ///< Runs harvesting extra times for the GMM.
  int behavior_days = 2;    ///< Runs generating MDP experience.
  int gmm_components = 3;
  int epochs = 3;           ///< Training passes over the replay memory.
  LearnerOptions learner;
  SimOptions sim;           ///< Shared platform configuration.
  uint64_t seed_base = 90001;  ///< Seeds for training days (eval must differ).
};

/// A trained WATTER-expect model: everything the provider needs, with
/// owned lifetimes (the city pins the graph the featurizer points into).
struct ExpectModel {
  std::shared_ptr<City> city;
  std::unique_ptr<Featurizer> featurizer;
  std::unique_ptr<Mlp> value;
  std::unique_ptr<GaussianMixture> mixture;
  size_t experiences = 0;   ///< Transitions collected during training.
  double extra_time_mean = 0.0;  ///< Mean of the bootstrap extra times.

  /// Builds a provider bound to this model (model must outlive it).
  std::unique_ptr<ExpectThresholdProvider> MakeProvider() const {
    return std::make_unique<ExpectThresholdProvider>(featurizer.get(),
                                                     value.get());
  }
};

/// Trains a model for workloads shaped like `base` (same city via
/// base.city_seed, different demand seeds). The evaluation scenario should
/// use a seed outside [options.seed_base, seed_base + days).
Result<ExpectModel> TrainExpectModel(WorkloadOptions base,
                                     const ExpectTrainOptions& options = {});

/// Collects per-decision observations into MDP transitions. Exposed for
/// unit tests; TrainExpectModel wires it to the platform observer.
class ExperienceCollector {
 public:
  ExperienceCollector(const Featurizer* featurizer, ThresholdTable* thetas,
                      ReplayMemory* replay)
      : featurizer_(featurizer), thetas_(thetas), replay_(replay) {}

  void OnObservation(const DecisionObservation& observation);

  /// Drops tracking for orders still pending (end of a day).
  void Reset() { pending_.clear(); }

  int64_t transitions() const { return transitions_; }

 private:
  struct Pending {
    CompactState state;
    Time time = 0.0;
  };

  std::shared_ptr<const EnvSnapshot> SnapshotFor(
      const DecisionObservation& observation);

  const Featurizer* featurizer_;
  ThresholdTable* thetas_;
  ReplayMemory* replay_;
  std::unordered_map<OrderId, Pending> pending_;
  std::shared_ptr<const EnvSnapshot> cached_snapshot_;
  Time cached_at_ = -1.0;
  int64_t transitions_ = 0;
};

}  // namespace watter

#endif  // WATTER_RL_TRAINER_H_
