#!/usr/bin/env python3
"""Markdown link lint: relative links and anchors must resolve.

Scans the given markdown files (default: README.md and docs/*.md relative
to the repo root) for inline links and checks that

  * relative file targets exist on disk,
  * intra-document anchors (#heading) match a heading in the target file.

External http(s)/mailto links are NOT fetched — CI must not depend on the
network — only recorded in the summary. Exits non-zero on any broken
relative link, so docs cannot rot silently (CI job: doc-lint).
"""

import argparse
import pathlib
import re
import sys

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes, strip
    punctuation except dashes/underscores."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    content = path.read_text(encoding="utf-8")
    content = CODE_FENCE.sub("", content)
    return {slugify(m.group(1)) for m in HEADING.finditer(content)}


def check_file(md: pathlib.Path, root: pathlib.Path):
    """Yields (line_no, target, reason) for each broken link in `md`."""
    content = md.read_text(encoding="utf-8")
    # Drop code fences so shell snippets with [x](y)-looking text are not
    # treated as links.
    masked = CODE_FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), content)
    external = 0
    for pattern in (INLINE_LINK, IMAGE_LINK):
        for match in pattern.finditer(masked):
            target = match.group(1)
            line = masked.count("\n", 0, match.start()) + 1
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            if target.startswith("#"):
                if slugify(target[1:]) not in anchors_of(md):
                    yield line, target, "no such heading"
                continue
            rel, _, anchor = target.partition("#")
            dest = (md.parent / rel).resolve()
            try:
                dest.relative_to(root)
            except ValueError:
                yield line, target, "escapes the repository"
                continue
            if not dest.exists():
                yield line, target, "no such file"
                continue
            if anchor and dest.suffix == ".md":
                if slugify(anchor) not in anchors_of(dest):
                    yield line, target, "no such heading in target"
    if external:
        print(f"  (skipped {external} external link(s) in {md})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="markdown files to check")
    args = parser.parse_args()

    root = pathlib.Path(__file__).resolve().parent.parent
    if args.files:
        files = [pathlib.Path(f).resolve() for f in args.files]
    else:
        files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))

    broken = 0
    for md in files:
        if not md.exists():
            print(f"missing input file: {md}")
            broken += 1
            continue
        for line, target, reason in check_file(md, root):
            print(f"{md.relative_to(root)}:{line}: broken link "
                  f"'{target}' ({reason})")
            broken += 1
    if broken:
        print(f"\n{broken} broken link(s)")
        return 1
    print(f"doc-lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
