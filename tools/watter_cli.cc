// watter — command-line front end of the WATTER library.
//
// Subcommands:
//   watter generate --out DIR [workload flags]
//       Generate a synthetic workload and write orders/workers CSVs.
//   watter run --strategy NAME [workload flags]
//       Run one algorithm over a generated scenario and print metrics.
//       NAME in {online, timeout, gdp, gas, nonsharing, gmm}.
//   watter train --model FILE [workload flags]
//       Train a WATTER-expect model offline and save it.
//   watter evaluate --model FILE [workload flags]
//       Load a trained model and evaluate it on a fresh day.
//
// Common workload flags (defaults in brackets):
//   --dataset nyc|cdc|xia [cdc]   --orders N [1500]   --workers M [150]
//   --tau X [1.6]  --eta X [0.8]  --capacity K [4]    --seed S [42]
//   --city-seed S [derived]       --duration HOURS [2]
//   --threads T [1; 0 = all hardware threads] — parallelism of the check
//   loop and pool maintenance; metrics are identical for any T.
//   --dispatch serial|batched [batched] — decision engine of the WATTER
//   strategies (docs/DISPATCH.md): the batched sorted-offers engine (the
//   default — its cost-ranked commits serve more orders under contention,
//   see docs/PERFORMANCE.md) or the paper-faithful sequential loop. Either
//   engine is deterministic for any --threads.
//   --geo per-query|bucket [bucket] — travel-time oracle backend for the
//   CH-backed datasets (nyc/xia): the batched bucket-CH oracle (default,
//   src/geo/bucket_ch.h) or the per-query CH oracle. The two are bitwise
//   equivalent (tests/geo_oracle_equivalence_test.cc) — the flag only moves
//   runtime, never a metric. Ignored by the matrix-oracle cdc dataset.
//   --shards N [1] — region shards of the batched engine's commit pass
//   (docs/DISPATCH.md): N > 1 partitions the feature grid into N regions,
//   resolves interior offers per shard in parallel with a serial border
//   reconciliation, and pipelines commit bookkeeping against the next
//   round's propose. Metrics are identical for any N (the sharded pass is
//   bitwise-equal to the global one); ignored by --dispatch serial.
//
// Robustness flags (docs/ROBUSTNESS.md):
//   --faults SPEC — deterministic fault injection, e.g.
//   "dropouts=5;brownouts=2;seed=7". Worker dropouts/returns, oracle
//   brownouts, and pipeline stalls fire from a precomputed seeded schedule,
//   so a fixed spec is bitwise reproducible across threads and shards.
//   Empty (the default) disables fault injection entirely.
//   --budget N — per-round propose work budget in deterministic work units
//   (candidate probes + planner plans); overloaded rounds shed their
//   least-urgent tail to the next round. 0 = unlimited.
//   --watchdog-ms MS — opt-in wall-clock watchdog: rounds slower than MS
//   halve the effective work budget, compliant rounds grow it back. Wall-
//   clock driven, so excluded from the determinism contract.
//
// Observability flags (docs/OBSERVABILITY.md; all run-neutral — metrics are
// bitwise identical whether they are set or not):
//   --trace FILE — export a Chrome trace-event JSON of the run (load in
//   Perfetto / chrome://tracing): phase spans for every check round, pool
//   refresh internals, oracle batches, thread-pool and commit-pipeline jobs.
//   --timeline FILE — per-round timeline (pool size, shareability edges,
//   offers/conflicts, pipeline depth, phase durations, counter deltas) as
//   JSON, or CSV when FILE ends in ".csv".
//   --metrics-json FILE — dump the full MetricsReport as one JSON object
//   (bench_util field names for the overlapping fields, so it diffs against
//   BENCH_*.json records directly).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/baseline/nonsharing.h"
#include "src/common/table.h"
#include "src/rl/model_io.h"
#include "src/rl/trainer.h"
#include "src/sim/platform.h"
#include "src/stats/em_fitter.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/dataset_io.h"
#include "src/workload/scenario.h"

namespace {

using namespace watter;

struct CliArgs {
  std::string command;
  WorkloadOptions workload;
  SimOptions sim;
  std::string strategy = "online";
  std::string model_path;
  std::string out_dir = ".";
  std::string metrics_json_path;
  bool ok = true;
  std::string error;
};

[[noreturn]] void Usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: watter <generate|run|train|evaluate> [flags]\n"
               "  run flags:      --strategy "
               "online|timeout|gdp|gas|nonsharing|gmm\n"
               "  model flags:    --model FILE\n"
               "  output flags:   --out DIR\n"
               "  workload flags: --dataset nyc|cdc|xia --orders N "
               "--workers M\n"
               "                  --tau X --eta X --capacity K --seed S\n"
               "                  --city-seed S --duration HOURS\n"
               "                  --threads T (0 = all hardware threads)\n"
               "                  --dispatch serial|batched (default batched)\n"
               "                  --geo per-query|bucket (default bucket)\n"
               "                  --shards N (default 1 = unsharded commit)\n"
               "  robustness:     --faults SPEC (docs/ROBUSTNESS.md grammar)\n"
               "                  --budget N (per-round propose work units)\n"
               "                  --watchdog-ms MS (wall-clock budget clamp)\n"
               "  observability:  --trace FILE (Chrome trace-event JSON)\n"
               "                  --timeline FILE (per-round JSON; .csv = CSV)\n"
               "                  --metrics-json FILE (full report as JSON)\n");
  std::exit(2);
}

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc < 2) Usage("missing command");
  args.command = argv[1];
  args.workload.dataset = DatasetKind::kCdc;
  args.workload.num_orders = 1500;
  args.workload.num_workers = 150;
  args.workload.duration = 2 * 3600.0;
  args.workload.city_width = 24;
  args.workload.city_height = 24;

  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) Usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      std::string name = need_value("--dataset");
      if (name == "nyc") {
        args.workload.dataset = DatasetKind::kNyc;
      } else if (name == "cdc") {
        args.workload.dataset = DatasetKind::kCdc;
      } else if (name == "xia") {
        args.workload.dataset = DatasetKind::kXia;
      } else {
        Usage("unknown dataset");
      }
    } else if (std::strcmp(argv[i], "--orders") == 0) {
      args.workload.num_orders = std::atoi(need_value("--orders"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      args.workload.num_workers = std::atoi(need_value("--workers"));
    } else if (std::strcmp(argv[i], "--tau") == 0) {
      args.workload.tau = std::atof(need_value("--tau"));
    } else if (std::strcmp(argv[i], "--eta") == 0) {
      args.workload.eta = std::atof(need_value("--eta"));
    } else if (std::strcmp(argv[i], "--capacity") == 0) {
      args.workload.max_capacity = std::atoi(need_value("--capacity"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.workload.seed =
          static_cast<uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--city-seed") == 0) {
      args.workload.city_seed =
          static_cast<uint64_t>(std::atoll(need_value("--city-seed")));
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      args.workload.duration = std::atof(need_value("--duration")) * 3600.0;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      args.workload.num_threads = std::atoi(need_value("--threads"));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      int shards = std::atoi(need_value("--shards"));
      if (shards < 1) Usage("--shards needs a positive shard count");
      args.workload.num_shards = shards;
    } else if (std::strcmp(argv[i], "--dispatch") == 0) {
      std::string mode = need_value("--dispatch");
      if (mode == "serial") {
        args.sim.dispatch = DispatchMode::kSerial;
      } else if (mode == "batched") {
        args.sim.dispatch = DispatchMode::kBatched;
      } else {
        Usage("unknown dispatch mode (serial|batched)");
      }
    } else if (std::strcmp(argv[i], "--geo") == 0) {
      std::string backend = need_value("--geo");
      if (backend == "per-query") {
        args.workload.geo = GeoBackend::kPerQuery;
      } else if (backend == "bucket") {
        args.workload.geo = GeoBackend::kBucket;
      } else {
        Usage("unknown geo backend (per-query|bucket)");
      }
    } else if (std::strcmp(argv[i], "--strategy") == 0) {
      args.strategy = need_value("--strategy");
    } else if (std::strcmp(argv[i], "--model") == 0) {
      args.model_path = need_value("--model");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out_dir = need_value("--out");
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      std::string spec = need_value("--faults");
      Result<FaultSpec> parsed = ParseFaultSpec(spec);
      if (!parsed.ok()) {
        Usage(("--faults: " + parsed.status().ToString()).c_str());
      }
      args.workload.faults = spec;
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      args.workload.round_work_budget = std::atoll(need_value("--budget"));
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0) {
      double ms = std::atof(need_value("--watchdog-ms"));
      if (ms < 0.0) Usage("--watchdog-ms needs a non-negative value");
      args.sim.watchdog_ms = ms;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      args.workload.trace_path = need_value("--trace");
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      args.workload.timeline_path = need_value("--timeline");
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      args.metrics_json_path = need_value("--metrics-json");
    } else {
      Usage((std::string("unknown flag: ") + argv[i]).c_str());
    }
  }
  return args;
}

void PrintReport(const std::string& name, const MetricsReport& report) {
  Table table({"metric", "value"});
  table.AddRow({"algorithm", name});
  table.AddRow({"orders served", std::to_string(report.served)});
  table.AddRow({"orders rejected", std::to_string(report.rejected)});
  table.AddRow({"service rate (%)",
                Table::Num(report.service_rate * 100.0, 2)});
  table.AddRow({"extra time / METRS objective (s)",
                Table::Num(report.metrs_objective, 0)});
  table.AddRow({"  served extra time (s)",
                Table::Num(report.total_extra_time, 0)});
  table.AddRow({"  rejection penalties (s)",
                Table::Num(report.total_metrs_penalty, 0)});
  table.AddRow({"unified cost", Table::Num(report.unified_cost, 0)});
  table.AddRow({"worker travel (s)", Table::Num(report.worker_travel, 0)});
  table.AddRow({"avg response (s)", Table::Num(report.avg_response, 1)});
  table.AddRow({"avg detour (s)", Table::Num(report.avg_detour, 1)});
  table.AddRow({"avg group size", Table::Num(report.avg_group_size, 2)});
  table.AddRow({"running time / order (us)",
                Table::Num(report.running_time_per_order * 1e6, 1)});
  table.Print();
  // Pool work counters (zero for the non-pooling baselines): the planner-
  // invocation and plan-cache numbers that the committed BENCH_pool.json
  // baselines track (docs/PERFORMANCE.md, "Incremental pool maintenance").
  if (report.pool.planner_plans > 0) {
    Table pool({"pool counter", "value"});
    pool.AddRow({"planner plans (PlanBest)",
                 std::to_string(report.pool.planner_plans)});
    pool.AddRow({"pair tests", std::to_string(report.pool.pair_tests)});
    pool.AddRow({"best-group recomputes",
                 std::to_string(report.pool.best_group_recomputes)});
    pool.AddRow({"groups evaluated",
                 std::to_string(report.pool.groups_evaluated)});
    pool.AddRow({"plan-cache hits",
                 std::to_string(report.pool.plan_cache_hits)});
    pool.AddRow({"plan-cache misses",
                 std::to_string(report.pool.plan_cache_misses)});
    pool.AddRow({"plan-cache replans",
                 std::to_string(report.pool.plan_cache_replans)});
    pool.AddRow({"plan-cache evictions",
                 std::to_string(report.pool.plan_cache_evictions)});
    pool.AddRow({"plan-cache seeds",
                 std::to_string(report.pool.plan_cache_seeds)});
    pool.AddRow({"reverse-index fan-out",
                 std::to_string(report.pool.reverse_index_fanout)});
    pool.Print();
  }
  // Fault-injection / degradation counters — only when something fired
  // (docs/ROBUSTNESS.md). Deterministic except the watchdog trips.
  const FaultStats& faults = report.faults;
  if (faults.dropouts + faults.late_dropouts + faults.returns +
          faults.brownout_rounds + faults.stalls + faults.shed_orders +
          faults.watchdog_trips >
      0) {
    Table fault_table({"fault counter", "value"});
    fault_table.AddRow({"worker dropouts", std::to_string(faults.dropouts)});
    fault_table.AddRow({"  mid-route (riders aboard)",
                        std::to_string(faults.midroute_dropouts)});
    fault_table.AddRow({"late dropouts (resolve/commit)",
                        std::to_string(faults.late_dropouts)});
    fault_table.AddRow({"worker returns", std::to_string(faults.returns)});
    fault_table.AddRow({"brownout rounds",
                        std::to_string(faults.brownout_rounds)});
    fault_table.AddRow({"pipeline stalls", std::to_string(faults.stalls)});
    fault_table.AddRow({"orders recovered",
                        std::to_string(faults.recovered_orders)});
    fault_table.AddRow({"failed services",
                        std::to_string(faults.failed_services)});
    fault_table.AddRow({"aborted commits",
                        std::to_string(faults.aborted_commits)});
    fault_table.AddRow({"orders shed (budget)",
                        std::to_string(faults.shed_orders)});
    fault_table.AddRow({"degraded rounds",
                        std::to_string(faults.degraded_rounds)});
    fault_table.AddRow({"work units charged",
                        std::to_string(faults.work_units)});
    fault_table.AddRow({"watchdog trips",
                        std::to_string(faults.watchdog_trips)});
    fault_table.Print();
  }
  // Travel-time-oracle work counters (diagnostic, not deterministic:
  // metrics.h, GeoStats). Batch rows only appear once a batch ran.
  if (report.geo.queries > 0) {
    Table geo({"geo counter", "value"});
    geo.AddRow({"oracle queries", std::to_string(report.geo.queries)});
    geo.AddRow({"oracle batches", std::to_string(report.geo.batches)});
    geo.AddRow({"batched points", std::to_string(report.geo.batch_points)});
    geo.AddRow({"bucket build (ms)",
                Table::Num(report.geo.bucket_build_seconds * 1e3, 1)});
    geo.Print();
  }
}

int Generate(const CliArgs& args) {
  auto scenario = GenerateScenario(args.workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::string orders_path = args.out_dir + "/orders.csv";
  std::string workers_path = args.out_dir + "/workers.csv";
  Status status = SaveOrdersCsv(orders_path, scenario->orders);
  if (status.ok()) status = SaveWorkersCsv(workers_path, scenario->workers);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu orders to %s\nwrote %zu workers to %s\n",
              scenario->orders.size(), orders_path.c_str(),
              scenario->workers.size(), workers_path.c_str());
  return 0;
}

int Run(const CliArgs& args) {
  auto scenario = GenerateScenario(args.workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  MetricsReport report;
  std::string name = args.strategy;
  if (args.strategy == "online") {
    OnlineThresholdProvider provider;
    report = RunWatter(&*scenario, &provider, args.sim);
  } else if (args.strategy == "timeout") {
    TimeoutThresholdProvider provider;
    report = RunWatter(&*scenario, &provider, args.sim);
  } else if (args.strategy == "gdp") {
    report = RunGdp(&*scenario);
  } else if (args.strategy == "gas") {
    report = RunGas(&*scenario);
  } else if (args.strategy == "nonsharing") {
    report = RunNonSharing(&*scenario);
  } else if (args.strategy == "gmm") {
    // Bootstrap a same-shaped training day, fit, then run.
    WorkloadOptions boot = args.workload;
    boot.seed = args.workload.seed * 31 + 7;
    // Observe the evaluation run only, not the bootstrap day.
    boot.trace_path.clear();
    boot.timeline_path.clear();
    auto boot_scenario = GenerateScenario(boot);
    if (!boot_scenario.ok()) return 1;
    TimeoutThresholdProvider timeout;
    WatterPlatform bootstrap(&*boot_scenario, &timeout, args.sim);
    (void)bootstrap.Run();
    auto mixture = FitGmm(bootstrap.metrics().served_extra_times(),
                          {.num_components = 3, .seed = 11});
    if (!mixture.ok()) {
      std::fprintf(stderr, "GMM fit failed: %s\n",
                   mixture.status().ToString().c_str());
      return 1;
    }
    GmmThresholdProvider provider(std::move(mixture).value());
    report = RunWatter(&*scenario, &provider, args.sim);
    name = "WATTER-gmm";
  } else {
    Usage("unknown strategy");
  }
  PrintReport(name, report);
  if (!args.metrics_json_path.empty()) {
    std::FILE* f = std::fopen(args.metrics_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "metrics-json write failed: %s\n",
                   args.metrics_json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", MetricsReportJson(report).c_str());
    std::fclose(f);
    std::printf("metrics JSON written to %s\n",
                args.metrics_json_path.c_str());
  }
  return 0;
}

int Train(const CliArgs& args) {
  if (args.model_path.empty()) Usage("train needs --model FILE");
  std::printf("training WATTER-expect on %s-shaped workloads...\n",
              DatasetName(args.workload.dataset));
  auto model = TrainExpectModel(args.workload);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  Status status = SaveExpectModel(args.model_path, *model);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s (%zu experiences, %d mixture components)\n",
              args.model_path.c_str(), model->experiences,
              model->mixture->num_components());
  return 0;
}

int Evaluate(const CliArgs& args) {
  if (args.model_path.empty()) Usage("evaluate needs --model FILE");
  auto scenario = GenerateScenario(args.workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  auto model = LoadExpectModel(args.model_path, scenario->city);
  if (!model.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  auto provider = model->MakeProvider();
  MetricsReport report = RunWatter(&*scenario, provider.get(), args.sim);
  PrintReport("WATTER-expect", report);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args = Parse(argc, argv);
  if (args.command == "generate") return Generate(args);
  if (args.command == "run") return Run(args);
  if (args.command == "train") return Train(args);
  if (args.command == "evaluate") return Evaluate(args);
  Usage("unknown command");
}
