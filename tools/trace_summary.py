#!/usr/bin/env python3
"""Summarize (and validate) WATTER observability outputs.

Reads a Chrome trace-event JSON file produced by `--trace` (watter_cli, the
fig benches, bench_e2e) and prints a per-span rollup: event count, total and
mean duration, and the share of the trace's wall span. With `--timeline` it
also rolls up a per-round timeline JSON (`--timeline` output of the same
tools): round count, peak pool size, and the per-phase time breakdown with
the top phase called out — the same "next bottleneck" readout that
docs/PERFORMANCE.md records from BENCH_e2e.json.

`--check` turns the script into a validator for CI: it exits nonzero unless
the trace is structurally a loadable Chrome trace (traceEvents array, "M"
thread-name metadata, well-formed "X" complete events with non-negative
timestamps/durations) containing at least one platform round span, and —
when `--timeline` is given — the timeline has a non-empty `rounds` array
with consistent totals. See docs/OBSERVABILITY.md.

Usage:
  tools/trace_summary.py TRACE.json [--timeline TL.json] [--top N] [--check]
"""

import argparse
import json
import sys

# Durations below the hot-span floor are dropped at record time
# (src/obs/trace.h), so a dropped_events count is expected, not an error.
REQUIRED_EVENT_KEYS = ("ph", "pid", "tid", "name")


def fail(message):
    print(f"trace_summary: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {what} {path}: {error}")


def validate_trace(trace):
    """Structural checks; returns the list of 'X' complete events."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("top level is not an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    spans, thread_names = [], {}
    for event in events:
        if not isinstance(event, dict):
            fail(f"non-object event: {event!r}")
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                fail(f"event missing {key!r}: {event!r}")
        if event["ph"] == "M":
            if event["name"] == "thread_name":
                thread_names[event["tid"]] = event["args"]["name"]
        elif event["ph"] == "X":
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"X event with bad ts: {event!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"X event with bad dur: {event!r}")
            spans.append(event)
    if not spans:
        fail("no complete ('X') span events")
    if not thread_names:
        fail("no thread_name metadata events")
    if not any(s["name"] == "round" for s in spans):
        fail("no 'round' span — was the platform actually traced?")
    dropped = trace.get("otherData", {}).get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        fail("otherData.dropped_events missing or negative")
    return spans, thread_names, dropped


def summarize_trace(spans, thread_names, dropped, top):
    by_name = {}
    for span in spans:
        entry = by_name.setdefault(span["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]
        entry[2] = max(entry[2], span["dur"])
    wall_us = max(s["ts"] + s["dur"] for s in spans) - min(
        s["ts"] for s in spans
    )
    print(f"trace: {len(spans)} spans on {len(thread_names)} threads, "
          f"{wall_us / 1e6:.3f}s wall, {dropped} sub-threshold drops")
    print(f"{'span':<24} {'count':>8} {'total ms':>10} {'mean us':>9} "
          f"{'max us':>9} {'% wall':>7}")
    ranked = sorted(by_name.items(), key=lambda kv: -kv[1][1])
    for name, (count, total_us, max_us) in ranked[:top]:
        share = 100.0 * total_us / wall_us if wall_us > 0 else 0.0
        print(f"{name:<24} {count:>8} {total_us / 1e3:>10.2f} "
              f"{total_us / count:>9.1f} {max_us:>9.1f} {share:>6.1f}%")
    if len(ranked) > top:
        print(f"... {len(ranked) - top} more span names (--top to widen)")
    # Per-thread busy time. Spans nest, so a thread's sum can exceed its
    # wall share; the top-level "round"/job spans dominate regardless.
    busy = {}
    for span in spans:
        busy[span["tid"]] = busy.get(span["tid"], 0.0) + span["dur"]
    for tid, us in sorted(busy.items(), key=lambda kv: -kv[1]):
        name = thread_names.get(tid, f"tid {tid}")
        print(f"  thread {name:<18} {us / 1e3:>10.2f} ms recorded")


PHASES = ("maintenance_s", "refresh_s", "propose_s", "resolve_s",
          "commit_s", "sweep_s")

# Robustness columns (docs/ROBUSTNESS.md): per-round fault/recovery event
# counts and overload-shedding counters. All are summed into totals, so the
# cross-check below catches the RoundSample struct and the timeline field
# table drifting apart (a new column wired into one but not the other).
FAULT_COLUMNS = ("fault_events", "recovered", "failed", "shed", "degraded",
                 "work_units")


def validate_timeline(timeline):
    if not isinstance(timeline, dict) or "rounds" not in timeline:
        fail("timeline is not an object with a rounds array")
    rounds = timeline["rounds"]
    if not isinstance(rounds, list) or not rounds:
        fail("timeline has no rounds")
    for sample in rounds:
        for key in ("round", "pool_size", "total_s") + FAULT_COLUMNS:
            if key not in sample:
                fail(f"round sample missing {key!r}")
        for key in FAULT_COLUMNS:
            if not isinstance(sample[key], int) or sample[key] < 0:
                fail(f"round sample has non-count {key!r}: {sample[key]!r}")
    totals = timeline.get("totals")
    if not isinstance(totals, dict):
        fail("timeline missing totals")
    if totals.get("round") != len(rounds):
        fail(f"totals.round = {totals.get('round')} but "
             f"{len(rounds)} round samples")
    for key in FAULT_COLUMNS:
        summed = sum(r[key] for r in rounds)
        if totals.get(key) != summed:
            fail(f"totals.{key} = {totals.get(key)} but round samples "
                 f"sum to {summed}")
    return rounds, totals


def summarize_timeline(rounds, totals):
    peak_pool = max(r["pool_size"] for r in rounds)
    print(f"timeline: {len(rounds)} rounds, peak pool {peak_pool}, "
          f"final pool {rounds[-1]['pool_size']}, "
          f"{totals.get('total_s', 0.0):.3f}s in rounds")
    phase_totals = [(p, totals.get(p, 0.0)) for p in PHASES]
    round_total = totals.get("total_s", 0.0)
    for phase, seconds in sorted(phase_totals, key=lambda kv: -kv[1]):
        share = 100.0 * seconds / round_total if round_total > 0 else 0.0
        print(f"  {phase:<16} {seconds:>9.3f}s {share:>6.1f}%")
    top_phase, top_seconds = max(phase_totals, key=lambda kv: kv[1])
    print(f"top phase: {top_phase} ({top_seconds:.3f}s)")
    # Robustness rollup: silent on a faultless, unbudgeted run.
    if any(totals.get(key, 0) for key in FAULT_COLUMNS):
        print(f"faults: {totals.get('fault_events', 0)} events, "
              f"{totals.get('recovered', 0)} orders recovered, "
              f"{totals.get('failed', 0)} failed services; "
              f"shedding: {totals.get('shed', 0)} orders over "
              f"{totals.get('degraded', 0)} degraded rounds, "
              f"{totals.get('work_units', 0)} work units")


def main():
    parser = argparse.ArgumentParser(
        description="Summarize/validate WATTER trace + timeline files.")
    parser.add_argument("trace", help="Chrome trace-event JSON (--trace)")
    parser.add_argument("--timeline", help="per-round timeline JSON")
    parser.add_argument("--top", type=int, default=20,
                        help="span names to list (default 20)")
    parser.add_argument("--check", action="store_true",
                        help="validate only; exit nonzero on any problem")
    args = parser.parse_args()

    spans, thread_names, dropped = validate_trace(
        load_json(args.trace, "trace"))
    rounds = totals = None
    if args.timeline:
        rounds, totals = validate_timeline(
            load_json(args.timeline, "timeline"))
    if args.check:
        checked = f"{args.trace} ({len(spans)} spans)"
        if rounds is not None:
            checked += f" + {args.timeline} ({len(rounds)} rounds)"
        print(f"trace_summary: OK: {checked}")
        return
    summarize_trace(spans, thread_names, dropped, args.top)
    if rounds is not None:
        print()
        summarize_timeline(rounds, totals)


if __name__ == "__main__":
    main()
