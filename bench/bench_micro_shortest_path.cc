// Micro benchmarks of the shortest-path substrate: plain Dijkstra vs
// bidirectional search vs contraction hierarchies vs the APSP matrix, plus
// the one-time preprocessing costs. Validates the oracle choice guidance in
// DESIGN.md (matrix for simulation cities, CH for larger graphs).
#include <benchmark/benchmark.h>

#include <memory>

#include "src/common/rng.h"
#include "src/geo/apsp.h"
#include "src/geo/bidirectional_dijkstra.h"
#include "src/geo/city_generator.h"
#include "src/geo/contraction_hierarchy.h"
#include "src/geo/dijkstra.h"

namespace {

using namespace watter;

const City& BenchCity() {
  static const City* city = [] {
    auto result = GenerateCity({.width = 48, .height = 48, .seed = 9});
    return new City(std::move(result).value());
  }();
  return *city;
}

void BM_DijkstraPointToPoint(benchmark::State& state) {
  const City& city = BenchCity();
  Dijkstra search(&city.graph);
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = city.RandomNode(&rng);
    NodeId t = city.RandomNode(&rng);
    search.Run(s, t);
    benchmark::DoNotOptimize(search.DistanceTo(t));
  }
}
BENCHMARK(BM_DijkstraPointToPoint);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  const City& city = BenchCity();
  BidirectionalDijkstra search(&city.graph);
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = city.RandomNode(&rng);
    NodeId t = city.RandomNode(&rng);
    benchmark::DoNotOptimize(search.Query(s, t));
  }
}
BENCHMARK(BM_BidirectionalDijkstra);

void BM_ContractionHierarchyQuery(benchmark::State& state) {
  const City& city = BenchCity();
  static const ContractionHierarchy* ch = [] {
    auto result = ContractionHierarchy::Build(BenchCity().graph);
    return new ContractionHierarchy(std::move(result).value());
  }();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = city.RandomNode(&rng);
    NodeId t = city.RandomNode(&rng);
    benchmark::DoNotOptimize(ch->Query(s, t));
  }
}
BENCHMARK(BM_ContractionHierarchyQuery);

void BM_MatrixLookup(benchmark::State& state) {
  const City& city = BenchCity();
  static const CostMatrix* matrix = [] {
    auto result = CostMatrix::Build(BenchCity().graph);
    return new CostMatrix(std::move(result).value());
  }();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = city.RandomNode(&rng);
    NodeId t = city.RandomNode(&rng);
    benchmark::DoNotOptimize(matrix->Cost(s, t));
  }
}
BENCHMARK(BM_MatrixLookup);

void BM_ChBuild(benchmark::State& state) {
  auto small = GenerateCity({.width = 24, .height = 24, .seed = 5});
  for (auto _ : state) {
    auto ch = ContractionHierarchy::Build(small->graph);
    benchmark::DoNotOptimize(ch->num_shortcuts());
  }
}
BENCHMARK(BM_ChBuild)->Unit(benchmark::kMillisecond);

void BM_ApspBuild(benchmark::State& state) {
  auto small = GenerateCity({.width = 24, .height = 24, .seed = 5});
  for (auto _ : state) {
    auto matrix = CostMatrix::Build(small->graph);
    benchmark::DoNotOptimize(matrix->num_nodes());
  }
}
BENCHMARK(BM_ApspBuild)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
