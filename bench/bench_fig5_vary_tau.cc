// Figure 5: performance while varying the deadline scale tau
// (deadline = release + tau * shortest_cost), tau in {1.2, 1.4, 1.6, 1.8}.
//
// Shapes to reproduce (Section VII-B): with small tau all methods are close
// (orders cannot wait); as tau grows WATTER-expect pulls ahead (paper: at
// tau=1.8 on XIA, -23.1/-27.7/-48.2/-65.3% unified cost vs the others).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);
  int threads = BenchThreads(argc, argv);
  SimOptions sim;
  sim.dispatch = SingleDispatchMode(argc, argv);
  sim.num_shards = SingleBenchShards(argc, argv);
  BenchJson().path = BenchJsonPath(argc, argv);
  BenchJson().threads = threads;
  BenchJson().dispatch = DispatchName(sim.dispatch);
  BenchJson().shards = sim.num_shards;
  GeoBackend geo = BenchGeoBackend(argc, argv);
  BenchJson().geo = GeoName(geo);

  for (DatasetKind dataset : BenchDatasets(quick)) {
    WorkloadOptions base = BaseWorkload(dataset);
    base.num_threads = threads;
    base.geo = geo;
    std::unique_ptr<ExpectModel> model;
    if (!quick) {
      auto trained = TrainExpect(base);
      if (!trained.ok()) {
        std::fprintf(stderr, "training failed: %s\n",
                     trained.status().ToString().c_str());
        return 1;
      }
      model = std::make_unique<ExpectModel>(std::move(trained).value());
    }
    // Observability taps (training days above stay untraced).
    base.trace_path = BenchTracePath(argc, argv);
    base.timeline_path = BenchTimelinePath(argc, argv);
    std::vector<double> sweep = {1.2, 1.4, 1.6, 1.8};
    if (quick) sweep = {1.2, 1.8};
    RunSweep<double>(
        "Figure 5", dataset, "tau", sweep,
        [&base](double tau) {
          WorkloadOptions options = base;
          options.tau = tau;
          return options;
        },
        AlgorithmFamily(model.get(), sim));
  }
  return 0;
}
