// Reproduces Table I / Example 1 of the paper on the Figure 1 road network:
// total worker travel time under the four processing modes.
//
// Expected output (paper Section I):
//   non-sharing        12 minutes
//   online insertion    9 minutes
//   batch (10 s)        7 minutes
//   optimal pooling     5 minutes
#include <cstdio>

#include "src/common/status.h"
#include "src/common/table.h"
#include "src/core/route_planner.h"
#include "src/geo/dijkstra.h"
#include "src/geo/graph.h"
#include "src/geo/travel_time_oracle.h"

namespace {

using namespace watter;

constexpr double kMin = 60.0;
enum Node : NodeId { kA = 0, kB, kC, kD, kE, kF };

Graph MakeFigure1Graph() {
  Graph g;
  for (int i = 0; i < 6; ++i) {
    g.AddNode(Point{static_cast<double>(i % 3), static_cast<double>(i / 3)});
  }
  g.AddBidirectionalEdge(kA, kB, kMin);
  g.AddBidirectionalEdge(kB, kC, kMin);
  g.AddBidirectionalEdge(kA, kD, kMin);
  g.AddBidirectionalEdge(kD, kE, kMin);
  g.AddBidirectionalEdge(kE, kF, kMin);
  g.AddBidirectionalEdge(kC, kF, kMin);
  g.AddBidirectionalEdge(kB, kE, kMin);
  WATTER_CHECK_OK(g.Finalize());
  return g;
}

Order MakeOrder(OrderId id, NodeId pickup, NodeId dropoff, Time release,
                double shortest) {
  return Order{.id = id, .pickup = pickup, .dropoff = dropoff, .riders = 1,
               .release = release, .deadline = release + 30 * kMin,
               .wait_limit = 60.0, .shortest_cost = shortest};
}

}  // namespace

int main() {
  Graph graph = MakeFigure1Graph();
  DijkstraOracle oracle(&graph);
  RoutePlanner planner(&oracle);

  // Table I orders: o1 a->c @5s, o2 d->f @8s, o3 d->c @10s, o4 e->f @12s.
  Order o1 = MakeOrder(1, kA, kC, 5, oracle.Cost(kA, kC));
  Order o2 = MakeOrder(2, kD, kF, 8, oracle.Cost(kD, kF));
  Order o3 = MakeOrder(3, kD, kC, 10, oracle.Cost(kD, kC));
  Order o4 = MakeOrder(4, kE, kF, 12, oracle.Cost(kE, kF));

  // (1) Non-sharing: w1 serves o2 then o4 (d,f,e,f), w2 serves o1 then o3
  //     (a,c,d,c).
  double non_sharing = oracle.Cost(kD, kF) + oracle.Cost(kF, kE) +
                       oracle.Cost(kE, kF) + oracle.Cost(kA, kC) +
                       oracle.Cost(kC, kD) + oracle.Cost(kD, kC);

  // (2) Online insertion: w1 route d,e,f,d,c; w2 route a,c.
  double online = oracle.Cost(kD, kE) + oracle.Cost(kE, kF) +
                  oracle.Cost(kF, kD) + oracle.Cost(kD, kC) +
                  oracle.Cost(kA, kC);

  // (3) Batch (10 s): o1+o3 grouped (optimal route), o2 and o4 in different
  //     batches served sequentially (d,f,e,f).
  auto g13 = planner.PlanBest({&o1, &o3}, 12, 4);
  double batch = g13->total_cost + oracle.Cost(kD, kF) +
                 oracle.Cost(kF, kE) + oracle.Cost(kE, kF);

  // (4) Smart pooling: {o1,o3} and {o2,o4}, each on its optimal route.
  auto g24 = planner.PlanBest({&o2, &o4}, 12, 4);
  double pooling = g13->total_cost + g24->total_cost;

  watter::Table table({"mode", "total travel (min)", "paper (min)"});
  table.AddRow({"non-sharing", watter::Table::Num(non_sharing / kMin, 0),
                "12"});
  table.AddRow({"online insertion", watter::Table::Num(online / kMin, 0),
                "9"});
  table.AddRow({"batch (10s)", watter::Table::Num(batch / kMin, 0), "7"});
  table.AddRow({"pooling (WATTER)", watter::Table::Num(pooling / kMin, 0),
                "5"});
  std::printf("-- Example 1 / Table I: total travel time by mode --\n");
  table.Print();

  bool ok = non_sharing == 12 * kMin && online == 9 * kMin &&
            batch == 7 * kMin && pooling == 5 * kMin;
  std::printf("\n%s\n", ok ? "MATCHES the paper exactly."
                           : "MISMATCH against the paper!");
  return ok ? 0 : 1;
}
