// Paper-scale geo bench: the travel-time-oracle backend A/B at the paper's
// headline n = 125k orders / m = 6k workers (Table III, NYC upper end).
//
// The simulator's two oracle hot paths are batch-shaped (docs/PERFORMANCE.md):
//   fleet-probe — Fleet::FindClosestIdle refines K Euclidean candidates with
//     one ManyToOne(worker locations -> pickup) batch per dispatch probe;
//   pair-test  — the shareability-edge refresh primes all four directed
//     batches around an anchor order (OneToMany from pickup/dropoff,
//     ManyToOne back to pickup/dropoff) before testing candidates.
// This driver replays both shapes over a generated city against the per-query
// CH oracle and the bucket-CH oracle (src/geo/bucket_ch.h) and reports the
// wall-clock A/B. The backends are bitwise-equivalent
// (tests/geo_oracle_equivalence_test.cc); the bench re-checks that here with
// an order-preserving checksum and exits nonzero on any divergence, so the
// committed BENCH_geo.json numbers are guaranteed to compare equal work.
//
// Budget gate (mirrors tests/sim_paper_scale_test.cc): the quick shape always
// runs in seconds; the 125k/6k shape self-skips unless WATTER_RUN_LARGE is
// set. The ctest registration carries the `large` label, and the
// `bench_geo_json` cmake target writes BENCH_geo.json (bench/CMakeLists.txt).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/geo/city_generator.h"

namespace {

using namespace watter;
using namespace watter::bench;

// One benchmark shape: a city plus the order/worker counts whose probe and
// pair batches we replay.
struct GeoScale {
  const char* label;
  int width;
  int height;
  int orders;
  int workers;
  int probe_k;          // Fleet::FindClosestIdle default candidate count.
  int pair_anchors;     // Anchors whose 4-batch refresh is replayed.
  int pair_candidates;  // Shareability candidates per anchor (2 nodes each).
};

// Replay outcome of one (path, backend) cell.
struct PathResult {
  double seconds = 0.0;
  long long batches = 0;
  long long points = 0;
  long long finite = 0;
  double checksum = 0.0;  // Order-preserving sum of finite costs.
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The fleet-probe path: one ManyToOne per order, probe_k worker locations
// against the order's pickup. Candidate windows rotate through the worker
// list deterministically, standing in for the Euclidean KNearest pre-filter.
PathResult RunProbePath(TravelTimeOracle* oracle, const GeoScale& scale,
                        const std::vector<NodeId>& worker_locations,
                        const std::vector<NodeId>& pickups) {
  PathResult result;
  std::vector<NodeId> probes(static_cast<size_t>(scale.probe_k));
  std::vector<double> costs(probes.size());
  const double start = Now();
  for (int i = 0; i < scale.orders; ++i) {
    const size_t base = static_cast<size_t>(i) * 37u;
    for (int k = 0; k < scale.probe_k; ++k) {
      probes[static_cast<size_t>(k)] =
          worker_locations[(base + static_cast<size_t>(k)) %
                           worker_locations.size()];
    }
    oracle->ManyToOne(probes, pickups[static_cast<size_t>(i)], costs);
    ++result.batches;
    result.points += scale.probe_k;
    for (double cost : costs) {
      if (cost < kInfCost) {
        ++result.finite;
        result.checksum += cost;
      }
    }
  }
  result.seconds = Now() - start;
  return result;
}

// The pair-test path: per anchor, the shareability refresh's four directed
// batches over the candidates' pickup+dropoff nodes (shareability_graph.cc).
PathResult RunPairPath(TravelTimeOracle* oracle, const GeoScale& scale,
                       const std::vector<NodeId>& pickups,
                       const std::vector<NodeId>& dropoffs) {
  PathResult result;
  std::vector<NodeId> nodes(static_cast<size_t>(scale.pair_candidates) * 2);
  std::vector<double> costs(nodes.size());
  const double start = Now();
  for (int a = 0; a < scale.pair_anchors; ++a) {
    const size_t anchor = static_cast<size_t>(a) % pickups.size();
    const size_t base = static_cast<size_t>(a) * 53u + 1u;
    for (int c = 0; c < scale.pair_candidates; ++c) {
      const size_t candidate = (base + static_cast<size_t>(c)) %
                               pickups.size();
      nodes[static_cast<size_t>(c) * 2] = pickups[candidate];
      nodes[static_cast<size_t>(c) * 2 + 1] = dropoffs[candidate];
    }
    const NodeId ends[] = {pickups[anchor], dropoffs[anchor]};
    for (NodeId end : ends) {
      oracle->OneToMany(end, nodes, costs);
      ++result.batches;
      result.points += static_cast<long long>(nodes.size());
      for (double cost : costs) {
        if (cost < kInfCost) {
          ++result.finite;
          result.checksum += cost;
        }
      }
    }
    for (NodeId end : ends) {
      oracle->ManyToOne(nodes, end, costs);
      ++result.batches;
      result.points += static_cast<long long>(nodes.size());
      for (double cost : costs) {
        if (cost < kInfCost) {
          ++result.finite;
          result.checksum += cost;
        }
      }
    }
  }
  result.seconds = Now() - start;
  return result;
}

void Record(const GeoScale& scale, const char* path_name, const char* backend,
            const PathResult& r, double per_query_seconds) {
  if (BenchJson().path.empty()) return;
  char record[512];
  std::snprintf(
      record, sizeof(record),
      "{\"bench\": \"geo\", \"scale\": \"%s\", \"city\": \"%dx%d\", "
      "\"path\": \"%s\", \"backend\": \"%s\", \"batches\": %lld, "
      "\"points\": %lld, \"finite\": %lld, \"checksum\": %.17g, "
      "\"seconds\": %.4f, \"points_per_sec\": %.0f, "
      "\"speedup_vs_per_query\": %.2f}",
      scale.label, scale.width, scale.height, path_name, backend, r.batches,
      r.points, r.finite, r.checksum, r.seconds,
      r.seconds > 0.0 ? static_cast<double>(r.points) / r.seconds : 0.0,
      r.seconds > 0.0 ? per_query_seconds / r.seconds : 0.0);
  BenchJson().records.emplace_back(record);
}

// Runs one scale; returns false on a backend divergence.
bool RunScale(const GeoScale& scale) {
  CityOptions city_options;
  city_options.width = scale.width;
  city_options.height = scale.height;
  city_options.seed = 60061;  // One fixed city per scale family.
  const double city_start = Now();
  auto city = GenerateCity(city_options);
  if (!city.ok()) {
    std::fprintf(stderr, "city failed: %s\n",
                 city.status().ToString().c_str());
    return false;
  }
  // Two independent oracles over the same graph, both starting cold: the
  // per-query CH memo and the bucket-CH memo see the same query stream.
  auto per_query =
      BuildOracle(city->graph, OracleKind::kCh, GeoBackend::kPerQuery);
  auto bucket = BuildOracle(city->graph, OracleKind::kCh, GeoBackend::kBucket);
  if (!per_query.ok() || !bucket.ok()) {
    std::fprintf(stderr, "oracle build failed\n");
    return false;
  }
  std::printf("[%s] city %dx%d (%d nodes), CH + oracles built in %.1fs\n",
              scale.label, scale.width, scale.height,
              static_cast<int>(city->graph.num_nodes()),
              Now() - city_start);

  Rng rng(4242);
  std::vector<NodeId> worker_locations(static_cast<size_t>(scale.workers));
  for (NodeId& node : worker_locations) node = city->RandomNode(&rng);
  std::vector<NodeId> pickups(static_cast<size_t>(scale.orders));
  std::vector<NodeId> dropoffs(static_cast<size_t>(scale.orders));
  for (int i = 0; i < scale.orders; ++i) {
    pickups[static_cast<size_t>(i)] = city->RandomNode(&rng);
    dropoffs[static_cast<size_t>(i)] = city->RandomNode(&rng);
  }

  struct Cell {
    const char* path;
    PathResult per_query;
    PathResult bucket;
  };
  Cell cells[] = {{"fleet-probe", {}, {}}, {"pair-test", {}, {}}};
  cells[0].per_query =
      RunProbePath(per_query->get(), scale, worker_locations, pickups);
  cells[0].bucket =
      RunProbePath(bucket->get(), scale, worker_locations, pickups);
  cells[1].per_query = RunPairPath(per_query->get(), scale, pickups, dropoffs);
  cells[1].bucket = RunPairPath(bucket->get(), scale, pickups, dropoffs);

  Table table({"path", "backend", "batches", "points", "seconds",
               "points/sec", "speedup"});
  bool ok = true;
  for (const Cell& cell : cells) {
    const PathResult& pq = cell.per_query;
    const PathResult& bk = cell.bucket;
    // Bitwise replay equality: same slots in the same order must sum to the
    // same double. The equivalence suite proves per-slot equality; this
    // guards the committed baseline against drift.
    if (pq.checksum != bk.checksum || pq.finite != bk.finite) {
      std::fprintf(stderr,
                   "[%s] %s: backend divergence (checksum %.17g vs %.17g, "
                   "finite %lld vs %lld)\n",
                   scale.label, cell.path, pq.checksum, bk.checksum,
                   pq.finite, bk.finite);
      ok = false;
    }
    table.AddRow({cell.path, "per-query", std::to_string(pq.batches),
                  std::to_string(pq.points), Table::Num(pq.seconds, 2),
                  Table::Num(static_cast<double>(pq.points) / pq.seconds, 0),
                  "1.00"});
    table.AddRow({cell.path, "bucket", std::to_string(bk.batches),
                  std::to_string(bk.points), Table::Num(bk.seconds, 2),
                  Table::Num(static_cast<double>(bk.points) / bk.seconds, 0),
                  Table::Num(pq.seconds / bk.seconds, 2)});
    Record(scale, cell.path, "per-query", pq, pq.seconds);
    Record(scale, cell.path, "bucket", bk, pq.seconds);
  }
  std::printf("-- geo backend A/B | %s (n=%d orders, m=%d workers) --\n",
              scale.label, scale.orders, scale.workers);
  table.Print();
  std::printf("bucket build time: %.3fs (memoized search-space Dijkstras, "
              "amortized over all batches)\n\n",
              (*bucket)->bucket_build_seconds());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson().path = BenchJsonPath(argc, argv);

  // Always-run smoke shape: same code paths at a size that finishes in
  // seconds, so the A/B (and the divergence check) runs in every tier.
  GeoScale quick{"quick-8k-400", 32, 32, 8000, 400,
                 /*probe_k=*/8, /*pair_anchors=*/500, /*pair_candidates=*/32};
  bool ok = RunScale(quick);

  if (std::getenv("WATTER_RUN_LARGE") == nullptr) {
    std::printf(
        "paper-scale shape (125k orders / 6k workers) skipped; set "
        "WATTER_RUN_LARGE=1 (ctest label `large`).\n");
  } else {
    // The paper's largest NYC setting. probe_k mirrors FindClosestIdle's
    // default candidate count; the pair path replays one refresh per worker.
    GeoScale paper{"125k-6k", 96, 96, 125000, 6000,
                   /*probe_k=*/8, /*pair_anchors=*/6000,
                   /*pair_candidates=*/32};
    ok = RunScale(paper) && ok;
  }
  BenchJson().Flush();
  return ok ? 0 : 1;
}
