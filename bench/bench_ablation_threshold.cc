// Design ablation: the expected extra-time threshold theta itself.
//
// Section V's central claim is that the METRS objective is a well-behaved
// (unimodal) function of the threshold: theta too small never dispatches by
// quality (orders ride the timeout path), theta too large dispatches
// greedily (online-like). This bench sweeps a *fixed* theta across orders
// and prints the objective, which should dip near the GMM-optimized value;
// the GMM and online strategies are included as reference rows.
#include "bench/bench_util.h"
#include "src/stats/em_fitter.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);

  WorkloadOptions base = BaseWorkload(DatasetKind::kCdc);
  std::vector<double> thetas = {0, 15, 30, 60, 120, 240, 480, 1e9};
  if (quick) thetas = {0, 60, 1e9};

  // Bootstrap a GMM for the reference row.
  std::unique_ptr<GaussianMixture> mixture;
  {
    auto scenario = GenerateScenario(base);
    if (!scenario.ok()) return 1;
    TimeoutThresholdProvider timeout;
    WatterPlatform platform(&*scenario, &timeout, SimOptions{});
    (void)platform.Run();
    auto fit = FitGmm(platform.metrics().served_extra_times(),
                      {.num_components = 3, .seed = 7});
    if (!fit.ok()) return 1;
    mixture = std::make_unique<GaussianMixture>(std::move(fit).value());
  }

  Table table({"theta(s)", "METRS objective", "unified_cost",
               "service_rate(%)", "avg_response(s)", "avg_detour(s)"});
  auto add_row = [&table](const std::string& label,
                          const MetricsReport& report) {
    table.AddRow({label, Table::Num(report.metrs_objective, 0),
                  Table::Num(report.unified_cost, 0),
                  Table::Num(report.service_rate * 100, 1),
                  Table::Num(report.avg_response, 1),
                  Table::Num(report.avg_detour, 1)});
  };

  for (double theta : thetas) {
    auto scenario = GenerateScenario(base);
    if (!scenario.ok()) return 1;
    FixedThresholdProvider provider(theta);
    add_row(theta >= 1e9 ? "inf" : Table::Num(theta, 0),
            RunWatter(&*scenario, &provider));
  }
  {
    auto scenario = GenerateScenario(base);
    if (!scenario.ok()) return 1;
    GmmThresholdProvider provider(*mixture);
    add_row("GMM theta*(p)", RunWatter(&*scenario, &provider));
  }
  std::printf(
      "-- Ablation theta | CDC | METRS objective vs fixed threshold --\n");
  table.Print();
  return 0;
}
