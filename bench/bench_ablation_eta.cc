// Appendix ablation: the watching-window scale eta
// (wait_limit = eta * shortest_cost). The paper tunes eta and picks 0.8.
//
// Expected shape: small eta barely waits (few grouping chances, lower
// response); large eta waits long (better groups, but responses and
// timeouts grow). A sweet spot appears in the middle for the METRS
// objective.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);

  WorkloadOptions base = BaseWorkload(DatasetKind::kCdc);
  std::vector<double> sweep = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
  if (quick) sweep = {0.2, 0.8};

  // eta shapes the *pool framework* itself; compare the three non-learned
  // strategies (the learned ones would need retraining per eta).
  std::vector<Algorithm> algorithms = AlgorithmFamily(nullptr);
  RunSweep<double>(
      "Ablation eta", DatasetKind::kCdc, "eta", sweep,
      [&base](double eta) {
        WorkloadOptions options = base;
        options.eta = eta;
        return options;
      },
      algorithms);
  return 0;
}
