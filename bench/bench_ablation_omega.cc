// Design ablation: the combined loss of Section VI-B,
//   loss = omega * loss_td + (1 - omega) * loss_tg.
// omega = 1 is pure temporal-difference learning (the paper argues it
// under-constrains the value scale), omega = 0 is pure regression onto the
// Section V thresholds (no look-ahead fine-tuning). The paper's
// contribution is the mix; this bench trains one model per omega and
// evaluates each on the same held-out day.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);

  WorkloadOptions base = BaseWorkload(DatasetKind::kCdc);
  std::vector<double> omegas = {0.0, 0.25, 0.5, 0.75, 1.0};
  if (quick) omegas = {0.0, 1.0};

  Table table({"omega", "METRS objective", "unified_cost",
               "service_rate(%)", "avg_response(s)", "experiences"});
  for (double omega : omegas) {
    ExpectTrainOptions train;
    train.bootstrap_days = 1;
    train.behavior_days = 2;
    train.epochs = 2;
    train.learner.omega = omega;
    auto model = TrainExpectModel(base, train);
    if (!model.ok()) {
      std::fprintf(stderr, "training failed at omega=%.2f: %s\n", omega,
                   model.status().ToString().c_str());
      return 1;
    }
    auto scenario = GenerateScenario(base);
    if (!scenario.ok()) return 1;
    auto provider = model->MakeProvider();
    MetricsReport report = RunWatter(&*scenario, provider.get());
    table.AddRow({Table::Num(omega, 2),
                  Table::Num(report.metrs_objective, 0),
                  Table::Num(report.unified_cost, 0),
                  Table::Num(report.service_rate * 100, 1),
                  Table::Num(report.avg_response, 1),
                  std::to_string(model->experiences)});
  }
  std::printf(
      "-- Ablation omega | CDC | TD-vs-target loss mix (Section VI-B) --\n");
  table.Print();
  return 0;
}
