// Design-choice ablation (DESIGN.md, key decisions): the two pool semantics
// this reproduction had to pin down where the paper is ambiguous:
//  (a) whether the best-group map contains singleton "groups"
//      (include_singletons) — with singletons and any threshold, fresh
//      orders pass te <= theta instantly and the strategy family collapses
//      toward online dispatch;
//  (b) whether shareability edges require true co-riding (require_overlap) —
//      without it, sequential chains flood the graph with useless edges.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  (void)QuickMode(argc, argv);

  WorkloadOptions base = BaseWorkload(DatasetKind::kCdc);

  struct Variant {
    const char* name;
    bool include_singletons;
    bool require_overlap;
  };
  std::vector<Variant> variants = {
      {"paper (shared-only, overlap)", false, true},
      {"with singleton groups", true, true},
      {"without overlap requirement", false, false},
      {"both relaxed", true, false},
  };

  for (int provider_kind = 0; provider_kind < 2; ++provider_kind) {
    Table table({"pool semantics", "METRS objective", "unified_cost",
                 "service_rate(%)", "avg_response(s)", "avg_group",
                 "rt/order(us)"});
    for (const Variant& variant : variants) {
      auto scenario = GenerateScenario(base);
      if (!scenario.ok()) return 1;
      SimOptions sim;
      sim.pool.include_singletons = variant.include_singletons;
      sim.pool.require_overlap = variant.require_overlap;
      OnlineThresholdProvider online;
      FixedThresholdProvider fixed(60.0);
      ThresholdProvider* provider =
          provider_kind == 0 ? static_cast<ThresholdProvider*>(&online)
                             : static_cast<ThresholdProvider*>(&fixed);
      MetricsReport report = RunWatter(&*scenario, provider, sim);
      table.AddRow({variant.name, Table::Num(report.metrs_objective, 0),
                    Table::Num(report.unified_cost, 0),
                    Table::Num(report.service_rate * 100, 1),
                    Table::Num(report.avg_response, 1),
                    Table::Num(report.avg_group_size, 2),
                    Table::Num(report.running_time_per_order * 1e6, 1)});
    }
    std::printf("-- Ablation pool semantics | CDC | provider: %s --\n",
                provider_kind == 0 ? "WATTER-online" : "fixed theta=60s");
    table.Print();
    std::printf("\n");
  }
  return 0;
}
