// End-to-end profiled baseline: one full WATTER-online simulation per scale
// with the per-round timeline armed, rolled up into the committed
// BENCH_e2e.json records (docs/PERFORMANCE.md, "End-to-end profile").
//
// Scales:
//   quick-1500-150 — the BaseWorkload smoke shape; always runs (this is
//     what the ctest registration and the CI traced smoke exercise).
//   30k-3k — the paper's Table III lower end (CDC, matrix oracle), the same
//     shape as tests/sim_paper_scale_test.cc; the recorded baseline. Runs
//     by default — this binary exists to produce that record — but takes
//     minutes on one core; `--quick` skips it.
//   125k-6k — the paper's headline NYC setting on the CH-backed oracle
//     (bucket batches); self-skips unless WATTER_RUN_LARGE is set, like
//     every other paper-scale target.
//
// Each scale's record carries the four paper metrics plus the per-phase
// wall-time breakdown (maintenance/refresh/propose/resolve/commit/sweep)
// from the timeline totals, the round count and peak pool size, and the
// name of the top phase — the measured "next bottleneck" that
// docs/PERFORMANCE.md tracks across PRs. `--trace FILE` additionally
// exports the Chrome trace of the profiled runs; `--timeline FILE` keeps
// the last scale's full per-round timeline (tools/trace_summary.py reads
// both). The observability taps are run-neutral (docs/OBSERVABILITY.md),
// so these numbers are comparable with untraced runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"

namespace {

using namespace watter;
using namespace watter::bench;

struct E2eScale {
  const char* label;
  DatasetKind dataset;
  int orders;
  int workers;
  int city;       // Square city side (cells).
  double hours;   // Arrival window.
};

struct E2eResult {
  MetricsReport report;
  obs::RoundSample totals;  // Timeline totals; `round` = sample count.
  int64_t peak_pool = 0;
  int64_t final_pool = 0;
};

// Phase slots of the timeline totals, in display order.
struct PhaseSlot {
  const char* name;
  double obs::RoundSample::*slot;
};
constexpr PhaseSlot kPhases[] = {
    {"maintenance_s", &obs::RoundSample::maintenance_s},
    {"refresh_s", &obs::RoundSample::refresh_s},
    {"propose_s", &obs::RoundSample::propose_s},
    {"resolve_s", &obs::RoundSample::resolve_s},
    {"commit_s", &obs::RoundSample::commit_s},
    {"sweep_s", &obs::RoundSample::sweep_s},
};

bool RunScale(const E2eScale& scale, int threads, const SimOptions& sim_base,
              const std::string& trace_path,
              const std::string& timeline_path, E2eResult* out) {
  WorkloadOptions workload;
  workload.dataset = scale.dataset;
  workload.num_orders = scale.orders;
  workload.num_workers = scale.workers;
  workload.city_width = scale.city;
  workload.city_height = scale.city;
  workload.duration = scale.hours * 3600.0;
  workload.num_threads = threads;
  workload.seed = 20240301;  // Matches tests/sim_paper_scale_test.cc.
  // CH-backed datasets exercise the bucket oracle; cdc stays matrix.
  if (scale.dataset != DatasetKind::kCdc) workload.geo = GeoBackend::kBucket;

  auto scenario = GenerateScenario(workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "[%s] scenario failed: %s\n", scale.label,
                 scenario.status().ToString().c_str());
    return false;
  }
  SimOptions sim = sim_base;
  sim.trace_path = trace_path;
  // The sampler must be live to measure the phase breakdown; default the
  // export next to the cwd when the caller did not pick a path.
  sim.timeline_path = timeline_path.empty()
                          ? std::string("e2e_") + scale.label +
                                "_timeline.json"
                          : timeline_path;
  OnlineThresholdProvider provider;
  WatterPlatform platform(&*scenario, &provider, sim);
  out->report = platform.Run();
  const obs::TimelineSampler* timeline = platform.timeline();
  if (timeline == nullptr || timeline->samples().empty()) {
    std::fprintf(stderr, "[%s] timeline sampler was not active\n",
                 scale.label);
    return false;
  }
  out->totals = timeline->Totals();
  for (const obs::RoundSample& sample : timeline->samples()) {
    if (sample.pool_size > out->peak_pool) out->peak_pool = sample.pool_size;
  }
  out->final_pool = timeline->samples().back().pool_size;
  return true;
}

void Report(const E2eScale& scale, int threads, const SimOptions& sim,
            const E2eResult& r) {
  const char* top_phase = kPhases[0].name;
  double top_seconds = -1.0;
  Table table({"phase", "seconds", "% of rounds"});
  for (const PhaseSlot& phase : kPhases) {
    double seconds = r.totals.*(phase.slot);
    if (seconds > top_seconds) {
      top_seconds = seconds;
      top_phase = phase.name;
    }
    table.AddRow({phase.name, Table::Num(seconds, 3),
                  Table::Num(r.totals.total_s > 0.0
                                 ? 100.0 * seconds / r.totals.total_s
                                 : 0.0,
                             1)});
  }
  std::printf(
      "-- e2e profile | %s (n=%d, m=%d, %s) --\n"
      "served %lld / %d (%.1f%%), %lld rounds, peak pool %lld, "
      "%.1fs in rounds\n",
      scale.label, scale.orders, scale.workers, DatasetName(scale.dataset),
      static_cast<long long>(r.report.served), scale.orders,
      r.report.service_rate * 100.0,
      static_cast<long long>(r.totals.round),
      static_cast<long long>(r.peak_pool), r.totals.total_s);
  table.Print();
  std::printf("top phase: %s (%.3fs)\n\n", top_phase, top_seconds);

  if (BenchJson().path.empty()) return;
  char record[1024];
  std::snprintf(
      record, sizeof(record),
      "{\"bench\": \"e2e\", \"scale\": \"%s\", \"dataset\": \"%s\", "
      "\"orders\": %d, \"workers\": %d, \"threads\": %d, "
      "\"dispatch\": \"%s\", \"shards\": %d, "
      "\"served\": %lld, \"rejected\": %lld, \"service_rate\": %.6g, "
      "\"metrs_objective\": %.6g, \"unified_cost\": %.6g, "
      "\"running_time_per_order_us\": %.3f, \"algorithm_seconds\": %.3f, "
      "\"rounds\": %lld, \"peak_pool\": %lld, \"final_pool\": %lld, "
      "\"maintenance_s\": %.4f, \"refresh_s\": %.4f, \"propose_s\": %.4f, "
      "\"resolve_s\": %.4f, \"commit_s\": %.4f, \"sweep_s\": %.4f, "
      "\"round_total_s\": %.4f, \"top_phase\": \"%s\", "
      "\"planner_plans\": %lld, \"pair_tests\": %lld, "
      "\"oracle_queries\": %lld, \"oracle_batches\": %lld}",
      scale.label, DatasetName(scale.dataset), scale.orders, scale.workers,
      threads, DispatchName(sim.dispatch), sim.num_shards,
      static_cast<long long>(r.report.served),
      static_cast<long long>(r.report.rejected), r.report.service_rate,
      r.report.metrs_objective, r.report.unified_cost,
      r.report.running_time_per_order * 1e6, r.report.algorithm_seconds,
      static_cast<long long>(r.totals.round),
      static_cast<long long>(r.peak_pool),
      static_cast<long long>(r.final_pool), r.totals.maintenance_s,
      r.totals.refresh_s, r.totals.propose_s, r.totals.resolve_s,
      r.totals.commit_s, r.totals.sweep_s, r.totals.total_s, top_phase,
      static_cast<long long>(r.report.pool.planner_plans),
      static_cast<long long>(r.report.pool.pair_tests),
      static_cast<long long>(r.report.geo.queries),
      static_cast<long long>(r.report.geo.batches));
  BenchJson().records.emplace_back(record);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  int threads = BenchThreads(argc, argv);
  SimOptions sim;
  sim.dispatch = SingleDispatchMode(argc, argv);
  sim.num_shards = SingleBenchShards(argc, argv);
  BenchJson().path = BenchJsonPath(argc, argv);
  BenchJson().threads = threads;
  BenchJson().dispatch = DispatchName(sim.dispatch);
  BenchJson().shards = sim.num_shards;
  std::string trace_path = BenchTracePath(argc, argv);
  std::string timeline_path = BenchTimelinePath(argc, argv);

  std::vector<E2eScale> scales = {
      {"quick-1500-150", DatasetKind::kCdc, 1500, 150, 24, 2.0},
  };
  if (!quick) {
    scales.push_back({"30k-3k", DatasetKind::kCdc, 30000, 3000, 32, 4.0});
  }
  if (std::getenv("WATTER_RUN_LARGE") != nullptr) {
    // The paper's headline NYC setting over the CH-backed bucket oracle.
    scales.push_back({"125k-6k", DatasetKind::kNyc, 125000, 6000, 96, 4.0});
  } else if (!quick) {
    std::printf("paper-scale shape (125k orders / 6k workers, CH-backed) "
                "skipped; set WATTER_RUN_LARGE=1.\n");
  }

  bool ok = true;
  for (const E2eScale& scale : scales) {
    E2eResult result;
    if (!RunScale(scale, threads, sim, trace_path, timeline_path, &result)) {
      ok = false;
      continue;
    }
    Report(scale, threads, sim, result);
  }
  BenchJson().Flush();
  return ok ? 0 : 1;
}
