// Figure 3: performance while varying the number of riders n.
//
// Paper sweep: NYC n in {50k, 75k, 100k, 125k}; CDC/XIA n in {30k..60k}.
// Reproduction sweep (30x scale-down, same n/m ratios): NYC {1500..3750},
// CDC/XIA {900..1800}, m = 150.
//
// Shapes to reproduce (Section VII-B): WATTER variants beat GDP/GAS on
// extra time and unified cost, WATTER-expect best; service rate ordering
// expect > timeout > online > GAS > GDP; GDP fastest per order.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace watter;
  using namespace watter::bench;
  bool quick = QuickMode(argc, argv);
  int threads = BenchThreads(argc, argv);
  std::vector<DispatchMode> modes = BenchDispatchModes(argc, argv);
  std::vector<int> shard_sweep = BenchShardsSweep(argc, argv);
  GeoBackend geo = BenchGeoBackend(argc, argv);
  std::string faults = BenchFaultSpec(argc, argv);
  BenchJson().path = BenchJsonPath(argc, argv);
  BenchJson().threads = threads;
  BenchJson().geo = GeoName(geo);
  BenchJson().faults = faults;

  for (DatasetKind dataset : BenchDatasets(argc, argv, quick)) {
    WorkloadOptions base = BaseWorkload(dataset);
    base.num_threads = threads;
    base.geo = geo;
    base.faults = faults;
    std::unique_ptr<ExpectModel> model;
    if (!quick) {
      auto trained = TrainExpect(base);
      if (!trained.ok()) {
        std::fprintf(stderr, "training failed: %s\n",
                     trained.status().ToString().c_str());
        return 1;
      }
      model = std::make_unique<ExpectModel>(std::move(trained).value());
    }
    // Observability taps ride on the workload so every simulated run of the
    // sweep inherits them; the training days above stay untraced.
    base.trace_path = BenchTracePath(argc, argv);
    base.timeline_path = BenchTimelinePath(argc, argv);
    std::vector<int> sweep;
    int base_n = base.num_orders;
    for (double factor : {0.5, 0.75, 1.0, 1.25}) {
      sweep.push_back(static_cast<int>(base_n * factor));
    }
    if (quick) sweep = {sweep[0], sweep[2]};
    for (DispatchMode mode : modes) {
      for (int shards : shard_sweep) {
        // The serial engine ignores the shard knob: one row per mode.
        if (mode == DispatchMode::kSerial && shards != shard_sweep.front()) {
          continue;
        }
        BenchJson().dispatch = DispatchName(mode);
        BenchJson().shards = shards;
        SimOptions sim;
        sim.dispatch = mode;
        sim.num_shards = shards;
        std::string figure = "Figure 3";
        if (modes.size() > 1) {
          figure += std::string(" [dispatch=") + DispatchName(mode) + "]";
        }
        // Keep the shards=1 label identical to pre-sharding baselines so
        // those records stay comparable field-for-field across PRs.
        if (mode == DispatchMode::kBatched && shards != 1) {
          figure += " [shards=" + std::to_string(shards) + "]";
        }
        if (!faults.empty()) figure += " [faults]";
        // GDP/GAS have their own loops and ignore the fault knob entirely;
        // a faulted sweep would just re-record their faultless numbers.
        bool with_baselines = faults.empty() && mode == modes.front() &&
                              shards == shard_sweep.front();
        RunSweep<int>(
            figure, dataset, "n", sweep,
            [&base](int n) {
              WorkloadOptions options = base;
              options.num_orders = n;
              return options;
            },
            AlgorithmFamily(model.get(), sim, with_baselines));
      }
    }
  }
  return 0;
}
