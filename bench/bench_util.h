// Shared harness for the figure-reproduction benches.
//
// Each bench sweeps one experimental knob (Table III), runs the five
// algorithms of the paper's evaluation (WATTER-expect / -online / -timeout,
// GDP, GAS; plus the Section V GMM strategy), and prints one table per
// metric in the layout of the corresponding figure: rows = sweep values,
// columns = algorithms.
//
// Scale note (DESIGN.md substitution 3): order/worker counts are scaled down
// ~30x from the paper so a full sweep finishes in minutes on one core while
// preserving the order-to-worker ratios that drive the trends.
#ifndef WATTER_BENCH_BENCH_UTIL_H_
#define WATTER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/gas.h"
#include "src/baseline/gdp.h"
#include "src/common/table.h"
#include "src/rl/trainer.h"
#include "src/sim/platform.h"
#include "src/strategy/threshold_provider.h"
#include "src/workload/scenario.h"

namespace watter {
namespace bench {

/// True when `--quick` is passed or WATTER_BENCH_QUICK is set: fewer sweep
/// points and no RL training, for smoke runs.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return std::getenv("WATTER_BENCH_QUICK") != nullptr;
}

/// Threads the simulated platforms run on: `--threads T` or
/// WATTER_BENCH_THREADS (0 = all hardware threads; default 1 = serial).
/// Metrics are thread-count-independent, so sweeps stay comparable.
inline int BenchThreads(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      return std::atoi(argv[i + 1]);
    }
  }
  const char* env = std::getenv("WATTER_BENCH_THREADS");
  return env != nullptr ? std::atoi(env) : 1;
}

inline const char* DispatchName(DispatchMode mode) {
  return mode == DispatchMode::kBatched ? "batched" : "serial";
}

/// Dispatch engines to sweep: `--dispatch serial|batched|both` or
/// WATTER_BENCH_DISPATCH. Default runs the batched engine only (the
/// platform default since the engine A/B); `both` produces the
/// serial-vs-batched A/B the JSON baseline records.
inline std::vector<DispatchMode> BenchDispatchModes(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dispatch") == 0) value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("WATTER_BENCH_DISPATCH");
  if (value == nullptr || std::strcmp(value, "batched") == 0) {
    return {DispatchMode::kBatched};
  }
  if (std::strcmp(value, "serial") == 0) return {DispatchMode::kSerial};
  if (std::strcmp(value, "both") == 0) {
    return {DispatchMode::kSerial, DispatchMode::kBatched};
  }
  std::fprintf(stderr, "unknown --dispatch value: %s\n", value);
  std::exit(2);
}

inline const char* GeoName(GeoBackend geo) {
  return geo == GeoBackend::kBucket ? "bucket" : "per-query";
}

/// Travel-time-oracle backend for the CH-backed datasets (nyc/xia):
/// `--geo per-query|bucket` or WATTER_BENCH_GEO, default bucket (the
/// batched bucket-CH oracle, src/geo/bucket_ch.h). The backends are
/// bitwise-equivalent (tests/geo_oracle_equivalence_test.cc), so the flag
/// can only move running time — every other column stays identical, which
/// is exactly what BENCH_geo.json records. The matrix-oracle cdc dataset
/// ignores it.
inline GeoBackend BenchGeoBackend(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--geo") == 0) value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("WATTER_BENCH_GEO");
  if (value == nullptr || std::strcmp(value, "bucket") == 0) {
    return GeoBackend::kBucket;
  }
  if (std::strcmp(value, "per-query") == 0) return GeoBackend::kPerQuery;
  std::fprintf(stderr, "unknown --geo value: %s\n", value);
  std::exit(2);
}

/// Shard counts for the batched engine's region-sharded commit pass:
/// `--shards N[,N...]` or WATTER_BENCH_SHARDS, default {1} (unsharded).
/// Metrics are shard-count-independent (sim_parallel_determinism_test), so
/// extra shard values add rows that differ only in running time and the
/// border-work counters; the serial engine ignores the knob.
inline std::vector<int> BenchShardsSweep(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("WATTER_BENCH_SHARDS");
  if (value == nullptr) return {1};
  std::vector<int> shards;
  for (const char* p = value; *p != '\0';) {
    char* end = nullptr;
    long parsed = std::strtol(p, &end, 10);
    if (end == p || parsed < 1) {
      std::fprintf(stderr, "bad --shards value: %s\n", value);
      std::exit(2);
    }
    shards.push_back(static_cast<int>(parsed));
    p = *end == ',' ? end + 1 : end;
  }
  if (shards.empty()) {
    std::fprintf(stderr, "bad --shards value: %s\n", value);
    std::exit(2);
  }
  return shards;
}

/// Deterministic fault-injection spec for the simulated runs: `--faults
/// SPEC` or WATTER_BENCH_FAULTS (docs/ROBUSTNESS.md grammar). Empty (the
/// default) keeps fault injection off — the sweep is then bitwise identical
/// to a faultless build. A faulted sweep is what BENCH_faults.json records:
/// the GDP/GAS baselines ignore faults, so drivers skip them when a spec is
/// set.
inline std::string BenchFaultSpec(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("WATTER_BENCH_FAULTS");
  if (value == nullptr) return "";
  Result<FaultSpec> parsed = ParseFaultSpec(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad --faults value: %s\n",
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return value;
}

/// For drivers that take one shard count per invocation: like
/// BenchShardsSweep but rejects a comma list loudly.
inline int SingleBenchShards(int argc, char** argv) {
  std::vector<int> shards = BenchShardsSweep(argc, argv);
  if (shards.size() != 1) {
    std::fprintf(stderr,
                 "a --shards sweep is only supported by bench_fig3_vary_n; "
                 "pick one value\n");
    std::exit(2);
  }
  return shards.front();
}

/// For drivers that run one engine per invocation: like BenchDispatchModes
/// but rejects `both` loudly instead of silently dropping a mode.
inline DispatchMode SingleDispatchMode(int argc, char** argv) {
  std::vector<DispatchMode> modes = BenchDispatchModes(argc, argv);
  if (modes.size() != 1) {
    std::fprintf(stderr,
                 "--dispatch both is only supported by bench_fig3_vary_n; "
                 "pick serial or batched\n");
    std::exit(2);
  }
  return modes.front();
}

/// Machine-readable sweep output (`--json FILE` or WATTER_BENCH_JSON): one
/// JSON array of records, one record per (sweep value, algorithm) cell,
/// written at process exit. BENCH_dispatch.json in the repo root is
/// produced this way (CMake target `bench_dispatch_json`) so dispatch-
/// engine baselines stay comparable across PRs.
struct JsonSink {
  std::string path;
  int threads = 1;
  const char* dispatch = "batched";
  const char* geo = "bucket";
  int shards = 1;
  std::string faults;  ///< Fault spec of the sweep ("" = faults off).
  std::vector<std::string> records;

  ~JsonSink() { Flush(); }

  void Flush() {
    if (path.empty() || records.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records[i].c_str(),
                   i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    records.clear();
  }
};

inline JsonSink& BenchJson() {
  static JsonSink sink;
  return sink;
}

inline std::string BenchJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  const char* env = std::getenv("WATTER_BENCH_JSON");
  return env != nullptr ? env : "";
}

/// Chrome trace-event output for the simulated runs: `--trace FILE` or
/// WATTER_BENCH_TRACE (docs/OBSERVABILITY.md). The recorder is global and
/// accumulates across runs, and every traced run re-exports the whole
/// buffer, so FILE ends up covering the full sweep on one timeline.
/// Run-neutral: metrics are bitwise identical with or without it.
inline std::string BenchTracePath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) return argv[i + 1];
  }
  const char* env = std::getenv("WATTER_BENCH_TRACE");
  return env != nullptr ? env : "";
}

/// Per-round timeline output: `--timeline FILE` or WATTER_BENCH_TIMELINE
/// (JSON, or CSV when FILE ends in ".csv"). The sampler is per-platform, so
/// each run overwrites FILE and the last simulated run of the sweep wins —
/// point a sweep of one cell at it, or use watter_cli for a single run.
/// Run-neutral like the trace.
inline std::string BenchTimelinePath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) return argv[i + 1];
  }
  const char* env = std::getenv("WATTER_BENCH_TIMELINE");
  return env != nullptr ? env : "";
}

/// Baseline workload for a dataset at the reproduction scale. Defaults
/// mirror Table III's italicized values: n = base, m = 5k-scaled, tau = 1.6,
/// Kw = 4.
///
/// The city and time window are sized so that the *spatio-temporal order
/// density* (arrivals per cell-hour), not just the n/m ratio, is in the
/// paper's regime: at the paper's 30k-125k orders/day nearly every order
/// finds pooling partners, and that density is what makes waiting pay off.
/// A naive 30x scale-down of n alone would leave most orders partnerless
/// and flip the comparison (see EXPERIMENTS.md, calibration note).
inline WorkloadOptions BaseWorkload(DatasetKind dataset) {
  WorkloadOptions options;
  options.dataset = dataset;
  options.num_orders = dataset == DatasetKind::kNyc ? 3000 : 1500;
  options.num_workers = 150;
  options.tau = 1.6;
  options.eta = 0.8;
  options.max_capacity = 4;
  options.duration = 2.0 * 3600.0;
  options.city_width = 24;
  options.city_height = 24;
  // One fixed city per dataset (training and evaluation share roads).
  options.city_seed = 50000 + static_cast<uint64_t>(dataset) * 101;
  options.seed = 424242;  // Evaluation day.
  return options;
}

/// Named algorithm runner.
struct Algorithm {
  std::string name;
  std::function<MetricsReport(Scenario*)> run;
};

/// Trains a WATTER-expect model for workloads shaped like `base`.
inline Result<ExpectModel> TrainExpect(const WorkloadOptions& base) {
  ExpectTrainOptions train;
  train.bootstrap_days = 1;
  train.behavior_days = 2;
  train.epochs = 2;
  return TrainExpectModel(base, train);
}

/// The paper's algorithm family. `model` may be null (quick mode): then
/// WATTER-expect and WATTER-gmm are omitted. `sim` selects the dispatch
/// engine (and any other platform knob) for the WATTER strategies; the
/// GDP/GAS baselines have their own loops and ignore it — pass
/// `with_baselines = false` on all but the first engine of a multi-engine
/// sweep so they are not re-run (and re-recorded) with numbers the knob
/// cannot change.
inline std::vector<Algorithm> AlgorithmFamily(const ExpectModel* model,
                                              const SimOptions& sim = {},
                                              bool with_baselines = true) {
  std::vector<Algorithm> algorithms;
  if (model != nullptr) {
    algorithms.push_back({"WATTER-expect", [model, sim](Scenario* s) {
                            auto provider = model->MakeProvider();
                            return RunWatter(s, provider.get(), sim);
                          }});
    algorithms.push_back({"WATTER-gmm", [model, sim](Scenario* s) {
                            GmmThresholdProvider provider(*model->mixture);
                            return RunWatter(s, &provider, sim);
                          }});
  }
  algorithms.push_back({"WATTER-online", [sim](Scenario* s) {
                          OnlineThresholdProvider provider;
                          return RunWatter(s, &provider, sim);
                        }});
  algorithms.push_back({"WATTER-timeout", [sim](Scenario* s) {
                          TimeoutThresholdProvider provider;
                          return RunWatter(s, &provider, sim);
                        }});
  if (with_baselines) {
    algorithms.push_back({"GDP", [](Scenario* s) { return RunGdp(s); }});
    algorithms.push_back({"GAS", [](Scenario* s) { return RunGas(s); }});
  }
  return algorithms;
}

/// One metric extracted from a report.
struct MetricColumn {
  const char* title;
  std::function<double(const MetricsReport&)> get;
  int precision;
};

/// The paper's four measurements. "Extra Time" is the METRS objective
/// (served extra time + rejection penalties, Equation 2).
inline std::vector<MetricColumn> PaperMetrics() {
  return {
      {"Extra Time (s)",
       [](const MetricsReport& r) { return r.metrs_objective; }, 0},
      {"Unified Cost",
       [](const MetricsReport& r) { return r.unified_cost; }, 0},
      {"Service Rate (%)",
       [](const MetricsReport& r) { return r.service_rate * 100.0; }, 1},
      {"Running Time (us/order)",
       [](const MetricsReport& r) {
         return r.running_time_per_order * 1e6;
       },
       1},
  };
}

/// Runs `algorithms` over scenarios produced per sweep value and prints the
/// figure-style tables. `make_options` maps a sweep value to workload
/// options; `sweep_label` names the x-axis (e.g. "n", "m", "tau").
template <typename SweepValue>
void RunSweep(const std::string& figure, DatasetKind dataset,
              const std::string& sweep_label,
              const std::vector<SweepValue>& values,
              const std::function<WorkloadOptions(SweepValue)>& make_options,
              const std::vector<Algorithm>& algorithms) {
  // results[value][algorithm].
  std::vector<std::vector<MetricsReport>> results;
  for (SweepValue value : values) {
    results.emplace_back();
    for (const Algorithm& algorithm : algorithms) {
      WorkloadOptions options = make_options(value);
      auto scenario = GenerateScenario(options);
      if (!scenario.ok()) {
        std::fprintf(stderr, "scenario failed: %s\n",
                     scenario.status().ToString().c_str());
        std::exit(1);
      }
      results.back().push_back(algorithm.run(&*scenario));
      if (!BenchJson().path.empty()) {
        const MetricsReport& r = results.back().back();
        char record[2048];
        std::snprintf(
            record, sizeof(record),
            "{\"figure\": \"%s\", \"dataset\": \"%s\", \"sweep\": \"%s\", "
            "\"value\": %s, \"algorithm\": \"%s\", \"threads\": %d, "
            "\"dispatch\": \"%s\", \"geo\": \"%s\", \"shards\": %d, "
            "\"faults\": \"%s\", "
            "\"served\": %lld, \"rejected\": %lld, "
            "\"metrs_objective\": %.6g, \"unified_cost\": %.6g, "
            "\"service_rate\": %.6g, \"running_time_per_order_us\": %.3f, "
            "\"planner_plans\": %lld, \"pair_tests\": %lld, "
            "\"recomputes\": %lld, \"groups_evaluated\": %lld, "
            "\"plan_cache_hits\": %lld, \"plan_cache_misses\": %lld, "
            "\"plan_cache_replans\": %lld, \"plan_cache_seeds\": %lld, "
            "\"oracle_queries\": %lld, \"oracle_batches\": %lld, "
            "\"oracle_batch_points\": %lld, "
            "\"cancelled\": %lld, \"failed_services\": %lld, "
            "\"fault_dropouts\": %lld, \"fault_midroute_dropouts\": %lld, "
            "\"fault_late_dropouts\": %lld, \"fault_returns\": %lld, "
            "\"fault_brownout_rounds\": %lld, \"fault_stalls\": %lld, "
            "\"fault_recovered_orders\": %lld, "
            "\"fault_aborted_commits\": %lld, \"shed_orders\": %lld, "
            "\"degraded_rounds\": %lld, \"work_units\": %lld}",
            figure.c_str(), DatasetName(dataset), sweep_label.c_str(),
            std::to_string(value).c_str(), algorithm.name.c_str(),
            BenchJson().threads, BenchJson().dispatch, BenchJson().geo,
            BenchJson().shards, BenchJson().faults.c_str(),
            static_cast<long long>(r.served),
            static_cast<long long>(r.rejected), r.metrs_objective,
            r.unified_cost, r.service_rate, r.running_time_per_order * 1e6,
            static_cast<long long>(r.pool.planner_plans),
            static_cast<long long>(r.pool.pair_tests),
            static_cast<long long>(r.pool.best_group_recomputes),
            static_cast<long long>(r.pool.groups_evaluated),
            static_cast<long long>(r.pool.plan_cache_hits),
            static_cast<long long>(r.pool.plan_cache_misses),
            static_cast<long long>(r.pool.plan_cache_replans),
            static_cast<long long>(r.pool.plan_cache_seeds),
            static_cast<long long>(r.geo.queries),
            static_cast<long long>(r.geo.batches),
            static_cast<long long>(r.geo.batch_points),
            static_cast<long long>(r.cancelled),
            static_cast<long long>(r.failed_services),
            static_cast<long long>(r.faults.dropouts),
            static_cast<long long>(r.faults.midroute_dropouts),
            static_cast<long long>(r.faults.late_dropouts),
            static_cast<long long>(r.faults.returns),
            static_cast<long long>(r.faults.brownout_rounds),
            static_cast<long long>(r.faults.stalls),
            static_cast<long long>(r.faults.recovered_orders),
            static_cast<long long>(r.faults.aborted_commits),
            static_cast<long long>(r.faults.shed_orders),
            static_cast<long long>(r.faults.degraded_rounds),
            static_cast<long long>(r.faults.work_units));
        BenchJson().records.emplace_back(record);
      }
    }
  }
  for (const MetricColumn& metric : PaperMetrics()) {
    std::printf("-- %s | %s | %s (rows: %s) --\n", figure.c_str(),
                DatasetName(dataset), metric.title, sweep_label.c_str());
    std::vector<std::string> headers = {sweep_label};
    for (const Algorithm& algorithm : algorithms) {
      headers.push_back(algorithm.name);
    }
    Table table(headers);
    for (size_t v = 0; v < values.size(); ++v) {
      std::vector<std::string> row = {std::to_string(values[v])};
      for (size_t a = 0; a < algorithms.size(); ++a) {
        row.push_back(
            Table::Num(metric.get(results[v][a]), metric.precision));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

/// Datasets to sweep: all three, or just CDC in quick mode.
inline std::vector<DatasetKind> BenchDatasets(bool quick) {
  if (quick) return {DatasetKind::kCdc};
  return {DatasetKind::kNyc, DatasetKind::kCdc, DatasetKind::kXia};
}

/// Like BenchDatasets(quick), but `--datasets nyc|cdc|xia` (or
/// WATTER_BENCH_DATASETS) narrows the sweep to one dataset, so a full-scale
/// engine A/B fits the 1-core recording box without dropping sweep points.
inline std::vector<DatasetKind> BenchDatasets(int argc, char** argv,
                                              bool quick) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--datasets") == 0) value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("WATTER_BENCH_DATASETS");
  if (value == nullptr || std::strcmp(value, "all") == 0) {
    return BenchDatasets(quick);
  }
  if (std::strcmp(value, "nyc") == 0) return {DatasetKind::kNyc};
  if (std::strcmp(value, "cdc") == 0) return {DatasetKind::kCdc};
  if (std::strcmp(value, "xia") == 0) return {DatasetKind::kXia};
  std::fprintf(stderr, "unknown --datasets value: %s\n", value);
  std::exit(2);
}

}  // namespace bench
}  // namespace watter

#endif  // WATTER_BENCH_BENCH_UTIL_H_
